.PHONY: all build test bench check check-obs check-fault check-store check-net check-trace check-frontend check-fleet check-regress bench-baseline clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Observability smoke: compile one kernel with --trace-out and validate
# the emitted Chrome trace JSON.
check-obs:
	dune build @obs-smoke

# Fault smoke: replay the compile service under deterministic seeded
# fault injection (fixed seed, 20% rate) and fail if any configuration
# loses, misorders or hangs a response.
check-fault:
	dune build @fault-smoke

# Store smoke: the durable-store bench scenario plus the CLI surface —
# checkpoint a DSE run, kill and resume it (must be bit-identical),
# verify/compact the store file, and warm-restart serve-bench from it.
check-store:
	dune build @store-smoke

# Net smoke: the sharded network tier end to end — 2 shard processes
# under open-loop socket load with a SIGKILL + durable-store restart of
# one shard mid-run (fails on any lost response), then an in-process
# 2-shard cluster driving a self-test through real sockets.
check-net:
	dune build @net-smoke

# Trace smoke: a 2-shard in-process cluster serving a traced self-test
# (deterministic trace ids, 1-in-50 deliberate misroutes so forwards
# happen), its flight-recorder dump, a live metrics/health/events scrape,
# then trace-merge + trace-validate on the emitted span lane.
check-trace:
	dune build @trace-smoke

# Frontend smoke: round-trip the whole suite through emit → parse with
# bit-identical compiled schedules, fuzz the parse→schedule→sim pipeline
# with seeded random kernels under fault injection (fails on any escaped
# exception or round-trip violation), and check a corpus crasher is
# rejected with a located error.
check-frontend:
	dune build @frontend-smoke

# Fleet smoke: the multi-tenant QoS scenario (weighted-fair shares,
# deterministic quota sheds, retire + background-DSE promote asserted
# through the flight recorder), then a mini 2-tenant serve-bench replay
# that must hit its shares and promote one overlay.
check-fleet:
	dune build @fleet-smoke

# Perf regression gate: re-run all seven bench scenarios at smoke scale
# and diff the emitted BENCH_*.json against the baselines committed in
# bench/baselines/ (fails on any gated metric past the tolerance).
check-regress:
	dune build @regress-smoke

# Refresh the committed perf baselines after an intentional perf change:
# re-runs the same smoke-scale scenario set the gate uses, then copies the
# emitted BENCH_*.json into bench/baselines/.  Commit both.
bench-baseline:
	dune exec bench/main.exe -- micro service obs fault store \
	  dse --islands 2 --iterations 50 net --smoke fleet
	cp BENCH_micro.json BENCH_service.json BENCH_obs.json BENCH_fault.json \
	  BENCH_store.json BENCH_dse.json BENCH_net.json BENCH_fleet.json \
	  bench/baselines/

# Full gate: build everything, run the whole test suite, smoke the CLI
# (`overgen list` + a small deterministic serve-bench trace), the
# island-model DSE bench, the observability trace path, the fault
# injection scenario, the durable-store scenario and the sharded network
# tier, and fail if build artifacts ever got committed.
check:
	dune build @check
	@if [ -n "$$(git ls-files _build)" ]; then \
	  echo "error: _build artifacts are tracked by git:"; \
	  git ls-files _build; \
	  exit 1; \
	fi

clean:
	dune clean
