.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full gate: build everything, run the whole test suite, smoke the CLI
# (`overgen list` + a small deterministic serve-bench trace) and the
# island-model DSE bench, and fail if build artifacts ever got committed.
check:
	dune build @check
	@if [ -n "$$(git ls-files _build)" ]; then \
	  echo "error: _build artifacts are tracked by git:"; \
	  git ls-files _build; \
	  exit 1; \
	fi

clean:
	dune clean
