.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full gate: build everything, run the whole test suite, and smoke the CLI
# (`overgen list` + a small deterministic serve-bench trace).
check:
	dune build @check

clean:
	dune clean
