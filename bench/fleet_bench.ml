(* The fleet scenario: multi-tenant QoS and fleet management at traffic.

   Three tenants with skewed weights (gold 10, silver 3, bronze 1) share
   one compile service through the weighted-fair admission layer.  The
   whole load is parked behind [Admission.hold] and released at once, so
   the completion order is the pure deficit-round-robin order and the
   achieved-share measurement ({!Overgen_fleet.Share}) is deterministic:
   each tenant's share of the backlogged prefix must sit within 10%
   relative error of its weight.  Bronze carries a burst-only quota, so a
   fixed count of its requests is shed [Quota_exceeded] at the gate —
   deterministically, and with every request still answered exactly once.

   The same replay feeds the fleet manager: a decoy overlay is retired
   (purging its schedule-cache records) and the observed misses trigger
   one background DSE promote that lands a [fleet-0] overlay in the
   registry, both asserted through the flight recorder's pinned events. *)

open Overgen_workload
module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Telemetry = Overgen_service.Telemetry
module Tenant = Overgen_fleet.Tenant
module Admission = Overgen_fleet.Admission
module Manager = Overgen_fleet.Manager
module Share = Overgen_fleet.Share
module Log = Overgen_obs.Obs.Log

let per_tenant = 150
let bronze_burst = 25
let share_err_cap = 0.10

let die fmt = Printf.ksprintf failwith fmt

let tenants =
  [
    Tenant.make ~weight:10 ~deadline_class:Tenant.Interactive "gold";
    Tenant.make ~weight:3 "silver";
    Tenant.make ~weight:1 ~deadline_class:Tenant.Batch
      ~quota:{ Tenant.rate_per_s = 0.0; burst = bronze_burst }
      "bronze";
  ]

let weights = List.map (fun (t : Tenant.t) -> (t.id, t.weight)) tenants

(* Per-tenant request streams over overlapping 4-kernel working sets:
   same-overlay runs make batching kick in, repeats make the cache
   earn hits, and the overlap keeps the miss profile interesting for
   the promote trigger. *)
let requests_for idx tenant =
  let all = Array.of_list Kernels.all in
  List.init per_tenant (fun i ->
      let kernel = all.((idx * 2 + (i mod 4)) mod Array.length all) in
      {
        Service.id = (idx * 1000) + i;
        user = tenant;
        tenant;
        overlay = "general";
        payload = Service.Kernel kernel;
        tuned = false;
        trace = "";
        deadline_s = None;
      })

let run () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Exp_common.general ()) with
  | Ok _ -> ()
  | Error e -> die "register general: %s" e);
  let decoy =
    Exp_common.custom_overlay ~key:"fleet-decoy" ~seed:5 ~iterations:40
      [ Kernels.find "fir" ]
  in
  (match Registry.register registry ~name:"decoy" decoy with
  | Ok _ -> ()
  | Error e -> die "register decoy: %s" e);
  let cache = Cache.create ~capacity:1024 () in
  let svc = Service.create ~caching:true ~cache registry in
  (* burst-only quota + a frozen clock: the shed set is a pure function
     of submission order *)
  let adm = Admission.create ~clock:(fun () -> 0.0) ~tenants svc in
  let now = ref 0.0 in
  let manager =
    Manager.create
      ~config:
        {
          Manager.default_config with
          protected = [ "general" ];
          promote_min_requests = 100;
          dse_iterations = 60;
          dse_top_kernels = 2;
        }
      ~cache
      ~clock:(fun () -> !now)
      ~model:(Exp_common.model ()) registry
  in
  Manager.attach manager adm;
  let order = ref [] and sheds = ref 0 and responses = ref 0 in
  let om = Mutex.create () in
  let k (r : Service.response) =
    Mutex.lock om;
    incr responses;
    (match r.result with
    | Error Service.Quota_exceeded -> incr sheds
    | _ -> order := r.request.Service.tenant :: !order);
    Mutex.unlock om
  in
  let trace =
    List.concat (List.mapi (fun i (t : Tenant.t) -> requests_for i t.id) tenants)
  in
  let total = List.length trace in
  Printf.printf
    "fleet: %d requests, 3 tenants (gold:10 silver:3 bronze:1, bronze burst %d)\n\n"
    total bronze_burst;
  (* park everything, then release: completion order = pure DRR order *)
  Admission.hold adm;
  List.iter (fun r -> Admission.submit_k adm r ~k) trace;
  let t0 = Unix.gettimeofday () in
  Admission.release adm;
  Admission.drain adm;
  let wall_s = Unix.gettimeofday () -. t0 in
  Service.shutdown svc;
  let stats = Admission.stats adm in
  let expected_sheds = per_tenant - bronze_burst in
  if !responses <> total then
    die "lost responses: %d answered of %d submitted" !responses total;
  if !sheds <> expected_sheds then
    die "expected exactly %d deterministic quota sheds, saw %d" expected_sheds
      !sheds;
  let reports = Share.measure ~weights (List.rev !order) in
  List.iter print_endline (Share.report_lines reports);
  let share_err = Share.max_rel_err reports in
  if share_err > share_err_cap then
    die "achieved share off by %.1f%% (cap %.0f%%)" (100.0 *. share_err)
      (100.0 *. share_err_cap);
  let avg_batch =
    if stats.batches = 0 then 1.0
    else float_of_int stats.batched_requests /. float_of_int stats.batches
  in
  Printf.printf
    "\nadmission: %d admitted, %d shed at the quota gate\n\
     batching:  %d groups covering %d requests (avg %.1f, max %d)\n"
    stats.admitted stats.quota_shed stats.batches stats.batched_requests
    avg_batch stats.max_batch;
  Printf.printf "throughput: %.1f req/s over the weighted-fair replay\n\n"
    (float_of_int total /. wall_s);
  (* per-tenant telemetry made it into the labeled series *)
  let tenant_reqs = Telemetry.tenant_requests (Service.telemetry svc) in
  List.iter
    (fun (tenant, n) -> Printf.printf "telemetry: tenant %-8s %4d requests\n" tenant n)
    tenant_reqs;
  (* fleet management: retire the cold decoy, then promote from the
     observed miss profile *)
  let purged =
    match Manager.retire manager "decoy" with
    | Ok n -> n
    | Error e -> die "retire decoy: %s" e
  in
  Printf.printf "\nretire: decoy retired, %d cached schedule(s) purged\n" purged;
  let promoted =
    match Manager.maybe_promote manager with
    | Some entry ->
      Printf.printf "promote: %s registered [%s]\n" entry.Registry.name
        (String.sub entry.Registry.fingerprint 0 8);
      entry.Registry.name
    | None -> die "promote trigger did not fire after %d observations" total
  in
  let pinned name =
    List.exists (fun (e : Log.event) -> e.name = name) (Log.recent Log.default)
  in
  if not (pinned "retire") then die "no retire event in the flight recorder";
  if not (pinned "promote") then die "no promote event in the flight recorder";
  if Registry.find registry promoted = None then
    die "promoted overlay %s missing from the registry" promoted;
  print_newline ();
  {
    Bench.metrics =
      [
        ("fleet_req_per_s", float_of_int total /. wall_s);
        ("fleet_share_err_pct", 100.0 *. share_err);
        ("fleet_quota_shed", float_of_int stats.quota_shed);
        ("fleet_lost_responses", float_of_int (total - !responses));
        ("fleet_avg_batch_x", avg_batch);
        ("fleet_max_batch", float_of_int stats.max_batch);
        ("fleet_retire_purged", float_of_int purged);
        ("fleet_promotes", float_of_int (Manager.promotes manager));
      ];
  }
