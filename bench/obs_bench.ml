(* Observability overhead scenario: per-call cost of the gated primitives,
   then the same compile loop with the null backend (gate off, the
   default) and with recording enabled.  The contract is that leaving the
   instrumentation compiled in costs < 3% while disabled; the estimate
   below multiplies the measured per-call null cost by the number of
   instrumentation events the enabled run actually recorded. *)

open Overgen_workload
module Obs = Overgen_obs.Obs
module Stats = Overgen_util.Stats

let trials = 9

let median_wall_s f =
  let samples =
    List.init trials (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Stats.median samples

let run () =
  Exp_common.header "observability overhead (bench obs)";
  let overlay = Exp_common.general () in
  let kernels = Kernels.of_suite Suite.Dsp in
  let compile_loop () =
    List.iter
      (fun (k : Ir.kernel) ->
        (* `Ignore defeats the stored-schedule shortcut so the spatial
           scheduler — the instrumented hot path — actually runs *)
        match
          Overgen.compile
            ~opts:{ Overgen.default_opts with stored = `Ignore }
            overlay k
        with
        | Ok _ | Error _ -> ())
      kernels
  in
  (* --- per-call cost of the gated primitives with the gate off --- *)
  Obs.disable ();
  let n = 3_000_000 in
  let c =
    Obs.Metrics.counter Obs.Metrics.default "overgen_bench_obs_ops_total"
  in
  let per_op label f =
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let words = (Gc.minor_words () -. minor0) /. float_of_int n in
    Printf.printf "  %-24s %6.1f ns/op   %5.2f minor words/op\n" label
      (dt /. float_of_int n *. 1e9)
      words;
    dt /. float_of_int n
  in
  Printf.printf "gated primitives, gate off (n = %d):\n" n;
  let incr_s = per_op "Obs.incr" (fun () -> Obs.incr c) in
  let span_s =
    per_op "Obs.Span.with_span" (fun () -> Obs.Span.with_span "noop" Fun.id)
  in
  print_newline ();
  (* --- the compile loop, gate off vs gate on --- *)
  compile_loop () (* warm up allocators and memo tables first *);
  let off_s = median_wall_s compile_loop in
  Obs.enable ();
  Obs.Span.reset ();
  Obs.Metrics.reset Obs.Metrics.default;
  let on_s = median_wall_s compile_loop in
  let spans = Obs.Span.count () / trials in
  let counts =
    (* counter bumps per loop, from what the enabled trials recorded *)
    let v name =
      Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.default name)
    in
    (v "overgen_scheduler_variants_tried_total"
    + v "overgen_scheduler_variants_accepted_total"
    + v "overgen_scheduler_routing_failures_total"
    + v "overgen_scheduler_repairs_total"
    + (3 * v "overgen_compile_total"))
    / trials
  in
  Obs.disable ();
  Obs.Span.reset ();
  Obs.Metrics.reset Obs.Metrics.default;
  let est_null_s =
    (float_of_int spans *. span_s) +. (float_of_int counts *. incr_s)
  in
  let est_pct = 100.0 *. est_null_s /. off_s in
  Printf.printf "compile loop over %d DSP kernels (median of %d trials):\n"
    (List.length kernels) trials;
  Printf.printf "  null backend (gate off)   %8.2f ms\n" (off_s *. 1000.0);
  Printf.printf
    "  recording enabled         %8.2f ms   (%+.2f %%; %d spans + %d counter bumps per loop)\n"
    (on_s *. 1000.0)
    (100.0 *. (on_s -. off_s) /. off_s)
    spans counts;
  Printf.printf
    "  null-backend overhead     %8.4f %%   (%d gated calls x measured per-call cost; target < 3 %%)%s\n\n"
    est_pct (spans + counts)
    (if est_pct < 3.0 then "  OK" else "  EXCEEDED");
  {
    Bench.metrics =
      [
        ("incr_ns", incr_s *. 1e9);
        ("span_ns", span_s *. 1e9);
        ("compile_loop_off_ms", off_s *. 1000.0);
        ("compile_loop_on_ms", on_s *. 1000.0);
        ("null_overhead_pct", est_pct);
        ("spans_per_loop", float_of_int spans);
        ("counter_bumps_per_loop", float_of_int counts);
      ];
  }
