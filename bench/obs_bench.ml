(* Observability overhead scenario: per-call cost of the gated primitives,
   then the same compile loop with the null backend (gate off, the
   default) and with recording enabled.  The contract is that leaving the
   instrumentation compiled in costs < 3% while disabled; the estimate
   below multiplies the measured per-call null cost by the number of
   instrumentation events the enabled run actually recorded.

   The same contract covers the net path: a request that carries a trace
   id pays two ungated [Span.with_trace] context switches (server
   dispatch, service process) plus the 32-byte id on the wire even with
   the gate off.  Loopback socket jitter swamps a direct wall-clock
   diff, so `net_null_overhead_pct` is estimated the same way — measured
   per-call cost times per-request call count over the measured untraced
   wall — while the traced/untraced walls land alongside as evidence. *)

open Overgen_workload
module Obs = Overgen_obs.Obs
module Stats = Overgen_util.Stats
module Net = Overgen_net
module Registry = Overgen_service.Registry
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace
module Rng = Overgen_util.Rng

let trials = 9

let median_wall_s f =
  let samples =
    List.init trials (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Stats.median samples

let run () =
  Exp_common.header "observability overhead (bench obs)";
  let overlay = Exp_common.general () in
  let kernels = Kernels.of_suite Suite.Dsp in
  let compile_loop () =
    List.iter
      (fun (k : Ir.kernel) ->
        (* `Ignore defeats the stored-schedule shortcut so the spatial
           scheduler — the instrumented hot path — actually runs *)
        match
          Overgen.compile
            ~opts:{ Overgen.default_opts with stored = `Ignore }
            overlay k
        with
        | Ok _ | Error _ -> ())
      kernels
  in
  (* --- per-call cost of the gated primitives with the gate off --- *)
  Obs.disable ();
  let n = 3_000_000 in
  let c =
    Obs.Metrics.counter Obs.Metrics.default "overgen_bench_obs_ops_total"
  in
  let per_op label f =
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let words = (Gc.minor_words () -. minor0) /. float_of_int n in
    Printf.printf "  %-24s %6.1f ns/op   %5.2f minor words/op\n" label
      (dt /. float_of_int n *. 1e9)
      words;
    dt /. float_of_int n
  in
  Printf.printf "gated primitives, gate off (n = %d):\n" n;
  let incr_s = per_op "Obs.incr" (fun () -> Obs.incr c) in
  let span_s =
    per_op "Obs.Span.with_span" (fun () -> Obs.Span.with_span "noop" Fun.id)
  in
  (* ungated trace-context switch: what a traced request pays per hop
     even with the null backend on *)
  let trace_id = String.make 32 'a' in
  let with_trace_s =
    per_op "Obs.Span.with_trace" (fun () -> Obs.Span.with_trace trace_id Fun.id)
  in
  print_newline ();
  (* --- the compile loop, gate off vs gate on --- *)
  compile_loop () (* warm up allocators and memo tables first *);
  let off_s = median_wall_s compile_loop in
  Obs.enable ();
  Obs.Span.reset ();
  Obs.Metrics.reset Obs.Metrics.default;
  let on_s = median_wall_s compile_loop in
  let spans = Obs.Span.count () / trials in
  let counts =
    (* counter bumps per loop, from what the enabled trials recorded *)
    let v name =
      Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.default name)
    in
    (v "overgen_scheduler_variants_tried_total"
    + v "overgen_scheduler_variants_accepted_total"
    + v "overgen_scheduler_routing_failures_total"
    + v "overgen_scheduler_repairs_total"
    + (3 * v "overgen_compile_total"))
    / trials
  in
  Obs.disable ();
  Obs.Span.reset ();
  Obs.Metrics.reset Obs.Metrics.default;
  let est_null_s =
    (float_of_int spans *. span_s) +. (float_of_int counts *. incr_s)
  in
  let est_pct = 100.0 *. est_null_s /. off_s in
  Printf.printf "compile loop over %d DSP kernels (median of %d trials):\n"
    (List.length kernels) trials;
  Printf.printf "  null backend (gate off)   %8.2f ms\n" (off_s *. 1000.0);
  Printf.printf
    "  recording enabled         %8.2f ms   (%+.2f %%; %d spans + %d counter bumps per loop)\n"
    (on_s *. 1000.0)
    (100.0 *. (on_s -. off_s) /. off_s)
    spans counts;
  Printf.printf
    "  null-backend overhead     %8.4f %%   (%d gated calls x measured per-call cost; target < 3 %%)%s\n\n"
    est_pct (spans + counts)
    (if est_pct < 3.0 then "  OK" else "  EXCEEDED");
  (* --- the net path: one loopback shard, untraced vs traced, gate off --- *)
  let m = 2000 and net_rate = 4000.0 and net_trials = 3 in
  let fd, port =
    match Net.Server.listen ~port:0 () with
    | Ok v -> v
    | Error e -> failwith ("obs net: listen: " ^ e)
  in
  let cluster = [| { Net.Node.host = "127.0.0.1"; port } |] in
  let node =
    let setup reg =
      if Registry.find reg "general" = None then
        match Registry.register reg ~name:"general" overlay with
        | Ok _ -> ()
        | Error e -> failwith ("obs net: register: " ^ e)
    in
    match Net.Node.init ~setup (Net.Node.default_config ~cluster ~me:0) with
    | Ok n -> n
    | Error e -> failwith ("obs net: " ^ e)
  in
  let server = Net.Server.start ~node ~fd () in
  let spec =
    Trace.spec ~seed:7 ~requests:m ~users:6 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ] ()
  in
  let untraced =
    Trace.generate spec
    |> List.map (fun (r : Service.request) ->
           {
             Net.Wire.id = r.id;
             user = r.user;
             tenant = r.tenant;
             overlay = r.overlay;
             payload =
               (match r.payload with
               | Service.Kernel k -> Net.Wire.Kernel k
               | Service.Source src -> Net.Wire.Source src);
             tuned = r.tuned;
             trace = "";
             parent_span = 0;
           })
    |> Array.of_list
  in
  let trace_rng = Rng.of_string "obs-bench-net-trace" in
  let traced =
    Array.map
      (fun r -> { r with Net.Wire.trace = Obs.Span.fresh_trace trace_rng })
      untraced
  in
  let net_loop requests () =
    let summary =
      Net.Load_gen.run
        {
          Net.Load_gen.cluster;
          vnodes = Net.Shard_map.default_vnodes;
          requests;
          rate = net_rate;
          timeout_s = (float_of_int m /. net_rate) +. 120.0;
          misroute_every = None;
        }
    in
    if summary.Net.Load_gen.completed <> m || summary.Net.Load_gen.failed <> 0
    then
      failwith
        (Printf.sprintf "obs net: %d/%d completed, %d failed"
           summary.Net.Load_gen.completed m summary.Net.Load_gen.failed)
  in
  let median_net requests =
    let samples =
      List.init net_trials (fun _ ->
          let t0 = Unix.gettimeofday () in
          net_loop requests ();
          Unix.gettimeofday () -. t0)
    in
    Stats.median samples
  in
  net_loop untraced () (* warm the schedule cache first *);
  let net_off_s = median_net untraced in
  let net_traced_s = median_net traced in
  Net.Server.stop server;
  Net.Node.shutdown node;
  (* per traced request, gate off: two ungated with_trace hops (server
     dispatch, service process); the client-side hop is itself gated *)
  let net_est_pct =
    100.0 *. (float_of_int m *. 2.0 *. with_trace_s) /. net_off_s
  in
  Printf.printf
    "net path, %d requests at %.0f req/s over one loopback shard (median of \
     %d):\n"
    m net_rate net_trials;
  Printf.printf "  untraced                  %8.2f ms\n" (net_off_s *. 1000.0);
  Printf.printf "  traced (gate off)         %8.2f ms   (%+.2f %% measured)\n"
    (net_traced_s *. 1000.0)
    (100.0 *. (net_traced_s -. net_off_s) /. net_off_s);
  Printf.printf
    "  null-trace overhead       %8.4f %%   (2 with_trace hops x %d requests; \
     target < 3 %%)%s\n\n"
    net_est_pct m
    (if net_est_pct < 3.0 then "  OK" else "  EXCEEDED");
  {
    Bench.metrics =
      [
        ("incr_ns", incr_s *. 1e9);
        ("span_ns", span_s *. 1e9);
        ("with_trace_ns", with_trace_s *. 1e9);
        ("compile_loop_off_ms", off_s *. 1000.0);
        ("compile_loop_on_ms", on_s *. 1000.0);
        ("null_overhead_pct", est_pct);
        ("spans_per_loop", float_of_int spans);
        ("counter_bumps_per_loop", float_of_int counts);
        ("net_untraced_ms", net_off_s *. 1000.0);
        ("net_traced_ms", net_traced_s *. 1000.0);
        ("net_null_overhead_pct", net_est_pct);
      ];
  }
