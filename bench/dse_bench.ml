(* bench dse: the island-model DSE scaling scenario.

   Sweeps island counts over one workload suite at a fixed TOTAL iteration
   budget and reports, per count, the modeled DSE time (the paper-scale
   clock: a parallel run costs the slowest island, so n islands divide the
   modeled hours by ~n), the best objective, and whether the parallel run
   matched or beat the sequential explorer it anchors.

   Usage: main.exe dse [--islands N[,N...]] [--iterations N] [--seed N]
                       [--suite dsp|machsuite|vision]
   Island count 1 (the sequential baseline) is always included. *)

open Overgen_workload
module Dse = Overgen_dse.Dse

let parse_args args =
  let islands = ref [ 2; 4 ] in
  let iterations = ref 200 in
  let seed = ref Dse.default_config.seed in
  let suite = ref Suite.Dsp in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let int_of what v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ -> bad "dse: %s expects a positive integer, got %S" what v
  in
  let rec go = function
    | [] -> ()
    | "--islands" :: v :: rest ->
      islands := List.map (int_of "--islands") (String.split_on_char ',' v);
      go rest
    | "--iterations" :: v :: rest ->
      iterations := int_of "--iterations" v;
      go rest
    | "--seed" :: v :: rest ->
      seed := int_of "--seed" v;
      go rest
    | "--suite" :: v :: rest ->
      (match List.find_opt (fun s -> Suite.to_string s = v) Suite.all with
      | Some s -> suite := s
      | None -> bad "dse: unknown suite %S" v);
      go rest
    | arg :: _ ->
      bad "dse: unknown argument %S (--islands --iterations --seed --suite)" arg
  in
  go args;
  let counts = List.sort_uniq compare (1 :: !islands) in
  (counts, !iterations, !seed, !suite)

let run args =
  let counts, iterations, seed, suite = parse_args args in
  Exp_common.header
    (Printf.sprintf
       "bench dse: island scaling on [%s], %d total iterations, seed %d"
       (Suite.to_string suite) iterations seed);
  let model = Exp_common.model () in
  let apps = Dse.compile_apps ~tuned:false (Kernels.of_suite suite) in
  let explore n =
    let config = { Dse.default_config with seed; iterations; islands = n } in
    Dse.explore ~config ~model apps
  in
  let base = explore 1 in
  Printf.printf "%8s %14s %12s %10s %10s  %s\n" "islands" "modeled (h)"
    "speedup" "objective" "parity" "wall (s)";
  let metrics = ref [] in
  let row n (r : Dse.result) =
    let speedup = base.modeled_hours /. r.modeled_hours in
    let parity = r.best.objective >= base.best.objective -. 1e-9 in
    Printf.printf "%8d %14.2f %11.2fx %10.1f %10s  %.2f\n" n r.modeled_hours
      speedup r.best.objective
      (if parity then "ok" else "worse")
      r.wall_seconds;
    let slug = Printf.sprintf "islands%d" n in
    metrics :=
      !metrics
      @ [
          (slug ^ "_modeled_hours", r.modeled_hours);
          (slug ^ "_speedup_x", speedup);
          (slug ^ "_objective_ipc", r.best.objective);
          (slug ^ "_incremental", float_of_int r.stats.incremental);
          (slug ^ "_parity", if parity then 1.0 else 0.0);
        ];
    (speedup, parity)
  in
  ignore (row 1 base);
  let results = List.map (fun n -> (n, row n (explore n)))
      (List.filter (fun n -> n > 1) counts)
  in
  List.iter
    (fun (n, (speedup, parity)) ->
      if speedup < float_of_int n /. 2.0 then
        Printf.printf
          "note: %d islands gave %.2fx modeled speedup (< %d/2)\n" n speedup n;
      if not parity then
        Printf.printf
          "note: %d islands ended below the sequential objective\n" n)
    results;
  { Bench.metrics = !metrics }
