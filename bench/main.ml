(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VIII).  Run with no argument for the full set, or pass
   experiment names: table1..table4, fig13..fig20, service, store, obs, micro.
   Arguments after an
   experiment name are handed to that experiment, e.g.
   `main.exe dse --islands 2,4 --iterations 200`. *)

let no_args f (_ : string list) = f ()

let experiments =
  [
    ("table1", no_args Tables.table1);
    ("table2", no_args Tables.table2);
    ("table3", no_args Tables.table3);
    ("table4", no_args Tables.table4);
    ("fig13", no_args Figures.fig13);
    ("fig14", no_args Figures.fig14);
    ("fig15", no_args Figures.fig15);
    ("fig16", no_args Figures.fig16);
    ("fig17", no_args Figures2.fig17);
    ("fig18", no_args Figures2.fig18);
    ("fig19", no_args Figures2.fig19);
    ("fig20", no_args Figures2.fig20);
    ("ablation", no_args Ablation.run);
    ("extensions", no_args Extensions.run);
    ("service", no_args Service_bench.run);
    ("store", no_args Store_bench.run);
    ("fault", no_args Fault_bench.run);
    ("obs", no_args Obs_bench.run);
    ("dse", Dse_bench.run);
    ("micro", no_args Micro.run);
    ("net", Net_bench.run);
  ]

(* Entries reachable by name but excluded from the no-argument full run:
   `net-shard` is the child-process entry the net bench spawns — it
   serves until SIGTERM and never returns on its own. *)
let hidden = [ ("net-shard", Net_bench.shard) ]

(* Group the command line into (experiment, its-arguments) runs: each
   experiment name starts a run and collects the arguments up to the next
   experiment name. *)
let group args =
  let runs =
    List.fold_left
      (fun runs arg ->
        match List.assoc_opt arg (experiments @ hidden) with
        | Some f -> (arg, f, ref []) :: runs
        | None -> (
          match runs with
          | (_, _, extra) :: _ ->
            extra := arg :: !extra;
            runs
          | [] ->
            Printf.eprintf "unknown experiment %s; available: %s\n" arg
              (String.concat " " (List.map (fun (n, _) -> n) experiments));
            exit 1))
      [] args
  in
  List.rev_map (fun (name, f, extra) -> (name, f, List.rev !extra)) runs

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match args with
    | [] -> List.map (fun (name, f) -> (name, f, [])) experiments
    | args -> group args
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f, extra) ->
      let t = Unix.gettimeofday () in
      f extra;
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    to_run;
  Printf.printf "\nAll experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0)
