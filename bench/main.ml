(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VIII).  Run with no argument for the full set, or pass
   scenario names; arguments after a name are handed to that scenario, e.g.
   `main.exe dse --islands 2,4 --iterations 200`.

   Every scenario is a {!Bench.scenario} in the registry below.  Scenarios
   that return metrics have them written to BENCH_<name>.json through the one
   shared emitter; `main.exe regress` diffs those files against the
   committed baselines in bench/baselines/ (see bench/regress.ml), and
   `main.exe list` prints the registry. *)

let sc name synopsis run = { Bench.name; synopsis; run }

(* Legacy table/figure drivers: console output only, no metric document. *)
let plain name synopsis f =
  sc name synopsis (fun (_ : string list) ->
      f ();
      Bench.no_metrics)

let scenarios =
  [
    plain "table1" "Table I: framework vs paper component inventory" Tables.table1;
    plain "table2" "Table II: per-kernel compile statistics" Tables.table2;
    plain "table3" "Table III: generated overlay architectures" Tables.table3;
    plain "table4" "Table IV: FPGA resource/frequency summary" Tables.table4;
    plain "fig13" "Figure 13: per-kernel speedup vs soft cores" Figures.fig13;
    plain "fig14" "Figure 14: compile time vs HLS" Figures.fig14;
    plain "fig15" "Figure 15: modeled DSE trajectory" Figures.fig15;
    plain "fig16" "Figure 16: predicted vs synthesized resources" Figures.fig16;
    plain "fig17" "Figure 17: schedule repair under mutation" Figures2.fig17;
    plain "fig18" "Figure 18: cross-suite generality matrix" Figures2.fig18;
    plain "fig19" "Figure 19: DRAM-channel sensitivity" Figures2.fig19;
    plain "fig20" "Figure 20: schedule-preserving DSE ablation" Figures2.fig20;
    plain "ablation" "feature ablation sweep" Ablation.run;
    plain "extensions" "beyond-paper extension experiments" Extensions.run;
    sc "service" "compile service under multi-user traffic"
      (fun _ -> Service_bench.run ());
    sc "store" "durable artifact store: log, restart, DSE resume"
      (fun _ -> Store_bench.run ());
    sc "fault" "service replay under seeded fault injection"
      (fun _ -> Fault_bench.run ());
    sc "obs" "observability overhead of the gated primitives"
      (fun _ -> Obs_bench.run ());
    sc "dse" "island-model DSE scaling sweep" Dse_bench.run;
    sc "micro" "bechamel micro-benchmarks of the hot paths"
      (fun _ -> Micro.run ());
    sc "net" "sharded network tier under open-loop socket load" Net_bench.run;
    sc "frontend" "source frontend parse throughput + fuzz pipeline"
      (fun _ -> Frontend_bench.run ());
    sc "fleet" "multi-tenant weighted-fair admission + fleet manager"
      (fun _ -> Fleet_bench.run ());
  ]

(* Reachable by name but excluded from the no-argument full run:
   `net-shard` is the child-process entry the net bench spawns — it
   serves until SIGTERM and never returns on its own. *)
let hidden =
  [
    sc "net-shard" "(internal) net-bench shard child process" (fun args ->
        (* serves until SIGTERM; [shard] exits the process itself *)
        Net_bench.shard args);
  ]

let list_scenarios () =
  Printf.printf "scenarios (main.exe <name> [args], no argument runs all):\n";
  List.iter
    (fun (s : Bench.scenario) -> Printf.printf "  %-12s %s\n" s.name s.synopsis)
    scenarios;
  Printf.printf "  %-12s %s\n" "regress"
    "diff BENCH_*.json against bench/baselines/ (--tolerance F)"

(* Group the command line into (scenario, its-arguments) runs: each
   scenario name starts a run and collects the arguments up to the next
   scenario name. *)
let group args =
  let all = scenarios @ hidden in
  let runs =
    List.fold_left
      (fun runs arg ->
        match List.find_opt (fun (s : Bench.scenario) -> s.name = arg) all with
        | Some s -> (s, ref []) :: runs
        | None -> (
          match runs with
          | (_, extra) :: _ ->
            extra := arg :: !extra;
            runs
          | [] ->
            Printf.eprintf "unknown scenario %s; available: %s regress\n" arg
              (String.concat " "
                 (List.map (fun (s : Bench.scenario) -> s.name) scenarios));
            exit 1))
      [] args
  in
  List.rev_map (fun (s, extra) -> (s, List.rev !extra)) runs

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | "regress" :: rest -> exit (Regress.main rest)
  | "list" :: _ -> list_scenarios ()
  | _ ->
    let to_run =
      match args with
      | [] -> List.map (fun s -> (s, [])) scenarios
      | args -> group args
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun ((s : Bench.scenario), extra) ->
        let t = Unix.gettimeofday () in
        let result = s.run extra in
        (match result.Bench.metrics with
        | [] -> ()
        | metrics ->
          let path =
            Overgen_obs.Export.write_bench_json ~scenario:s.name metrics
          in
          Printf.printf "  wrote %s\n" path);
        Printf.printf "[%s done in %.1fs]\n%!" s.name
          (Unix.gettimeofday () -. t))
      to_run;
    Printf.printf "\nAll scenarios completed in %.1fs\n"
      (Unix.gettimeofday () -. t0)
