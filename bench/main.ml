(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VIII).  Run with no argument for the full set, or pass
   experiment names: table1..table4, fig13..fig20, micro. *)

let experiments =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("fig13", Figures.fig13);
    ("fig14", Figures.fig14);
    ("fig15", Figures.fig15);
    ("fig16", Figures.fig16);
    ("fig17", Figures2.fig17);
    ("fig18", Figures2.fig18);
    ("fig19", Figures2.fig19);
    ("fig20", Figures2.fig20);
    ("ablation", Ablation.run);
    ("extensions", Extensions.run);
    ("service", Service_bench.run);
    ("micro", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match args with
    | [] -> experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" n
              (String.concat " " (List.map fst experiments));
            exit 1)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    to_run;
  Printf.printf "\nAll experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0)
