(* The shared scenario interface of the bench harness: every scenario is a
   (name, synopsis, run) triple, and [run] returns its machine-readable
   metrics instead of writing files itself.  The runner in main.ml emits
   every non-empty metric set through one
   {!Overgen_obs.Export.write_bench_json} call, so the BENCH_<scenario>.json
   documents share a single schema, escaping, and self-validation path, and
   `bench regress` can diff any of them against a committed baseline. *)

type result = { metrics : (string * float) list }

type scenario = {
  name : string;
  synopsis : string;  (* one line, shown by `bench list` *)
  run : string list -> result;
}

let no_metrics = { metrics = [] }
