(* The networked serving tier under open-loop load: N shard processes
   (spawned from this very binary via the hidden `net-shard` entry), a
   consistent-hash client driving a fixed arrival rate through real
   sockets, and a mid-run SIGKILL + restart of one shard to exercise
   reconnect, retry and durable-store replay.  Emits BENCH_net.json.

   Every request carries a trace id; shard processes write their spans as
   JSONL and dump their flight recorders, and after the run the bench
   merges the span files into one validated Chrome trace, scrapes the
   live ops plane, and cross-checks the scraped counters against the load
   generator's ledger. *)

open Overgen_workload
module Wire = Overgen_net.Wire
module Shard_map = Overgen_net.Shard_map
module Node = Overgen_net.Node
module Server = Overgen_net.Server
module Client = Overgen_net.Client
module Load_gen = Overgen_net.Load_gen
module Registry = Overgen_service.Registry
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace
module Obs = Overgen_obs.Obs
module Rng = Overgen_util.Rng

let general =
  lazy
    (match Overgen.general ~model:(Overgen.train_model ()) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* a shard whose store already holds the overlay skips regeneration — the
   restart path the bench times *)
let setup registry =
  if Registry.find registry "general" = None then
    match Registry.register registry ~name:"general" (Lazy.force general) with
    | Ok _ -> ()
    | Error e -> failwith ("register general: " ^ e)

let parse_cluster s =
  match Node.parse_cluster s with Ok c -> c | Error e -> failwith e

(* ---------------- child process: one shard ---------------- *)

let shard args =
  let me = ref (-1)
  and cluster = ref ""
  and store = ref None
  and trace_out = ref None
  and flight_out = ref None in
  let rec parse = function
    | "--me" :: v :: rest ->
      me := int_of_string v;
      parse rest
    | "--cluster" :: v :: rest ->
      cluster := v;
      parse rest
    | "--store" :: v :: rest ->
      store := Some v;
      parse rest
    | "--trace-out" :: v :: rest ->
      trace_out := Some v;
      parse rest
    | "--flight-out" :: v :: rest ->
      flight_out := Some v;
      parse rest
    | [] -> ()
    | a :: _ -> failwith ("net-shard: unknown argument " ^ a)
  in
  parse args;
  let cluster = parse_cluster !cluster in
  if !me < 0 || !me >= Array.length cluster then
    failwith "net-shard: --me outside --cluster";
  if !trace_out <> None then Obs.enable ();
  let fd, _ =
    match Server.listen ~port:cluster.(!me).Node.port () with
    | Ok v -> v
    | Error e -> failwith e
  in
  let config =
    { (Node.default_config ~cluster ~me:!me) with store_path = !store }
  in
  let node =
    match Node.init ~setup config with Ok n -> n | Error e -> failwith e
  in
  let server = Server.start ?flight_out:!flight_out ~node ~fd () in
  let stop = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  while not !stop do
    (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Node.handle_timeout node
  done;
  Server.stop server;
  Node.shutdown node;
  (* a SIGKILLed shard never reaches this line: its spans die with it,
     and only the restarted instance's file survives *)
  Option.iter
    (fun path ->
      Obs.Export.write_file ~path
        (Obs.Export.to_jsonl ~pid:!me (Obs.Span.spans ())))
    !trace_out;
  exit 0

(* ---------------- parent: the bench ---------------- *)

let pick_free_ports k =
  Array.init k (fun _ ->
      match Server.listen ~port:0 () with
      | Ok (fd, port) ->
        Unix.close fd;
        port
      | Error e -> failwith e)

let span_file dir i = Filename.concat dir (Printf.sprintf "shard-%d.spans.jsonl" i)
let flight_file dir i = Filename.concat dir (Printf.sprintf "shard-%d.flight.jsonl" i)

let spawn_shard ~cluster_s ~store_dir i =
  let store = Filename.concat store_dir (Printf.sprintf "shard-%d.store" i) in
  Unix.create_process Sys.executable_name
    [|
      Sys.executable_name; "net-shard"; "--me"; string_of_int i; "--cluster";
      cluster_s; "--store"; store; "--trace-out"; span_file store_dir i;
      "--flight-out"; flight_file store_dir i;
    |]
    Unix.stdin Unix.stdout Unix.stderr

let wait_ready ~timeout_s (peer : Node.peer) =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    let ready =
      match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
      | Error _ -> false
      | Ok c ->
        let ok =
          match Client.rpc c Wire.Ping with Ok (Wire.Pong _) -> true | _ -> false
        in
        Client.close c;
        ok
    in
    if ready then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.2;
      loop ()
    end
  in
  loop ()

let shard_stats (peer : Node.peer) =
  match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
  | Error e -> Error e
  | Ok c ->
    let r =
      match Client.rpc c Wire.Stats_req with
      | Ok (Wire.Stats { served; warm_loaded; _ }) -> Ok (served, warm_loaded)
      | Ok _ -> Error "unexpected stats reply"
      | Error e -> Error e
    in
    Client.close c;
    r

(* live ops-plane scrapes *)

let shard_rpc (peer : Node.peer) msg =
  match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
  | Error e -> Error e
  | Ok c ->
    let r = Client.rpc c msg in
    Client.close c;
    r

let shard_metrics peer =
  match shard_rpc peer Wire.Metrics_req with
  | Ok (Wire.Metrics_dump { text; _ }) -> text
  | Ok _ -> failwith "unexpected metrics reply"
  | Error e -> failwith ("metrics scrape: " ^ e)

let shard_events peer ~max =
  match shard_rpc peer (Wire.Recent_events_req { max }) with
  | Ok (Wire.Events { events; _ }) -> events
  | Ok _ -> failwith "unexpected events reply"
  | Error e -> failwith ("events scrape: " ^ e)

(* sum every sample of one metric in a Prometheus text exposition
   (metric name followed by a space or a label set) *)
let prom_value text name =
  let total = ref 0.0 and found = ref false in
  List.iter
    (fun line ->
      let nl = String.length name and ll = String.length line in
      if
        ll > nl
        && String.sub line 0 nl = name
        && (line.[nl] = ' ' || line.[nl] = '{')
      then
        match String.rindex_opt line ' ' with
        | Some i -> (
          match float_of_string_opt (String.sub line (i + 1) (ll - i - 1)) with
          | Some v ->
            total := !total +. v;
            found := true
          | None -> ())
        | None -> ())
    (String.split_on_char '\n' text);
  if !found then Some !total else None

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run extra =
  (* defaults match the acceptance scenario: >= 100k requests at a fixed
     arrival rate against 2 shard processes with a mid-run kill+restart *)
  let requests = ref 100_000
  and rate = ref 20_000.0
  and shards = ref 2
  and seed = ref 42
  and kill = ref true in
  let rec parse = function
    | "--smoke" :: rest ->
      requests := 3000;
      rate := 3000.0;
      parse rest
    | "--requests" :: v :: rest ->
      requests := int_of_string v;
      parse rest
    | "--rate" :: v :: rest ->
      rate := float_of_string v;
      parse rest
    | "--shards" :: v :: rest ->
      shards := int_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--no-kill" :: rest ->
      kill := false;
      parse rest
    | [] -> ()
    | a :: _ -> failwith ("net: unknown argument " ^ a)
  in
  parse extra;
  let n = !requests and rate = !rate and shards = !shards in
  let kill = !kill && shards >= 2 in
  (* every ~101st request is deliberately misrouted so the server-side
     forward path shows up in the trace; a correctly-routing client
     would never exercise it *)
  let misroute_every = if shards >= 2 then Some 101 else None in
  Exp_common.header
    (Printf.sprintf
       "Networked serving tier: %d requests at %.0f req/s over %d shard \
        process%s%s"
       n rate shards
       (if shards = 1 then "" else "es")
       (if kill then " (kill+restart shard 1 mid-run)" else ""));
  (* the parent is the client process: record client_send spans here *)
  Obs.enable ();
  Obs.Span.reset ();
  let metrics = ref [] in
  let store_dir = Filename.temp_dir "overgen-net-bench" "" in
  let ports = pick_free_ports shards in
  let cluster =
    Array.map (fun port -> { Node.host = "127.0.0.1"; port }) ports
  in
  let cluster_s =
    String.concat ","
      (Array.to_list (Array.map (Printf.sprintf "127.0.0.1:%d") ports))
  in
  let pids = Array.init shards (spawn_shard ~cluster_s ~store_dir) in
  let teardown () =
    Array.iter (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ()) pids;
    Array.iter (fun pid -> try ignore (Unix.waitpid [] pid) with _ -> ()) pids
  in
  (try
     Printf.printf "  shards on ports [%s], stores in %s\n%!"
       (String.concat "; " (Array.to_list (Array.map string_of_int ports)))
       store_dir;
     Array.iteri
       (fun i peer ->
         if not (wait_ready ~timeout_s:240.0 peer) then
           failwith (Printf.sprintf "shard %d never became ready" i))
       cluster;
     Printf.printf "  all shards ready\n%!";
     let spec =
       Trace.spec ~seed:!seed ~requests:n ~users:12 ~working_set:3
         ~overlays:[ ("general", Kernels.all) ] ()
     in
     let trace_rng = Rng.of_string (Printf.sprintf "net-bench-trace:%d" !seed) in
     let wire_requests =
       Trace.generate spec
       |> List.map (fun (r : Service.request) ->
              {
                Wire.id = r.id;
                user = r.user;
                tenant = r.tenant;
                overlay = r.overlay;
                payload =
                  (match r.payload with
                  | Service.Kernel k -> Wire.Kernel k
                  | Service.Source src -> Wire.Source src);
                tuned = r.tuned;
                trace = Obs.Span.fresh_trace trace_rng;
                parent_span = 0;
              })
       |> Array.of_list
     in
     Printf.printf "  trace: %d requests, %d distinct (overlay, kernel) keys\n%!"
       n (Trace.distinct_keys spec);
     let chaos =
       if not kill then None
       else
         Some
           (Thread.create
              (fun () ->
                let kill_at = float_of_int n /. 3.0 /. rate in
                let restart_at = 2.0 *. kill_at in
                Unix.sleepf kill_at;
                Printf.printf "  [chaos] SIGKILL shard 1 (pid %d)\n%!" pids.(1);
                Unix.kill pids.(1) Sys.sigkill;
                ignore (Unix.waitpid [] pids.(1));
                Unix.sleepf (restart_at -. kill_at);
                Printf.printf "  [chaos] restarting shard 1 on port %d\n%!"
                  ports.(1);
                pids.(1) <- spawn_shard ~cluster_s ~store_dir 1)
              ())
     in
     let cfg =
       {
         Load_gen.cluster;
         vnodes = Shard_map.default_vnodes;
         requests = wire_requests;
         rate;
         timeout_s = (float_of_int n /. rate) +. 240.0;
         misroute_every;
       }
     in
     let summary = Load_gen.run cfg in
     Option.iter Thread.join chaos;
     print_string (Load_gen.report summary);
     let warm_loaded =
       if not kill then 0
       else
         match shard_stats cluster.(1) with
         | Ok (served, warm_loaded) ->
           Printf.printf
             "  restarted shard 1: served %d, warm-loaded %d cache entries \
              from its store\n"
             served warm_loaded;
           warm_loaded
         | Error e ->
           failwith ("restarted shard 1 unreachable after the run: " ^ e)
     in
     let failures = ref [] in
     if summary.Load_gen.completed <> n then
       failures :=
         Printf.sprintf "only %d/%d requests completed" summary.Load_gen.completed
           n
         :: !failures;
     if summary.Load_gen.failed <> 0 then
       failures :=
         Printf.sprintf "%d requests failed" summary.Load_gen.failed :: !failures;
     if kill && warm_loaded <= 0 then
       failures :=
         "restarted shard replayed nothing from its durable store" :: !failures;
     (* --- live ops plane: scrape shard 0 (never killed) and cross-check
        its counters against the load generator's ledger.  Shard 0 must
        have received every completed request it owns (forwards included),
        and can't have received more than everything the client ever sent
        plus what peers forwarded in. *)
     let mtext = shard_metrics cluster.(0) in
     let prom name =
       match prom_value mtext name with
       | Some v -> v
       | None ->
         failures := Printf.sprintf "shard 0 metrics lack %s" name :: !failures;
         0.0
     in
     let req_total0 = prom "overgen_net_requests_total" in
     let forwards0 = prom "overgen_net_forwards_total" in
     if not (contains mtext "overgen_net_request_ms_bucket") then
       failures := "shard 0 metrics lack the request_ms histogram" :: !failures;
     let map = Shard_map.Default.make ~vnodes:Shard_map.default_vnodes ~shards () in
     let owner_of (r : Wire.request) =
       Shard_map.Default.owner map
         (Wire.route_key ~overlay:r.overlay ~payload:r.payload ~tuned:r.tuned)
     in
     let owned0 = ref 0 and mis_to0 = ref 0 in
     Array.iteri
       (fun i r ->
         let owner = owner_of r in
         if owner = 0 then incr owned0;
         match misroute_every with
         | Some k when i mod k = 0 && (owner + 1) mod shards = 0 -> incr mis_to0
         | _ -> ())
       wire_requests;
     Printf.printf
       "  ops plane: shard 0 requests_total %.0f (owns %d of the trace, %d \
        misrouted to it), forwards_total %.0f\n"
       req_total0 !owned0 !mis_to0 forwards0;
     if summary.Load_gen.completed = n && int_of_float req_total0 < !owned0 then
       failures :=
         Printf.sprintf
           "ledger mismatch: shard 0 counted %.0f requests but owns %d \
            completed ones"
           req_total0 !owned0
         :: !failures;
     let upper =
       n + summary.Load_gen.resends + summary.Load_gen.redirects + !mis_to0
     in
     if int_of_float req_total0 > upper then
       failures :=
         Printf.sprintf
           "ledger mismatch: shard 0 counted %.0f requests, more than the \
            client could have sent it (bound %d)"
           req_total0 upper
         :: !failures;
     if !mis_to0 > 0 && forwards0 < 1.0 then
       failures :=
         Printf.sprintf
           "%d requests were misrouted to shard 0 yet it forwarded none"
           !mis_to0
         :: !failures;
     (* the restarted shard's flight recorder must still hold its pinned
        store-replay milestone, queryable over the wire *)
     if kill then begin
       (* ask for more than ring capacity + pin cap: the pinned replay
          milestone is the restarted shard's oldest event, and [max]
          keeps the newest *)
       let events = shard_events cluster.(1) ~max:5000 in
       if not (List.exists (fun e -> contains e "store_replay") events) then
         failures :=
           "restarted shard 1's recent events lack store_replay" :: !failures
     end;
     (match !failures with
     | [] -> ()
     | fs ->
       teardown ();
       List.iter (Printf.eprintf "  FAILED: %s\n") fs;
       exit 1);
     metrics :=
       Load_gen.to_metrics cfg summary
       @ [
           ("warm_loaded", float_of_int warm_loaded);
           ("killed_and_restarted", if kill then 1.0 else 0.0);
           ("forwards", forwards0);
         ]
   with e ->
     teardown ();
     raise e);
  teardown ();
  (* --- after graceful teardown every surviving shard has written its
     span file and flight dump: stitch the distributed trace together and
     check it end to end *)
  let failures = ref [] in
  let module SS = Set.Make (String) in
  let client_spans =
    List.map (fun s -> (100, s)) (Obs.Span.spans ())
  in
  let shard_spans =
    List.concat
      (List.init shards (fun i ->
           let path = span_file store_dir i in
           if not (Sys.file_exists path) then begin
             failures :=
               Printf.sprintf "shard %d wrote no span file" i :: !failures;
             []
           end
           else
             match Obs.Export.parse_jsonl (read_file path) with
             | Ok spans -> spans
             | Error e ->
               failures := Printf.sprintf "%s: %s" path e :: !failures;
               []))
  in
  let all_spans = client_spans @ shard_spans in
  (match Obs.Export.orphans all_spans with
  | [] -> ()
  | orphans ->
    failures :=
      Printf.sprintf "merged trace has %d orphan parent references"
        (List.length orphans)
      :: !failures);
  let names =
    (100, "client")
    :: List.init shards (fun i -> (i, Printf.sprintf "shard %d" i))
  in
  let doc = Obs.Export.merge_chrome ~names all_spans in
  (match Obs.Export.validate_json doc with
  | Ok () -> ()
  | Error e ->
    failures := Printf.sprintf "merged trace is not valid JSON: %s" e :: !failures);
  let merged_path = Filename.concat store_dir "trace-merged.json" in
  Obs.Export.write_file ~path:merged_path doc;
  (* distributed correlation: every trace id a shard server saw must be
     one this client minted, and the two timelines must actually overlap *)
  let span_traces spans pred =
    List.fold_left
      (fun acc (_, (s : Obs.Span.span)) ->
        if s.Obs.Span.trace <> "" && pred s then SS.add s.Obs.Span.trace acc
        else acc)
      SS.empty spans
  in
  let client_traces =
    span_traces client_spans (fun s -> s.Obs.Span.name = "client_send")
  in
  let server_traces = span_traces shard_spans (fun _ -> true) in
  if SS.is_empty client_traces then
    failures := "client recorded no client_send spans" :: !failures;
  if SS.is_empty server_traces then
    failures := "shards recorded no spans with a trace id" :: !failures;
  if not (SS.subset server_traces client_traces) then
    failures :=
      Printf.sprintf
        "%d server-side trace ids were never minted by the client"
        (SS.cardinal (SS.diff server_traces client_traces))
      :: !failures;
  Printf.printf
    "  trace: merged %d spans (%d client, %d shard-side) into %s; %d trace \
     ids cross the wire\n"
    (List.length all_spans) (List.length client_spans)
    (List.length shard_spans) merged_path
    (SS.cardinal (SS.inter server_traces client_traces));
  (* flight dumps survive the processes that wrote them *)
  (if kill then
     let path = flight_file store_dir 1 in
     if not (Sys.file_exists path) then
       failures := "restarted shard 1 wrote no flight dump" :: !failures
     else
       let dump = read_file path in
       if not (contains dump "store_replay") then
         failures := "shard 1 flight dump lacks store_replay" :: !failures;
       if not (contains dump "drain_begin" && contains dump "drain_end") then
         failures := "shard 1 flight dump lacks drain events" :: !failures);
  (match !failures with
  | [] -> ()
  | fs ->
    List.iter (Printf.eprintf "  FAILED: %s\n") fs;
    exit 1);
  metrics :=
    !metrics
    @ [
        ("merged_spans", float_of_int (List.length all_spans));
        ("wire_traces", float_of_int (SS.cardinal server_traces));
      ];
  { Bench.metrics = !metrics }
