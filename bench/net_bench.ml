(* The networked serving tier under open-loop load: N shard processes
   (spawned from this very binary via the hidden `net-shard` entry), a
   consistent-hash client driving a fixed arrival rate through real
   sockets, and a mid-run SIGKILL + restart of one shard to exercise
   reconnect, retry and durable-store replay.  Emits BENCH_net.json. *)

open Overgen_workload
module Wire = Overgen_net.Wire
module Shard_map = Overgen_net.Shard_map
module Node = Overgen_net.Node
module Server = Overgen_net.Server
module Client = Overgen_net.Client
module Load_gen = Overgen_net.Load_gen
module Registry = Overgen_service.Registry
module Service = Overgen_service.Service
module Trace = Overgen_service.Trace

let general =
  lazy
    (match Overgen.general ~model:(Overgen.train_model ()) Kernels.all with
    | Ok o -> o
    | Error e -> failwith ("general overlay: " ^ e))

(* a shard whose store already holds the overlay skips regeneration — the
   restart path the bench times *)
let setup registry =
  if Registry.find registry "general" = None then
    match Registry.register registry ~name:"general" (Lazy.force general) with
    | Ok _ -> ()
    | Error e -> failwith ("register general: " ^ e)

let parse_cluster s =
  match Node.parse_cluster s with Ok c -> c | Error e -> failwith e

(* ---------------- child process: one shard ---------------- *)

let shard args =
  let me = ref (-1) and cluster = ref "" and store = ref None in
  let rec parse = function
    | "--me" :: v :: rest ->
      me := int_of_string v;
      parse rest
    | "--cluster" :: v :: rest ->
      cluster := v;
      parse rest
    | "--store" :: v :: rest ->
      store := Some v;
      parse rest
    | [] -> ()
    | a :: _ -> failwith ("net-shard: unknown argument " ^ a)
  in
  parse args;
  let cluster = parse_cluster !cluster in
  if !me < 0 || !me >= Array.length cluster then
    failwith "net-shard: --me outside --cluster";
  let fd, _ =
    match Server.listen ~port:cluster.(!me).Node.port () with
    | Ok v -> v
    | Error e -> failwith e
  in
  let config =
    { (Node.default_config ~cluster ~me:!me) with store_path = !store }
  in
  let node =
    match Node.init ~setup config with Ok n -> n | Error e -> failwith e
  in
  let server = Server.start ~node ~fd in
  let stop = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  while not !stop do
    (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Node.handle_timeout node
  done;
  Server.stop server;
  Node.shutdown node;
  exit 0

(* ---------------- parent: the bench ---------------- *)

let pick_free_ports k =
  Array.init k (fun _ ->
      match Server.listen ~port:0 () with
      | Ok (fd, port) ->
        Unix.close fd;
        port
      | Error e -> failwith e)

let spawn_shard ~cluster_s ~store_dir i =
  let store = Filename.concat store_dir (Printf.sprintf "shard-%d.store" i) in
  Unix.create_process Sys.executable_name
    [|
      Sys.executable_name; "net-shard"; "--me"; string_of_int i; "--cluster";
      cluster_s; "--store"; store;
    |]
    Unix.stdin Unix.stdout Unix.stderr

let wait_ready ~timeout_s (peer : Node.peer) =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    let ready =
      match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
      | Error _ -> false
      | Ok c ->
        let ok =
          match Client.rpc c Wire.Ping with Ok (Wire.Pong _) -> true | _ -> false
        in
        Client.close c;
        ok
    in
    if ready then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.2;
      loop ()
    end
  in
  loop ()

let shard_stats (peer : Node.peer) =
  match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
  | Error e -> Error e
  | Ok c ->
    let r =
      match Client.rpc c Wire.Stats_req with
      | Ok (Wire.Stats { served; warm_loaded; _ }) -> Ok (served, warm_loaded)
      | Ok _ -> Error "unexpected stats reply"
      | Error e -> Error e
    in
    Client.close c;
    r

let run extra =
  (* defaults match the acceptance scenario: >= 100k requests at a fixed
     arrival rate against 2 shard processes with a mid-run kill+restart *)
  let requests = ref 100_000
  and rate = ref 20_000.0
  and shards = ref 2
  and seed = ref 42
  and kill = ref true in
  let rec parse = function
    | "--smoke" :: rest ->
      requests := 3000;
      rate := 3000.0;
      parse rest
    | "--requests" :: v :: rest ->
      requests := int_of_string v;
      parse rest
    | "--rate" :: v :: rest ->
      rate := float_of_string v;
      parse rest
    | "--shards" :: v :: rest ->
      shards := int_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--no-kill" :: rest ->
      kill := false;
      parse rest
    | [] -> ()
    | a :: _ -> failwith ("net: unknown argument " ^ a)
  in
  parse extra;
  let n = !requests and rate = !rate and shards = !shards in
  let kill = !kill && shards >= 2 in
  Exp_common.header
    (Printf.sprintf
       "Networked serving tier: %d requests at %.0f req/s over %d shard \
        process%s%s"
       n rate shards
       (if shards = 1 then "" else "es")
       (if kill then " (kill+restart shard 1 mid-run)" else ""));
  let metrics = ref [] in
  let store_dir = Filename.temp_dir "overgen-net-bench" "" in
  let ports = pick_free_ports shards in
  let cluster =
    Array.map (fun port -> { Node.host = "127.0.0.1"; port }) ports
  in
  let cluster_s =
    String.concat ","
      (Array.to_list (Array.map (Printf.sprintf "127.0.0.1:%d") ports))
  in
  let pids = Array.init shards (spawn_shard ~cluster_s ~store_dir) in
  let teardown () =
    Array.iter (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ()) pids;
    Array.iter (fun pid -> try ignore (Unix.waitpid [] pid) with _ -> ()) pids
  in
  (try
     Printf.printf "  shards on ports [%s], stores in %s\n%!"
       (String.concat "; " (Array.to_list (Array.map string_of_int ports)))
       store_dir;
     Array.iteri
       (fun i peer ->
         if not (wait_ready ~timeout_s:240.0 peer) then
           failwith (Printf.sprintf "shard %d never became ready" i))
       cluster;
     Printf.printf "  all shards ready\n%!";
     let spec =
       Trace.spec ~seed:!seed ~requests:n ~users:12 ~working_set:3
         ~overlays:[ ("general", Kernels.all) ] ()
     in
     let wire_requests =
       Trace.generate spec
       |> List.map (fun (r : Service.request) ->
              {
                Wire.id = r.id;
                user = r.user;
                overlay = r.overlay;
                kernel = r.kernel;
                tuned = r.tuned;
              })
       |> Array.of_list
     in
     Printf.printf "  trace: %d requests, %d distinct (overlay, kernel) keys\n%!"
       n (Trace.distinct_keys spec);
     let chaos =
       if not kill then None
       else
         Some
           (Thread.create
              (fun () ->
                let kill_at = float_of_int n /. 3.0 /. rate in
                let restart_at = 2.0 *. kill_at in
                Unix.sleepf kill_at;
                Printf.printf "  [chaos] SIGKILL shard 1 (pid %d)\n%!" pids.(1);
                Unix.kill pids.(1) Sys.sigkill;
                ignore (Unix.waitpid [] pids.(1));
                Unix.sleepf (restart_at -. kill_at);
                Printf.printf "  [chaos] restarting shard 1 on port %d\n%!"
                  ports.(1);
                pids.(1) <- spawn_shard ~cluster_s ~store_dir 1)
              ())
     in
     let cfg =
       {
         Load_gen.cluster;
         vnodes = Shard_map.default_vnodes;
         requests = wire_requests;
         rate;
         timeout_s = (float_of_int n /. rate) +. 240.0;
       }
     in
     let summary = Load_gen.run cfg in
     Option.iter Thread.join chaos;
     print_string (Load_gen.report summary);
     let warm_loaded =
       if not kill then 0
       else
         match shard_stats cluster.(1) with
         | Ok (served, warm_loaded) ->
           Printf.printf
             "  restarted shard 1: served %d, warm-loaded %d cache entries \
              from its store\n"
             served warm_loaded;
           warm_loaded
         | Error e ->
           failwith ("restarted shard 1 unreachable after the run: " ^ e)
     in
     let failures = ref [] in
     if summary.Load_gen.completed <> n then
       failures :=
         Printf.sprintf "only %d/%d requests completed" summary.Load_gen.completed
           n
         :: !failures;
     if summary.Load_gen.failed <> 0 then
       failures :=
         Printf.sprintf "%d requests failed" summary.Load_gen.failed :: !failures;
     if kill && warm_loaded <= 0 then
       failures :=
         "restarted shard replayed nothing from its durable store" :: !failures;
     (match !failures with
     | [] -> ()
     | fs ->
       teardown ();
       List.iter (Printf.eprintf "  FAILED: %s\n") fs;
       exit 1);
     metrics :=
       Load_gen.to_metrics cfg summary
       @ [
           ("warm_loaded", float_of_int warm_loaded);
           ("killed_and_restarted", if kill then 1.0 else 0.0);
         ]
   with e ->
     teardown ();
     raise e);
  teardown ();
  { Bench.metrics = !metrics }
