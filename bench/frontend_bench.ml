(* The source frontend under load: parse throughput over the emitted
   suite, the full emit→parse round trip, and the seeded fuzz pipeline
   (generate → emit → parse → compile → schedule → simulate).  Emits
   BENCH_frontend.json; not in the regress default set — the numbers are
   informational until a baseline is captured. *)

open Overgen_workload
module Frontend = Overgen_frontend.Frontend
module Fuzz = Overgen_frontend.Fuzz

let parse_exn src =
  match Frontend.parse src with
  | Ok k -> k
  | Error e -> failwith (Frontend.error_to_string e)

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  Exp_common.header "Source frontend: parse throughput and fuzz pipeline";
  let sources = List.map C_source.emit Kernels.all in
  let total_lines =
    List.fold_left (fun n s -> n + count_lines s) 0 sources
  in
  (* parse throughput: whole suite, repeated to get a stable wall time.
     The cost is dominated by the frontend's exact subscript-bounds
     enumeration over each kernel's full iteration space, not the lexer
     or parser proper — a handful of reps is already stable. *)
  let reps = 5 in
  let (), parse_s =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun s -> ignore (parse_exn s)) sources
        done)
  in
  let parses = reps * List.length sources in
  let parse_per_s = float_of_int parses /. parse_s in
  let lines_per_s = float_of_int (reps * total_lines) /. parse_s in
  Printf.printf "  parse: %d kernels x%d in %.3f s (%.0f parses/s, %.0f lines/s)\n"
    (List.length sources) reps parse_s parse_per_s lines_per_s;
  (* full round trip including emission *)
  let (), rt_s =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun k -> ignore (parse_exn (C_source.emit k))) Kernels.all
        done)
  in
  let rt_per_s = float_of_int parses /. rt_s in
  Printf.printf "  emit+parse round trip: %.0f kernels/s\n" rt_per_s;
  (* the fuzz pipeline end to end, fault-free *)
  let seeds = 150 in
  let summary, fuzz_s = time (fun () -> Fuzz.run ~seeds ~seed:1 ()) in
  Printf.printf "  fuzz: %s\n" (Fuzz.summary_to_string summary);
  Printf.printf "  fuzz wall: %.2f s (%.1f seeds/s)\n" fuzz_s
    (float_of_int seeds /. fuzz_s);
  if not (Fuzz.ok summary) then failwith "frontend bench: fuzz found violations";
  {
    Bench.metrics =
      [
        ("frontend_parse_per_s", parse_per_s);
        ("frontend_parse_lines_per_s", lines_per_s);
        ("frontend_roundtrip_per_s", rt_per_s);
        ("frontend_fuzz_seeds_per_s", float_of_int seeds /. fuzz_s);
        ("frontend_fuzz_scheduled", float_of_int summary.Fuzz.scheduled);
        ( "frontend_fuzz_coverage_pct",
          100.0 *. Overgen_frontend.Gen.Cov.fraction summary.Fuzz.coverage );
      ];
  }
