open Overgen_workload
open Overgen_util
module Dse = Overgen_dse.Dse
module Adg = Overgen_adg.Adg
module Res = Overgen_fpga.Res
module Device = Overgen_fpga.Device
module Oracle = Overgen_fpga.Oracle
module Hls = Overgen_hls.Hls
module System = Overgen_adg.System
module Sys_adg = Overgen_adg.Sys_adg

(* ------------------------------------------------------------------ *)
(* Figure 17: leave-one-out flexibility on MachSuite                   *)
(* ------------------------------------------------------------------ *)

let fig17 () =
  Exp_common.header "Figure 17: Leave-one-out flexibility (MachSuite)";
  let suite = Kernels.of_suite Suite.Machsuite in
  let rows =
    List.filter_map
      (fun (k : Ir.kernel) ->
        let rest = List.filter (fun (x : Ir.kernel) -> x.name <> k.name) suite in
        let loo =
          Exp_common.custom_overlay
            ~key:("loo:" ^ k.name)
            ~seed:(300 + Hashtbl.hash k.name)
            ~iterations:Exp_common.suite_iterations rest
        in
        (* map the held-out workload on the leave-one-out overlay *)
        match Overgen.run loo k with
        | Error e ->
          Printf.printf "%-10s does not map: %s\n" (Exp_common.short k.name) e;
          None
        | Ok r ->
          let on_suite =
            Exp_common.og_report ~tag:"suite-machsuite"
              (Exp_common.suite_overlay Suite.Machsuite) k.name
          in
          let rel_perf = on_suite.wall_ms /. r.wall_ms in
          let hls_compile_s =
            (Exp_common.autodse ~tuned:false k.name).dse_hours *. 3600.0
          in
          (* compare at the paper compiler's scale: their spatial compile
             takes on the order of a second; ours is a simplified
             reimplementation that finishes in milliseconds *)
          let compile_speedup =
            hls_compile_s /. Float.max 1.2 r.compile_seconds
          in
          let reconfig_speedup =
            Overgen.fpga_reflash_ms /. (Overgen.reconfigure_us loo /. 1000.0)
          in
          Some (k.name, rel_perf, compile_speedup, reconfig_speedup))
      suite
  in
  print_endline
    (Render.table
       ~headers:
         [ "Workload"; "Perf vs suite-OG"; "Compile speedup o/ HLS"; "Reconfig speedup" ]
       ~rows:
         (List.map
            (fun (n, p, c, r) ->
              [
                Exp_common.short n;
                Render.pct_cell p;
                Printf.sprintf "%.0fx" c;
                Printf.sprintf "%.0fx" r;
              ])
            rows));
  let gm f = Stats.geomean (List.map f rows) in
  Printf.printf
    "gmean: %.1f%% of suite-OG performance (paper: ~50%%); compilation %.0fx and\n\
     reconfiguration %.0fx faster than the HLS flow (paper: ~10^4x and ~5x10^4x)\n"
    (100.0 *. gm (fun (_, p, _, _) -> p))
    (gm (fun (_, _, c, _) -> c))
    (gm (fun (_, _, _, r) -> r))

(* ------------------------------------------------------------------ *)
(* Figure 18: incremental design optimization                          *)
(* ------------------------------------------------------------------ *)

let fig18 () =
  Exp_common.header
    "Figure 18: Incremental workload addition (MachSuite, LUT/tile and #tiles)";
  let order = [ "stencil-2d"; "gemm"; "stencil-3d"; "ellpack"; "crs" ] in
  let cap = Device.xcvu9p.capacity in
  let rows =
    List.mapi
      (fun i _ ->
        let names = List.filteri (fun j _ -> j <= i) order in
        let kernels = List.map Kernels.find names in
        let o =
          Exp_common.custom_overlay
            ~key:("incr:" ^ String.concat "+" names)
            ~seed:(400 + i) ~iterations:Exp_common.suite_iterations kernels
        in
        let tile = Oracle.accel o.design.sys.adg in
        let lut_per_tile = float_of_int tile.Res.lut /. float_of_int cap.Res.lut in
        let breakdown = Oracle.accel_breakdown o.design.sys.adg in
        (names, o, lut_per_tile, breakdown))
      order
  in
  print_endline
    (Render.table
       ~headers:[ "Workloads"; "LUT/tile"; "#tiles"; "datapath split (pe/n:w/vp)" ]
       ~rows:
         (List.map
            (fun (names, (o : Overgen.overlay), lpt, breakdown) ->
              let pct name =
                match List.assoc_opt name breakdown with
                | Some r -> Render.pct_cell (float_of_int r.Res.lut /. float_of_int cap.Res.lut)
                | None -> "0%"
              in
              [
                "+" ^ Exp_common.short (List.nth names (List.length names - 1));
                Render.pct_cell lpt;
                string_of_int o.design.sys.system.System.tiles;
                Printf.sprintf "%s/%s/%s" (pct "pe") (pct "n/w") (pct "vp");
              ])
            rows));
  (* cost of generality: performance on the first workload, solo vs final *)
  let first = List.hd order in
  let solo = Exp_common.workload_overlay first in
  let all_names, final, _, _ = List.nth rows (List.length rows - 1) in
  ignore all_names;
  let ms_solo = (Exp_common.og_report ~tag:("wl-" ^ first) solo first).wall_ms in
  let ms_final = (Exp_common.og_report ~tag:"incr-final" final first).wall_ms in
  Printf.printf
    "Supporting all five workloads costs %s %.0f%% performance (paper: mean 8%%)\n"
    (Exp_common.short first)
    (100.0 *. (1.0 -. (ms_solo /. ms_final)))

(* ------------------------------------------------------------------ *)
(* Figure 19: DRAM channel scaling                                     *)
(* ------------------------------------------------------------------ *)

let fig19 () =
  Exp_common.header
    "Figure 19: Effect of DRAM channels (speedup over 1 channel, RTL-sim study)";
  let channels = [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun (k : Ir.kernel) ->
        let ad =
          List.map
            (fun ch ->
              Exp_common.ad_ms ~tuned:false k.name
              /. Exp_common.ad_ms ~dram_channels:ch ~tuned:false k.name)
            channels
        in
        let wl = Exp_common.workload_overlay k.name in
        let og =
          List.map
            (fun ch ->
              let sys =
                Sys_adg.with_system wl.design.sys
                  { wl.design.sys.system with System.dram_channels = ch }
              in
              let o = { wl with design = { wl.design with sys } } in
              let r = Exp_common.og_report ~tag:(Printf.sprintf "dram%d-%s" ch k.name) o k.name in
              let base =
                Exp_common.og_report ~tag:(Printf.sprintf "dram1-%s" k.name)
                  { wl with design = { wl.design with sys = Sys_adg.with_system wl.design.sys { wl.design.sys.system with System.dram_channels = 1 } } }
                  k.name
              in
              base.wall_ms /. r.wall_ms)
            channels
        in
        (k.name, ad, og))
      Kernels.all
  in
  print_endline
    (Render.table
       ~headers:[ "Workload"; "ad-1"; "ad-2"; "ad-4"; "og-1"; "og-2"; "og-4" ]
       ~rows:
         (List.map
            (fun (n, ad, og) ->
              Exp_common.short n :: List.map Render.float_cell (ad @ og))
            rows));
  let mean_gain l = Stats.mean (List.map (fun (_, a, _) -> List.nth a 2 -. 1.0) l) in
  let mean_gain_og l = Stats.mean (List.map (fun (_, _, o) -> List.nth o 2 -. 1.0) l) in
  Printf.printf
    "mean 4-channel gain: AutoDSE +%.0f%%, OverGen +%.0f%% (paper: +25%% / +19%% on\n\
     the kernels that benefit)\n"
    (100.0 *. mean_gain rows) (100.0 *. mean_gain_og rows)

(* ------------------------------------------------------------------ *)
(* Figure 20: schedule-preserving transformations                      *)
(* ------------------------------------------------------------------ *)

let fig20 () =
  Exp_common.header
    "Figure 20: DSE convergence with and without schedule-preserving transforms";
  let model = Exp_common.model () in
  let summary = ref [] in
  List.iter
    (fun suite ->
      let kernels = Kernels.of_suite suite in
      let apps = Dse.compile_apps ~tuned:false kernels in
      let run preserve =
        Dse.explore
          ~config:
            {
              Dse.default_config with
              seed = 500 + Hashtbl.hash (Suite.to_string suite);
              iterations = Exp_common.suite_iterations;
              mutation_policy =
                (if preserve then Dse.Schedule_preserving else Dse.Random);
            }
          ~model apps
      in
      let with_sp = run true and without_sp = run false in
      let series (r : Dse.result) =
        List.map (fun (t : Dse.trace_point) -> (t.modeled_hours, t.est_ipc)) r.trace
      in
      print_endline
        (Render.line_chart
           ~title:(Printf.sprintf "[%s] estimated IPC vs DSE time (h)" (Suite.to_string suite))
           ~xlabel:"modeled hours" ~ylabel:"est. IPC"
           [ ("preserved", series with_sp); ("non-preserved", series without_sp) ]);
      Printf.printf
        "%s: preserved %.1f IPC in %.1fh (%d repairs / %d incremental / %d \
         reschedules, %d invalid);\n\
         %s  non-preserved %.1f IPC in %.1fh (%d repairs / %d incremental / %d \
         reschedules, %d invalid)\n"
        (Suite.to_string suite) with_sp.best.objective with_sp.modeled_hours
        with_sp.stats.repaired with_sp.stats.incremental with_sp.stats.rescheduled
        with_sp.stats.invalid
        (String.make (String.length (Suite.to_string suite)) ' ')
        without_sp.best.objective without_sp.modeled_hours without_sp.stats.repaired
        without_sp.stats.incremental without_sp.stats.rescheduled
        without_sp.stats.invalid;
      summary :=
        (suite, with_sp.modeled_hours, without_sp.modeled_hours,
         with_sp.best.objective, without_sp.best.objective)
        :: !summary)
    Suite.all;
  let l = !summary in
  Printf.printf
    "\nmean DSE-time reduction: %.0f%% (paper: 15%%); est. IPC ratio: %.2fx (paper: 1.09x)\n"
    (100.0
    *. Stats.mean
         (List.map (fun (_, w, wo, _, _) -> 1.0 -. (w /. Float.max 1e-9 wo)) l))
    (Stats.geomean
       (List.map (fun (_, _, _, ow, owo) -> ow /. Float.max 1e-9 owo) l))
