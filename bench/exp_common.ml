(* Shared, memoized experiment context: the trained resource model and the
   DSE-generated overlays are reused across tables and figures, exactly as
   the paper evaluates one design per suite/workload. *)

open Overgen_workload
module Dse = Overgen_dse.Dse
module Hls = Overgen_hls.Hls

let suite_iterations = 500
let workload_iterations = 350

let model_ref = ref None

let model () =
  match !model_ref with
  | Some m -> m
  | None ->
    let m = Overgen.train_model ~seed:7 () in
    model_ref := Some m;
    m

let memo : (string, Overgen.overlay) Hashtbl.t = Hashtbl.create 32

let memoize key f =
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.add memo key v;
    v

let general () =
  memoize "general" (fun () ->
      match Overgen.general ~model:(model ()) Kernels.all with
      | Ok o -> o
      | Error e -> failwith ("general overlay cannot host all workloads: " ^ e))

let dse_config ~seed ~iterations =
  { Dse.default_config with seed; iterations }

let suite_overlay suite =
  let name = Suite.to_string suite in
  memoize ("suite:" ^ name) (fun () ->
      Overgen.generate
        ~config:(dse_config ~seed:(100 + Hashtbl.hash name) ~iterations:suite_iterations)
        ~model:(model ()) (Kernels.of_suite suite))

let workload_overlay ?(tuned = false) kname =
  let key = if tuned then "wlt:" ^ kname else "wl:" ^ kname in
  memoize key (fun () ->
      Overgen.generate
        ~config:(dse_config ~seed:(200 + Hashtbl.hash kname) ~iterations:workload_iterations)
        ~tuned ~model:(model ())
        [ Kernels.find kname ])

let custom_overlay ~key ~seed ~iterations kernels =
  memoize key (fun () ->
      Overgen.generate ~config:(dse_config ~seed ~iterations) ~model:(model ()) kernels)

(* --- OverGen runtime reports --- *)

(* TODO(obs): the per-report compile_seconds consumed below is ad-hoc
   timing that predates lib/obs; the same quantity now lands in the
   overgen_compile_seconds histogram on Obs.Metrics.default (see `main.exe
   obs`).  Scheduled for removal once the tables read the registry. *)
let report_memo : (string, Overgen.report) Hashtbl.t = Hashtbl.create 64

let og_report ?(tuned = false) ~tag overlay kname =
  let key = Printf.sprintf "%s:%s:%b" tag kname tuned in
  match Hashtbl.find_opt report_memo key with
  | Some r -> r
  | None -> (
    match
      Overgen.run ~opts:{ Overgen.default_opts with tuned } overlay
        (Kernels.find kname)
    with
    | Ok r ->
      Hashtbl.add report_memo key r;
      r
    | Error e -> failwith (Printf.sprintf "%s does not map on %s: %s" kname tag e))

(* --- AutoDSE baselines --- *)

let hls_memo : (string, Hls.explore) Hashtbl.t = Hashtbl.create 64

let autodse ?(dram_channels = 1) ~tuned kname =
  let key = Printf.sprintf "%s:%b:%d" kname tuned dram_channels in
  match Hashtbl.find_opt hls_memo key with
  | Some r -> r
  | None ->
    let r = Hls.autodse ~dram_channels ~tuned (Kernels.find kname) in
    Hashtbl.add hls_memo key r;
    r

let ad_ms ?dram_channels ~tuned kname =
  Hls.runtime_ms (autodse ?dram_channels ~tuned kname).best

(* Speedup of an OverGen report over untuned AutoDSE. *)
let speedup_over_ad report kname =
  ad_ms ~tuned:false kname /. report.Overgen.wall_ms

let short = function
  | "cholesky" -> "chol"
  | "solver" -> "solv."
  | "stencil-3d" -> "stcl-3d"
  | "stencil-2d" -> "stcl-2d"
  | "ellpack" -> "ellp."
  | "channel-ext" -> "chan."
  | "bgr2grey" -> "bgr2."
  | "accumulate" -> "accu."
  | "acc-sqr" -> "acc_sqr"
  | "vecmax" -> "vecm."
  | "acc-weight" -> "acc_wei"
  | "convert-bit" -> "conv."
  | "derivative" -> "deri."
  | s -> s

let header title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar
