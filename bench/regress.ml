(* `bench regress`: diff the current run's BENCH_<scenario>.json files
   against committed baselines and fail on regression.

   Metric direction is inferred from the name suffix:

     higher is better   _per_s  _rate  _x  _ipc
     lower is better    _ns  _us  _ms  _s  _seconds  _hours  _bytes

   (higher-better suffixes are matched first, so `_per_s` never falls into
   the `_s` bucket).  A few metrics whose names telegraph the wrong thing
   carry an explicit override.  Anything else — counts, flags,
   percentages — is informational: printed on request, never gated.
   Gating also skips metrics whose baseline is 0 (no meaningful relative
   delta) and timings whose baseline is under 50 us regardless of the
   unit they are reported in: a 3 us cache-hit latency or a 5 us store
   read moves more than any tolerance band under machine contention, so
   at that scale relative deltas are noise, not signal.

   A gated metric regresses when it moves past the tolerance in its bad
   direction: lower-better fails if cur > base * (1 + tol), higher-better
   fails if cur < base * (1 - tol).  Improvements never fail.

   Separately from the relative gates, a few metrics carry absolute caps
   that fail regardless of the baseline: the observability null-overhead
   budget (`*null_overhead_pct` < 3.0) and the chaos scenario's resend
   count are contracts, not trajectories.

   Baselines are refreshed with `make bench-baseline`; note the committed
   ones were captured under `@check`-level machine contention (the
   regress-smoke rule runs the scenarios alongside the full build and
   test suite), so a quiet-machine run reads as an improvement. *)

let default_scenarios =
  [ "micro"; "service"; "dse"; "obs"; "fault"; "store"; "net"; "fleet" ]

let default_tolerance = 0.5

type direction = Higher | Lower | Info

let ends_with suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* timings whose baseline is under this many nanoseconds are
   jitter-dominated and reported but never gated *)
let min_gated_timing_ns = 50_000.0

(* nanoseconds per unit of each lower-better timing suffix *)
let timing_scale_ns name =
  if ends_with "_ns" name then Some 1.0
  else if ends_with "_us" name then Some 1e3
  else if ends_with "_ms" name then Some 1e6
  else if ends_with "_seconds" name then Some 1e9
  else if ends_with "_s" name then Some 1e9
  else None

(* explicit direction overrides for names the suffix heuristic misreads:
   the obs net-path walls are loopback-jitter evidence for the capped
   `net_null_overhead_pct`, not a gateable trajectory *)
let direction_overrides =
  [
    ("net_untraced_ms", Info);
    ("net_traced_ms", Info);
    (* fsync-bound single-shot walls: on shared disk they swing well past
       2x with machine contention (measured 7–50 ms for the same scan),
       so relative gating against a quiet-machine baseline is pure noise.
       Gated by generous absolute caps below instead — a real regression
       (say, an accidental per-record fsync in scan or compact) lands in
       the seconds. *)
    ("scan_on_open_ms", Info);
    ("compact_ms", Info);
  ]

(* Hard ceilings, independent of any baseline: the observability
   null-overhead budgets are a contract, and `resends` in the net chaos
   scenario is structurally bounded by the load generator's in-flight
   window (256/sender) per connection drop — the cap catches a resend
   storm (a retry loop, a ledger bug) while staying insensitive to
   SIGKILL timing, which relative gating is not. *)
let absolute_caps =
  [
    ("null_overhead_pct", 3.0);
    ("net_null_overhead_pct", 3.0);
    ("resends", 1000.0);
    (* the fleet scenario's fairness and delivery contracts: achieved
       share within 10% relative error of the weights, and never a lost
       response — deterministic values, not trajectories *)
    ("fleet_share_err_pct", 10.0);
    ("fleet_lost_responses", 0.0);
    (* fsync-bound store walls (see direction_overrides): quiet-machine
       values are ~8 ms / ~26 ms, contention takes them to ~50 / ~100 *)
    ("scan_on_open_ms", 250.0);
    ("compact_ms", 500.0);
  ]

let direction name =
  match List.assoc_opt name direction_overrides with
  | Some d -> d
  | None ->
    if
      List.exists
        (fun sfx -> ends_with sfx name)
        [ "_per_s"; "_rate"; "_x"; "_ipc" ]
    then Higher
    else if
      List.exists
        (fun sfx -> ends_with sfx name)
        [ "_ns"; "_us"; "_ms"; "_s"; "_seconds"; "_hours"; "_bytes" ]
    then Lower
    else Info

(* ------------------------------------------------------------------ *)
(* Reading BENCH_<scenario>.json                                       *)
(* ------------------------------------------------------------------ *)

(* A scanner for exactly the document shape our own emitter produces
   ({!Overgen_obs.Export.bench_json}): one object with a "scenario" string
   and a flat "metrics" object of name -> number.  No dependency on a JSON
   library; anything structurally surprising is an error, not a guess. *)

exception Bad of string

let parse_metrics text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> raise (Bad (Printf.sprintf "expected %c at byte %d" c !pos))
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match text.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        if !pos + 1 >= n then raise (Bad "dangling escape");
        (match text.[!pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | c -> Buffer.add_char b c);
        pos := !pos + 2;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise (Bad (Printf.sprintf "expected number at byte %d" start));
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some v -> v
    | None -> raise (Bad "malformed number")
  in
  expect '{';
  skip_ws ();
  let scenario = ref None and metrics = ref [] in
  let rec members () =
    let key = string_lit () in
    expect ':';
    skip_ws ();
    (match key with
    | "scenario" -> scenario := Some (string_lit ())
    | "metrics" ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then incr pos
      else
        let rec pairs () =
          let name = string_lit () in
          expect ':';
          let v = number () in
          metrics := (name, v) :: !metrics;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            skip_ws ();
            pairs ()
          | Some '}' -> incr pos
          | _ -> raise (Bad "expected , or } in metrics")
        in
        pairs ()
    | other -> raise (Bad ("unexpected key " ^ other)));
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      skip_ws ();
      members ()
    | Some '}' -> incr pos
    | _ -> raise (Bad "expected , or } in document")
  in
  members ();
  match !scenario with
  | None -> raise (Bad "document has no \"scenario\"")
  | Some s -> (s, List.rev !metrics)

let read_bench path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_metrics text

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type status = Ok_ | Regressed | Improved | New | Gone | Ungated

let compare_metrics ~tolerance baseline current =
  List.concat
    [
      List.map
        (fun (name, cur) ->
          match List.assoc_opt name baseline with
          | None -> (name, nan, cur, New)
          | Some base -> (
            match direction name with
            | Info -> (name, base, cur, Ungated)
            | (Lower | Higher) when base = 0.0 -> (name, base, cur, Ungated)
            | Lower
              when (match timing_scale_ns name with
                   | Some scale ->
                     Float.abs (base *. scale) < min_gated_timing_ns
                   | None -> false) ->
              (name, base, cur, Ungated)
            | Lower ->
              if cur > base *. (1.0 +. tolerance) then (name, base, cur, Regressed)
              else if cur < base then (name, base, cur, Improved)
              else (name, base, cur, Ok_)
            | Higher ->
              if cur < base *. (1.0 -. tolerance) then (name, base, cur, Regressed)
              else if cur > base then (name, base, cur, Improved)
              else (name, base, cur, Ok_)))
        current;
      List.filter_map
        (fun (name, base) ->
          if List.mem_assoc name current then None
          else Some (name, base, nan, Gone))
        baseline;
    ]

let status_str = function
  | Ok_ -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | New -> "new"
  | Gone -> "GONE"
  | Ungated -> "info"

let delta_str base cur =
  if Float.is_nan base || Float.is_nan cur || base = 0.0 then "-"
  else Printf.sprintf "%+.1f%%" (100.0 *. ((cur /. base) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let main args =
  let tolerance = ref default_tolerance
  and baseline_dir = ref "bench/baselines"
  and current_dir = ref "."
  and verbose = ref false
  and scenarios = ref [] in
  let rec parse = function
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ ->
        prerr_endline "regress: --tolerance expects a non-negative float";
        exit 2);
      parse rest
    | "--baselines" :: v :: rest ->
      baseline_dir := v;
      parse rest
    | "--current" :: v :: rest ->
      current_dir := v;
      parse rest
    | "--verbose" :: rest ->
      verbose := true;
      parse rest
    | [] -> ()
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
      scenarios := a :: !scenarios;
      parse rest
    | a :: _ ->
      Printf.eprintf
        "regress: unknown argument %s (--tolerance F --baselines DIR \
         --current DIR --verbose [scenario...])\n"
        a;
      exit 2
  in
  parse args;
  let scenarios =
    match List.rev !scenarios with [] -> default_scenarios | l -> l
  in
  Printf.printf "bench regress: tolerance %.0f%%, baselines in %s/\n\n"
    (100.0 *. !tolerance) !baseline_dir;
  Printf.printf "  %-8s %-34s %14s %14s %8s  %s\n" "scenario" "metric" "baseline"
    "current" "delta" "status";
  let regressions = ref 0 and errors = ref 0 and gated = ref 0 in
  let hidden_info = ref 0 in
  List.iter
    (fun scenario ->
      let file = Printf.sprintf "BENCH_%s.json" scenario in
      let base_path = Filename.concat !baseline_dir file
      and cur_path = Filename.concat !current_dir file in
      if not (Sys.file_exists cur_path) then begin
        Printf.printf "  %-8s %-34s %14s %14s %8s  %s\n" scenario "-" "-" "-" "-"
          "MISSING (scenario did not emit)";
        incr errors
      end
      else if not (Sys.file_exists base_path) then
        Printf.printf "  %-8s %-34s %14s %14s %8s  %s\n" scenario "-" "-" "-" "-"
          "no baseline (commit one to gate)"
      else
        try
          let bs, baseline = read_bench base_path in
          let cs, current = read_bench cur_path in
          if bs <> scenario || cs <> scenario then begin
            Printf.printf "  %-8s: scenario name mismatch (%s vs %s)\n" scenario
              bs cs;
            incr errors
          end;
          List.iter
            (fun (name, base, cur, status) ->
              (match status with
              | Regressed -> incr regressions
              | Ok_ | Improved -> incr gated
              | New | Gone | Ungated -> ());
              if status = Ungated && not !verbose then incr hidden_info
              else
                Printf.printf "  %-8s %-34s %14.6g %14.6g %8s  %s\n" scenario
                  name base cur (delta_str base cur) (status_str status))
            (compare_metrics ~tolerance:!tolerance baseline current);
          (* absolute caps: gate the current value alone *)
          List.iter
            (fun (name, cur) ->
              match List.assoc_opt name absolute_caps with
              | None -> ()
              | Some cap ->
                let over = cur > cap in
                if over then incr regressions else incr gated;
                Printf.printf "  %-8s %-34s %14.6g %14.6g %8s  %s\n" scenario
                  name cap cur "-"
                  (if over then "OVER CAP" else "ok (absolute cap)"))
            current
        with
        | Bad e | Sys_error e ->
          Printf.printf "  %-8s: unreadable (%s)\n" scenario e;
          incr errors)
    scenarios;
  if !hidden_info > 0 then
    Printf.printf "\n  (%d informational metrics not gated; --verbose shows them)\n"
      !hidden_info;
  Printf.printf "\n%d gated metrics within tolerance, %d regressions, %d errors\n"
    !gated !regressions !errors;
  if !regressions > 0 || !errors > 0 then 1 else 0
