(* bench store: the durable artifact store scenario.

   Three measurements, all against throwaway temp files:

   1. raw log micro   - append/read throughput, scan-on-open cost, and what
                        compaction reclaims after rewriting half the keys;
   2. service restart - a compile-request replay writing through to a fresh
                        store, then a *restarted* service whose cache
                        warm-starts from the same file (the kill-and-restart
                        path serve-bench --store exercises);
   3. DSE checkpoints - interval-1 checkpointing overhead over an
                        uncheckpointed run, and the cost of resuming a run
                        interrupted halfway.  The scenario fails hard if the
                        resumed run does not reproduce the uninterrupted
                        objective bit for bit. *)

open Overgen_workload
module Store = Overgen_store.Store
module Dse = Overgen_dse.Dse
module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Trace = Overgen_service.Trace

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let with_store_file f =
  let path = Filename.temp_file "overgen-store-bench" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_store path =
  match Store.open_ ~path () with Ok s -> s | Error e -> failwith e

(* --- 1: raw log --- *)

let micro () =
  with_store_file @@ fun path ->
  let n = 2000 in
  let value = String.make 512 'x' in
  let key i = Printf.sprintf "key-%04d" i in
  let s = open_store path in
  let (), append_s =
    time (fun () ->
        for i = 0 to n - 1 do
          Store.put s ~ns:"micro" ~key:(key i) value
        done)
  in
  Store.sync s;
  let (), read_s =
    time (fun () ->
        for i = 0 to n - 1 do
          ignore (Store.get s ~ns:"micro" ~key:(key i))
        done)
  in
  Store.close s;
  let s, open_s = time (fun () -> open_store path) in
  (* rewrite half the keys: dead bytes accumulate, compaction reclaims them *)
  for i = 0 to (n / 2) - 1 do
    Store.put s ~ns:"micro" ~key:(key i) value
  done;
  let before = Store.file_bytes s in
  let (), compact_s = time (fun () -> Store.compact s) in
  let after = Store.file_bytes s in
  Store.close s;
  let per_op total = total /. float_of_int n *. 1e6 in
  Printf.printf "raw log, %d x %dB records:\n" n (String.length value);
  Printf.printf "  append %8.2f us/op   read %8.2f us/op   scan-on-open %6.1f ms\n"
    (per_op append_s) (per_op read_s) (open_s *. 1000.0);
  Printf.printf "  compact %6.1f ms: %d -> %d bytes (reclaimed %d)\n\n"
    (compact_s *. 1000.0) before after (before - after);
  [
    ("append_us", per_op append_s);
    ("read_us", per_op read_s);
    ("scan_on_open_ms", open_s *. 1000.0);
    ("compact_ms", compact_s *. 1000.0);
    ("compacted_bytes", float_of_int after);
  ]

(* --- 2: service restart --- *)

let restart () =
  with_store_file @@ fun path ->
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Exp_common.general ()) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let requests = 200 in
  let trace =
    Trace.generate
      (Trace.spec ~seed:42 ~requests ~users:6 ~working_set:2
         ~overlays:[ ("general", Kernels.all) ]
         ())
  in
  let replay slug label store =
    let cache = Cache.create ~store () in
    let svc = Service.create ~caching:true ~cache registry in
    let responses, wall_s = time (fun () -> Service.run svc trace) in
    Service.shutdown svc;
    let failures =
      List.length
        (List.filter
           (fun (r : Service.response) -> Result.is_error r.result)
           responses)
    in
    let stats = Cache.stats cache in
    Printf.printf "  %-28s %8.1f req/s   hit %5.1f%%   warm-loaded %3d   failures %d\n"
      label
      (float_of_int requests /. wall_s)
      (100.0 *. Cache.hit_rate stats)
      (Cache.warm_loaded cache) failures;
    [
      (slug ^ "_req_per_s", float_of_int requests /. wall_s);
      (slug ^ "_hit_rate", Cache.hit_rate stats);
      (slug ^ "_warm_loaded", float_of_int (Cache.warm_loaded cache));
      (slug ^ "_failures", float_of_int failures);
    ]
  in
  Printf.printf "service restart, %d requests writing through to a store:\n"
    requests;
  let s1 = open_store path in
  let m1 = replay "restart_cold" "first run (cold disk)" s1 in
  Store.close s1;
  let s2 = open_store path in
  let m2 = replay "restart_warm" "restarted (warm from disk)" s2 in
  Store.close s2;
  print_newline ();
  m1 @ m2

(* --- 3: DSE checkpoint/resume --- *)

let checkpointing () =
  let model = Exp_common.model () in
  let apps =
    Dse.compile_apps ~tuned:false [ Kernels.find "vecmax"; Kernels.find "fir" ]
  in
  let config =
    { Dse.default_config with iterations = 120; migration_interval = 10 }
  in
  let plain, plain_s = time (fun () -> Dse.explore ~config ~model apps) in
  let cp_s, resume_s, resumed =
    with_store_file @@ fun path ->
    let s = open_store path in
    let cp = { Dse.store = s; key = "bench"; interval = 1 } in
    let _, cp_s =
      time (fun () -> Dse.explore ~config ~checkpoint:cp ~model apps)
    in
    Store.close s;
    Sys.remove path;
    (* interrupt halfway, then resume from the durable checkpoint *)
    let s = open_store path in
    let cp = { Dse.store = s; key = "bench"; interval = 1 } in
    ignore
      (Dse.explore ~config ~checkpoint:cp ~stop_after_rounds:6 ~model apps);
    let resumed, resume_s =
      time (fun () -> Dse.explore ~config ~checkpoint:cp ~resume:true ~model apps)
    in
    Store.close s;
    (cp_s, resume_s, resumed)
  in
  if resumed.Dse.best.objective <> plain.Dse.best.objective then
    failwith
      (Printf.sprintf
         "store bench: resumed DSE diverged (objective %.6f vs %.6f)"
         resumed.Dse.best.objective plain.Dse.best.objective);
  Printf.printf "DSE checkpoint/resume, %d iterations over 2 kernels:\n"
    config.iterations;
  Printf.printf
    "  uncheckpointed %6.2f s   interval-1 checkpoints %6.2f s (overhead %+.1f%%)\n"
    plain_s cp_s
    (100.0 *. ((cp_s /. plain_s) -. 1.0));
  Printf.printf
    "  killed at round 6 of 12, resume finished in %6.2f s; objective matches \
     the uninterrupted run (%.2f)\n\n"
    resume_s resumed.Dse.best.objective;
  [
    ("checkpoint_overhead_pct", 100.0 *. ((cp_s /. plain_s) -. 1.0));
    ("resume_objective_ipc", resumed.Dse.best.objective);
  ]

let run () =
  Exp_common.header "bench store: durable artifact store";
  let m1 = micro () in
  let m2 = restart () in
  let m3 = checkpointing () in
  { Bench.metrics = m1 @ m2 @ m3 }
