(* The fault-tolerance benchmark scenario: the compile service replayed
   under deterministic seeded fault injection.  Every configuration must
   return exactly one response per request -- faulted requests surface as
   [Error] responses, they never take down in-flight neighbours -- and the
   deterministic no-fault replay doubles as the baseline the warm numbers
   are compared against.  Invariant violations are fatal ([failwith]), so
   this scenario is also the CI fault-smoke gate (make check-fault). *)

open Overgen_workload
module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Trace = Overgen_service.Trace
module Telemetry = Overgen_service.Telemetry
module Fault = Overgen_fault.Fault
module Log = Overgen_obs.Obs.Log

let requests = 120
let fault_seed = 9
let rate = 0.2

(* Hard invariants: one response per request, ids covering the trace
   exactly.  The service sorts responses by request id, so after a sort
   check we can require ids = 0..n-1. *)
let check_responses ~label trace (responses : Service.response list) =
  if List.length responses <> List.length trace then
    failwith
      (Printf.sprintf "%s: %d responses for %d requests" label
         (List.length responses) (List.length trace));
  List.iteri
    (fun i (r : Service.response) ->
      if r.request.id <> i then
        failwith
          (Printf.sprintf "%s: response %d carries request id %d" label i
             r.request.id))
    responses

let replay registry trace ~mode ~policy ~faults =
  let svc =
    Service.create ~mode ~policy ~caching:true
      ~cache:(Cache.create ~capacity:1024 ())
      registry
  in
  let t0 = Unix.gettimeofday () in
  let responses =
    match faults with
    | None -> Service.run svc trace
    | Some cfg -> Fault.with_faults cfg (fun () -> Service.run svc trace)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Service.shutdown svc;
  (responses, wall_s, Telemetry.snapshot (Service.telemetry svc))

let run () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Exp_common.general ()) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let spec =
    Trace.spec ~seed:42 ~requests ~users:6 ~working_set:2
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let trace = Trace.generate spec in
  (* start the flight recorder clean: the assertions below must see this
     run's events, not a previous scenario's *)
  Log.clear Log.default;
  let cfg = { Fault.default_config with seed = fault_seed; rate } in
  Printf.printf
    "fault injection: %d requests, seed %d, rate %.0f%%, all faults transient\n\n"
    requests fault_seed (100.0 *. rate);
  Printf.printf "%-30s %8s %8s %8s %8s %8s %8s\n" "configuration" "ok" "error"
    "faults" "retries" "shed" "deadline";
  let metrics = ref [] in
  let row ?slug label (responses, _wall_s, (snap : Telemetry.snapshot)) =
    check_responses ~label trace responses;
    let ok, err =
      List.fold_left
        (fun (ok, err) (r : Service.response) ->
          if Result.is_ok r.result then (ok + 1, err) else (ok, err + 1))
        (0, 0) responses
    in
    Printf.printf "%-30s %8d %8d %8d %8d %8d %8d\n" label ok err snap.faults
      snap.retries snap.shed snap.deadlines;
    (match slug with
    | None -> ()
    | Some s ->
      metrics :=
        !metrics
        @ [
            (s ^ "_ok", float_of_int ok);
            (s ^ "_error", float_of_int err);
            (s ^ "_faults", float_of_int snap.faults);
            (s ^ "_retries", float_of_int snap.retries);
          ]);
    (responses, snap)
  in
  let policy = Service.default_policy in
  let baseline, _ =
    row ~slug:"nofault" "deterministic, no faults"
      (replay registry trace ~mode:Service.Deterministic ~policy ~faults:None)
  in
  ignore
    (row ~slug:"det_faults" "deterministic, 20% faults"
       (replay registry trace ~mode:Service.Deterministic ~policy
          ~faults:(Some cfg)));
  ignore
    (row "4 workers, 20% faults"
       (replay registry trace ~mode:(Service.Workers 4) ~policy
          ~faults:(Some cfg)));
  let deadline_policy = { policy with deadline_s = Some 30.0 } in
  let strict, _ =
    row "4 workers, faults + deadline"
      (replay registry trace ~mode:(Service.Workers 4) ~policy:deadline_policy
         ~faults:(Some cfg))
  in
  (* With generous retries the injected transients must all be absorbed:
     the faulted replay converges to the same per-request outcomes as the
     clean baseline. *)
  let retried_policy = { policy with retries = 8 } in
  let absorbed, _ =
    row ~slug:"retries8" "4 workers, faults, retries 8"
      (replay registry trace ~mode:(Service.Workers 4) ~policy:retried_policy
         ~faults:(Some cfg))
  in
  List.iter2
    (fun (b : Service.response) (a : Service.response) ->
      if Result.is_ok b.result <> Result.is_ok a.result then
        failwith
          (Printf.sprintf
             "request %d: retried outcome diverges from no-fault baseline"
             b.request.id))
    baseline absorbed;
  ignore strict;
  print_newline ();
  Printf.printf "fault points (seed %d, final replay):\n" fault_seed;
  List.iter
    (fun (point, visits, injected) ->
      Printf.printf "  %-26s %6d visits  %5d injected\n" point visits injected)
    (Fault.stats ());
  (* the flight recorder saw the whole campaign: the injected faults and
     the retries that absorbed them must be on the record *)
  let events = Log.recent Log.default in
  let saw name = List.exists (fun (e : Log.event) -> e.Log.name = name) events in
  if not (saw "fault") then
    failwith "flight recorder: no fault events despite injected faults";
  if not (saw "retry") then
    failwith "flight recorder: no retry events despite retried transients";
  Printf.printf
    "flight recorder: %d recent events (faults and retries on the record)\n"
    (List.length events);
  Printf.printf "\nfault scenario ok: %d/%d invariants held\n"
    (5 * List.length trace) (5 * List.length trace);
  {
    Bench.metrics =
      !metrics @ [ ("invariants_held", float_of_int (5 * List.length trace)) ];
  }
