(* The compile-service benchmark scenario: the paper's deployment model at
   traffic.  One pre-generated overlay serves a multi-user request trace;
   we sweep the worker count and compare cold (cache disabled) against warm
   (content-addressed schedule cache), plus a capacity-starved cache to
   show LRU eviction under pressure. *)

open Overgen_workload
module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Trace = Overgen_service.Trace
module Telemetry = Overgen_service.Telemetry

let requests = 400

let replay registry trace ~mode ~caching ~capacity =
  let svc =
    Service.create ~mode ~caching ~cache:(Cache.create ~capacity ()) registry
  in
  let t0 = Unix.gettimeofday () in
  let responses = Service.run svc trace in
  let wall_s = Unix.gettimeofday () -. t0 in
  Service.shutdown svc;
  let telemetry = Service.telemetry svc in
  let snap = Telemetry.snapshot telemetry in
  let failures =
    List.length (List.filter (fun (r : Service.response) -> Result.is_error r.result) responses)
  in
  (wall_s, snap, Option.map Cache.stats (Service.cache svc), failures, telemetry)

let run () =
  let registry = Registry.create () in
  (match Registry.register registry ~name:"general" (Exp_common.general ()) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let spec =
    Trace.spec ~seed:42 ~requests ~users:8 ~working_set:3
      ~overlays:[ ("general", Kernels.all) ]
      ()
  in
  let trace = Trace.generate spec in
  Printf.printf
    "compile service: %d requests, 8 users, %d distinct (overlay, kernel) pairs\n\n"
    requests (Trace.distinct_keys spec);
  Printf.printf "%-28s %10s %9s %9s %9s %9s\n" "configuration" "req/s" "hit%" "p50 ms"
    "p99 ms" "failures";
  let metrics = ref [] in
  let row ?slug label
      ((wall_s, (snap : Telemetry.snapshot), cache_stats, failures, _) as r) =
    let hit =
      match cache_stats with
      | Some s -> 100.0 *. Cache.hit_rate s
      | None -> 0.0
    in
    Printf.printf "%-28s %10.1f %8.1f%% %9.3f %9.3f %9d\n" label
      (float_of_int requests /. wall_s)
      hit snap.p50_ms snap.p99_ms failures;
    (match slug with
    | None -> ()
    | Some s ->
      metrics :=
        !metrics
        @ [
            (s ^ "_req_per_s", float_of_int requests /. wall_s);
            (s ^ "_hit_rate", hit /. 100.0);
            (s ^ "_p50_ms", snap.p50_ms);
            (s ^ "_p99_ms", snap.p99_ms);
            (s ^ "_failures", float_of_int failures);
          ]);
    r
  in
  let cap = 1024 in
  ignore
    (row ~slug:"cold" "deterministic, cold"
       (replay registry trace ~mode:Service.Deterministic ~caching:false
          ~capacity:cap));
  let warm_wall_s, warm_snap, _, _, warm_telemetry =
    row ~slug:"warm" "deterministic, warm"
      (replay registry trace ~mode:Service.Deterministic ~caching:true
         ~capacity:cap)
  in
  List.iter
    (fun n ->
      ignore
        (row
           (Printf.sprintf "%d workers, cold" n)
           (replay registry trace ~mode:(Service.Workers n) ~caching:false
              ~capacity:cap));
      ignore
        (row
           ?slug:(if n = 4 then Some "workers4_warm" else None)
           (Printf.sprintf "%d workers, warm" n)
           (replay registry trace ~mode:(Service.Workers n) ~caching:true
              ~capacity:cap)))
    [ 2; 4 ];
  (* capacity starvation: an LRU bound far under the working set *)
  let wall_s, _, stats, failures, _ =
    replay registry trace ~mode:Service.Deterministic ~caching:true ~capacity:4
  in
  (match stats with
  | Some s ->
    Printf.printf "%-28s %10.1f %8.1f%% %9s %9s %9d   (%d evictions, %d/%d entries)\n"
      "deterministic, 4-entry LRU"
      (float_of_int requests /. wall_s)
      (100.0 *. Cache.hit_rate s)
      "-" "-" failures s.evictions s.entries s.capacity
  | None -> ());
  print_newline ();
  (* Legacy one-screen telemetry report next to the metrics-registry view
     of the same service: the counts must agree line for line. *)
  print_string
    (Telemetry.report ~label:"deterministic, warm" ~wall_s:warm_wall_s warm_snap);
  print_newline ();
  print_string
    (Overgen_obs.Metrics.render_report (Telemetry.registry warm_telemetry));
  print_newline ();
  { Bench.metrics = !metrics }
