(* Bechamel micro-benchmarks: one Test per table/figure driver, measuring the
   real cost of the framework's hot paths. *)

open Bechamel
open Toolkit
open Overgen_workload
module Compile = Overgen_mdfg.Compile
module Spatial = Overgen_scheduler.Spatial
module Builder = Overgen_adg.Builder
module Sim = Overgen_sim.Sim
module Hls = Overgen_hls.Hls
module Predict = Overgen_mlp.Predict
module Oracle = Overgen_fpga.Oracle

let tests () =
  let fir = Kernels.find "fir" in
  let sys = Builder.general_overlay () in
  let compiled = Compile.compile fir in
  let scheds =
    match Spatial.schedule_app sys compiled with
    | Ok s -> s
    | Error e -> failwith e
  in
  let model = Exp_common.model () in
  [
    (* Table I/II substrate *)
    Test.make ~name:"table2/compile-fir"
      (Staged.stage (fun () -> ignore (Compile.compile fir)));
    Test.make ~name:"table1/mlp-predict-tile"
      (Staged.stage (fun () -> ignore (Predict.predict_accel model sys.adg)));
    (* Figure 13 substrate *)
    Test.make ~name:"fig13/schedule-fir"
      (Staged.stage (fun () -> ignore (Spatial.schedule_app sys compiled)));
    Test.make ~name:"fig13/simulate-fir"
      (Staged.stage (fun () -> ignore (Sim.run sys scheds)));
    Test.make ~name:"fig14+15/autodse-fir"
      (Staged.stage (fun () -> ignore (Hls.autodse ~tuned:false fir)));
    (* Figure 16 substrate *)
    Test.make ~name:"fig16/synth-oracle"
      (Staged.stage (fun () -> ignore (Oracle.synth_full sys)));
    (* Figure 17 substrate *)
    Test.make ~name:"fig17/repair"
      (Staged.stage (fun () -> ignore (Spatial.repair sys scheds)));
    (* Figure 18/20 substrate: one DSE iteration-ish unit *)
    Test.make ~name:"fig20/perf-model"
      (Staged.stage (fun () ->
           ignore (Overgen_perf.Perf.objective sys [ scheds ])));
    (* Figure 19 substrate *)
    Test.make ~name:"fig19/sim-4ch"
      (Staged.stage (fun () ->
           let sysp = { sys.system with Overgen_adg.System.dram_channels = 4 } in
           ignore (Sim.run (Overgen_adg.Sys_adg.with_system sys sysp) scheds)));
  ]

let run () =
  Exp_common.header "Bechamel micro-benchmarks (framework hot paths)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let metrics = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          Printf.printf "  %-28s %12.1f ns/run (%.3f ms)\n" name est (est /. 1e6);
          if Float.is_finite est then
            metrics := (name ^ "_ns", est) :: !metrics)
        analyzed)
    (tests ());
  { Bench.metrics = List.sort compare !metrics }
