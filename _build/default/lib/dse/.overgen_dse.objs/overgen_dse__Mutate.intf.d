lib/dse/mutate.mli: Adg Op Overgen_adg Overgen_scheduler Overgen_util Schedule
