lib/dse/dse.mli: Compile Device Ir Op Overgen_adg Overgen_fpga Overgen_mdfg Overgen_mlp Overgen_scheduler Overgen_workload Predict Res Schedule Stdlib Sys_adg System
