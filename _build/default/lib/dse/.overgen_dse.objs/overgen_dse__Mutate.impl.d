lib/dse/mutate.ml: Adg Comp Dfg Dtype Hashtbl List Op Option Overgen_adg Overgen_mdfg Overgen_scheduler Overgen_util Printf Schedule Stream
