(** The unified system + accelerator design-space explorer (paper Section V).

    Graph-based simulated annealing over the ADG with nested exhaustive
    system-parameter search: each iteration proposes a mutated ADG (random
    or schedule-preserving), repairs or reschedules the pre-generated mDFG
    variants onto it, exhaustively picks the best tile-count/NoC/L2
    configuration under the ML resource model's FPGA budget, and accepts
    stochastically on the bottleneck-model objective.

    Wall-clock is accounted in {e modeled hours} at the paper's scale: full
    recompilation, schedule repair, and synthesis each carry a calibrated
    cost so the DSE-time figures (paper Q3, Q8) are reproducible. *)

open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp

type config = {
  seed : int;
  iterations : int;
  initial_temp : float;
  schedule_preserving : bool;  (** the Q8 ablation switch *)
  topologies : System.noc_topology list;
      (** NoC topologies the nested system DSE may choose from; the paper
          uses the crossbar only, the ring is the topology-specialization
          extension *)
}

val default_config : config

type design = {
  sys : Sys_adg.t;
  per_app : Schedule.t list list;  (** one schedule list per application *)
  objective : float;               (** geomean estimated IPC *)
  predicted : Res.t;               (** ML-model full-SoC resources *)
}

type trace_point = { iter : int; modeled_hours : float; est_ipc : float }

type stats = {
  accepted : int;
  invalid : int;
  repaired : int;
  rescheduled : int;
}

type result = {
  best : design;
  trace : trace_point list;
  stats : stats;
  wall_seconds : float;    (** real OCaml runtime of this exploration *)
  modeled_hours : float;   (** paper-scale DSE wall-clock *)
}

val compile_apps : tuned:bool -> Ir.kernel list -> Compile.compiled list
(** Pre-generate all mDFG variants for the workload set (Section V-A). *)

val caps_pool : Compile.compiled list -> Op.Cap.t
(** Capability pairs any workload can use; the mutation vocabulary. *)

val explore :
  ?config:config ->
  ?device:Device.t ->
  model:Predict.t ->
  Compile.compiled list ->
  result
(** Run the DSE for a pre-compiled workload set. *)

val explore_kernels :
  ?config:config ->
  ?device:Device.t ->
  ?tuned:bool ->
  model:Predict.t ->
  Ir.kernel list ->
  result
(** Convenience: compile then explore. *)

val evaluate :
  ?device:Device.t ->
  model:Predict.t ->
  Sys_adg.t ->
  Compile.compiled list ->
  (design, string) Stdlib.result
(** Schedule a workload set on a fixed design (no exploration) and evaluate
    the objective; used for the hand-built general overlay and for
    leave-one-out mapping. *)

(** Modeled time constants (paper-scale seconds), shared with the benchmark
    harness so Figures 15 and 20 use one cost model. *)
module Time : sig
  val pregen_per_app_s : float
  val reschedule_per_app_s : float
  val repair_per_app_s : float
  val iteration_overhead_s : float
end
