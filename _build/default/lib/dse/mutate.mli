(** ADG mutations for the spatial DSE.

    Random modifications grow/shrink/retune the graph; when
    [preserve] is set, destructive moves apply the schedule-preserving
    transformations of paper Section V-B — node collapsing, edge-delay
    preservation, and module-capability pruning — so that previously
    compiled schedules stay valid (possibly after cheap re-routing). *)

open Overgen_adg
open Overgen_scheduler

type usage
(** What the current schedules actually use: nodes, links, PE capabilities,
    port/engine features. *)

val usage_of : Schedule.t list -> usage

val propose :
  Overgen_util.Rng.t ->
  preserve:bool ->
  caps_pool:Op.Cap.t ->
  Adg.t ->
  usage ->
  Adg.t * string
(** One mutation step; returns the new graph and a short description of the
    move (for tracing).  The result may be structurally invalid — the DSE
    abandons such proposals when scheduling fails. *)

val prune_unused : Adg.t -> usage -> Adg.t * int
(** Module-capability pruning: strip FU capabilities, engine features
    (indirect support, pattern dimensions), port features (stated, padding),
    and delay-FIFO depth that no mapped schedule exercises.  Returns the
    number of prunes applied. *)
