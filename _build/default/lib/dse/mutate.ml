open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler
module Rng = Overgen_util.Rng

type usage = {
  used_nodes : (Adg.id, unit) Hashtbl.t;
  used_links : (Adg.id * Adg.id, unit) Hashtbl.t;
  pe_caps_used : (Adg.id, (Op.t * Dtype.t) list) Hashtbl.t;
  stated_used : (Adg.id, unit) Hashtbl.t;
  indirect_used : (Adg.id, unit) Hashtbl.t;
  dims_used : (Adg.id, int) Hashtbl.t;
  delay_used : (Adg.id, int) Hashtbl.t;
  routes_through : (Adg.id, (Adg.id * Adg.id) list) Hashtbl.t;
}

let usage_of schedules =
  let u =
    {
      used_nodes = Hashtbl.create 64;
      used_links = Hashtbl.create 128;
      pe_caps_used = Hashtbl.create 32;
      stated_used = Hashtbl.create 8;
      indirect_used = Hashtbl.create 4;
      dims_used = Hashtbl.create 8;
      delay_used = Hashtbl.create 32;
      routes_through = Hashtbl.create 32;
    }
  in
  let mark id = Hashtbl.replace u.used_nodes id () in
  List.iter
    (fun (s : Schedule.t) ->
      let v = s.variant in
      Schedule.Imap.iter
        (fun inst pe ->
          mark pe;
          match (Dfg.node v.dfg inst).kind with
          | Dfg.Inst { op; dtype; _ } ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt u.pe_caps_used pe) in
            if not (List.mem (op, dtype) prev) then
              Hashtbl.replace u.pe_caps_used pe ((op, dtype) :: prev)
          | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> ())
        s.inst_pe;
      Schedule.Imap.iter (fun _ hw -> mark hw) s.port_map;
      List.iter (fun (_, e) -> mark e) s.array_engine;
      List.iter (fun (_, e) -> mark e) s.rec_streams;
      List.iter (fun (_, e) -> mark e) s.reg_streams;
      (* port/engine feature needs *)
      List.iter
        (fun (st : Stream.t) ->
          (match st.port with
          | Some dfg_port -> (
            match Schedule.Imap.find_opt dfg_port s.port_map with
            | Some hw when st.reuse.stationary > 1.0 ->
              Hashtbl.replace u.stated_used hw ()
            | Some _ | None -> ())
          | None -> ());
          let engines =
            (* the serving engine, plus the memory engine holding the array
               (distinct for recurrence-riding streams) *)
            (match Schedule.engine_of_stream s st with Some e -> [ e ] | None -> [])
            @ (match List.assoc_opt st.array s.array_engine with
              | Some e -> [ e ]
              | None -> [])
          in
          List.iter
            (fun e ->
              (match st.access with
              | Stream.Indirect _ -> Hashtbl.replace u.indirect_used e ()
              | Stream.Linear _ -> ());
              let prev = Option.value ~default:1 (Hashtbl.find_opt u.dims_used e) in
              Hashtbl.replace u.dims_used e (max prev st.dims))
            engines)
        v.streams;
      (* routes: mark links, through-switch pairs, delay needs *)
      List.iter
        (fun ((_, dst), (r : Schedule.route)) ->
          (match Schedule.Imap.find_opt dst s.inst_pe with
          | Some pe ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt u.delay_used pe) in
            Hashtbl.replace u.delay_used pe (max prev r.delay)
          | None -> ());
          let rec walk = function
            | a :: (b :: _ as rest) ->
              mark a;
              mark b;
              Hashtbl.replace u.used_links (a, b) ();
              (match rest with
              | b' :: c :: _ ->
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt u.routes_through b')
                in
                Hashtbl.replace u.routes_through b' ((a, c) :: prev)
              | _ -> ());
              walk rest
            | [ _ ] | [] -> ()
          in
          walk r.hops)
        s.routes)
    schedules;
  u

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

let random_node_of rng l = if l = [] then None else Some (Rng.choose rng l)

let random_caps rng pool =
  let pairs = Op.Cap.elements pool in
  if pairs = [] then Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ]
  else if Rng.int rng 4 = 0 then pool (* a fully general PE *)
  else begin
    let n = 1 + Rng.int rng (min 4 (List.length pairs)) in
    let chosen = List.filteri (fun i _ -> i < n) (Rng.shuffle rng pairs) in
    Op.Cap.of_list chosen
  end

let add_pe rng pool adg =
  let sws = Adg.switches adg in
  match sws with
  | [] -> (adg, "noop (no switches)")
  | _ ->
    let caps = random_caps rng pool in
    let pe = Comp.default_pe caps in
    let adg, id = Adg.add adg (Comp.Pe pe) in
    let s1 = Rng.choose rng sws and s2 = Rng.choose rng sws in
    let s3 = Rng.choose rng sws in
    let adg = Adg.add_edge adg s1 id in
    let adg = if s2 <> s1 then Adg.add_edge adg s2 id else adg in
    let adg = Adg.add_edge adg id s3 in
    (adg, Printf.sprintf "add pe %d" id)

let remove_pe rng ~preserve adg usage =
  let pes = List.map fst (Adg.pes adg) in
  let unused = List.filter (fun id -> not (Hashtbl.mem usage.used_nodes id)) pes in
  let pick = if preserve && unused <> [] then unused else pes in
  match random_node_of rng pick with
  | None -> (adg, "noop (no pes)")
  | Some id -> (Adg.remove_node adg id, Printf.sprintf "remove pe %d" id)

let add_switch rng adg =
  let fabric =
    List.filter_map
      (fun (id, c) -> if Adg.is_fabric c then Some id else None)
      (Adg.nodes adg)
  in
  match fabric with
  | [] -> (adg, "noop")
  | _ ->
    let width =
      match Adg.switches adg with
      | sw :: _ -> (
        match Adg.comp_exn adg sw with
        | Comp.Switch { width_bits } -> width_bits
        | _ -> 64)
      | [] -> 64
    in
    let adg, id = Adg.add adg (Comp.Switch { width_bits = width }) in
    let n = 2 + Rng.int rng 2 in
    let adg = ref adg in
    for _ = 1 to n do
      let peer = Rng.choose rng fabric in
      (try adg := Adg.add_edge !adg peer id with Invalid_argument _ -> ());
      try adg := Adg.add_edge !adg id peer with Invalid_argument _ -> ()
    done;
    (!adg, Printf.sprintf "add switch %d" id)

(* Node collapsing + edge-delay preservation (paper Figure 7). *)
let remove_switch rng ~preserve adg usage =
  match random_node_of rng (Adg.switches adg) with
  | None -> (adg, "noop (no switches)")
  | Some sw ->
    let adg =
      if not preserve then adg
      else begin
        let pairs =
          Option.value ~default:[] (Hashtbl.find_opt usage.routes_through sw)
        in
        let adg = ref adg in
        List.iter
          (fun (prev, next) ->
            if prev <> next && Adg.mem !adg prev && Adg.mem !adg next
               && not (Adg.mem_edge !adg prev next)
            then begin
              (try adg := Adg.add_edge !adg prev next
               with Invalid_argument _ -> ());
              (* preserve pipeline balance: the shortened path loses one
                 cycle, so grant the consumer an extra delay-FIFO slot *)
              match Adg.comp !adg next with
              | Some (Comp.Pe p) ->
                adg :=
                  Adg.set_comp !adg next
                    (Comp.Pe { p with delay_fifo = p.delay_fifo + 1 })
              | _ -> ()
            end)
          pairs;
        !adg
      end
    in
    (Adg.remove_node adg sw, Printf.sprintf "remove switch %d%s" sw
       (if preserve then " (collapsed)" else ""))

let add_link rng adg =
  let nodes = Adg.nodes adg in
  match nodes with
  | [] -> (adg, "noop")
  | _ ->
    let src, cs = Rng.choose rng nodes in
    let legal_dsts =
      List.filter
        (fun (dst, cd) -> dst <> src && Adg.edge_legal cs cd && not (Adg.mem_edge adg src dst))
        nodes
    in
    (match random_node_of rng legal_dsts with
    | None -> (adg, "noop (no legal link)")
    | Some (dst, _) ->
      (Adg.add_edge adg src dst, Printf.sprintf "add link %d->%d" src dst))

let remove_link rng ~preserve adg usage =
  let edges = Adg.edges adg in
  let candidates =
    if preserve then
      List.filter (fun e -> not (Hashtbl.mem usage.used_links e)) edges
    else edges
  in
  match random_node_of rng candidates with
  | None -> (adg, "noop (no removable link)")
  | Some (a, b) -> (Adg.remove_edge adg a b, Printf.sprintf "remove link %d->%d" a b)

let mutate_pe_caps rng ~preserve pool adg usage =
  match random_node_of rng (Adg.pes adg) with
  | None -> (adg, "noop")
  | Some (id, pe) ->
    if Rng.bool rng then begin
      (* grow *)
      match Op.Cap.elements pool with
      | [] -> (adg, "noop")
      | pairs ->
        let p = Rng.choose rng pairs in
        ( Adg.set_comp adg id (Comp.Pe { pe with caps = Op.Cap.add p pe.caps }),
          Printf.sprintf "pe %d add cap" id )
    end
    else begin
      let used = Option.value ~default:[] (Hashtbl.find_opt usage.pe_caps_used id) in
      let removable =
        Op.Cap.elements pe.caps
        |> List.filter (fun p -> (not preserve) || not (List.mem p used))
      in
      match removable with
      | [] -> (adg, "noop (all caps used)")
      | _ ->
        let p = Rng.choose rng removable in
        let caps = Op.Cap.remove p pe.caps in
        if Op.Cap.is_empty caps then (adg, "noop (would empty pe)")
        else
          ( Adg.set_comp adg id (Comp.Pe { pe with caps }),
            Printf.sprintf "pe %d drop cap" id )
    end

let mutate_delay_fifo rng adg =
  match random_node_of rng (Adg.pes adg) with
  | None -> (adg, "noop")
  | Some (id, pe) ->
    let delta = if Rng.bool rng then 4 else -4 in
    let delay_fifo = Overgen_util.Stats.clamp_int ~lo:2 ~hi:64 (pe.delay_fifo + delta) in
    ( Adg.set_comp adg id (Comp.Pe { pe with delay_fifo }),
      Printf.sprintf "pe %d fifo %d" id delay_fifo )

let mutate_port rng ~preserve adg usage =
  let ports =
    List.map (fun (id, p) -> (id, p, `In)) (Adg.in_ports adg)
    @ List.map (fun (id, p) -> (id, p, `Out)) (Adg.out_ports adg)
  in
  match random_node_of rng ports with
  | None -> (adg, "noop")
  | Some (id, p, dir) ->
    let p' =
      match Rng.int rng 4 with
      | 0 -> { p with Comp.width_bytes = min 128 (p.width_bytes * 2) }
      | 1 -> { p with Comp.width_bytes = max 2 (p.width_bytes / 2) }
      | 2 ->
        if p.stated && preserve && Hashtbl.mem usage.stated_used id then p
        else { p with Comp.stated = not p.stated }
      | _ ->
        { p with Comp.fifo_depth = Overgen_util.Stats.clamp_int ~lo:4 ~hi:64
                   (if Rng.bool rng then p.fifo_depth * 2 else p.fifo_depth / 2) }
    in
    let comp = match dir with `In -> Comp.In_port p' | `Out -> Comp.Out_port p' in
    (Adg.set_comp adg id comp, Printf.sprintf "retune port %d" id)

let add_port rng adg =
  let sws = Adg.switches adg in
  let engines = Adg.engines adg in
  if sws = [] || engines = [] then (adg, "noop")
  else begin
    let width = Rng.choose rng [ 8; 16; 32; 64 ] in
    let stated = Rng.bool rng in
    let base = { (Comp.default_port ~width_bytes:width) with stated } in
    if Rng.bool rng then begin
      let adg, id = Adg.add adg (Comp.In_port base) in
      let adg = ref adg in
      List.iter
        (fun (e, (en : Comp.engine)) ->
          match en.kind with
          | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Gen ->
            (try adg := Adg.add_edge !adg e id with Invalid_argument _ -> ())
          | Comp.Reg -> ())
        engines;
      adg := Adg.add_edge !adg id (Rng.choose rng sws);
      (!adg, Printf.sprintf "add in-port %d" id)
    end
    else begin
      let adg, id = Adg.add adg (Comp.Out_port base) in
      let adg = ref adg in
      adg := Adg.add_edge !adg (Rng.choose rng sws) id;
      List.iter
        (fun (e, (en : Comp.engine)) ->
          match en.kind with
          | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Reg ->
            (try adg := Adg.add_edge !adg id e with Invalid_argument _ -> ())
          | Comp.Gen -> ())
        engines;
      (!adg, Printf.sprintf "add out-port %d" id)
    end
  end

let remove_port rng ~preserve adg usage =
  let ports = List.map fst (Adg.in_ports adg) @ List.map fst (Adg.out_ports adg) in
  let cands =
    if preserve then List.filter (fun id -> not (Hashtbl.mem usage.used_nodes id)) ports
    else ports
  in
  match random_node_of rng cands with
  | None -> (adg, "noop (no removable port)")
  | Some id -> (Adg.remove_node adg id, Printf.sprintf "remove port %d" id)

let mutate_engine rng ~preserve adg usage =
  match random_node_of rng (Adg.engines adg) with
  | None -> (adg, "noop")
  | Some (id, e) ->
    let e' =
      match Rng.int rng 4 with
      | 0 ->
        { e with Comp.bandwidth = Overgen_util.Stats.clamp_int ~lo:4 ~hi:128
                   (if Rng.bool rng then e.bandwidth * 2 else e.bandwidth / 2) }
      | 1 when e.kind = Comp.Spad ->
        { e with Comp.capacity = Overgen_util.Stats.clamp_int ~lo:4096 ~hi:(256 * 1024)
                   (if Rng.bool rng then e.capacity * 2 else e.capacity / 2) }
      | 2 ->
        if e.indirect && preserve && Hashtbl.mem usage.indirect_used id then e
        else { e with Comp.indirect = not e.indirect }
      | _ ->
        let lo = if preserve then Option.value ~default:1 (Hashtbl.find_opt usage.dims_used id) else 1 in
        let d = if Rng.bool rng then e.max_dims + 1 else e.max_dims - 1 in
        { e with Comp.max_dims = Overgen_util.Stats.clamp_int ~lo ~hi:3 d }
    in
    (Adg.set_comp adg id (Comp.Engine e'), Printf.sprintf "retune engine %d" id)

let add_engine rng adg =
  let kind = Rng.choose rng [ Comp.Dma; Comp.Spad; Comp.Rec; Comp.Gen; Comp.Reg ] in
  let e = Comp.default_engine kind in
  let adg, id = Adg.add adg (Comp.Engine e) in
  let adg = ref adg in
  List.iter
    (fun (ip, _) ->
      match kind with
      | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Gen ->
        (try adg := Adg.add_edge !adg id ip with Invalid_argument _ -> ())
      | Comp.Reg -> ())
    (Adg.in_ports !adg);
  List.iter
    (fun (op_, _) ->
      match kind with
      | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Reg ->
        (try adg := Adg.add_edge !adg op_ id with Invalid_argument _ -> ())
      | Comp.Gen -> ())
    (Adg.out_ports !adg);
  (!adg, Printf.sprintf "add %s engine %d" (Comp.engine_kind_to_string kind) id)

let remove_engine rng ~preserve adg usage =
  let engines = List.map fst (Adg.engines adg) in
  let cands =
    if preserve then List.filter (fun id -> not (Hashtbl.mem usage.used_nodes id)) engines
    else engines
  in
  match random_node_of rng cands with
  | None -> (adg, "noop (no removable engine)")
  | Some id -> (Adg.remove_node adg id, Printf.sprintf "remove engine %d" id)

let prune_unused adg usage =
  let count = ref 0 in
  let adg = ref adg in
  (* PE capabilities and delay FIFOs *)
  List.iter
    (fun (id, (pe : Comp.pe)) ->
      match Hashtbl.find_opt usage.pe_caps_used id with
      | Some used ->
        let caps = Op.Cap.filter (fun p -> List.mem p used) pe.caps in
        let caps = if Op.Cap.is_empty caps then pe.caps else caps in
        let delay_needed =
          max 2 (Option.value ~default:0 (Hashtbl.find_opt usage.delay_used id))
        in
        let delay_fifo = min pe.delay_fifo (max delay_needed 4) in
        if Op.Cap.cardinal caps < Op.Cap.cardinal pe.caps || delay_fifo < pe.delay_fifo
        then begin
          incr count;
          adg := Adg.set_comp !adg id (Comp.Pe { pe with caps; delay_fifo })
        end
      | None -> ())
    (Adg.pes !adg);
  (* port features *)
  let prune_port dir (id, (p : Comp.port)) =
    if Hashtbl.mem usage.used_nodes id then begin
      let stated = p.stated && Hashtbl.mem usage.stated_used id in
      if stated <> p.stated then begin
        incr count;
        let p' = { p with stated } in
        adg :=
          Adg.set_comp !adg id
            (match dir with `In -> Comp.In_port p' | `Out -> Comp.Out_port p')
      end
    end
  in
  List.iter (prune_port `In) (Adg.in_ports !adg);
  List.iter (prune_port `Out) (Adg.out_ports !adg);
  (* engine features *)
  List.iter
    (fun (id, (e : Comp.engine)) ->
      if Hashtbl.mem usage.used_nodes id then begin
        let indirect = e.indirect && Hashtbl.mem usage.indirect_used id in
        let max_dims =
          min e.max_dims
            (max 1 (Option.value ~default:1 (Hashtbl.find_opt usage.dims_used id)))
        in
        if indirect <> e.indirect || max_dims <> e.max_dims then begin
          incr count;
          adg := Adg.set_comp !adg id (Comp.Engine { e with indirect; max_dims })
        end
      end)
    (Adg.engines !adg);
  (!adg, !count)

let propose rng ~preserve ~caps_pool adg usage =
  let weighted =
    [
      (1.2, `Add_pe);
      (0.8, `Remove_pe);
      (0.7, `Add_switch);
      (0.7, `Remove_switch);
      (1.0, `Add_link);
      (0.7, `Remove_link);
      (1.0, `Pe_caps);
      (0.5, `Delay_fifo);
      (0.9, `Port);
      (0.5, `Add_port);
      (0.4, `Remove_port);
      (0.9, `Engine);
      (0.35, `Add_engine);
      (0.35, `Remove_engine);
    ]
    @ if preserve then [ (0.9, `Prune) ] else []
  in
  match Rng.choose_weighted rng weighted with
  | `Add_pe -> add_pe rng caps_pool adg
  | `Remove_pe -> remove_pe rng ~preserve adg usage
  | `Add_switch -> add_switch rng adg
  | `Remove_switch -> remove_switch rng ~preserve adg usage
  | `Add_link -> add_link rng adg
  | `Remove_link -> remove_link rng ~preserve adg usage
  | `Pe_caps -> mutate_pe_caps rng ~preserve caps_pool adg usage
  | `Delay_fifo -> mutate_delay_fifo rng adg
  | `Port -> mutate_port rng ~preserve adg usage
  | `Add_port -> add_port rng adg
  | `Remove_port -> remove_port rng ~preserve adg usage
  | `Engine -> mutate_engine rng ~preserve adg usage
  | `Add_engine -> add_engine rng adg
  | `Remove_engine -> remove_engine rng ~preserve adg usage
  | `Prune ->
    let adg, n = prune_unused adg usage in
    (adg, Printf.sprintf "prune %d capabilities" n)
