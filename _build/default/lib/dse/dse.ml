open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp
module Rng = Overgen_util.Rng
module Perf = Overgen_perf.Perf

type config = {
  seed : int;
  iterations : int;
  initial_temp : float;
  schedule_preserving : bool;
  topologies : System.noc_topology list;
}

let default_config =
  { seed = 17; iterations = 250; initial_temp = 0.35;
    schedule_preserving = true; topologies = [ System.Crossbar ] }

type design = {
  sys : Sys_adg.t;
  per_app : Schedule.t list list;
  objective : float;
  predicted : Res.t;
}

type trace_point = { iter : int; modeled_hours : float; est_ipc : float }

type stats = {
  accepted : int;
  invalid : int;
  repaired : int;
  rescheduled : int;
}

type result = {
  best : design;
  trace : trace_point list;
  stats : stats;
  wall_seconds : float;
  modeled_hours : float;
}

module Time = struct
  let pregen_per_app_s = 90.0
  let reschedule_per_app_s = 18.0
  let repair_per_app_s = 2.0
  let iteration_overhead_s = 3.0
end

let compile_apps ~tuned kernels = List.map (Compile.compile ~tuned) kernels

let caps_pool apps =
  List.fold_left
    (fun acc (c : Compile.compiled) ->
      List.fold_left
        (fun acc variants ->
          List.fold_left
            (fun acc (v : Compile.variant) ->
              List.fold_left
                (fun acc (n : Dfg.node) ->
                  match n.kind with
                  | Dfg.Inst { op; dtype; _ } -> Op.Cap.add (op, dtype) acc
                  | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> acc)
                acc (Dfg.nodes v.dfg))
            acc variants)
        acc c.per_region)
    Op.Cap.empty apps

(* ------------------------------------------------------------------ *)
(* Nested exhaustive system DSE (Section V-A)                          *)
(* ------------------------------------------------------------------ *)

let system_dse ?(topologies = [ System.Crossbar ]) ~device ~model adg per_app =
  let usable = Device.usable device in
  let tile_res = Predict.predict_accel model adg in
  let best = ref None in
  List.iter
    (fun (sysp : System.t) ->
      let predicted =
        Res.add (Res.scale sysp.tiles tile_res) (Oracle.system_overhead sysp)
      in
      if Res.fits predicted ~within:usable then begin
        let sys = Sys_adg.make adg sysp in
        let obj = Perf.objective sys per_app in
        (* secondary objectives: prune resources-per-accelerator (and uncore
           overheads such as the NoC), but spend the freed budget on more
           tiles — the paper's DSE greedily consumes the FPGA for
           cross-workload generality even when bandwidth-bound *)
        let lut_frac =
          float_of_int (tile_res.Res.lut + (predicted.Res.lut / max 1 sysp.tiles))
          /. float_of_int (max 1 usable.Res.lut)
        in
        let score =
          obj
          *. (1.0 +. (0.02 *. (1.0 -. lut_frac)))
          *. (1.0 +. (0.004 *. float_of_int sysp.tiles))
        in
        match !best with
        | Some (bs, _, _, _) when bs >= score -> ()
        | _ -> best := Some (score, sysp, obj, predicted)
      end)
    (System.candidates ~topologies ());
  match !best with
  | Some (score, sysp, obj, predicted) -> Some (score, sysp, obj, predicted)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Scheduling with repair-first strategy                               *)
(* ------------------------------------------------------------------ *)

type sched_outcome = {
  per_app : Schedule.t list list;
  n_repaired : int;
  n_rescheduled : int;
}

let schedule_all ~additive sys apps prior =
  let n_repaired = ref 0 and n_rescheduled = ref 0 in
  let rec go acc apps prior =
    match (apps, prior) with
    | [], _ -> Some (List.rev acc)
    | app :: apps', prior_scheds :: prior' -> (
      let repaired =
        match Spatial.repair sys prior_scheds with
        | Ok s when not additive -> Some s
        | Ok s ->
          (* capacity grew: see if a more aggressive variant now fits *)
          (match Spatial.schedule_app sys app with
          | Ok s' ->
            incr n_rescheduled;
            let better =
              (Perf.app sys s').app_ipc >= (Perf.app sys s).app_ipc
            in
            Some (if better then s' else s)
          | Error _ -> Some s)
        | Error _ -> None
      in
      match repaired with
      | Some s ->
        incr n_repaired;
        go (s :: acc) apps' prior'
      | None -> (
        match Spatial.schedule_app sys app with
        | Ok s ->
          incr n_rescheduled;
          go (s :: acc) apps' prior'
        | Error _ -> None))
    | _ :: _, [] -> None
  in
  match go [] apps prior with
  | Some per_app ->
    Some { per_app; n_repaired = !n_repaired; n_rescheduled = !n_rescheduled }
  | None -> None

(* ------------------------------------------------------------------ *)
(* Fixed-design evaluation                                             *)
(* ------------------------------------------------------------------ *)

let evaluate ?(device = Device.default) ~model (sys : Sys_adg.t) apps =
  ignore device;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | app :: rest -> (
      match Spatial.schedule_app sys app with
      | Ok s -> go (s :: acc) rest
      | Error e -> Error e)
  in
  match go [] apps with
  | Error e -> Error e
  | Ok per_app ->
    Ok
      {
        sys;
        per_app;
        objective = Perf.objective sys per_app;
        predicted = Predict.predict_full model sys;
      }

(* ------------------------------------------------------------------ *)
(* The annealer                                                        *)
(* ------------------------------------------------------------------ *)

let explore ?(config = default_config) ?(device = Device.default) ~model apps =
  let t_start = Unix.gettimeofday () in
  let rng = Rng.create config.seed in
  let pool = caps_pool apps in
  let modeled = ref (Time.pregen_per_app_s *. float_of_int (List.length apps)) in
  (* Seed designs of increasing size: the smallest mesh able to host every
     workload at some unrolling degree wins. *)
  let seed_candidates =
    let engines =
      [
        { (Comp.default_engine Comp.Dma) with indirect = true };
        { (Comp.default_engine Comp.Spad) with indirect = true };
        Comp.default_engine Comp.Rec;
        Comp.default_engine Comp.Gen;
        Comp.default_engine Comp.Reg;
      ]
    in
    [
      Builder.seed ~caps:pool ~width_bits:64;
      Builder.mesh ~rows:3 ~cols:4 ~caps:pool ~sw_width_bits:128 ~width_bits:64
        ~in_port_widths:[ 32; 32; 16; 16; 16; 8; 8; 8 ]
        ~out_port_widths:[ 32; 16; 16; 8; 8 ] ~engines;
      Builder.mesh ~rows:4 ~cols:6 ~caps:pool ~sw_width_bits:256 ~width_bits:64
        ~in_port_widths:[ 64; 32; 32; 16; 16; 16; 8; 8; 8; 8 ]
        ~out_port_widths:[ 64; 32; 16; 16; 8; 8 ] ~engines;
      Builder.mesh ~rows:5 ~cols:8 ~caps:pool ~sw_width_bits:256 ~width_bits:64
        ~in_port_widths:[ 64; 64; 32; 32; 16; 16; 16; 16; 8; 8; 8; 8 ]
        ~out_port_widths:[ 64; 32; 32; 16; 16; 8; 8; 8 ] ~engines;
    ]
  in
  let initial sys_adg =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | app :: rest -> (
        match Spatial.schedule_app sys_adg app with
        | Ok s -> go (s :: acc) rest
        | Error _ -> None)
    in
    go [] apps
  in
  (* Start from the largest seed that hosts the workloads and fits the
     device: the schedule-preserving prunes then shrink it with a reward at
     every step, which anneals far better than growing across the reward
     plateau between unroll levels. *)
  let seed_adg, prior0 =
    let rec pick = function
      | [] -> failwith "Dse.explore: no seed design can host the workloads"
      | adg :: rest -> (
        match initial (Sys_adg.make adg System.default) with
        | Some p when system_dse ~topologies:config.topologies ~device ~model adg p <> None ->
          (adg, p)
        | Some _ | None -> pick rest)
    in
    pick (List.rev seed_candidates)
  in
  let score0, sysp0, obj0, pred0 =
    match system_dse ~topologies:config.topologies ~device ~model seed_adg prior0 with
    | Some r -> r
    | None -> failwith "Dse.explore: seed design does not fit the device"
  in
  let current =
    ref
      ( score0,
        { sys = Sys_adg.make seed_adg sysp0; per_app = prior0; objective = obj0; predicted = pred0 }
      )
  in
  let best = ref (snd !current) in
  let best_score = ref score0 in
  let trace = ref [] in
  let accepted = ref 0 and invalid = ref 0 in
  let repaired = ref 0 and rescheduled = ref 0 in
  for iter = 1 to config.iterations do
    let temp =
      config.initial_temp
      *. exp (-3.0 *. float_of_int iter /. float_of_int config.iterations)
    in
    let _, cur = !current in
    let usage = Mutate.usage_of (List.concat cur.per_app) in
    let adg', desc =
      Mutate.propose rng ~preserve:config.schedule_preserving ~caps_pool:pool
        cur.sys.Sys_adg.adg usage
    in
    let additive =
      String.length desc >= 3
      && (String.sub desc 0 3 = "add"
         || String.length desc >= 6 && String.sub desc 0 6 = "retune")
    in
    modeled := !modeled +. Time.iteration_overhead_s;
    if Adg.node_count adg' > 400 then incr invalid
    else begin
      let sys' = Sys_adg.with_adg cur.sys adg' in
      match schedule_all ~additive sys' apps cur.per_app with
      | None -> incr invalid
      | Some outcome -> (
        repaired := !repaired + outcome.n_repaired;
        rescheduled := !rescheduled + outcome.n_rescheduled;
        modeled :=
          !modeled
          +. (Time.repair_per_app_s *. float_of_int outcome.n_repaired)
          +. (Time.reschedule_per_app_s *. float_of_int outcome.n_rescheduled);
        match
          system_dse ~topologies:config.topologies ~device ~model adg'
            outcome.per_app
        with
        | None -> incr invalid
        | Some (score', sysp', obj', pred') ->
          let accept =
            score' >= fst !current
            ||
            let delta = (score' -. fst !current) /. Float.max 1e-9 (fst !current) in
            Rng.float rng 1.0 < exp (delta /. Float.max 1e-6 temp)
          in
          if accept then begin
            incr accepted;
            let d =
              {
                sys = Sys_adg.make adg' sysp';
                per_app = outcome.per_app;
                objective = obj';
                predicted = pred';
              }
            in
            current := (score', d);
            if score' > !best_score then begin
              best_score := score';
              best := d
            end
          end)
    end;
    trace :=
      { iter; modeled_hours = !modeled /. 3600.0; est_ipc = (snd !current).objective }
      :: !trace
  done;
  {
    best = !best;
    trace = List.rev !trace;
    stats =
      {
        accepted = !accepted;
        invalid = !invalid;
        repaired = !repaired;
        rescheduled = !rescheduled;
      };
    wall_seconds = Unix.gettimeofday () -. t_start;
    modeled_hours = !modeled /. 3600.0;
  }

let explore_kernels ?config ?device ?(tuned = false) ~model kernels =
  explore ?config ?device ~model (compile_apps ~tuned kernels)
