(** Cycle-level simulator of a generated overlay SoC (paper Section VI).

    Executes an application's schedules on a sysADG, stepping every tile
    cycle by cycle: the control core configures and dispatches streams
    through the stream dispatcher (2-cycle minimum dispatch, re-dispatch for
    loop nests deeper than the engines' 3D patterns); stream engines move
    data between port FIFOs and the memory system at their bandwidth, with
    the stream-table one-hot bypass halving single-stream issue when
    disabled (Figure 11); the spatial fabric fires one DFG instance per II
    when all input ports have data and output ports have space; DMA traffic
    crosses the per-tile NoC link into the banked shared L2, and misses go
    to DRAM, both with latency and bandwidth contention across tiles.

    Data values are not computed — the simulator tracks byte flows and
    occupancy, which is what determines cycles on this class of machine;
    functional correctness is the compiler's and scheduler's business
    (validated by their own test suites). *)

open Overgen_adg
open Overgen_scheduler

type config = {
  one_hot_bypass : bool;  (** stream-table bypass of Figure 11 *)
  l2_hit_latency : int;
  dram_latency : int;
  spad_latency : int;
  mshr_per_bank : int;    (** outstanding-miss limit per L2 bank *)
  rob_bytes : float;      (** per-stream run-ahead allowed by the engine's
                              reorder buffer; hides memory latency *)
  max_cycles : int;       (** safety stop *)
}

val default_config : config

type region_result = {
  rname : string;
  cycles : int;
  firings : int;          (** per tile *)
  dispatches : int;       (** stream dispatch events per tile *)
}

type t = {
  total_cycles : int;
  per_region : region_result list;
  l2_bytes : float;       (** bytes served by the L2 across the run *)
  dram_bytes : float;
  sim_ipc : float;        (** measured whole-SoC IPC *)
}

val run : ?config:config -> Sys_adg.t -> Schedule.t list -> t
(** Simulate all regions of one application back to back.
    @raise Failure if a schedule deadlocks or exceeds [max_cycles]. *)

val wall_time_ms : Sys_adg.t -> freq_mhz:float -> t -> float
(** Convert simulated cycles to milliseconds at the synthesized clock. *)

val reconfigure_cycles : Sys_adg.t -> int
(** Cycles to reprogram the fabric from the D-cache (Section VI-B). *)

(** {2 Multi-tenant execution}

    The paper's conclusion names heterogeneous workload mixes on one fabric
    as an open direction; this is the static-partitioning version: each
    tenant application owns a disjoint group of tiles, all groups contend
    for the shared NoC/L2/DRAM concurrently. *)

type tenant_result = {
  t_kernel : string;
  t_tiles : int;
  t_cycles : int;  (** cycle at which this tenant completed *)
}

type multi_result = {
  m_cycles : int;  (** makespan across tenants *)
  tenants : tenant_result list;
  m_l2_bytes : float;
  m_dram_bytes : float;
}

val run_multi :
  ?config:config -> Sys_adg.t -> (Schedule.t list * int) list -> multi_result
(** [run_multi sys [(app1, tiles1); (app2, tiles2); ...]] runs every
    application concurrently on its tile share.
    @raise Invalid_argument if the shares exceed the system's tiles. *)
