lib/sim/sim.ml: Adg Array Comp Compile Dfg Float List Option Overgen_adg Overgen_mdfg Overgen_perf Overgen_scheduler Overgen_util Overgen_workload Printf Queue Schedule Stream Sys_adg System
