lib/sim/sim.mli: Overgen_adg Overgen_scheduler Schedule Sys_adg
