type field = { node : int; tag : string; value : int64; bits : int }

type t = { rev_fields : field list; total_bits : int }

let empty = { rev_fields = []; total_bits = 0 }

let add t f =
  if f.bits < 1 || f.bits > 64 then invalid_arg "Bitstream.add: bits in 1..64";
  { rev_fields = f :: t.rev_fields; total_bits = t.total_bits + f.bits }

let fields t = List.rev t.rev_fields
let bit_count t = t.total_bits

let magic = 0x4F564732L (* "OVG2" *)

(* Pack fields LSB-first into 64-bit words. *)
let pack t =
  let n_words = (t.total_bits + 63) / 64 in
  let words = Array.make (max 1 n_words) 0L in
  let pos = ref 0 in
  List.iter
    (fun f ->
      (* write f.bits bits of f.value starting at bit !pos *)
      let remaining = ref f.bits in
      let v = ref f.value in
      while !remaining > 0 do
        let word = !pos / 64 and off = !pos mod 64 in
        let take = min !remaining (64 - off) in
        let mask =
          if take = 64 then -1L else Int64.sub (Int64.shift_left 1L take) 1L
        in
        let chunk = Int64.logand !v mask in
        words.(word) <- Int64.logor words.(word) (Int64.shift_left chunk off);
        v := Int64.shift_right_logical !v take;
        pos := !pos + take;
        remaining := !remaining - take
      done)
    (fields t);
  words

let checksum words =
  Array.fold_left (fun acc w -> Int64.add (Int64.mul acc 31L) w) 0x5EEDL words

let words t =
  let payload = pack t in
  let header =
    Int64.logor (Int64.shift_left magic 32)
      (Int64.of_int (List.length (fields t)))
  in
  let body = Array.append [| header |] payload in
  Array.append body [| checksum body |]

let verify image =
  let n = Array.length image in
  n >= 2
  && Int64.shift_right_logical image.(0) 32 = magic
  && image.(n - 1) = checksum (Array.sub image 0 (n - 1))

let disassemble t =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "node %3d  %-18s = 0x%Lx (%d bits)\n" f.node f.tag
           f.value f.bits))
    (fields t);
  Buffer.add_string buf
    (Printf.sprintf "total: %d fields, %d payload bits, %d words\n"
       (List.length (fields t)) (bit_count t)
       (Array.length (words t)));
  Buffer.contents buf
