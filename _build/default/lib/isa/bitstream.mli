(** Spatial-mapping bitstreams (paper Figure 3, "Spatial Mapping Bitstream").

    A bitstream is the configuration the control core streams through the
    D-cache into the computing substrate on reconfiguration: per-switch route
    selects, per-PE opcode/constant/delay settings, and per-port stream
    templates, framed into 64-bit words with a trailing checksum. *)

type t

(** A single configuration field: which node it programs, a tag for
    disassembly, and its value/width. *)
type field = { node : int; tag : string; value : int64; bits : int }

val empty : t
val add : t -> field -> t
val fields : t -> field list
(** In emission order. *)

val bit_count : t -> int
(** Total payload bits, before framing. *)

val words : t -> int64 array
(** The framed bitstream: a header word (magic, field count), the packed
    payload, and a trailing additive checksum word. *)

val checksum : int64 array -> int64
(** Checksum as computed/verified by the reconfiguration network. *)

val verify : int64 array -> bool
(** Check framing: the magic and checksum of a word image. *)

val disassemble : t -> string
(** Human-readable dump, one field per line. *)
