lib/isa/bitstream.ml: Array Buffer Int64 List Printf
