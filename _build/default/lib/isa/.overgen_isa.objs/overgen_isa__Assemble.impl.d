lib/isa/assemble.ml: Adg Array Bitstream Buffer Comp Dfg Hashtbl Int64 List Op Option Overgen_adg Overgen_mdfg Overgen_scheduler Overgen_workload Printf Schedule Stream String Sys_adg
