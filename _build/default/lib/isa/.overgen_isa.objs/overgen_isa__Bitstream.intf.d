lib/isa/bitstream.mli:
