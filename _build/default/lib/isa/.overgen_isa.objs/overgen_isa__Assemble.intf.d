lib/isa/assemble.mli: Adg Bitstream Overgen_adg Overgen_scheduler Schedule Sys_adg
