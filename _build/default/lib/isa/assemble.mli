(** Lowering schedules to the accelerator ISA.

    After spatial scheduling, an application becomes (1) a configuration
    bitstream for the computing substrate and (2) a sequence of stream
    commands the control core issues through the RoCC interface — stream
    register writes followed by instantiation, with barriers between
    dependent program regions (paper Section VI-B). *)

open Overgen_adg
open Overgen_scheduler

(** One elaborated stream command (the decoded stream-dispatch-queue entry). *)
type stream_cmd = {
  engine : Adg.id;
  port : Adg.id option;       (** destination/source hardware port *)
  write : bool;
  indirect : bool;
  rec_forward : bool;         (** recurrence-engine forwarding stream *)
  base_offset : int;          (** element offset of the array in its space *)
  dims : (int * int) list;    (** (stride, trip) per dimension, innermost first *)
  elem_bytes : int;
}

type region_program = {
  rname : string;
  config_writes : int;        (** stream-register-file writes to set up *)
  commands : stream_cmd list;
}

type program = {
  kernel : string;
  bitstream : Bitstream.t;
  regions : region_program list;
}

val assemble : Sys_adg.t -> Schedule.t list -> program
(** Lower an application's schedules to a binary-ready program. *)

val encode_cmd : stream_cmd -> int64 list
(** The stream-register write sequence for one command (address, shape,
    flags), as the control core would emit it. *)

val config_bitstream : Sys_adg.t -> Schedule.t list -> Bitstream.t
(** Just the spatial configuration: switch route selects, PE opcodes,
    constants and delay settings, port templates. *)

val disassemble : program -> string
