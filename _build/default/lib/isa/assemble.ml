open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler

type stream_cmd = {
  engine : Adg.id;
  port : Adg.id option;
  write : bool;
  indirect : bool;
  rec_forward : bool;
  base_offset : int;
  dims : (int * int) list;
  elem_bytes : int;
}

type region_program = {
  rname : string;
  config_writes : int;
  commands : stream_cmd list;
}

type program = {
  kernel : string;
  bitstream : Bitstream.t;
  regions : region_program list;
}

let log2_ceil n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  max 1 (go 0 1)

(* ---------------- configuration bitstream ---------------- *)

let config_bitstream (sys : Sys_adg.t) schedules =
  let adg = sys.adg in
  let bs = ref Bitstream.empty in
  let emit node tag value bits =
    bs := Bitstream.add !bs { Bitstream.node; tag; value = Int64.of_int value; bits }
  in
  (* Switch route selects: for each ADG edge (sw -> next) used by a route,
     program which input of the switch drives that output. *)
  List.iteri
    (fun ri (s : Schedule.t) ->
      List.iter
        (fun ((_, _), (r : Schedule.route)) ->
          let rec walk = function
            | a :: b :: (c :: _ as rest) ->
              (match Adg.comp adg b with
              | Some (Comp.Switch _) ->
                let inputs = Adg.preds adg b in
                let outputs = Adg.succs adg b in
                let idx_of l x =
                  let rec go i = function
                    | [] -> 0
                    | y :: rest -> if y = x then i else go (i + 1) rest
                  in
                  go 0 l
                in
                let in_idx = idx_of inputs a and out_idx = idx_of outputs c in
                emit b
                  (Printf.sprintf "r%d.route[out%d]" ri out_idx)
                  in_idx
                  (log2_ceil (max 2 (List.length inputs)))
              | _ -> ());
              walk (b :: rest)
            | [ _; _ ] | [ _ ] | [] -> ()
          in
          walk r.hops)
        s.routes;
      (* PE opcodes, delay settings, constants *)
      Schedule.Imap.iter
        (fun inst pe_id ->
          match (Adg.comp adg pe_id, (Dfg.node s.variant.dfg inst).kind) with
          | Some (Comp.Pe p), Dfg.Inst { op; dtype; acc } ->
            let caps = Op.Cap.elements p.caps in
            let rec idx i = function
              | [] -> 0
              | c :: rest -> if c = (op, dtype) then i else idx (i + 1) rest
            in
            emit pe_id
              (Printf.sprintf "r%d.opcode" ri)
              (idx 0 caps)
              (log2_ceil (max 2 (List.length caps)));
            if acc then emit pe_id (Printf.sprintf "r%d.acc_en" ri) 1 1;
            (* per-operand delay-FIFO settings *)
            List.iter
              (fun ((src, dst), (r : Schedule.route)) ->
                if dst = inst then
                  emit pe_id
                    (Printf.sprintf "r%d.delay[%d]" ri src)
                    r.delay
                    (log2_ceil (max 2 (p.delay_fifo + 1))))
              s.routes;
            (* constant-register operands *)
            List.iter
              (fun (o : Dfg.operand) ->
                match (Dfg.node s.variant.dfg o.src).kind with
                | Dfg.Const { value; _ } ->
                  emit pe_id
                    (Printf.sprintf "r%d.const[%d]" ri o.src)
                    (int_of_float value land 0xFFFF)
                    16
                | _ -> ())
              (Dfg.node s.variant.dfg inst).operands
          | _ -> ())
        s.inst_pe;
      (* port templates: width, stated enable *)
      Schedule.Imap.iter
        (fun dfg_port hw ->
          let lanes =
            match (Dfg.node s.variant.dfg dfg_port).kind with
            | Dfg.Input { width_bytes; _ } | Dfg.Output { width_bytes } -> width_bytes
            | _ -> 0
          in
          emit hw (Printf.sprintf "r%d.port_lanes" ri) lanes 8;
          let stated =
            List.exists
              (fun (st : Stream.t) ->
                st.port = Some dfg_port && st.reuse.stationary > 1.0)
              s.variant.streams
          in
          if stated then emit hw (Printf.sprintf "r%d.stated" ri) 1 1)
        s.port_map)
    schedules;
  !bs

(* ---------------- stream commands ---------------- *)

(* Reconstruct a coarse (stride, trip) shape from the region loops and the
   stream's reuse: up to the 3 innermost loops the engines support. *)
let dims_of_stream (s : Schedule.t) (st : Stream.t) =
  let loops = s.variant.region.Overgen_workload.Ir.loops in
  let rec last3 l =
    if List.length l <= 3 then l else last3 (List.tl l)
  in
  let stride =
    match st.access with
    | Stream.Linear { stride } -> stride
    | Stream.Indirect _ -> 1
  in
  List.mapi
    (fun i (l : Overgen_workload.Ir.loop) ->
      let trip = Overgen_workload.Ir.trip_max l.trip in
      ((if i = 0 then stride else stride * trip), trip))
    (List.rev (last3 loops))

let assemble (sys : Sys_adg.t) schedules =
  let kernel =
    match schedules with
    | (s : Schedule.t) :: _ -> s.variant.kernel
    | [] -> "empty"
  in
  let offsets = Hashtbl.create 16 in
  let next_offset = ref 0 in
  let offset_of (a : Stream.array_info) =
    match Hashtbl.find_opt offsets a.name with
    | Some o -> o
    | None ->
      let o = !next_offset in
      Hashtbl.add offsets a.name o;
      next_offset := o + (a.elems * a.elem_bytes);
      o
  in
  let regions =
    List.map
      (fun (s : Schedule.t) ->
        let commands =
          List.filter_map
            (fun (st : Stream.t) ->
              match Schedule.engine_of_stream s st with
              | None -> None
              | Some engine ->
                let base_offset =
                  match
                    List.find_opt
                      (fun (a : Stream.array_info) -> a.name = st.array)
                      s.variant.arrays
                  with
                  | Some a -> offset_of a
                  | None -> 0
                in
                Some
                  {
                    engine;
                    port =
                      Option.bind st.port (fun p ->
                          Schedule.Imap.find_opt p s.port_map);
                    write = st.dir = Stream.Write;
                    indirect =
                      (match st.access with
                      | Stream.Indirect _ -> true
                      | Stream.Linear _ -> false);
                    rec_forward = Schedule.is_rec s st;
                    base_offset;
                    dims = dims_of_stream s st;
                    elem_bytes = st.elem_bytes;
                  })
            s.variant.streams
        in
        {
          rname = s.variant.region.Overgen_workload.Ir.rname;
          config_writes = 2 + (2 * List.length commands);
          commands;
        })
      schedules
  in
  { kernel; bitstream = config_bitstream sys schedules; regions }

let encode_cmd c =
  (* word 0: base address; word 1: flags + elem size; words 2..: dims *)
  let flags =
    (if c.write then 1 else 0)
    lor (if c.indirect then 2 else 0)
    lor (if c.rec_forward then 4 else 0)
    lor (c.elem_bytes lsl 8)
    lor ((match c.port with Some p -> p | None -> 0xFF) lsl 16)
    lor (c.engine lsl 32)
  in
  Int64.of_int c.base_offset
  :: Int64.of_int flags
  :: List.map
       (fun (stride, trip) ->
         Int64.logor
           (Int64.shift_left (Int64.of_int (stride land 0xFFFFFFFF)) 32)
           (Int64.of_int (trip land 0xFFFFFFFF)))
       c.dims

let disassemble p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.kernel);
  Buffer.add_string buf
    (Printf.sprintf "config: %d fields / %d words\n"
       (List.length (Bitstream.fields p.bitstream))
       (Array.length (Bitstream.words p.bitstream)));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "region %s (%d register writes)\n" r.rname r.config_writes);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf
               "  stream eng=%d port=%s %s%s%s base=%d dims=%s elem=%dB\n"
               c.engine
               (match c.port with Some p -> string_of_int p | None -> "-")
               (if c.write then "write" else "read")
               (if c.indirect then " indirect" else "")
               (if c.rec_forward then " rec" else "")
               c.base_offset
               (String.concat "x"
                  (List.map (fun (s, t) -> Printf.sprintf "(%d,%d)" s t) c.dims))
               c.elem_bytes))
        r.commands)
    p.regions;
  Buffer.contents buf
