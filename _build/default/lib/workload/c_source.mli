(** Emission of compilable C sources with the OverGen pragmas.

    The paper's programming interface is "multithreaded C with pragmas"
    (Section III-A); this module renders each IR kernel back into exactly
    that artifact — a self-contained C translation unit with
    [#pragma dsa config] / [#pragma dsa decouple] around the offloaded
    regions, array definitions and a reference [main].  Useful for
    inspecting what the flow consumes and for cross-checking the IR against
    a host C compiler. *)

val emit : ?tuned:bool -> Ir.kernel -> string
(** The full translation unit. *)

val region_body : Ir.kernel -> Ir.region -> string
(** Just one region's loop nest. *)

val ctype : Ir.kernel -> string
(** The C element type, e.g. "double", "int16_t". *)
