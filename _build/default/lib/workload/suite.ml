type t = Dsp | Machsuite | Vision

let all = [ Dsp; Machsuite; Vision ]

let to_string = function
  | Dsp -> "dsp"
  | Machsuite -> "machsuite"
  | Vision -> "vision"

let equal = ( = )
let compare = Stdlib.compare
