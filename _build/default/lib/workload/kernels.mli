(** The 19 evaluation workloads (paper Table II): 5 DSP kernels, 5 MachSuite
    kernels, and 9 Vitis-Vision kernels, written in the loop-nest IR with the
    paper's sizes and data types.  Kernels flagged in paper Q2 also carry
    their OverGen-side tuned variants. *)

val all : Ir.kernel list
(** All 19, in the paper's Table II order. *)

val of_suite : Suite.t -> Ir.kernel list
val find : string -> Ir.kernel
(** @raise Not_found for an unknown kernel name. *)

val names : string list

val regions_for : tuned:bool -> Ir.kernel -> Ir.region list
(** The kernel's regions, substituting the manually tuned variant when
    [tuned] is set and the kernel has one. *)
