lib/workload/suite.ml: Stdlib
