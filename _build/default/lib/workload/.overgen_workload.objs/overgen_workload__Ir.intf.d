lib/workload/ir.mli: Dtype Op Overgen_adg Suite
