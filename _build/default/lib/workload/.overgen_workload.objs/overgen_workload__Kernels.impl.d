lib/workload/kernels.ml: Dtype Ir List Op Overgen_adg Suite
