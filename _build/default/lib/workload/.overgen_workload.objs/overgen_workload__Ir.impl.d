lib/workload/ir.ml: Buffer Dtype Float List Op Overgen_adg Printf String Suite
