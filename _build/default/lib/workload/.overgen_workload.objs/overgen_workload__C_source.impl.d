lib/workload/c_source.ml: Buffer Dtype Float Ir Kernels List Op Overgen_adg Printf String Suite
