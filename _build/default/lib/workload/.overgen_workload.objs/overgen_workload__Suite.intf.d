lib/workload/suite.mli:
