lib/workload/c_source.mli: Ir
