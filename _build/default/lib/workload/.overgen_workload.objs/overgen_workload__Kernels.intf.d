lib/workload/kernels.mli: Ir Suite
