open Overgen_adg

let ctype (k : Ir.kernel) =
  match k.dtype with
  | Dtype.I8 -> "int8_t"
  | Dtype.I16 -> "int16_t"
  | Dtype.I32 -> "int32_t"
  | Dtype.I64 -> "int64_t"
  | Dtype.F32 -> "float"
  | Dtype.F64 -> "double"

(* IR names may collide with libc (e.g. an array called "sin"); emitted
   globals carry a prefix. *)
let mangle name = "og_" ^ name

let affine_c (a : Ir.affine) =
  let parts =
    List.map
      (fun (v, c) -> if c = 1 then v else Printf.sprintf "%d*%s" c v)
      a.terms
  in
  let parts = if a.const <> 0 then parts @ [ string_of_int a.const ] else parts in
  match parts with [] -> "0" | _ -> String.concat " + " parts

let aref_c (r : Ir.aref) =
  match r.index with
  | Ir.Direct a -> Printf.sprintf "%s[%s]" (mangle r.array) (affine_c a)
  | Ir.Indirect { idx_array; at } ->
    Printf.sprintf "%s[%s[%s]]" (mangle r.array) (mangle idx_array) (affine_c at)

let rec expr_c (e : Ir.expr) =
  match e with
  | Ir.Load r -> aref_c r
  | Ir.Const f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | Ir.Param p -> mangle p
  | Ir.Unop (Op.Sqrt, x) -> Printf.sprintf "sqrt(%s)" (expr_c x)
  | Ir.Unop (Op.Abs, x) -> Printf.sprintf "fabs(%s)" (expr_c x)
  | Ir.Unop (op, x) -> Printf.sprintf "%s(%s)" (Op.to_string op) (expr_c x)
  | Ir.Binop (op, x, y) -> (
    let bin sym = Printf.sprintf "(%s %s %s)" (expr_c x) sym (expr_c y) in
    match op with
    | Op.Add -> bin "+"
    | Op.Sub -> bin "-"
    | Op.Mul -> bin "*"
    | Op.Div -> bin "/"
    | Op.Shl -> bin "<<"
    | Op.Shr -> bin ">>"
    | Op.Band -> bin "&"
    | Op.Bor -> bin "|"
    | Op.Bxor -> bin "^"
    | Op.Cmp_lt -> bin "<"
    | Op.Cmp_eq -> bin "=="
    | Op.Min -> Printf.sprintf "MIN(%s, %s)" (expr_c x) (expr_c y)
    | Op.Max -> Printf.sprintf "MAX(%s, %s)" (expr_c x) (expr_c y)
    | Op.Sqrt | Op.Abs | Op.Select | Op.Acc ->
      Printf.sprintf "%s(%s, %s)" (Op.to_string op) (expr_c x) (expr_c y))

let stmt_c ind s =
  let pad = String.make ind ' ' in
  match s with
  | Ir.Store (r, e) -> Printf.sprintf "%s%s = %s;" pad (aref_c r) (expr_c e)
  | Ir.Accum (r, Op.Add, e) ->
    Printf.sprintf "%s%s += %s;" pad (aref_c r) (expr_c e)
  | Ir.Accum (r, Op.Sub, e) ->
    Printf.sprintf "%s%s -= %s;" pad (aref_c r) (expr_c e)
  | Ir.Accum (r, op, e) ->
    Printf.sprintf "%s%s = %s;" pad (aref_c r)
      (expr_c (Ir.Binop (op, Ir.Load r, e)))
  | Ir.Reduce (name, Op.Add, e) ->
    Printf.sprintf "%s%s += %s;" pad (mangle name) (expr_c e)
  | Ir.Reduce (name, op, e) ->
    Printf.sprintf "%s%s = %s(%s, %s);" pad (mangle name) (Op.to_string op)
      (mangle name) (expr_c e)

let region_body (_k : Ir.kernel) (r : Ir.region) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "  #pragma dsa decouple\n";
  let ind = ref 2 in
  List.iter
    (fun (l : Ir.loop) ->
      let bound =
        match l.trip with
        | Ir.Fixed n -> string_of_int n
        | Ir.Triangular n -> Printf.sprintf "%d /* data-dependent bound */" n
      in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = 0; %s < %s; ++%s) {\n"
           (String.make !ind ' ') l.var l.var bound l.var);
      ind := !ind + 2)
    r.loops;
  List.iter (fun s -> Buffer.add_string buf (stmt_c !ind s ^ "\n")) r.body;
  List.iter
    (fun (_ : Ir.loop) ->
      ind := !ind - 2;
      Buffer.add_string buf (String.make !ind ' ' ^ "}\n"))
    r.loops;
  Buffer.contents buf

let params_of (k : Ir.kernel) =
  let rec of_expr acc (e : Ir.expr) =
    match e with
    | Ir.Param p -> if List.mem p acc then acc else p :: acc
    | Ir.Load _ | Ir.Const _ -> acc
    | Ir.Unop (_, x) -> of_expr acc x
    | Ir.Binop (_, x, y) -> of_expr (of_expr acc x) y
  in
  let of_stmt acc = function
    | Ir.Store (_, e) | Ir.Accum (_, _, e) | Ir.Reduce (_, _, e) -> of_expr acc e
  in
  List.fold_left
    (fun acc (r : Ir.region) -> List.fold_left of_stmt acc r.body)
    []
    (k.regions @ match k.og_tuning with Some t -> t.regions | None -> [])
  |> List.rev

let index_array_names (k : Ir.kernel) =
  List.concat_map
    (fun (r : Ir.region) ->
      List.concat_map
        (fun stmt ->
          List.filter_map
            (fun (a : Ir.aref) ->
              match a.index with
              | Ir.Indirect { idx_array; _ } -> Some idx_array
              | Ir.Direct _ -> None)
            (Ir.stmt_loads stmt))
        r.body)
    (k.regions @ match k.og_tuning with Some t -> t.regions | None -> [])
  |> List.sort_uniq String.compare

let emit ?(tuned = false) (k : Ir.kernel) =
  let buf = Buffer.create 1024 in
  let ty = ctype k in
  let idx_arrays = index_array_names k in
  Buffer.add_string buf
    (Printf.sprintf
       "/* %s (%s, %s) - generated from the OverGen loop-nest IR%s */\n"
       k.name (Suite.to_string k.suite) k.size_desc
       (if tuned then "; manually tuned variant" else ""));
  Buffer.add_string buf "#include <stdint.h>\n#include <math.h>\n\n";
  Buffer.add_string buf "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  Buffer.add_string buf "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n\n";
  List.iter
    (fun (name, elems) ->
      (* indirection indices must be an integer type regardless of the
         kernel's element type *)
      let aty = if List.mem name idx_arrays then "int32_t" else ty in
      Buffer.add_string buf
        (Printf.sprintf "static %s %s[%d];\n" aty (mangle name) elems))
    k.arrays;
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "static %s %s = 1;\n" ty (mangle p)))
    (params_of k);
  Buffer.add_string buf (Printf.sprintf "\nvoid %s_kernel(void) {\n"
       (String.map (function '-' -> '_' | c -> c) k.name));
  Buffer.add_string buf "#pragma dsa config\n{\n";
  List.iter
    (fun r -> Buffer.add_string buf (region_body k r))
    (Kernels.regions_for ~tuned k);
  Buffer.add_string buf "}\n}\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "int main(void) {\n  %s_kernel();\n  return 0;\n}\n"
       (String.map (function '-' -> '_' | c -> c) k.name));
  Buffer.contents buf
