(** Functional execution: does the compiled mDFG compute what the source
    loop nest computes?

    The paper verifies "functional completeness as a full system with RISC-V
    binaries on RTL cycle-level using Synopsys VCS" before FPGA runs.  The
    analog here: a golden interpreter executes the region's loop nest
    directly over concrete arrays, and a decoupled interpreter replays the
    compiled variant — streams deliver port lanes, the DFG fires once per
    unrolled block, accumulators and recurrences carry state — and the final
    array contents must match.

    This catches real compiler bugs: broken lane substitution, bad CSE,
    wrong accumulator initialization, mis-ordered output lanes. *)

open Overgen_workload
open Overgen_mdfg

type env
(** Concrete array storage: one float array per program array. *)

val make_env : ?seed:int -> Ir.kernel -> env
(** Random data for every kernel array.  Index arrays referenced by indirect
    accesses are filled with valid indices into their target arrays. *)

val copy_env : env -> env
val get : env -> string -> float array

val run_reference : env -> Ir.kernel -> Ir.region -> unit
(** Execute the loop nest directly (the golden model).  Triangular trip
    counts run to their maximum bound, consistently with the analyses. *)

val run_decoupled : env -> Compile.variant -> unit
(** Replay the compiled variant: iterate the blocked iteration space, gather
    each input-port lane through its stream, evaluate the DFG, commit output
    lanes.  @raise Invalid_argument if the variant's unroll does not divide
    the innermost trip count. *)

val max_abs_diff : env -> env -> float
(** Largest per-element difference across all arrays. *)

val check : ?seed:int -> ?unroll:int -> ?tuned:bool -> Ir.kernel -> (unit, string) result
(** End-to-end equivalence check of one kernel at one unrolling degree:
    compile every region, run both interpreters, compare within a relative
    tolerance. *)
