open Overgen_adg
open Overgen_workload
open Overgen_mdfg
module Rng = Overgen_util.Rng

type env = (string, float array) Hashtbl.t

let get env name : float array =
  match Hashtbl.find_opt env name with
  | Some a -> a
  | None ->
    let a = Array.make 1 0.0 in
    Hashtbl.add env name a;
    a

let copy_env env =
  let e = Hashtbl.create (Hashtbl.length env) in
  Hashtbl.iter (fun k v -> Hashtbl.add e k (Array.copy v)) env;
  e

(* Arrays used as indirection indices, with the array they index. *)
let index_arrays (k : Ir.kernel) =
  List.concat_map
    (fun (r : Ir.region) ->
      List.concat_map
        (fun stmt ->
          List.filter_map
            (fun (a : Ir.aref) ->
              match a.index with
              | Ir.Indirect { idx_array; _ } -> Some (idx_array, a.array)
              | Ir.Direct _ -> None)
            (Ir.stmt_loads stmt))
        r.body)
    (k.regions @ match k.og_tuning with Some t -> t.regions | None -> [])
  |> List.sort_uniq compare

let make_env ?(seed = 42) (k : Ir.kernel) =
  let rng = Rng.create seed in
  let env = Hashtbl.create 8 in
  let idx_arrays = index_arrays k in
  List.iter
    (fun (name, elems) ->
      let arr =
        match List.assoc_opt name idx_arrays with
        | Some target ->
          let target_elems =
            match List.assoc_opt target k.arrays with Some n -> n | None -> 1
          in
          Array.init elems (fun _ -> float_of_int (Rng.int rng target_elems))
        | None -> Array.init elems (fun _ -> 1.0 +. Rng.float rng 1.0)
      in
      Hashtbl.add env name arr)
    k.arrays;
  env

(* ------------------------------------------------------------------ *)
(* Shared op semantics                                                 *)
(* ------------------------------------------------------------------ *)

let apply2 op a b =
  match op with
  | Op.Add -> a +. b
  | Op.Sub -> a -. b
  | Op.Mul -> a *. b
  | Op.Div -> if b = 0.0 then 0.0 else a /. b
  | Op.Min -> Float.min a b
  | Op.Max -> Float.max a b
  | Op.Shl -> float_of_int (int_of_float a lsl (int_of_float b land 63))
  | Op.Shr -> float_of_int (int_of_float a lsr (int_of_float b land 63))
  | Op.Band -> float_of_int (int_of_float a land int_of_float b)
  | Op.Bor -> float_of_int (int_of_float a lor int_of_float b)
  | Op.Bxor -> float_of_int (int_of_float a lxor int_of_float b)
  | Op.Cmp_lt -> if a < b then 1.0 else 0.0
  | Op.Cmp_eq -> if a = b then 1.0 else 0.0
  | Op.Acc -> a +. b
  | Op.Sqrt | Op.Abs | Op.Select -> invalid_arg "apply2: not binary"

let apply1 op a =
  match op with
  | Op.Sqrt -> sqrt (Float.abs a)
  | Op.Abs -> Float.abs a
  | _ -> invalid_arg "apply1: not unary"

(* ------------------------------------------------------------------ *)
(* Golden reference: direct loop-nest interpretation                   *)
(* ------------------------------------------------------------------ *)

let eval_affine (a : Ir.affine) idx =
  List.fold_left
    (fun acc (v, c) ->
      acc + (c * (match List.assoc_opt v idx with Some x -> x | None -> 0)))
    a.const a.terms

let load_ref env (a : Ir.aref) idx =
  match a.index with
  | Ir.Direct aff ->
    let arr = get env a.array in
    arr.(eval_affine aff idx mod Array.length arr)
  | Ir.Indirect { idx_array; at } ->
    let iarr = get env idx_array in
    let i = int_of_float iarr.(eval_affine at idx mod Array.length iarr) in
    let arr = get env a.array in
    arr.(i mod Array.length arr)

let store_ref env (a : Ir.aref) idx v =
  match a.index with
  | Ir.Direct aff ->
    let arr = get env a.array in
    arr.(eval_affine aff idx mod Array.length arr) <- v
  | Ir.Indirect { idx_array; at } ->
    let iarr = get env idx_array in
    let i = int_of_float iarr.(eval_affine at idx mod Array.length iarr) in
    let arr = get env a.array in
    arr.(i mod Array.length arr) <- v

let rec eval_expr env idx (e : Ir.expr) =
  match e with
  | Ir.Load a -> load_ref env a idx
  | Ir.Const v -> v
  | Ir.Param _ -> 1.0
  | Ir.Unop (op, x) -> apply1 op (eval_expr env idx x)
  | Ir.Binop (op, x, y) -> apply2 op (eval_expr env idx x) (eval_expr env idx y)

let run_reference env (_k : Ir.kernel) (r : Ir.region) =
  let rec loops idx = function
    | [] ->
      List.iter
        (fun stmt ->
          match stmt with
          | Ir.Store (a, e) -> store_ref env a idx (eval_expr env idx e)
          | Ir.Accum (a, op, e) ->
            store_ref env a idx (apply2 op (load_ref env a idx) (eval_expr env idx e))
          | Ir.Reduce (name, op, e) ->
            let cell = get env name in
            cell.(0) <- apply2 op cell.(0) (eval_expr env idx e))
        r.body
    | (l : Ir.loop) :: rest ->
      for i = 0 to Ir.trip_max l.trip - 1 do
        loops ((l.var, i) :: idx) rest
      done
  in
  loops [] r.loops

(* ------------------------------------------------------------------ *)
(* Decoupled replay of a compiled variant                              *)
(* ------------------------------------------------------------------ *)

let run_decoupled env (v : Compile.variant) =
  let r = v.region in
  let iv = (Ir.innermost r).var in
  let inner_trip = Ir.trip_max (Ir.innermost r).trip in
  if inner_trip mod v.unroll <> 0 then
    invalid_arg "Exec.run_decoupled: unroll must divide the innermost trip";
  let dfg = v.dfg in
  let n = Dfg.size dfg in
  let values = Array.make n 0.0 in
  let port_lanes = Array.make n [||] in
  let acc_state = Array.make n 0.0 in
  let fire idx ~first_block =
    (* gather input ports *)
    List.iter
      (fun (port, slots) ->
        match (Dfg.node dfg port).kind with
        | Dfg.Input _ ->
          port_lanes.(port) <-
            Array.of_list (List.map (fun a -> load_ref env a idx) slots)
        | _ -> ())
      v.port_slots;
    (* evaluate nodes in id (topological) order *)
    Array.iter
      (fun (node : Dfg.node) ->
        let operand (o : Dfg.operand) =
          match (Dfg.node dfg o.src).kind with
          | Dfg.Input _ ->
            let lanes = port_lanes.(o.src) in
            if o.lane < Array.length lanes then lanes.(o.lane) else 0.0
          | _ -> values.(o.src)
        in
        match node.kind with
        | Dfg.Const { value; _ } -> values.(node.id) <- value
        | Dfg.Input _ | Dfg.Output _ -> ()
        | Dfg.Inst { op; acc = true; _ } ->
          let combined, init =
            match node.operands with
            | [ c ] -> (operand c, 0.0)
            | [ c; init ] -> (operand c, operand init)
            | _ -> invalid_arg "acc node arity"
          in
          if first_block then acc_state.(node.id) <- init;
          acc_state.(node.id) <- apply2 op acc_state.(node.id) combined;
          values.(node.id) <- acc_state.(node.id)
        | Dfg.Inst { op; acc = false; _ } -> (
          match node.operands with
          | [ a ] -> values.(node.id) <- apply1 op (operand a)
          | [ a; b ] -> values.(node.id) <- apply2 op (operand a) (operand b)
          | [ p; a; b ] ->
            (* select *)
            values.(node.id) <-
              (if operand p <> 0.0 then operand a else operand b)
          | _ -> invalid_arg "inst arity"))
      (Array.of_list (Dfg.nodes dfg));
    (* commit output ports *)
    List.iter
      (fun (port, slots) ->
        match (Dfg.node dfg port).kind with
        | Dfg.Output _ ->
          let node = Dfg.node dfg port in
          List.iteri
            (fun lane a ->
              match List.nth_opt node.operands lane with
              | Some o ->
                let value =
                  match (Dfg.node dfg o.src).kind with
                  | Dfg.Input _ ->
                    let lanes = port_lanes.(o.src) in
                    if o.lane < Array.length lanes then lanes.(o.lane) else 0.0
                  | _ -> values.(o.src)
                in
                store_ref env a idx value
              | None -> ())
            slots
        | _ -> ())
      v.port_slots
  in
  (* iterate the blocked iteration space *)
  let rec loops idx = function
    | [] -> assert false
    | [ (l : Ir.loop) ] ->
      assert (l.var = iv);
      for b = 0 to (inner_trip / v.unroll) - 1 do
        fire ((iv, b) :: idx) ~first_block:(b = 0)
      done
    | (l : Ir.loop) :: rest ->
      for i = 0 to Ir.trip_max l.trip - 1 do
        loops ((l.var, i) :: idx) rest
      done
  in
  loops [] r.loops

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let max_abs_diff a b =
  Hashtbl.fold
    (fun name arr acc ->
      match Hashtbl.find_opt b name with
      | None -> acc
      | Some brr ->
        let m = ref acc in
        Array.iteri
          (fun i v ->
            if i < Array.length brr then begin
              let rel = Float.abs (v -. brr.(i)) /. (1.0 +. Float.abs brr.(i)) in
              if rel > !m then m := rel
            end)
          arr;
        !m)
    a 0.0

let check ?(seed = 42) ?(unroll = 4) ?(tuned = false) (k : Ir.kernel) =
  let env = make_env ~seed k in
  let env_ref = copy_env env and env_dec = copy_env env in
  let regions = Kernels.regions_for ~tuned k in
  let rec largest_divisor u trip =
    if u <= 1 then 1 else if trip mod u = 0 then u else largest_divisor (u - 1) trip
  in
  try
    List.iter
      (fun (r : Ir.region) ->
        run_reference env_ref k r;
        let trip = Ir.trip_max (Ir.innermost r).trip in
        let u = largest_divisor (min unroll trip) trip in
        let v = Compile.compile_region k r ~tuned ~unroll:u in
        run_decoupled env_dec v)
      regions;
    let d = max_abs_diff env_ref env_dec in
    if d < 1e-6 then Ok ()
    else Error (Printf.sprintf "%s: max relative difference %.3e" k.name d)
  with
  | Invalid_argument m -> Error (k.name ^ ": " ^ m)
  | Failure m -> Error (k.name ^ ": " ^ m)
