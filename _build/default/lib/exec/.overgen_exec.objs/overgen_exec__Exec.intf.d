lib/exec/exec.mli: Compile Ir Overgen_mdfg Overgen_workload
