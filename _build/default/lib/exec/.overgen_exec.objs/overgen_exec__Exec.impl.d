lib/exec/exec.ml: Array Compile Dfg Float Hashtbl Ir Kernels List Op Overgen_adg Overgen_mdfg Overgen_util Overgen_workload Printf
