(** The DSE's bottleneck performance model (paper Section V-C).

    Estimated IPC of an application on a sysADG is the per-tile compute
    bandwidth of its scheduled mDFGs, scaled by tile count, derated by the
    most-bottlenecked memory level: scratchpad, L2 (and its NoC links), or
    DRAM — each computed as production rate / consumption rate with the
    streams' reuse factors (Equations 1 and 2). *)


open Overgen_adg
open Overgen_scheduler

(** Per-region estimate. *)
type region_perf = {
  ipc_single : float;   (** (insts + memory ops) / II for one tile *)
  spad_factor : float;  (** production/consumption, clamped to <= 1 *)
  noc_factor : float;
  l2_factor : float;
  dram_factor : float;
  bottleneck : float;   (** min of the four factors *)
  est_ipc : float;      (** Equation 1: ipc_single * tiles * bottleneck *)
  cycles : float;       (** firings * II / (tiles * bottleneck) + ramp-up *)
}

type app_perf = {
  regions : region_perf list;
  total_cycles : float;
  app_ipc : float;      (** work-weighted aggregate IPC for the app *)
}

val region : Sys_adg.t -> Schedule.t -> region_perf
val app : Sys_adg.t -> Schedule.t list -> app_perf

val objective : Sys_adg.t -> Schedule.t list list -> float
(** DSE objective over a workload set (one schedule list per application):
    the weighted geometric mean of the per-app estimated IPCs. *)

val line_bytes : int
(** Cache-line granularity used for stride-efficiency derating. *)

val stride_waste : Overgen_mdfg.Stream.t -> float
(** Line-bandwidth inflation factor of a stream: strided accesses fetch
    whole lines and use a fraction; indirect accesses pay a reorder tax. *)
