open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler

type region_perf = {
  ipc_single : float;
  spad_factor : float;
  noc_factor : float;
  l2_factor : float;
  dram_factor : float;
  bottleneck : float;
  est_ipc : float;
  cycles : float;
}

type app_perf = {
  regions : region_perf list;
  total_cycles : float;
  app_ipc : float;
}

let line_bytes = 64

(* Fraction of fetched line bytes actually used by a strided stream. *)
let stride_waste (s : Stream.t) =
  match s.access with
  | Stream.Linear { stride } ->
    let line_elems = max 1 (line_bytes / s.elem_bytes) in
    float_of_int (min (max 1 stride) line_elems)
  | Stream.Indirect _ -> 2.0

let clamp01 f = Overgen_util.Stats.clamp ~lo:1e-9 ~hi:1.0 f

let region (sys : Sys_adg.t) (sched : Schedule.t) =
  let adg = sys.adg in
  let sysp = sys.system in
  let v = sched.variant in
  let tiles = float_of_int sysp.System.tiles in
  let ii = float_of_int (max 1 sched.ii) in
  let firings = Float.max 1.0 v.firings in
  let ipc_single = Schedule.ipc sched in
  (* Per-tile duration of the region in cycles, pre-bottleneck. *)
  let duration_tile = firings /. tiles *. ii in
  let engine_kind e =
    match Adg.comp adg e with
    | Some (Comp.Engine en) -> Some en
    | Some (Comp.Pe _ | Comp.Switch _ | Comp.In_port _ | Comp.Out_port _) | None
      -> None
  in
  let spad_arrays =
    List.filter_map
      (fun (name, e) ->
        match engine_kind e with
        | Some { Comp.kind = Comp.Spad; _ } -> Some name
        | Some _ | None -> None)
      sched.array_engine
  in
  let on_spad (s : Stream.t) = List.mem s.array spad_arrays in
  (* --- scratchpad level: per engine, private to a tile --- *)
  let spad_cons = Hashtbl.create 4 in
  List.iter
    (fun (s : Stream.t) ->
      if on_spad s && not (Schedule.is_rec sched s) then
        match List.assoc_opt s.array sched.array_engine with
        | Some e ->
          (* each tile's private spad serves that tile's share of firings *)
          let bytes = Stream.mem_bytes s ~use_rec:false /. tiles in
          Hashtbl.replace spad_cons e
            ((bytes /. duration_tile)
            +. Option.value ~default:0.0 (Hashtbl.find_opt spad_cons e))
        | None -> ())
    v.streams;
  let spad_factor =
    Hashtbl.fold
      (fun e cons acc ->
        match engine_kind e with
        | Some en ->
          Float.min acc (clamp01 (float_of_int en.Comp.bandwidth /. Float.max 1e-9 cons))
        | None -> acc)
      spad_cons 1.0
  in
  (* --- shared levels: DMA streams plus scratchpad fill --- *)
  let dma_rate =
    List.fold_left
      (fun acc (s : Stream.t) ->
        if on_spad s || Schedule.is_rec sched s then acc
        else
          match List.assoc_opt s.array sched.array_engine with
          | Some e -> (
            match engine_kind e with
            | Some { Comp.kind = Comp.Dma; _ } ->
              let bytes = Stream.mem_bytes s ~use_rec:false /. tiles in
              acc +. (bytes *. stride_waste s /. duration_tile)
            | Some _ | None -> acc)
          | None -> acc)
      0.0 v.streams
  in
  (* Scratchpad fill/drain.  A partitioned array's slices land in each
     tile's spad (footprint total); a shared array must be copied whole into
     every tile's spad — there is no DRAM->spad broadcast, which is exactly
     the paper's ellpack outlier. *)
  let array_partitioned name =
    List.for_all
      (fun (s : Stream.t) -> s.array <> name || s.partitioned)
      v.streams
  in
  let fill_rate =
    List.fold_left
      (fun acc (a : Stream.array_info) ->
        if List.mem a.name spad_arrays then
          let bytes = float_of_int (a.elems * a.elem_bytes) in
          let per_tile = if array_partitioned a.name then bytes /. tiles else bytes in
          acc +. (per_tile /. duration_tile)
        else acc)
      0.0 v.arrays
  in
  (* recurrence fill/drain trickle *)
  let rec_rate =
    List.fold_left
      (fun acc (s : Stream.t) ->
        if Schedule.is_rec sched s then
          acc +. (Stream.mem_bytes s ~use_rec:true /. tiles /. duration_tile)
        else acc)
      0.0 v.streams
  in
  let l2_cons_per_tile = dma_rate +. fill_rate +. rec_rate in
  let noc_factor =
    clamp01 (float_of_int sysp.System.noc_bytes /. Float.max 1e-9 l2_cons_per_tile)
  in
  let l2_cons_total = l2_cons_per_tile *. tiles in
  (* the topology's aggregate tile<->L2 bandwidth caps the bank bandwidth
     (the ring's bisection in the topology-specialization extension) *)
  let l2_prod =
    float_of_int
      (min (System.l2_bytes_per_cycle sysp) (System.shared_bandwidth sysp))
  in
  let l2_factor = clamp01 (l2_prod /. Float.max 1e-9 l2_cons_total) in
  (* --- DRAM: L2 misses --- *)
  let working_set =
    List.fold_left
      (fun acc (a : Stream.array_info) -> acc + (a.elems * a.elem_bytes))
      0 v.arrays
  in
  let fits_l2 = working_set <= sysp.System.l2_kb * 1024 in
  let dram_cons =
    if fits_l2 then
      (* only cold misses: footprints once, amortized over the region *)
      float_of_int working_set /. duration_tile
    else l2_cons_total
  in
  let dram_prod = float_of_int (System.dram_bytes_per_cycle sysp) in
  let dram_factor = clamp01 (dram_prod /. Float.max 1e-9 dram_cons) in
  let bottleneck =
    Float.min spad_factor (Float.min noc_factor (Float.min l2_factor dram_factor))
  in
  let est_ipc = ipc_single *. tiles *. bottleneck in
  let ramp_up = float_of_int (Dfg.depth v.dfg + 100) in
  let cycles = (duration_tile /. bottleneck) +. ramp_up in
  {
    ipc_single;
    spad_factor;
    noc_factor;
    l2_factor;
    dram_factor;
    bottleneck;
    est_ipc;
    cycles;
  }

let app sys schedules =
  let regions = List.map (region sys) schedules in
  let total_cycles = List.fold_left (fun acc r -> acc +. r.cycles) 0.0 regions in
  let total_work =
    List.fold_left2
      (fun acc (sched : Schedule.t) _ ->
        acc
        +. (float_of_int (Dfg.inst_count sched.variant.dfg + Schedule.mem_ops sched)
           *. sched.variant.firings))
      0.0 schedules regions
  in
  let app_ipc = total_work /. Float.max 1.0 total_cycles in
  { regions; total_cycles; app_ipc }

let objective sys apps =
  match apps with
  | [] -> 0.0
  | _ ->
    let ipcs = List.map (fun scheds -> Float.max 1e-6 (app sys scheds).app_ipc) apps in
    Overgen_util.Stats.geomean ipcs
