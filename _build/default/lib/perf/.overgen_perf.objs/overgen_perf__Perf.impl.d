lib/perf/perf.ml: Adg Comp Dfg Float Hashtbl List Option Overgen_adg Overgen_mdfg Overgen_scheduler Overgen_util Schedule Stream Sys_adg System
