lib/perf/perf.mli: Overgen_adg Overgen_mdfg Overgen_scheduler Schedule Sys_adg
