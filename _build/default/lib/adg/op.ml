type t =
  | Add
  | Sub
  | Mul
  | Div
  | Sqrt
  | Min
  | Max
  | Abs
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Cmp_lt
  | Cmp_eq
  | Select
  | Acc

let all =
  [ Add; Sub; Mul; Div; Sqrt; Min; Max; Abs; Shl; Shr; Band; Bor; Bxor;
    Cmp_lt; Cmp_eq; Select; Acc ]

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Sqrt -> "sqrt"
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Shl -> "shl"
  | Shr -> "shr"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Cmp_lt -> "cmplt"
  | Cmp_eq -> "cmpeq"
  | Select -> "select"
  | Acc -> "acc"

let of_string s = List.find_opt (fun op -> to_string op = s) all
let compare = Stdlib.compare
let equal = ( = )

let arity = function
  | Abs | Sqrt -> 1
  | Acc -> 1
  | Select -> 3
  | Add | Sub | Mul | Div | Min | Max | Shl | Shr | Band | Bor | Bxor
  | Cmp_lt | Cmp_eq -> 2

let arith_class = function
  | Mul -> `Mul
  | Div -> `Div
  | Sqrt -> `Sqrt
  | Add | Sub | Min | Max | Abs | Shl | Shr | Band | Bor | Bxor | Cmp_lt
  | Cmp_eq | Select | Acc -> `Simple

let latency op dt = Dtype.fu_latency dt ~arith:(arith_class op)
let is_mul op = op = Mul
let is_add op = op = Add || op = Sub || op = Acc
let is_div op = op = Div

module Cap = struct
  include Set.Make (struct
    type nonrec t = t * Dtype.t

    let compare = Stdlib.compare
  end)

  let of_ops ops dtypes =
    List.concat_map (fun op -> List.map (fun dt -> (op, dt)) dtypes) ops
    |> of_list

  let supports caps op dt = mem (op, dt) caps

  let dtypes caps =
    elements caps |> List.map snd |> List.sort_uniq Dtype.compare

  let ops caps =
    elements caps |> List.map fst |> List.sort_uniq Stdlib.compare

  let count_matching caps f =
    fold (fun (op, dt) acc -> if f op dt then acc + 1 else acc) caps 0

  let to_string caps =
    elements caps
    |> List.map (fun (op, dt) -> to_string op ^ "." ^ Dtype.to_string dt)
    |> String.concat ","
end
