type t = { adg : Adg.t; system : System.t }

let make adg system = { adg; system }
let with_system t system = { t with system }
let with_adg t adg = { t with adg }

let describe t =
  let s = Adg.stats t.adg in
  Printf.sprintf "%s; accel: %d PEs, %d switches (avg radix %.2f)"
    (System.describe t.system) s.n_pe s.n_switch s.avg_radix

let config_bits t =
  let adg = t.adg in
  let switch_bits =
    List.fold_left
      (fun acc sw ->
        let radix = Adg.switch_radix adg sw in
        let sel = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 radix))))) in
        let lanes =
          (* subword lanes route independently on wide switches *)
          match Adg.comp_exn adg sw with
          | Comp.Switch { width_bits } -> max 1 (width_bits / 64)
          | _ -> 1
        in
        acc + (radix * sel * lanes))
      0 (Adg.switches adg)
  in
  let pe_bits =
    List.fold_left
      (fun acc (_, (pe : Comp.pe)) ->
        let opcode = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 (Op.Cap.cardinal pe.caps)))))) in
        let delay = 3 * 8 (* three operands, 8-bit delay-FIFO setting *) in
        let pred = if pe.predication then 64 else 8 in
        let consts = pe.const_regs * pe.width_bits in
        acc + opcode + delay + pred + consts)
      0 (Adg.pes adg)
  in
  (* each port holds a full stream template: base/stride/length per
     dimension, padding and state flags *)
  let port_bits =
    (List.length (Adg.in_ports adg) + List.length (Adg.out_ports adg)) * 256
  in
  (* per-engine stream-register defaults *)
  let engine_bits = List.length (Adg.engines adg) * 192 in
  (* configuration frames carry addressing/CRC overhead per row *)
  let payload = switch_bits + pe_bits + port_bits + engine_bits in
  payload * 3 / 2

let reconfigure_cycles t =
  (* The bitstream is fetched through the D-cache at 8 bytes/cycle, then
     shifted into the computing substrate one 64-bit frame per region per
     cycle (Section VI-B); add drain/settle overhead. *)
  let bytes = (config_bits t + 7) / 8 in
  (bytes / 8) + (bytes / 4) + 128
