(** A small persistent directed graph over integer node ids with arbitrary
    node payloads.  Used for both the architecture description graph and the
    dataflow graphs; multi-edges are not allowed. *)

type 'a t

val empty : 'a t
val add_node : 'a t -> int -> 'a -> 'a t
(** Adds or replaces the node. *)

val remove_node : 'a t -> int -> 'a t
(** Removes the node and all incident edges; no-op if absent. *)

val add_edge : 'a t -> int -> int -> 'a t
(** @raise Invalid_argument if either endpoint is absent or on a self loop. *)

val remove_edge : 'a t -> int -> int -> 'a t
val mem : 'a t -> int -> bool
val mem_edge : 'a t -> int -> int -> bool
val find : 'a t -> int -> 'a option
val find_exn : 'a t -> int -> 'a
val set_node : 'a t -> int -> 'a -> 'a t
(** Replace the payload of an existing node.  @raise Invalid_argument if absent. *)

val succs : 'a t -> int -> int list
(** Successor ids in increasing order; [] if absent. *)

val preds : 'a t -> int -> int list
val nodes : 'a t -> (int * 'a) list
(** All nodes in increasing id order. *)

val node_ids : 'a t -> int list
val edges : 'a t -> (int * int) list
val node_count : 'a t -> int
val edge_count : 'a t -> int
val fold_nodes : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
val filter_ids : 'a t -> f:(int -> 'a -> bool) -> int list
val max_id : 'a t -> int
(** Largest node id, or -1 when empty; used for fresh-id allocation. *)

val topo_sort : 'a t -> int list option
(** Topological order, or [None] if the graph has a cycle. *)

val shortest_path : 'a t -> src:int -> dst:int -> ok:(int -> bool) -> int list option
(** BFS shortest path from [src] to [dst] whose {e intermediate} nodes all
    satisfy [ok]; endpoints are exempt.  Returns the node list including both
    endpoints. *)
