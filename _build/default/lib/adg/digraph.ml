module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type 'a t = {
  payload : 'a Imap.t;
  succ : Iset.t Imap.t;
  pred : Iset.t Imap.t;
}

let empty = { payload = Imap.empty; succ = Imap.empty; pred = Imap.empty }

let add_node t id x =
  {
    payload = Imap.add id x t.payload;
    succ = (if Imap.mem id t.succ then t.succ else Imap.add id Iset.empty t.succ);
    pred = (if Imap.mem id t.pred then t.pred else Imap.add id Iset.empty t.pred);
  }

let mem t id = Imap.mem id t.payload

let adj map id = Option.value ~default:Iset.empty (Imap.find_opt id map)

let remove_node t id =
  if not (mem t id) then t
  else
    let out = adj t.succ id and inc = adj t.pred id in
    let succ =
      Iset.fold (fun p m -> Imap.update p (Option.map (Iset.remove id)) m) inc t.succ
    in
    let pred =
      Iset.fold (fun s m -> Imap.update s (Option.map (Iset.remove id)) m) out t.pred
    in
    {
      payload = Imap.remove id t.payload;
      succ = Imap.remove id succ;
      pred = Imap.remove id pred;
    }

let add_edge t src dst =
  if src = dst then invalid_arg "Digraph.add_edge: self loop";
  if not (mem t src && mem t dst) then
    invalid_arg "Digraph.add_edge: missing endpoint";
  {
    t with
    succ = Imap.add src (Iset.add dst (adj t.succ src)) t.succ;
    pred = Imap.add dst (Iset.add src (adj t.pred dst)) t.pred;
  }

let remove_edge t src dst =
  {
    t with
    succ = Imap.update src (Option.map (Iset.remove dst)) t.succ;
    pred = Imap.update dst (Option.map (Iset.remove src)) t.pred;
  }

let mem_edge t src dst = Iset.mem dst (adj t.succ src)
let find t id = Imap.find_opt id t.payload

let find_exn t id =
  match find t id with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Digraph.find_exn: no node %d" id)

let set_node t id x =
  if not (mem t id) then invalid_arg "Digraph.set_node: missing node";
  { t with payload = Imap.add id x t.payload }

let succs t id = Iset.elements (adj t.succ id)
let preds t id = Iset.elements (adj t.pred id)
let nodes t = Imap.bindings t.payload
let node_ids t = List.map fst (nodes t)

let edges t =
  Imap.fold
    (fun src out acc -> Iset.fold (fun dst acc -> (src, dst) :: acc) out acc)
    t.succ []
  |> List.rev

let node_count t = Imap.cardinal t.payload
let edge_count t = List.length (edges t)

let fold_nodes t ~init ~f =
  Imap.fold (fun id x acc -> f acc id x) t.payload init

let filter_ids t ~f =
  Imap.fold (fun id x acc -> if f id x then id :: acc else acc) t.payload []
  |> List.rev

let max_id t = Imap.fold (fun id _ acc -> max id acc) t.payload (-1)

let topo_sort t =
  let indeg = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace indeg id (List.length (preds t id))) (node_ids t);
  let queue = Queue.create () in
  Hashtbl.iter (fun id d -> if d = 0 then Queue.add id queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr count;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add s queue)
      (succs t id)
  done;
  if !count = node_count t then Some (List.rev !order) else None

let shortest_path t ~src ~dst ~ok =
  if not (mem t src && mem t dst) then None
  else if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 64 in
    let visited = Hashtbl.create 64 in
    Hashtbl.replace visited src ();
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let cur = Queue.pop queue in
      List.iter
        (fun next ->
          if not (Hashtbl.mem visited next) then
            if next = dst then begin
              Hashtbl.replace visited next ();
              Hashtbl.replace parent next cur;
              found := true
            end
            else if ok next then begin
              Hashtbl.replace visited next ();
              Hashtbl.replace parent next cur;
              Queue.add next queue
            end)
        (succs t cur)
    done;
    if not !found then None
    else begin
      let rec build acc id =
        if id = src then src :: acc else build (id :: acc) (Hashtbl.find parent id)
      in
      Some (build [] dst)
    end
  end
