(** Topology builders: initial and reference ADGs.

    The DSE starts from a seed mesh and mutates it; the hand-designed
    "general overlay" (paper Q1) is also constructed here. *)

val mesh :
  rows:int ->
  cols:int ->
  caps:Op.Cap.t ->
  sw_width_bits:int ->
  width_bits:int ->
  in_port_widths:int list ->
  out_port_widths:int list ->
  engines:Comp.engine list ->
  Adg.t
(** A classic CGRA mesh: a [(rows+1) x (cols+1)] grid of bidirectionally
    linked switches with one PE per grid cell (fed by two adjacent switches,
    draining to a third), input ports on the top switch row, output ports on
    the bottom row, and all engines fully connected to all compatible ports
    (Figure 4(a)'s fixed fully-connected memory). *)

val seed : caps:Op.Cap.t -> width_bits:int -> Adg.t
(** The 2x2 seed design the spatial DSE starts from: small mesh, one DMA, one
    scratchpad, and one engine of each auxiliary kind. *)

val general_overlay : unit -> Sys_adg.t
(** The hand-designed general overlay of evaluation Q1: a 4x6 mesh of
    full-capability 64-bit PEs behind 512-bit-class vector ports, one engine
    of every kind with indirect scratchpad support, on a 4-tile system. *)
