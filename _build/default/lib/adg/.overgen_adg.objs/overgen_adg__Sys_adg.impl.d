lib/adg/sys_adg.ml: Adg Comp Float List Op Printf System
