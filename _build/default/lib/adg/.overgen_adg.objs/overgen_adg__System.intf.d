lib/adg/system.mli:
