lib/adg/comp.ml: Op Printf
