lib/adg/op.mli: Dtype Set
