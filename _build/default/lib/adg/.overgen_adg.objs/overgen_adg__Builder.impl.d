lib/adg/builder.ml: Adg Array Comp Dtype List Op Sys_adg System
