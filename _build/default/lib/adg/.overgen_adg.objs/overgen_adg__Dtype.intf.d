lib/adg/dtype.mli:
