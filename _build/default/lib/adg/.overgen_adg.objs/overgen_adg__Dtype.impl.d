lib/adg/dtype.ml: Stdlib
