lib/adg/comp.mli: Op
