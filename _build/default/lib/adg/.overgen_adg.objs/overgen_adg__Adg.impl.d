lib/adg/adg.ml: Buffer Comp Digraph Dtype Hashtbl List Op Printf String
