lib/adg/sys_adg.mli: Adg System
