lib/adg/op.ml: Dtype List Set Stdlib String
