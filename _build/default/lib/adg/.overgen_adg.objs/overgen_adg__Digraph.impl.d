lib/adg/digraph.ml: Hashtbl Int List Map Option Printf Queue Set
