lib/adg/serial.mli: Sys_adg
