lib/adg/system.ml: List Printf
