lib/adg/builder.mli: Adg Comp Op Sys_adg
