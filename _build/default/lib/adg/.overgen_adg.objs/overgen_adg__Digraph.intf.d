lib/adg/digraph.mli:
