lib/adg/serial.ml: Adg Buffer Comp Dtype List Op Option Printf String Sys_adg System
