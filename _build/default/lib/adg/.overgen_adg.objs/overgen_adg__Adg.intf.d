lib/adg/adg.mli: Comp
