type noc_topology = Crossbar | Ring

type t = {
  tiles : int;
  noc_bytes : int;
  noc_topology : noc_topology;
  l2_banks : int;
  l2_kb : int;
  dram_channels : int;
}

let default =
  { tiles = 4; noc_bytes = 32; noc_topology = Crossbar; l2_banks = 4;
    l2_kb = 512; dram_channels = 1 }

(* One DDR4 channel's effective bandwidth (~9.6 GB/s after efficiency),
   expressed at the ~100MHz overlay clock.  Because bandwidths are absolute,
   a slow-clocked overlay sees proportionally more bytes per cycle — the
   reason overlays stay competitive on memory-bound kernels. *)
let dram_channel_bytes = 96
let dram_bytes_per_cycle t = t.dram_channels * dram_channel_bytes

(* One L2 bank is a 256-bit TileLink slave. *)
let l2_bank_bytes = 32
let l2_bytes_per_cycle t = t.l2_banks * l2_bank_bytes

let shared_bandwidth t =
  match t.noc_topology with
  | Crossbar -> t.tiles * t.noc_bytes
  | Ring -> 4 * t.noc_bytes (* two bidirectional bisection links *)

let candidates ?(topologies = [ Crossbar ]) () =
  let tiles = [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12; 13; 14; 15; 16 ] in
  let nocs = [ 16; 32; 64 ] in
  let banks = [ 2; 4; 8; 16 ] in
  let l2s = [ 256; 512; 1024 ] in
  List.concat_map
    (fun noc_topology ->
      List.concat_map
        (fun tiles ->
          List.concat_map
            (fun noc_bytes ->
              List.concat_map
                (fun l2_banks ->
                  List.map
                    (fun l2_kb ->
                      { tiles; noc_bytes; noc_topology; l2_banks; l2_kb;
                        dram_channels = 1 })
                    l2s)
                banks)
            nocs)
        tiles)
    topologies

let describe t =
  Printf.sprintf "%d tiles, %s NoC %dB/cyc, L2 %dKB x%d banks, %d DRAM ch"
    t.tiles
    (match t.noc_topology with Crossbar -> "xbar" | Ring -> "ring")
    t.noc_bytes t.l2_kb t.l2_banks t.dram_channels

let equal a b = a = b
