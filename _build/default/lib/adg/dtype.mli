(** Data types supported by generated overlays: 8..64-bit integers and
    single/double precision floats (paper Section III-B). *)

type t = I8 | I16 | I32 | I64 | F32 | F64

val bits : t -> int
val bytes : t -> int
val is_float : t -> bool
val to_string : t -> string
val of_string : string -> t option
val all : t list

val compare : t -> t -> int
val equal : t -> t -> bool

val fu_latency : t -> arith:[ `Simple | `Mul | `Div | `Sqrt ] -> int
(** Pipeline latency in cycles of a functional unit of the given class on
    this datatype, matching typical FPGA IP latencies (DSP-mapped floating
    point is deeply pipelined; integer adds are single-cycle). *)
