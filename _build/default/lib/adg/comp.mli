(** Hardware components that may appear as ADG nodes.

    The overlay accelerator is a graph of processing elements, operand
    switches, synchronization ports, and stream engines (paper Section II-A
    and III-B).  Each component carries the parameters that the design-space
    explorer mutates and the FPGA resource model prices. *)

(** Processing element. *)
type pe = {
  caps : Op.Cap.t;      (** supported (operation, datatype) pairs *)
  width_bits : int;     (** datapath width; subword SIMD when wider than dtype *)
  delay_fifo : int;     (** max per-operand delay-FIFO depth, in cycles *)
  const_regs : int;     (** number of constant registers *)
  predication : bool;   (** control lookup table for predicated execution *)
}

(** Synchronization (vector) port between memory and compute. *)
type port = {
  width_bytes : int;    (** max ingest/egest rate, bytes per cycle *)
  fifo_depth : int;     (** buffering in vector-width entries *)
  padding : bool;       (** automatic padding of non-vector-width streams *)
  stated : bool;        (** carries stream-state metadata (dimension edges) *)
}

type engine_kind = Dma | Spad | Rec | Gen | Reg

(** Stream engine (memory access or value/data movement). *)
type engine = {
  kind : engine_kind;
  bandwidth : int;      (** bytes per cycle *)
  capacity : int;       (** bytes of local storage; only meaningful for Spad *)
  indirect : bool;      (** parallel indirect access (requires reorder hw) *)
  max_dims : int;       (** supported affine pattern dimensionality, 1..3 *)
}

type t =
  | Pe of pe
  | Switch of { width_bits : int }
  | In_port of port
  | Out_port of port
  | Engine of engine

val engine_kind_to_string : engine_kind -> string
val kind_name : t -> string
(** Short tag: "pe", "sw", "ip", "op", "dma", "spad", "rec", "gen", "reg". *)

val describe : t -> string
(** One-line human-readable description with key parameters. *)

val default_pe : Op.Cap.t -> pe
val default_port : width_bytes:int -> port
val default_engine : engine_kind -> engine

val is_memory_engine : t -> bool
(** True for DMA and scratchpad engines (the ones array nodes map onto). *)

val scale_of : t -> float
(** Rough relative hardware size used as a tie-breaker weight by the DSE when
    choosing what to mutate; the precise costs come from the FPGA model. *)
