type t = I8 | I16 | I32 | I64 | F32 | F64

let bits = function
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64

let bytes t = bits t / 8

let is_float = function
  | F32 | F64 -> true
  | I8 | I16 | I32 | I64 -> false

let to_string = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let of_string = function
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f32" -> Some F32
  | "f64" -> Some F64
  | _ -> None

let all = [ I8; I16; I32; I64; F32; F64 ]
let compare = Stdlib.compare
let equal = ( = )

let fu_latency t ~arith =
  match (arith, t) with
  | `Simple, (I8 | I16 | I32 | I64) -> 1
  | `Simple, F32 -> 3
  | `Simple, F64 -> 4
  | `Mul, (I8 | I16) -> 1
  | `Mul, (I32 | I64) -> 2
  | `Mul, F32 -> 3
  | `Mul, F64 -> 4
  | `Div, (I8 | I16 | I32) -> 8
  | `Div, I64 -> 12
  | `Div, F32 -> 10
  | `Div, F64 -> 14
  | `Sqrt, (I8 | I16 | I32 | I64) -> 12
  | `Sqrt, F32 -> 12
  | `Sqrt, F64 -> 16
