(** A system-level ADG: the per-tile accelerator ADG plus the SoC parameters
    (paper: "sysADG").  All tiles are homogeneous instances of the same
    accelerator, each attached to a lightweight RISC-V-style control core. *)

type t = { adg : Adg.t; system : System.t }

val make : Adg.t -> System.t -> t
val with_system : t -> System.t -> t
val with_adg : t -> Adg.t -> t
val describe : t -> string

val config_bits : t -> int
(** Size of the configuration bitstream of one accelerator instance: switch
    route tables, PE opcode/constant slots, delay-FIFO settings, port
    configuration.  Determines reconfiguration time (Section VI-B). *)

val reconfigure_cycles : t -> int
(** Cycles to stream the configuration bitstream from the D-cache through the
    reconfiguration network, for all tiles reconfiguring in parallel. *)
