type pe = {
  caps : Op.Cap.t;
  width_bits : int;
  delay_fifo : int;
  const_regs : int;
  predication : bool;
}

type port = {
  width_bytes : int;
  fifo_depth : int;
  padding : bool;
  stated : bool;
}

type engine_kind = Dma | Spad | Rec | Gen | Reg

type engine = {
  kind : engine_kind;
  bandwidth : int;
  capacity : int;
  indirect : bool;
  max_dims : int;
}

type t =
  | Pe of pe
  | Switch of { width_bits : int }
  | In_port of port
  | Out_port of port
  | Engine of engine

let engine_kind_to_string = function
  | Dma -> "dma"
  | Spad -> "spad"
  | Rec -> "rec"
  | Gen -> "gen"
  | Reg -> "reg"

let kind_name = function
  | Pe _ -> "pe"
  | Switch _ -> "sw"
  | In_port _ -> "ip"
  | Out_port _ -> "op"
  | Engine e -> engine_kind_to_string e.kind

let describe = function
  | Pe pe ->
    Printf.sprintf "pe[%db, fifo=%d, %d caps]" pe.width_bits pe.delay_fifo
      (Op.Cap.cardinal pe.caps)
  | Switch s -> Printf.sprintf "sw[%db]" s.width_bits
  | In_port p -> Printf.sprintf "ip[%dB%s]" p.width_bytes (if p.stated then ",st" else "")
  | Out_port p -> Printf.sprintf "op[%dB]" p.width_bytes
  | Engine e ->
    Printf.sprintf "%s[bw=%dB%s%s]"
      (engine_kind_to_string e.kind)
      e.bandwidth
      (if e.capacity > 0 then Printf.sprintf ",cap=%dB" e.capacity else "")
      (if e.indirect then ",ind" else "")

let default_pe caps =
  { caps; width_bits = 64; delay_fifo = 16; const_regs = 2; predication = false }

let default_port ~width_bytes =
  { width_bytes; fifo_depth = 16; padding = false; stated = false }

let default_engine kind =
  match kind with
  | Dma -> { kind; bandwidth = 32; capacity = 0; indirect = false; max_dims = 3 }
  | Spad -> { kind; bandwidth = 32; capacity = 32 * 1024; indirect = false; max_dims = 3 }
  | Rec -> { kind; bandwidth = 16; capacity = 0; indirect = false; max_dims = 1 }
  | Gen -> { kind; bandwidth = 16; capacity = 0; indirect = false; max_dims = 3 }
  | Reg -> { kind; bandwidth = 8; capacity = 0; indirect = false; max_dims = 1 }

let is_memory_engine = function
  | Engine { kind = Dma | Spad; _ } -> true
  | Engine { kind = Rec | Gen | Reg; _ } | Pe _ | Switch _ | In_port _ | Out_port _
    -> false

let scale_of = function
  | Pe pe -> float_of_int (Op.Cap.cardinal pe.caps * pe.width_bits) /. 64.0
  | Switch s -> float_of_int s.width_bits /. 64.0
  | In_port p | Out_port p -> float_of_int p.width_bytes /. 8.0
  | Engine e ->
    float_of_int e.bandwidth /. 8.0
    +. (float_of_int e.capacity /. 8192.0)
    +. (if e.indirect then 4.0 else 0.0)
