(** Functional-unit operations.

    A processing element advertises a set of [(op, dtype)] capability pairs;
    the spatial scheduler may only place an instruction on a PE whose
    capability set contains the instruction's pair. *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Sqrt
  | Min
  | Max
  | Abs
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Cmp_lt
  | Cmp_eq
  | Select
  | Acc  (** accumulating add with an internal register (reduction) *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool

val arity : t -> int
(** Number of operands (Select is ternary, Abs/Sqrt/Acc unary-ish). *)

val arith_class : t -> [ `Simple | `Mul | `Div | `Sqrt ]
(** Hardware cost/latency class of the operation. *)

val latency : t -> Dtype.t -> int
(** Pipeline latency of this op on this datatype. *)

val is_mul : t -> bool
val is_add : t -> bool
val is_div : t -> bool

(** Capability sets: sets of [(op, dtype)] pairs. *)
module Cap : sig
  type op := t

  include Set.S with type elt = op * Dtype.t

  val of_ops : op list -> Dtype.t list -> t
  (** Cartesian product of ops and types. *)

  val supports : t -> op -> Dtype.t -> bool
  val dtypes : t -> Dtype.t list
  val ops : t -> op list

  val count_matching : t -> (op -> Dtype.t -> bool) -> int

  val to_string : t -> string
end
