(** System-level parameters of a generated overlay SoC (paper Section III-B):
    number of tiles, crossbar-NoC bandwidth, shared L2 banking/capacity, and
    DRAM channels.  Explored exhaustively by the nested system DSE. *)

(** NoC topology between tiles and L2 banks.  The paper uses a crossbar and
    names topology specialization as future work; the ring is that
    extension: far cheaper in LUTs, but bisection-limited. *)
type noc_topology = Crossbar | Ring

type t = {
  tiles : int;          (** homogeneous tiles (control core + accelerator) *)
  noc_bytes : int;      (** NoC link bandwidth, bytes per cycle *)
  noc_topology : noc_topology;
  l2_banks : int;       (** number of L2 banks (controls L2 bandwidth) *)
  l2_kb : int;          (** total shared L2 capacity, KiB *)
  dram_channels : int;  (** DRAM channels (1 on the FPGA; 2/4 in RTL sim) *)
}

val default : t
(** The paper's base system: 512 KiB inclusive L2, single DRAM channel. *)

val dram_bytes_per_cycle : t -> int
(** Aggregate DRAM bandwidth at the overlay clock, bytes per cycle. *)

val l2_bytes_per_cycle : t -> int
(** Aggregate L2 bandwidth: banks x bank width. *)

val l2_bank_bytes : int
(** Bytes per cycle a single L2 bank can serve (256-bit TileLink slave). *)

val shared_bandwidth : t -> int
(** Aggregate tile<->L2 bandwidth the topology can sustain: all links for a
    crossbar, the bisection for a ring. *)

val candidates : ?topologies:noc_topology list -> unit -> t list
(** The exhaustive system design space enumerated inside each spatial-DSE
    iteration (Section V-A): tiles in 1..16, banks, NoC widths, L2 sizes.
    Topologies default to the paper's crossbar only. *)

val describe : t -> string
val equal : t -> t -> bool
