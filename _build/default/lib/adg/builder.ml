let connect_engine_to_ports adg eng_id (e : Comp.engine) ins outs =
  (* Full crossbar between engines and compatible ports: DMA/Spad/Rec/Gen feed
     input ports; DMA/Spad/Rec/Reg drain output ports. *)
  let feeds_inputs =
    match e.kind with
    | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Gen -> true
    | Comp.Reg -> false
  in
  let drains_outputs =
    match e.kind with
    | Comp.Dma | Comp.Spad | Comp.Rec | Comp.Reg -> true
    | Comp.Gen -> false
  in
  let adg =
    if feeds_inputs then
      List.fold_left (fun adg ip -> Adg.add_edge adg eng_id ip) adg ins
    else adg
  in
  if drains_outputs then
    List.fold_left (fun adg op -> Adg.add_edge adg op eng_id) adg outs
  else adg

let mesh ~rows ~cols ~caps ~sw_width_bits ~width_bits ~in_port_widths
    ~out_port_widths ~engines =
  let sw_width = sw_width_bits in
  let adg = Adg.empty in
  (* Switch grid: (rows+1) x (cols+1). *)
  let srows = rows + 1 and scols = cols + 1 in
  let sw = Array.make_matrix srows scols (-1) in
  let adg = ref adg in
  for r = 0 to srows - 1 do
    for c = 0 to scols - 1 do
      let a, id = Adg.add !adg (Comp.Switch { width_bits = sw_width }) in
      adg := a;
      sw.(r).(c) <- id
    done
  done;
  (* Bidirectional orthogonal links. *)
  for r = 0 to srows - 1 do
    for c = 0 to scols - 1 do
      if c + 1 < scols then begin
        adg := Adg.add_edge !adg sw.(r).(c) sw.(r).(c + 1);
        adg := Adg.add_edge !adg sw.(r).(c + 1) sw.(r).(c)
      end;
      if r + 1 < srows then begin
        adg := Adg.add_edge !adg sw.(r).(c) sw.(r + 1).(c);
        adg := Adg.add_edge !adg sw.(r + 1).(c) sw.(r).(c)
      end
    done
  done;
  (* One PE per cell, fed by its NW and NE corner switches, draining to SW. *)
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let pe = { (Comp.default_pe caps) with width_bits } in
      let a, pe_id = Adg.add !adg (Comp.Pe pe) in
      adg := a;
      adg := Adg.add_edge !adg sw.(r).(c) pe_id;
      adg := Adg.add_edge !adg sw.(r).(c + 1) pe_id;
      adg := Adg.add_edge !adg pe_id sw.(r + 1).(c)
    done
  done;
  (* Ports: inputs along the top switch row, outputs along the bottom. *)
  let ins =
    List.mapi
      (fun i w ->
        let port = { (Comp.default_port ~width_bytes:w) with stated = true } in
        let a, id = Adg.add !adg (Comp.In_port port) in
        adg := a;
        adg := Adg.add_edge !adg id sw.(0).(i mod scols);
        id)
      in_port_widths
  in
  let outs =
    List.mapi
      (fun i w ->
        let port = { (Comp.default_port ~width_bytes:w) with stated = true } in
        let a, id = Adg.add !adg (Comp.Out_port port) in
        adg := a;
        adg := Adg.add_edge !adg sw.(srows - 1).(i mod scols) id;
        id)
      out_port_widths
  in
  List.iter
    (fun e ->
      let a, id = Adg.add !adg (Comp.Engine e) in
      adg := a;
      adg := connect_engine_to_ports !adg id e ins outs)
    engines;
  !adg

let seed ~caps ~width_bits =
  mesh ~rows:2 ~cols:2 ~caps ~sw_width_bits:(2 * width_bits) ~width_bits
    ~in_port_widths:[ width_bits / 8; width_bits / 8; width_bits / 8 ]
    ~out_port_widths:[ width_bits / 8; width_bits / 8 ]
    ~engines:
      [
        Comp.default_engine Comp.Dma;
        Comp.default_engine Comp.Spad;
        Comp.default_engine Comp.Rec;
        Comp.default_engine Comp.Gen;
        Comp.default_engine Comp.Reg;
      ]

let general_overlay () =
  let caps = Op.Cap.of_ops Op.all Dtype.all in
  let engines =
    [
      { (Comp.default_engine Comp.Dma) with bandwidth = 64; indirect = true };
      {
        (Comp.default_engine Comp.Spad) with
        bandwidth = 32;
        capacity = 32 * 1024;
        indirect = true;
      };
      Comp.default_engine Comp.Rec;
      Comp.default_engine Comp.Gen;
      Comp.default_engine Comp.Reg;
    ]
  in
  let adg =
    mesh ~rows:4 ~cols:6 ~caps ~sw_width_bits:256 ~width_bits:64
      ~in_port_widths:[ 64; 64; 32; 16; 16; 16; 8; 8 ]
      ~out_port_widths:[ 64; 32; 32; 16; 8; 8 ]
      ~engines
  in
  Sys_adg.make adg
    { System.tiles = 4; noc_bytes = 32; noc_topology = System.Crossbar;
      l2_banks = 4; l2_kb = 512; dram_channels = 1 }
