open Overgen_workload
open Overgen_mdfg
open Overgen_fpga

type pragmas = { unroll : int; partition : int }

type design = {
  kernel : string;
  tuned : bool;
  pragmas : pragmas;
  ii : int;
  cycles : float;
  freq_mhz : float;
  res : Res.t;
}

let hls_run_hours = 1.2
let dram_gbps = 9.6 (* one channel, effective *)
let stage_limit_bytes = 256 * 1024

let log2i n = int_of_float (Float.log2 (float_of_int (max 1 n)))

let freq_of pragmas =
  let f =
    280.0 -. (18.0 *. float_of_int (log2i pragmas.unroll))
    -. (8.0 *. float_of_int (log2i pragmas.partition))
  in
  Overgen_util.Stats.clamp ~lo:140.0 ~hi:280.0 f

let region_ii ~tuned (r : Ir.region) =
  match r.hls with
  | Ir.Clean -> 1
  | Ir.Variable_trip { untuned_ii; tuned_ii } -> if tuned then tuned_ii else untuned_ii
  | Ir.Strided { untuned_ii } -> if tuned then 1 else untuned_ii

let evaluate ?(dram_channels = 1) ~tuned (k : Ir.kernel) pragmas =
  let regions = Kernels.regions_for ~tuned k in
  let freq = freq_of pragmas in
  let dram_bytes_per_cycle =
    dram_gbps *. float_of_int dram_channels *. 1000.0 /. freq
  in
  let eval_region (r : Ir.region) =
    let v = Compile.compile_region k r ~tuned ~unroll:1 in
    let ii0 = region_ii ~tuned r in
    (* Untuned code patterns also defeat unrolling: a data-dependent trip
       count cannot be unrolled, and un-coalesced strided loads serialize on
       the memory interface no matter the parallel factor (paper Q2). *)
    let u_eff =
      match (tuned, r.hls) with
      | false, Ir.Variable_trip _ -> min pragmas.unroll 2
      | true, Ir.Variable_trip _ ->
        (* guarding the variable bound with in-loop conditions restores
           pipelining but keeps a carried dependence: unrolling saturates *)
        min pragmas.unroll 8
      | _, _ -> pragmas.unroll
    in
    let staged (a : Stream.array_info) = a.elems * a.elem_bytes <= stage_limit_bytes in
    (* BRAM port pressure per staged array *)
    let ii_mem =
      List.fold_left
        (fun acc (a : Stream.array_info) ->
          if not (staged a) then acc
          else
            let accesses =
              List.fold_left
                (fun n (s : Stream.t) -> if s.array = a.name then n + s.lanes else n)
                0 v.streams
            in
            max acc
              (Overgen_util.Stats.div_ceil (accesses * u_eff)
                 (2 * pragmas.partition)))
        1 v.arrays
    in
    let ii_eff = max ii0 ii_mem in
    let compute =
      (v.iters /. float_of_int u_eff *. float_of_int ii_eff) +. 50.0
    in
    let offchip_bytes =
      List.fold_left
        (fun acc (a : Stream.array_info) ->
          let streams = List.filter (fun (s : Stream.t) -> s.array = a.name) v.streams in
          if staged a then
            (* staged: fill once, drain if written *)
            let fp = float_of_int (a.elems * a.elem_bytes) in
            acc +. if a.read_only then fp else 2.0 *. fp
          else
            List.fold_left
              (fun acc (s : Stream.t) ->
                let elems =
                  if k.window_reuse && tuned then float_of_int s.reuse.footprint
                  else s.reuse.traffic
                in
                acc +. (elems *. float_of_int s.elem_bytes))
              acc streams)
        0.0 v.arrays
    in
    let mem_cycles = offchip_bytes /. dram_bytes_per_cycle in
    let cycles = Float.max compute mem_cycles +. 64.0 in
    (* resources *)
    let fu =
      List.fold_left
        (fun acc (op, n) -> Res.add acc (Res.scale (n * pragmas.unroll) (Oracle.fu_cost op k.dtype)))
        Res.zero
        (Dfg.op_histogram v.dfg)
    in
    let brams =
      List.fold_left
        (fun acc (a : Stream.array_info) ->
          if staged a then
            acc
            + (Overgen_util.Stats.div_ceil (a.elems * a.elem_bytes) 4608
              * max 1 (pragmas.partition / 4))
          else acc)
        0 v.arrays
    in
    let control =
      { Res.lut = 3000 + (500 * List.length v.streams); ff = 3500; bram = 2; dsp = 0 }
    in
    (ii_eff, cycles, Res.add fu (Res.add control { Res.lut = 0; ff = 0; bram = brams; dsp = 0 }))
  in
  let results = List.map eval_region regions in
  let ii = List.fold_left (fun acc (i, _, _) -> max acc i) 1 results in
  let cycles = List.fold_left (fun acc (_, c, _) -> acc +. c) 0.0 results in
  let res =
    List.fold_left (fun acc (_, _, r) -> Res.add acc r) Res.zero results
  in
  (* the AXI shell and DDR controller of an HLS design *)
  let res = Res.add res { Res.lut = 30000; ff = 40000; bram = 48; dsp = 0 } in
  { kernel = k.name; tuned; pragmas; ii; cycles; freq_mhz = freq; res }

let runtime_ms d = d.cycles /. (d.freq_mhz *. 1000.0)

type explore = {
  best : design;
  candidates : int;
  dse_hours : float;
  synth_hours : float;
}

(* AutoDSE's pre-built database covers common kernels (paper: gemm). *)
let database = [ ("gemm", { unroll = 16; partition = 16 }) ]

let autodse ?(dram_channels = 1) ?(device = Device.default) ~tuned (k : Ir.kernel) =
  match List.assoc_opt k.name database with
  | Some p ->
    let best = evaluate ~dram_channels ~tuned k p in
    {
      best;
      candidates = 1;
      dse_hours = hls_run_hours;
      synth_hours = Oracle.synthesis_hours ~device best.res *. 1.2;
    }
  | None ->
    let inner_trip =
      List.fold_left
        (fun acc (r : Ir.region) -> max acc (Ir.trip_max (Ir.innermost r).trip))
        1
        (Kernels.regions_for ~tuned k)
    in
    let budget = Res.scale_f 0.85 device.Device.capacity in
    let fits d = Res.fits d.res ~within:budget in
    let candidates = ref 0 in
    let eval p =
      incr candidates;
      evaluate ~dram_channels ~tuned k p
    in
    let rec climb current d =
      (* Bottleneck-guided: grow the pragma that limits performance. *)
      let max_unroll = if tuned then 64 else 16 in
      let try_next p' =
        if p'.unroll > min max_unroll inner_trip || p'.partition > 16 then None
        else
          let d' = eval p' in
          if fits d' && runtime_ms d' < runtime_ms d *. 0.98 then Some (p', d')
          else None
      in
      let next =
        let attempts =
          if d.ii > region_ii ~tuned (List.hd (Kernels.regions_for ~tuned k))
          then
            (* on-chip port bound: partition first *)
            [
              { current with partition = current.partition * 2 };
              { unroll = current.unroll * 2; partition = current.partition * 2 };
            ]
          else
            [
              { current with unroll = current.unroll * 2 };
              { current with partition = current.partition * 2 };
              { unroll = current.unroll * 2; partition = current.partition * 2 };
            ]
        in
        List.fold_left
          (fun acc p' -> match acc with Some _ -> acc | None -> try_next p')
          None attempts
      in
      match next with
      | Some (p', d') -> climb p' d'
      | None -> d
    in
    let p0 = { unroll = 1; partition = 1 } in
    let best = climb p0 (eval p0) in
    {
      best;
      candidates = !candidates;
      dse_hours = float_of_int !candidates *. hls_run_hours;
      synth_hours = Oracle.synthesis_hours ~device best.res *. 1.2;
    }
