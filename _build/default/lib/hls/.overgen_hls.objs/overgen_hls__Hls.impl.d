lib/hls/hls.ml: Compile Device Dfg Float Ir Kernels List Oracle Overgen_fpga Overgen_mdfg Overgen_util Overgen_workload Res Stream
