lib/hls/hls.mli: Device Ir Overgen_fpga Overgen_workload Res
