(** The HLS + AutoDSE baseline (paper Section VII).

    An analytical model of a state-of-the-art HLS toolchain (Merlin/Vitis)
    compiling each kernel to a fixed-function pipeline, and a re-implementation
    of AutoDSE's bottleneck-guided pragma exploration on top of it.

    The model encodes the code-pattern weaknesses the paper measured in
    Table IV: variable loop trip counts and small-stride access inflate the
    pipeline initiation interval until manual kernel tuning removes them;
    sliding-window kernels get line-buffered reuse only in their tuned form.
    HLS designs clock higher than overlays but pay per-design synthesis. *)

open Overgen_workload
open Overgen_fpga

type pragmas = {
  unroll : int;     (** innermost-loop parallel factor *)
  partition : int;  (** cyclic array partitioning factor (BRAM ports) *)
}

type design = {
  kernel : string;
  tuned : bool;
  pragmas : pragmas;
  ii : int;             (** worst region initiation interval achieved *)
  cycles : float;
  freq_mhz : float;
  res : Res.t;
}

val evaluate : ?dram_channels:int -> tuned:bool -> Ir.kernel -> pragmas -> design
(** Model one HLS run with the given pragmas. *)

val runtime_ms : design -> float

type explore = {
  best : design;
  candidates : int;     (** HLS runs the explorer performed *)
  dse_hours : float;    (** modeled exploration time (one HLS run each) *)
  synth_hours : float;  (** modeled final place-and-route time *)
}

val autodse : ?dram_channels:int -> ?device:Device.t -> tuned:bool -> Ir.kernel -> explore
(** Bottleneck-guided exploration: repeatedly doubles the pragma limiting
    performance while the design fits the device, like AutoDSE's
    finite-state explorer.  Kernels covered by AutoDSE's pre-built database
    (gemm) start from the stored configuration at no exploration cost. *)

val hls_run_hours : float
(** Modeled wall-clock of one Merlin/Vitis HLS evaluation. *)
