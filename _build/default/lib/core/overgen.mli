(** OverGen: domain-specific overlay generation for FPGAs.

    The end-to-end flow of the paper, as a library:

    {[
      let model = Overgen.train_model () in
      (* one-time, per domain: generate a specialized overlay *)
      let overlay = Overgen.generate ~model Overgen_workload.Kernels.(of_suite Suite.Dsp) in
      (* seconds, per application: compile and run *)
      match Overgen.run_kernel overlay (Overgen_workload.Kernels.find "fir") with
      | Ok report -> Format.printf "%.3f ms@n" report.wall_ms
      | Error e -> prerr_endline e
    ]}

    The heavy phases (DSE hours, synthesis hours) are modeled at paper scale
    but execute in seconds; compilation and simulation are real. *)

open Overgen_adg
open Overgen_workload
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp

type overlay = {
  design : Overgen_dse.Dse.design;  (** the chosen sysADG and its schedules *)
  synth : Oracle.full;              (** post-synthesis resources and clock *)
  model : Predict.t;
  dse : Overgen_dse.Dse.result option;  (** trace, when DSE was run *)
}

val train_model : ?seed:int -> unit -> Predict.t
(** Train the ML FPGA-resource model (paper Section V-D). *)

val generate :
  ?config:Overgen_dse.Dse.config ->
  ?device:Device.t ->
  ?tuned:bool ->
  model:Predict.t ->
  Ir.kernel list ->
  overlay
(** Run the full overlay-generation DSE for a workload domain and
    "synthesize" the winner. *)

val general : model:Predict.t -> Ir.kernel list -> (overlay, string) result
(** Evaluate the hand-designed general overlay on a workload set (no DSE). *)

val on_design :
  model:Predict.t -> Sys_adg.t -> Ir.kernel list -> (overlay, string) result
(** Map a workload set onto an existing design (e.g. leave-one-out). *)

(** Per-application execution report. *)
type report = {
  kernel : string;
  schedules : Schedule.t list;
  cycles : int;
  wall_ms : float;
  ipc : float;
  compile_seconds : float;  (** real, measured compile+schedule time *)
}

val compile_kernel :
  ?tuned:bool -> overlay -> Ir.kernel -> (Schedule.t list * float, string) result
(** Compile an application onto an existing overlay; the float is measured
    wall-clock seconds — the paper's "compilation is 10000x faster" claim. *)

val run_kernel : ?tuned:bool -> overlay -> Ir.kernel -> (report, string) result
(** Compile, then simulate cycle-level, and convert to wall time at the
    synthesized clock. *)

val reconfigure_us : overlay -> float
(** Microseconds to switch the overlay to another application's
    configuration: the fast-reconfiguration claim (paper Q5). *)

val binary : overlay -> Schedule.t list -> Overgen_isa.Assemble.program
(** Lower compiled schedules to the accelerator binary: the spatial-mapping
    bitstream plus the stream-command program (paper Figure 3). *)

val rtl : overlay -> Overgen_rtl.Emit.rtl
(** Emit structural Verilog for the overlay SoC. *)

val verify_functional : ?unroll:int -> Ir.kernel -> (unit, string) result
(** Check the compiler end to end on concrete data: golden loop-nest
    interpretation vs decoupled replay (the paper's pre-FPGA functional
    verification step). *)

val fpga_reflash_ms : float
(** Full-bitstream FPGA reconfiguration time the paper compares against. *)
