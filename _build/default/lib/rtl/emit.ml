open Overgen_adg

type rtl = { modules : (string * string) list; top : string }

let buff fmt = Printf.sprintf fmt

(* ------------------------------------------------------------------ *)
(* Leaf modules                                                        *)
(* ------------------------------------------------------------------ *)

let fu_body caps =
  let cases =
    Op.Cap.elements caps
    |> List.mapi (fun i (op, dt) ->
           let expr =
             match op with
             | Op.Add -> "a + b"
             | Op.Sub -> "a - b"
             | Op.Mul -> "a * b"
             | Op.Div -> "b == 0 ? '0 : a / b"
             | Op.Min -> "($signed(a) < $signed(b)) ? a : b"
             | Op.Max -> "($signed(a) > $signed(b)) ? a : b"
             | Op.Abs -> "a[W-1] ? -a : a"
             | Op.Shl -> "a << b[5:0]"
             | Op.Shr -> "a >> b[5:0]"
             | Op.Band -> "a & b"
             | Op.Bor -> "a | b"
             | Op.Bxor -> "a ^ b"
             | Op.Cmp_lt -> "{{(W-1){1'b0}}, $signed(a) < $signed(b)}"
             | Op.Cmp_eq -> "{{(W-1){1'b0}}, a == b}"
             | Op.Select -> "p ? a : b"
             | Op.Sqrt -> "a" (* iterative unit stub: handled by latency *)
             | Op.Acc -> "acc_q + a"
           in
           buff "      %d: fu_result = %s; // %s.%s" i expr (Op.to_string op)
             (Dtype.to_string dt))
    |> String.concat "\n"
  in
  cases

let pe_module name (pe : Comp.pe) ~fan_in ~fan_out =
  let n_ops = max 1 (Op.Cap.cardinal pe.caps) in
  let opw = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 n_ops))))) in
  buff
    {|// Processing element: dedicated instruction, %d-entry delay FIFOs
module %s #(
  parameter W = %d
) (
  input  wire                clk,
  input  wire                rst,
  input  wire [%d:0]         cfg_opcode,
  input  wire [7:0]          cfg_delay_a,
  input  wire [7:0]          cfg_delay_b,
  input  wire                cfg_acc_en,
  input  wire [W-1:0]        cfg_const,
  input  wire [%d*W-1:0]     in_bus,
  input  wire [%d-1:0]       in_valid,
  output wire [%d*W-1:0]     out_bus,
  output wire [%d-1:0]       out_valid
);
  // operand delay FIFOs (shift-register based, as on FPGA SRLs)
  reg [W-1:0] dly_a [0:%d];
  reg [W-1:0] dly_b [0:%d];
  reg [W-1:0] acc_q;
  wire [W-1:0] a = dly_a[cfg_delay_a];
  wire [W-1:0] b = dly_b[cfg_delay_b];
  wire p = b[0];
  reg [W-1:0] fu_result;
  integer i;
  always @(posedge clk) begin
    dly_a[0] <= in_bus[W-1:0];
    dly_b[0] <= in_bus[2*W-1:W];
    for (i = 1; i <= %d; i = i + 1) begin
      dly_a[i] <= dly_a[i-1];
      dly_b[i] <= dly_b[i-1];
    end
    if (rst) acc_q <= '0;
    else if (cfg_acc_en) acc_q <= fu_result;
  end
  always @* begin
    fu_result = '0;
    case (cfg_opcode)
%s
      default: fu_result = '0;
    endcase
  end
  genvar g;
  generate
    for (g = 0; g < %d; g = g + 1) begin : outs
      assign out_bus[(g+1)*W-1:g*W] = fu_result;
      assign out_valid[g] = &in_valid;
    end
  endgenerate
endmodule
|}
    pe.delay_fifo name pe.width_bits (opw - 1) (max 1 fan_in) (max 1 fan_in)
    (max 1 fan_out) (max 1 fan_out) pe.delay_fifo pe.delay_fifo pe.delay_fifo
    (fu_body pe.caps) (max 1 fan_out)

let switch_module name ~width_bits ~fan_in ~fan_out =
  let selw =
    max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 fan_in)))))
  in
  buff
    {|// Operand switch: %dx%d crossbar, %d-bit datapath, registered outputs
module %s (
  input  wire                  clk,
  input  wire [%d*%d-1:0]      cfg_route, // per-output input select
  input  wire [%d*%d-1:0]      in_bus,
  input  wire [%d-1:0]         in_valid,
  output reg  [%d*%d-1:0]      out_bus,
  output reg  [%d-1:0]         out_valid
);
  integer o;
  reg [%d-1:0] sel;
  always @(posedge clk) begin
    for (o = 0; o < %d; o = o + 1) begin
      sel = cfg_route[o*%d +: %d];
      out_bus[o*%d +: %d] <= in_bus[sel*%d +: %d];
      out_valid[o] <= in_valid[sel];
    end
  end
endmodule
|}
    fan_in fan_out width_bits name fan_out selw fan_in width_bits fan_in
    fan_out width_bits fan_out selw fan_out selw selw width_bits width_bits
    width_bits width_bits

let port_module name (p : Comp.port) ~dir =
  let dir_comment = match dir with `In -> "input" | `Out -> "output" in
  buff
    {|// %s vector port: %dB wide, %d-deep FIFO%s%s
module %s #(
  parameter W = %d,
  parameter DEPTH = %d
) (
  input  wire         clk,
  input  wire         rst,
  input  wire [W-1:0] enq_data,
  input  wire         enq_valid,
  output wire         enq_ready,
  output wire [W-1:0] deq_data,
  output wire         deq_valid,
  input  wire         deq_ready,
  input  wire         cfg_stated_en,
  output wire         stream_state
);
  reg [W-1:0] mem [0:DEPTH-1];
  reg [$clog2(DEPTH):0] head, tail, count;
  assign enq_ready = count < DEPTH;
  assign deq_valid = count != 0;
  assign deq_data  = mem[head[$clog2(DEPTH)-1:0]];
  assign stream_state = cfg_stated_en & (count == 1);
  always @(posedge clk) begin
    if (rst) begin head <= '0; tail <= '0; count <= '0; end
    else begin
      if (enq_valid && enq_ready) begin
        mem[tail[$clog2(DEPTH)-1:0]] <= enq_data;
        tail <= tail + 1'b1;
      end
      if (deq_valid && deq_ready) head <= head + 1'b1;
      count <= count + (enq_valid && enq_ready) - (deq_valid && deq_ready);
    end
  end
endmodule
|}
    dir_comment p.width_bytes p.fifo_depth
    (if p.padding then ", auto-padding" else "")
    (if p.stated then ", stream-state" else "")
    name (p.width_bytes * 8) (max 2 p.fifo_depth)

let engine_module name (e : Comp.engine) =
  let kind = Comp.engine_kind_to_string e.kind in
  buff
    {|// %s stream engine: %dB/cycle, %dD affine patterns%s%s
// Pipeline: Stream Issue -> Stream Request -> Stream Generation (Fig. 10),
// with the one-hot bypass around the flip-flop stream table (Fig. 11).
module %s #(
  parameter BW = %d,
  parameter TABLE = 8
) (
  input  wire          clk,
  input  wire          rst,
  // stream dispatch bus
  input  wire [127:0]  dispatch_entry,
  input  wire          dispatch_valid,
  output wire          dispatch_ready,
  // memory side
  output reg  [63:0]   mem_addr,
  output reg  [BW*8-1:0] mem_wdata,
  output reg           mem_req,
  output reg           mem_we,
  input  wire          mem_gnt,
  input  wire [BW*8-1:0] mem_rdata,
  input  wire          mem_rvalid,
  // port side
  output wire [BW*8-1:0] port_data,
  output wire          port_valid,
  input  wire          port_ready
);
  // stream table: flip-flop based; the one-hot bypass forwards the updated
  // entry straight to issue when exactly one stream is active
  reg [127:0] table_q [0:TABLE-1];
  reg [TABLE-1:0] valid_q;
  wire one_hot = (valid_q & (valid_q - 1)) == '0 && valid_q != '0;
  reg [127:0] issue_entry;
  reg         issue_valid;
  reg [127:0] bypass_q;
  reg         bypass_valid;
  integer i;
  assign dispatch_ready = ~&valid_q;
  always @(posedge clk) begin
    if (rst) begin valid_q <= '0; issue_valid <= 1'b0; bypass_valid <= 1'b0; end
    else begin
      if (dispatch_valid && dispatch_ready)
        for (i = 0; i < TABLE; i = i + 1)
          if (!valid_q[i]) begin
            table_q[i] <= dispatch_entry;
            valid_q[i] <= 1'b1;
          end
      issue_valid <= |valid_q;
      issue_entry <= bypass_valid && one_hot ? bypass_q : table_q[0];
      // next-state writeback with bypass
      bypass_q <= issue_entry + 128'd1;
      bypass_valid <= issue_valid;
    end
  end
  // stream request: linear / indirect address generation
  always @(posedge clk) begin
    mem_req  <= issue_valid && port_ready;
    mem_we   <= issue_entry[0];
    mem_addr <= issue_entry[95:32];
    mem_wdata <= {BW{8'h5A}};
  end
  // stream generation: responses to the port
  assign port_data  = mem_rdata;
  assign port_valid = mem_rvalid;
endmodule
|}
    kind e.bandwidth e.max_dims
    (if e.indirect then ", indirect (with reorder buffer)" else "")
    (if e.capacity > 0 then buff ", %dKB local store" (e.capacity / 1024) else "")
    name e.bandwidth

let dispatcher_module name ~n_engines ~n_ports =
  buff
    {|// Stream dispatcher (Fig. 9): stream register file, dispatch queue with
// Tomasulo-style scoreboards over ports and engines, and a barrier queue.
module %s #(
  parameter ENGINES = %d,
  parameter PORTS = %d
) (
  input  wire          clk,
  input  wire          rst,
  // RoCC command interface from the control core
  input  wire [63:0]   rocc_cmd,
  input  wire          rocc_valid,
  output wire          rocc_ready,
  // per-engine dispatch buses (extra pipeline stage for die crossings)
  output reg  [127:0]  dispatch_entry [0:ENGINES-1],
  output reg  [ENGINES-1:0] dispatch_valid,
  input  wire [ENGINES-1:0] dispatch_ready,
  // scoreboard status
  input  wire [PORTS-1:0]   port_busy,
  input  wire [ENGINES-1:0] engine_busy
);
  reg [63:0] stream_rf [0:15];      // stream register file
  reg [127:0] queue [0:7];          // stream dispatch queue
  reg [7:0] queue_valid;
  reg [7:0] barrier_q;              // stream barrier queue
  assign rocc_ready = ~&queue_valid;
  integer i;
  always @(posedge clk) begin
    if (rst) begin queue_valid <= '0; barrier_q <= '0; dispatch_valid <= '0; end
    else begin
      if (rocc_valid && rocc_ready) begin
        stream_rf[rocc_cmd[3:0]] <= rocc_cmd;
        for (i = 0; i < 8; i = i + 1)
          if (!queue_valid[i]) begin
            queue[i] <= {stream_rf[rocc_cmd[7:4]], rocc_cmd};
            queue_valid[i] <= 1'b1;
          end
      end
      // out-of-order dispatch, respecting per-port request order
      for (i = 0; i < 8; i = i + 1)
        if (queue_valid[i] && !barrier_q[i]
            && !port_busy[queue[i][3:0] %% PORTS]
            && !engine_busy[queue[i][7:4] %% ENGINES]
            && dispatch_ready[queue[i][7:4] %% ENGINES]) begin
          dispatch_entry[queue[i][7:4] %% ENGINES] <= queue[i];
          dispatch_valid[queue[i][7:4] %% ENGINES] <= 1'b1;
          queue_valid[i] <= 1'b0;
        end
    end
  end
endmodule
|}
    name n_engines n_ports

(* ------------------------------------------------------------------ *)
(* Tile and top                                                        *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> ' ' | _ -> '_') s
  |> String.split_on_char ' '
  |> String.concat ""

let _ = sanitize

let emit (sys : Sys_adg.t) =
  let adg = sys.adg in
  let modules = ref [] in
  let add name text = modules := (name, text) :: !modules in
  (* deduplicate structurally identical components into shared modules *)
  let pe_mods = Hashtbl.create 8 in
  let sw_mods = Hashtbl.create 8 in
  let port_mods = Hashtbl.create 8 in
  let eng_mods = Hashtbl.create 8 in
  let mod_of_node (id, comp) =
    let fan_in = List.length (Adg.preds adg id) in
    let fan_out = List.length (Adg.succs adg id) in
    match comp with
    | Comp.Pe pe ->
      let key = (pe, fan_in, fan_out) in
      (match Hashtbl.find_opt pe_mods key with
      | Some n -> n
      | None ->
        let n = Printf.sprintf "overgen_pe_%d" (Hashtbl.length pe_mods) in
        Hashtbl.add pe_mods key n;
        add n (pe_module n pe ~fan_in ~fan_out);
        n)
    | Comp.Switch { width_bits } ->
      let key = (width_bits, fan_in, fan_out) in
      (match Hashtbl.find_opt sw_mods key with
      | Some n -> n
      | None ->
        let n = Printf.sprintf "overgen_switch_%d" (Hashtbl.length sw_mods) in
        Hashtbl.add sw_mods key n;
        add n
          (switch_module n ~width_bits ~fan_in:(max 1 fan_in)
             ~fan_out:(max 1 fan_out));
        n)
    | Comp.In_port p | Comp.Out_port p ->
      let dir = match comp with Comp.In_port _ -> `In | _ -> `Out in
      let key = (p, dir) in
      (match Hashtbl.find_opt port_mods key with
      | Some n -> n
      | None ->
        let n = Printf.sprintf "overgen_port_%d" (Hashtbl.length port_mods) in
        Hashtbl.add port_mods key n;
        add n (port_module n p ~dir);
        n)
    | Comp.Engine e -> (
      match Hashtbl.find_opt eng_mods e with
      | Some n -> n
      | None ->
        let n =
          Printf.sprintf "overgen_%s_engine_%d"
            (Comp.engine_kind_to_string e.kind)
            (Hashtbl.length eng_mods)
        in
        Hashtbl.add eng_mods e n;
        add n (engine_module n e);
        n)
  in
  let instances =
    List.map (fun (id, comp) -> (id, comp, mod_of_node (id, comp))) (Adg.nodes adg)
  in
  let n_engines = List.length (Adg.engines adg) in
  let n_ports =
    List.length (Adg.in_ports adg) + List.length (Adg.out_ports adg)
  in
  add "overgen_dispatcher" (dispatcher_module "overgen_dispatcher" ~n_engines ~n_ports);
  (* tile: wires per ADG edge *)
  let tile = Buffer.create 4096 in
  Buffer.add_string tile
    "// One accelerator tile: components instantiated along the ADG\n";
  Buffer.add_string tile "module overgen_tile (\n  input wire clk,\n  input wire rst,\n";
  Buffer.add_string tile "  input wire [63:0] rocc_cmd,\n  input wire rocc_valid,\n";
  Buffer.add_string tile "  output wire rocc_ready,\n  output wire [63:0] mem_axi\n);\n";
  List.iter
    (fun (src, dst) ->
      Buffer.add_string tile
        (buff "  wire [63:0] link_%d_%d; wire link_%d_%d_v;\n" src dst src dst))
    (Adg.edges adg);
  List.iter
    (fun (id, comp, mname) ->
      Buffer.add_string tile
        (buff "  %s u_%s_%d (.clk(clk)%s /* node %d: %s */);\n" mname
           (Comp.kind_name comp) id
           (if match comp with Comp.Switch _ -> false | _ -> true then ", .rst(rst)"
            else "")
           id (Comp.describe comp)))
    instances;
  Buffer.add_string tile
    (buff
       "  overgen_dispatcher u_dispatcher (.clk(clk), .rst(rst), .rocc_cmd(rocc_cmd),\n\
       \    .rocc_valid(rocc_valid), .rocc_ready(rocc_ready));\n");
  Buffer.add_string tile "  assign mem_axi = 64'd0;\nendmodule\n";
  add "overgen_tile" (Buffer.contents tile);
  (* top: tiles + uncore stubs *)
  let sysp = sys.system in
  let top = Buffer.create 1024 in
  Buffer.add_string top
    (buff
       "// OverGen SoC top: %d tiles, %d L2 banks x %dKB, %dB/cyc NoC links\n"
       sysp.System.tiles sysp.System.l2_banks
       (sysp.System.l2_kb / max 1 sysp.System.l2_banks)
       sysp.System.noc_bytes);
  Buffer.add_string top "module overgen_top (\n  input wire clk,\n  input wire rst\n);\n";
  for t = 0 to sysp.System.tiles - 1 do
    Buffer.add_string top
      (buff
         "  overgen_tile u_tile_%d (.clk(clk), .rst(rst), .rocc_cmd(64'd0),\n\
         \    .rocc_valid(1'b0), .rocc_ready(), .mem_axi());\n"
         t)
  done;
  Buffer.add_string top "  // TileLink crossbar NoC and banked inclusive L2 (behavioural stubs)\n";
  for b = 0 to sysp.System.l2_banks - 1 do
    Buffer.add_string top (buff "  // l2_bank_%d: 256-bit slave\n" b)
  done;
  Buffer.add_string top "endmodule\n";
  add "overgen_top" (Buffer.contents top);
  { modules = List.rev !modules; top = "overgen_top" }

let to_string r =
  String.concat "\n" (List.map snd r.modules)

let module_count r = List.length r.modules

let stats r =
  let tile = List.assoc "overgen_tile" r.modules in
  let count sub =
    let sl = String.length sub and tl = String.length tile in
    let rec go i acc =
      if i + sl > tl then acc
      else if String.sub tile i sl = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  [
    ("pe", count "u_pe_");
    ("switch", count "u_sw_");
    ("in_port", count "u_ip_");
    ("out_port", count "u_op_");
    ("engine", count "u_dma_" + count "u_spad_" + count "u_rec_" + count "u_gen_" + count "u_reg_");
  ]
