(** Structural Verilog emission for a generated overlay (paper Figure 3:
    "System-level ADG + RTL").

    The real OverGen lowers the chosen sysADG through Chisel generators from
    DSAGEN and Chipyard; here we emit self-contained structural Verilog-2001
    with the same module hierarchy: one module per component class
    (parameterized PE, switch, vector port, stream engine, dispatcher), one
    tile module wiring them along the ADG edges, and a top-level that
    replicates tiles behind the NoC/L2 stubs.  The output is meant for
    inspection and downstream synthesis experiments, and is checked
    structurally by the test suite. *)

open Overgen_adg

type rtl = {
  modules : (string * string) list;  (** (module name, Verilog text) *)
  top : string;                      (** top-level module name *)
}

val emit : Sys_adg.t -> rtl
(** Generate the full design. *)

val to_string : rtl -> string
(** Concatenate all modules into one Verilog source. *)

val module_count : rtl -> int

val stats : rtl -> (string * int) list
(** Instance counts per component class in the tile, for sanity checks:
    ("pe", n), ("switch", n), ("in_port", n), ("out_port", n), ("engine", n). *)
