lib/rtl/emit.mli: Overgen_adg Sys_adg
