lib/rtl/emit.ml: Adg Buffer Comp Dtype Float Hashtbl List Op Overgen_adg Printf String Sys_adg System
