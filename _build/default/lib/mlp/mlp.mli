(** A small multi-layer perceptron trained with SGD + momentum.

    The paper's FPGA resource model is a 3-layer MLP per component type,
    trained on out-of-context synthesis results with an 80/10/10 split
    (Section V-D).  Hidden layers use ReLU; the output layer is linear. *)

type t

val create : rng:Overgen_util.Rng.t -> layers:int list -> t
(** [create ~rng ~layers:[n_in; h1; ...; n_out]] with He-initialized
    weights.  @raise Invalid_argument on fewer than two layers. *)

val forward : t -> float array -> float array

val train :
  t ->
  rng:Overgen_util.Rng.t ->
  rate:float ->
  ?momentum:float ->
  epochs:int ->
  (float array * float array) list ->
  unit
(** In-place minibatch-1 SGD over shuffled samples, mean-squared-error. *)

val loss : t -> (float array * float array) list -> float
(** Mean squared error over a dataset. *)

val n_inputs : t -> int
val n_outputs : t -> int

(** Per-dimension min-max feature/target scaling, fit on the training set. *)
module Scaler : sig
  type s

  val fit : float array list -> s
  val apply : s -> float array -> float array
  val unapply : s -> float array -> float array
end
