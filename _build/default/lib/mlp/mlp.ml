module Rng = Overgen_util.Rng

type layer = {
  weights : float array array; (* [out][in] *)
  bias : float array;
  w_vel : float array array;
  b_vel : float array;
}

type t = { layers : layer array; sizes : int list }

let create ~rng ~layers:sizes =
  if List.length sizes < 2 then invalid_arg "Mlp.create: need >= 2 layers";
  let pairs =
    List.combine
      (List.filteri (fun i _ -> i < List.length sizes - 1) sizes)
      (List.tl sizes)
  in
  let layers =
    List.map
      (fun (n_in, n_out) ->
        let scale = sqrt (2.0 /. float_of_int n_in) in
        {
          weights =
            Array.init n_out (fun _ ->
                Array.init n_in (fun _ -> Rng.gaussian rng ~mean:0.0 ~stddev:scale));
          bias = Array.make n_out 0.0;
          w_vel = Array.init n_out (fun _ -> Array.make n_in 0.0);
          b_vel = Array.make n_out 0.0;
        })
      pairs
  in
  { layers = Array.of_list layers; sizes }

let n_inputs t = List.hd t.sizes
let n_outputs t = List.nth t.sizes (List.length t.sizes - 1)

let relu x = if x > 0.0 then x else 0.0

(* Forward pass returning all activations (pre-output layers ReLU'd). *)
let forward_all t x =
  let n = Array.length t.layers in
  let acts = Array.make (n + 1) x in
  for i = 0 to n - 1 do
    let l = t.layers.(i) in
    let last = i = n - 1 in
    let inp = acts.(i) in
    let out =
      Array.mapi
        (fun j row ->
          let s = ref l.bias.(j) in
          Array.iteri (fun k w -> s := !s +. (w *. inp.(k))) row;
          if last then !s else relu !s)
        l.weights
    in
    acts.(i + 1) <- out
  done;
  acts

let forward t x = (forward_all t x).(Array.length t.layers)

let backprop t ~rate ~momentum x y =
  let n = Array.length t.layers in
  let acts = forward_all t x in
  let out = acts.(n) in
  (* dL/dout for MSE (factor 2 folded into the rate) *)
  let delta = ref (Array.mapi (fun i o -> o -. y.(i)) out) in
  for i = n - 1 downto 0 do
    let l = t.layers.(i) in
    let inp = acts.(i) in
    let d = !delta in
    (* propagate before updating weights *)
    let prev_delta = Array.make (Array.length inp) 0.0 in
    Array.iteri
      (fun j row ->
        Array.iteri
          (fun k w -> prev_delta.(k) <- prev_delta.(k) +. (w *. d.(j)))
          row)
      l.weights;
    (* ReLU derivative on the previous activation (skip for the input) *)
    if i > 0 then
      Array.iteri
        (fun k a -> if a <= 0.0 then prev_delta.(k) <- 0.0)
        acts.(i);
    (* update *)
    Array.iteri
      (fun j row ->
        let dj = d.(j) in
        Array.iteri
          (fun k _ ->
            let g = dj *. inp.(k) in
            l.w_vel.(j).(k) <- (momentum *. l.w_vel.(j).(k)) -. (rate *. g);
            row.(k) <- row.(k) +. l.w_vel.(j).(k))
          row;
        l.b_vel.(j) <- (momentum *. l.b_vel.(j)) -. (rate *. dj);
        l.bias.(j) <- l.bias.(j) +. l.b_vel.(j))
      l.weights;
    delta := prev_delta
  done

let train t ~rng ~rate ?(momentum = 0.9) ~epochs samples =
  for _ = 1 to epochs do
    let shuffled = Rng.shuffle rng samples in
    List.iter (fun (x, y) -> backprop t ~rate ~momentum x y) shuffled
  done

let loss t samples =
  match samples with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left
        (fun acc (x, y) ->
          let o = forward t x in
          let e = ref 0.0 in
          Array.iteri (fun i v -> e := !e +. ((v -. y.(i)) ** 2.0)) o;
          acc +. !e)
        0.0 samples
    in
    total /. float_of_int (List.length samples)

module Scaler = struct
  type s = { mins : float array; maxs : float array }

  let fit rows =
    match rows with
    | [] -> invalid_arg "Scaler.fit: empty"
    | first :: _ ->
      let n = Array.length first in
      let mins = Array.make n infinity and maxs = Array.make n neg_infinity in
      List.iter
        (fun row ->
          Array.iteri
            (fun i v ->
              if v < mins.(i) then mins.(i) <- v;
              if v > maxs.(i) then maxs.(i) <- v)
            row)
        rows;
      { mins; maxs }

  let span s i =
    let d = s.maxs.(i) -. s.mins.(i) in
    if d <= 1e-12 then 1.0 else d

  let apply s row =
    Array.mapi (fun i v -> (v -. s.mins.(i)) /. span s i) row

  let unapply s row =
    Array.mapi (fun i v -> (v *. span s i) +. s.mins.(i)) row
end
