(** The ML-based FPGA resource model of paper Section V-D.

    One MLP per hardware-unit kind (processing element, switch, input port,
    output port), trained on out-of-context synthesis samples produced by the
    oracle, with an 80/10/10 train/validation/test split.  Stream engines
    have few parameters and are priced analytically (the paper exhaustively
    synthesizes such units).  Because training data is out-of-context, the
    model is pessimistic relative to full-design synthesis — exactly the bias
    the paper reports. *)

open Overgen_adg
open Overgen_fpga

type t

type kind = Pe_k | Switch_k | In_port_k | Out_port_k

val kind_name : kind -> string

val paper_counts : (kind * int) list
(** Paper Table I: modules synthesized per kind (100,000 / 56,700 / 34,412 /
    25,796). *)

val default_counts : (kind * int) list
(** The scaled-down counts actually synthesized here (1/100 of Table I), so
    training completes in seconds; recorded in EXPERIMENTS.md. *)

val train : ?counts:(kind * int) list -> seed:int -> unit -> t
(** Generate the dataset with the oracle and train all four models. *)

val predict_comp : t -> Comp.t -> fan_in:int -> fan_out:int -> Res.t
(** Resource prediction for one component. *)

val predict_accel : t -> Adg.t -> Res.t
(** Predicted resources of one accelerator tile (MLP for datapath units,
    analytic for engines and the dispatcher). *)

val predict_full : t -> Sys_adg.t -> Res.t
(** Predicted whole-SoC resources: tiles + cores + NoC + L2 + shell.  Used
    by the DSE as the resource constraint; pessimistic vs [Oracle.synth_full]. *)

val test_error : t -> kind -> float
(** Mean relative LUT error on the held-out test split. *)

val samples_trained : t -> kind -> int
