lib/mlp/mlp.ml: Array List Overgen_util
