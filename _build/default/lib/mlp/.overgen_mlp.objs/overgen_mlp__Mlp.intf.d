lib/mlp/mlp.mli: Overgen_util
