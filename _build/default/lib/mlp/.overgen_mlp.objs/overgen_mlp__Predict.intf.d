lib/mlp/predict.mli: Adg Comp Overgen_adg Overgen_fpga Res Sys_adg
