lib/mlp/predict.ml: Adg Array Comp Dtype Float Hashtbl List Mlp Op Oracle Overgen_adg Overgen_fpga Overgen_util Res Sys_adg System
