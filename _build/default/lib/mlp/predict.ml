open Overgen_adg
open Overgen_fpga
module Rng = Overgen_util.Rng

type kind = Pe_k | Switch_k | In_port_k | Out_port_k

let kind_name = function
  | Pe_k -> "Processing Elements"
  | Switch_k -> "Switches"
  | In_port_k -> "Input Port"
  | Out_port_k -> "Output Port"

let paper_counts =
  [ (Pe_k, 100_000); (Switch_k, 56_700); (In_port_k, 34_412); (Out_port_k, 25_796) ]

let default_counts =
  List.map (fun (k, n) -> (k, n / 100)) paper_counts

type model = {
  net : Mlp.t;
  in_scaler : Mlp.Scaler.s;
  out_scaler : Mlp.Scaler.s;
  test_err : float;
  n_samples : int;
}

type t = {
  pe_m : model;
  sw_m : model;
  ip_m : model;
  op_m : model;
}

(* ---------- feature extraction ---------- *)

(* The PE's cost is driven by which hardware unit classes it instantiates
   (one int ALU, per-precision float IPs, dividers, ...), so the features
   expose exactly those, plus the structural knobs.  The per-class presence
   flags are what make the regression well-posed. *)
let pe_features (p : Comp.pe) ~fan_in ~fan_out =
  let has f = if Op.Cap.exists f p.caps then 1.0 else 0.0 in
  let unit cls dt_sel =
    has (fun (op, dt) -> Op.arith_class op = cls && dt_sel dt)
  in
  let is_int dt = not (Dtype.is_float dt) in
  let int_width =
    Op.Cap.fold
      (fun (_, dt) acc -> if is_int dt then max acc (Dtype.bits dt) else acc)
      p.caps 0
  in
  [|
    float_of_int p.width_bits;
    float_of_int p.delay_fifo;
    float_of_int p.const_regs;
    (if p.predication then 1.0 else 0.0);
    float_of_int fan_in;
    float_of_int fan_out;
    float_of_int int_width;
    unit `Simple is_int;
    unit `Simple (( = ) Dtype.F32);
    unit `Simple (( = ) Dtype.F64);
    unit `Mul is_int;
    unit `Mul (( = ) Dtype.F32);
    unit `Mul (( = ) Dtype.F64);
    unit `Div is_int;
    unit `Div (( = ) Dtype.F32);
    unit `Div (( = ) Dtype.F64);
    unit `Sqrt is_int;
    unit `Sqrt (( = ) Dtype.F32);
    unit `Sqrt (( = ) Dtype.F64);
  |]

let sw_features ~width_bits ~fan_in ~fan_out =
  [| float_of_int width_bits; float_of_int fan_in; float_of_int fan_out |]

let port_features (p : Comp.port) =
  [|
    float_of_int p.width_bytes;
    float_of_int p.fifo_depth;
    (if p.padding then 1.0 else 0.0);
    (if p.stated then 1.0 else 0.0);
  |]

(* Targets are regressed in log space: component resources span several
   orders of magnitude and a linear-space MSE lets the largest designs
   dominate the fit. *)
let res_to_targets (r : Res.t) =
  let f x = log (1.0 +. float_of_int x) in
  [| f r.lut; f r.ff; f r.bram; f r.dsp |]

let targets_to_res a =
  let g i = max 0 (int_of_float (Float.round (exp a.(i) -. 1.0))) in
  { Res.lut = g 0; ff = g 1; bram = g 2; dsp = g 3 }

(* ---------- dataset generation ---------- *)

let random_caps rng =
  let dtypes =
    let pool = [ [ Dtype.I16 ]; [ Dtype.I64 ]; [ Dtype.F32 ]; [ Dtype.F64 ];
                 [ Dtype.I64; Dtype.F64 ]; Dtype.all ] in
    Rng.choose rng pool
  in
  let ops =
    let base = [ Op.Add; Op.Sub ] in
    let extras =
      List.filter (fun _ -> Rng.bool rng)
        [ Op.Mul; Op.Div; Op.Sqrt; Op.Min; Op.Max; Op.Abs; Op.Shl; Op.Shr;
          Op.Select; Op.Acc ]
    in
    base @ extras
  in
  Op.Cap.of_ops ops dtypes

let random_sample rng kind =
  match kind with
  | Pe_k ->
    let p =
      {
        Comp.caps = random_caps rng;
        width_bits = Rng.choose rng [ 16; 32; 64; 128; 256; 512 ];
        delay_fifo = Rng.choose rng [ 2; 4; 8; 16 ];
        const_regs = Rng.int rng 5;
        predication = Rng.bool rng;
      }
    in
    let fan_in = 1 + Rng.int rng 6 and fan_out = 1 + Rng.int rng 4 in
    (pe_features p ~fan_in ~fan_out, Comp.Pe p, fan_in, fan_out)
  | Switch_k ->
    let width_bits = Rng.choose rng [ 16; 32; 64; 128; 256; 512 ] in
    let fan_in = 1 + Rng.int rng 8 and fan_out = 1 + Rng.int rng 8 in
    (sw_features ~width_bits ~fan_in ~fan_out, Comp.Switch { width_bits }, fan_in, fan_out)
  | In_port_k | Out_port_k ->
    let p =
      {
        Comp.width_bytes = Rng.choose rng [ 2; 4; 8; 16; 32; 64 ];
        fifo_depth = Rng.choose rng [ 2; 4; 8 ];
        padding = Rng.bool rng;
        stated = Rng.bool rng;
      }
    in
    let comp = if kind = In_port_k then Comp.In_port p else Comp.Out_port p in
    (port_features p, comp, 1, 1)

let gen_dataset rng kind n =
  List.init n (fun _ ->
      let feats, comp, fan_in, fan_out = random_sample rng kind in
      let res = Oracle.ooc ~rng comp ~fan_in ~fan_out in
      (feats, res_to_targets res))

let train_kind ~seed kind n =
  let rng = Rng.create (seed + Hashtbl.hash (kind_name kind)) in
  let data = gen_dataset rng kind n in
  let in_scaler = Mlp.Scaler.fit (List.map fst data) in
  let out_scaler = Mlp.Scaler.fit (List.map snd data) in
  let scaled =
    List.map
      (fun (x, y) -> (Mlp.Scaler.apply in_scaler x, Mlp.Scaler.apply out_scaler y))
      data
  in
  (* 80/10/10 split as in the paper. *)
  let n_total = List.length scaled in
  let n_train = n_total * 8 / 10 and n_val = n_total / 10 in
  let idx = ref (-1) in
  let train_set, rest =
    List.partition (fun _ -> incr idx; !idx < n_train) scaled
  in
  idx := -1;
  let _val_set, test_set =
    List.partition (fun _ -> incr idx; !idx < n_val) rest
  in
  let n_in = Array.length (fst (List.hd scaled)) in
  let net = Mlp.create ~rng ~layers:[ n_in; 32; 16; 4 ] in
  Mlp.train net ~rng ~rate:0.002 ~epochs:200 train_set;
  (* test error: mean relative LUT error in unscaled space *)
  let rel_err =
    let errs =
      List.map
        (fun (x, y) ->
          let pred = targets_to_res (Mlp.Scaler.unapply out_scaler (Mlp.forward net x)) in
          let truth = targets_to_res (Mlp.Scaler.unapply out_scaler y) in
          Float.abs (float_of_int (pred.Res.lut - truth.Res.lut))
          /. Float.max 1.0 (float_of_int truth.Res.lut))
        test_set
    in
    Overgen_util.Stats.mean errs
  in
  { net; in_scaler; out_scaler; test_err = rel_err; n_samples = n_total }

let train ?(counts = default_counts) ~seed () =
  let n k = List.assoc k counts in
  {
    pe_m = train_kind ~seed Pe_k (n Pe_k);
    sw_m = train_kind ~seed Switch_k (n Switch_k);
    ip_m = train_kind ~seed In_port_k (n In_port_k);
    op_m = train_kind ~seed Out_port_k (n Out_port_k);
  }

let run_model m feats =
  targets_to_res (Mlp.Scaler.unapply m.out_scaler (Mlp.forward m.net (Mlp.Scaler.apply m.in_scaler feats)))

let predict_comp t comp ~fan_in ~fan_out =
  match comp with
  | Comp.Pe p -> run_model t.pe_m (pe_features p ~fan_in ~fan_out)
  | Comp.Switch { width_bits } -> run_model t.sw_m (sw_features ~width_bits ~fan_in ~fan_out)
  | Comp.In_port p -> run_model t.ip_m (port_features p)
  | Comp.Out_port p -> run_model t.op_m (port_features p)
  | Comp.Engine e -> Oracle.engine e

let predict_accel t adg =
  let comps =
    List.map
      (fun (id, c) ->
        predict_comp t c
          ~fan_in:(List.length (Adg.preds adg id))
          ~fan_out:(List.length (Adg.succs adg id)))
      (Adg.nodes adg)
  in
  let n_engines = List.length (Adg.engines adg) in
  let n_ports = List.length (Adg.in_ports adg) + List.length (Adg.out_ports adg) in
  Res.add (Res.sum comps) (Oracle.dispatcher ~n_engines ~n_ports)

let predict_full t (s : Sys_adg.t) =
  let tile = predict_accel t s.adg in
  Res.add (Res.scale s.system.System.tiles tile) (Oracle.system_overhead s.system)

let model_of t = function
  | Pe_k -> t.pe_m
  | Switch_k -> t.sw_m
  | In_port_k -> t.ip_m
  | Out_port_k -> t.op_m

let test_error t kind = (model_of t kind).test_err
let samples_trained t kind = (model_of t kind).n_samples
