lib/scheduler/spatial.mli: Compile Overgen_adg Overgen_mdfg Schedule Sys_adg
