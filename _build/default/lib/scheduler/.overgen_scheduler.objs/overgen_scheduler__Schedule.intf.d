lib/scheduler/schedule.mli: Adg Compile Map Overgen_adg Overgen_mdfg Stream Sys_adg
