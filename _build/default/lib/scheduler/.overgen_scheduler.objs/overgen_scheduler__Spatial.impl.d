lib/scheduler/spatial.ml: Adg Comp Compile Dfg Dtype Float Hashtbl List Op Option Overgen_adg Overgen_mdfg Overgen_util Printf Queue Schedule Stream String Sys_adg
