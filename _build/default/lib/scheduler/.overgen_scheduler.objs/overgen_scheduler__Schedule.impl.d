lib/scheduler/schedule.ml: Adg Comp Compile Dfg Dtype Float Hashtbl Int List Map Op Option Overgen_adg Overgen_mdfg Overgen_util Printf Stream Sys_adg
