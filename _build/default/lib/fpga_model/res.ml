type t = { lut : int; ff : int; bram : int; dsp : int }

let zero = { lut = 0; ff = 0; bram = 0; dsp = 0 }

let add a b =
  { lut = a.lut + b.lut; ff = a.ff + b.ff; bram = a.bram + b.bram; dsp = a.dsp + b.dsp }

let sum = List.fold_left add zero

let scale k a =
  { lut = k * a.lut; ff = k * a.ff; bram = k * a.bram; dsp = k * a.dsp }

let scale_f k a =
  let s x = int_of_float (Float.round (k *. float_of_int x)) in
  { lut = s a.lut; ff = s a.ff; bram = s a.bram; dsp = s a.dsp }

let fits a ~within =
  a.lut <= within.lut && a.ff <= within.ff && a.bram <= within.bram
  && a.dsp <= within.dsp

let utilization a ~device =
  let f x d = if d = 0 then 0.0 else float_of_int x /. float_of_int d in
  (f a.lut device.lut, f a.ff device.ff, f a.bram device.bram, f a.dsp device.dsp)

let max_utilization a ~device =
  let l, f, b, d = utilization a ~device in
  Float.max (Float.max l f) (Float.max b d)

let to_string a =
  Printf.sprintf "lut=%d ff=%d bram=%d dsp=%d" a.lut a.ff a.bram a.dsp

let describe_utilization a ~device =
  let l, f, b, d = utilization a ~device in
  Printf.sprintf "LUT %.1f%% FF %.1f%% BRAM %.1f%% DSP %.1f%%" (100. *. l)
    (100. *. f) (100. *. b) (100. *. d)
