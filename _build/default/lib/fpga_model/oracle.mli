(** The synthesis oracle: the stand-in for Vivado.

    Every query the real OverGen makes of the FPGA toolchain is answered
    here from analytical per-unit cost functions with deterministic
    pseudo-random variation: out-of-context component synthesis (used to
    train the ML resource model), full-design synthesis (resources,
    achievable clock, wall-clock synthesis time), and the per-category
    breakdown reported in the paper's Figure 16. *)

open Overgen_adg

val fu_cost : Op.t -> Dtype.t -> Res.t
(** One functional unit of the given operation/type. *)

val pe : Comp.pe -> fan_in:int -> fan_out:int -> Res.t
val switch : width_bits:int -> fan_in:int -> fan_out:int -> Res.t
val port : Comp.port -> dir:[ `In | `Out ] -> Res.t
val engine : Comp.engine -> Res.t
val control_core : Res.t
(** The Rocket-style in-order control core with small private caches. *)

val dispatcher : n_engines:int -> n_ports:int -> Res.t
val noc :
  ?topology:System.noc_topology ->
  tiles:int ->
  banks:int ->
  noc_bytes:int ->
  unit ->
  Res.t
val l2 : l2_kb:int -> banks:int -> Res.t
val shell : Res.t
(** Board shell: DRAM controller, JTAG and other peripherals. *)

val component : Adg.t -> Adg.id -> Res.t
(** Cost of one ADG node given its connectivity in the graph. *)

val accel : Adg.t -> Res.t
(** One accelerator tile: all ADG components plus the stream dispatcher. *)

val accel_breakdown : Adg.t -> (string * Res.t) list
(** Per-category split of one tile using the paper's Figure 16 legend:
    "pe", "n/w", "vp", "spad", "dma" (all other stream engines and the
    dispatcher are grouped here, as in the paper). *)

val ooc : rng:Overgen_util.Rng.t -> Comp.t -> fan_in:int -> fan_out:int -> Res.t
(** Out-of-context synthesis sample: component cost with the pessimism of
    missing cross-module optimization plus synthesis noise.  This is the
    ground truth the MLP resource model is trained on. *)

(** Result of synthesizing a complete overlay SoC. *)
type full = {
  res : Res.t;
  freq_mhz : float;
  hours : float;  (** modeled Vivado wall-clock *)
  breakdown : (string * Res.t) list;
      (** tile categories plus "core" and "noc" (NoC + L2 + shell) *)
}

val synth_full : ?device:Device.t -> Sys_adg.t -> full
val system_overhead : ?device:Device.t -> System.t -> Res.t
(** Resources consumed outside the accelerator tiles: control cores, NoC,
    L2, shell.  What remains bounds the per-tile accelerator budget. *)

val synthesis_hours : device:Device.t -> Res.t -> float
