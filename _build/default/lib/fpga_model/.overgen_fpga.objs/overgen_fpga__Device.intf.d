lib/fpga_model/device.mli: Res
