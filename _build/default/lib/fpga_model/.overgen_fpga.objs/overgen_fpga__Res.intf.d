lib/fpga_model/res.mli:
