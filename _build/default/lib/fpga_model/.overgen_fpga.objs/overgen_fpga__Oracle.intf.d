lib/fpga_model/oracle.mli: Adg Comp Device Dtype Op Overgen_adg Overgen_util Res Sys_adg System
