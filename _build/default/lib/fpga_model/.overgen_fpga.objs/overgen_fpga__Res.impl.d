lib/fpga_model/res.ml: Float List Printf
