lib/fpga_model/oracle.ml: Adg Comp Device Dtype Hashtbl List Op Option Overgen_adg Overgen_util Printf Res Set String Sys_adg System
