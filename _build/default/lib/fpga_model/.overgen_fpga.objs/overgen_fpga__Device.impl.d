lib/fpga_model/device.ml: Res
