(** FPGA resource vectors: LUTs, flip-flops, BRAM36 blocks, DSP slices. *)

type t = { lut : int; ff : int; bram : int; dsp : int }

val zero : t
val add : t -> t -> t
val sum : t list -> t
val scale : int -> t -> t
val scale_f : float -> t -> t
(** Per-field multiply with rounding; used for optimization discounts. *)

val fits : t -> within:t -> bool
val utilization : t -> device:t -> float * float * float * float
(** (lut, ff, bram, dsp) fractions of the device. *)

val max_utilization : t -> device:t -> float
val to_string : t -> string
val describe_utilization : t -> device:t -> string
