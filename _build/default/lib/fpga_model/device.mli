(** FPGA device descriptions.  The evaluation platform is the Xilinx VCU118
    board's XCVU9P part: three SLR dies connected by silicon interposers,
    whose crossing delay motivates the conservative pipelining of paper
    Section VI-D. *)

type t = {
  name : string;
  capacity : Res.t;
  dies : int;               (** SLR count; multi-die designs lose frequency *)
  base_clock_mhz : float;   (** achievable clock of a small, clean design *)
  usable_fraction : float;  (** routable fraction before congestion collapse *)
}

val xcvu9p : t
val u250 : t
(** Alveo U250 (XCU250): a larger 4-SLR part, for the model-portability
    extension (the paper: "this framework can more easily be ported to other
    FPGAs"). *)

val default : t
val usable : t -> Res.t
(** The capacity actually available to a design (leaving routing headroom
    and the shell/peripherals). *)
