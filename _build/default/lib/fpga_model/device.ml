type t = {
  name : string;
  capacity : Res.t;
  dies : int;
  base_clock_mhz : float;
  usable_fraction : float;
}

let xcvu9p =
  {
    name = "xcvu9p";
    capacity = { Res.lut = 1182240; ff = 2364480; bram = 2160; dsp = 6840 };
    dies = 3;
    base_clock_mhz = 150.0;
    usable_fraction = 0.97;
  }

let u250 =
  {
    name = "xcu250";
    capacity = { Res.lut = 1728000; ff = 3456000; bram = 2688; dsp = 12288 };
    dies = 4;
    base_clock_mhz = 140.0;
    usable_fraction = 0.96;
  }

let default = xcvu9p
let usable t = Res.scale_f t.usable_fraction t.capacity
