(** ASCII rendering of tables and simple charts for the benchmark harness.

    Every table and figure of the paper is regenerated as text; these helpers
    keep the output format uniform across experiments. *)

val table : headers:string list -> rows:string list list -> string
(** Render an aligned ASCII table.  Rows shorter than the header are padded
    with empty cells. *)

val bar_chart :
  ?width:int -> ?log2:bool -> title:string -> (string * float list) list ->
  series:string list -> string
(** [bar_chart ~title rows ~series] renders grouped horizontal bars, one group
    per row label, one bar per series value.  With [log2], the bar length is
    proportional to log2 of the value (for speedup charts spanning 1/8x..16x);
    values are still printed exactly. *)

val line_chart :
  ?width:int -> ?height:int -> title:string -> xlabel:string -> ylabel:string ->
  (string * (float * float) list) list -> string
(** Render one or more (x, y) series as an ASCII scatter/line plot, used for
    the DSE convergence figure.  Each series gets a distinct glyph. *)

val float_cell : float -> string
(** Compact float formatting used in table cells (3 significant decimals). *)

val pct_cell : float -> string
(** Format a ratio as a percentage cell, e.g. [0.52] -> ["52.0%"]. *)
