lib/util/render.ml: Array Buffer Float List Printf Stats String
