lib/util/stats.mli:
