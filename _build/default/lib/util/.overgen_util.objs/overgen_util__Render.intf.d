lib/util/render.mli:
