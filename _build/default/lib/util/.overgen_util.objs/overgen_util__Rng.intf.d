lib/util/rng.mli:
