let float_cell v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

let pct_cell v = Printf.sprintf "%.1f%%" (100.0 *. v)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let table ~headers ~rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_row cells =
    let padded = List.map2 (fun w c -> pad w c) widths cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let bar_glyphs = [| '#'; '='; '*'; '+'; 'o'; '~'; '%'; '@' |]

let bar_chart ?(width = 40) ?(log2 = false) ~title rows ~series =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  let scale v =
    if log2 then
      (* Map [1/8, 16] onto [0, width]; 1.0 sits at 3/7 of the width. *)
      let l = Float.log2 (Float.max v 0.125) +. 3.0 in
      int_of_float (Stats.clamp ~lo:0.0 ~hi:(float_of_int width) (l /. 7.0 *. float_of_int width))
    else
      let vmax =
        List.fold_left (fun acc (_, vs) -> List.fold_left Float.max acc vs) 1e-9 rows
      in
      int_of_float (v /. vmax *. float_of_int width)
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let series_width =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series
  in
  List.iter
    (fun (label, values) ->
      Buffer.add_string buf (pad label_width label ^ "\n");
      List.iteri
        (fun i v ->
          let name = try List.nth series i with _ -> Printf.sprintf "s%d" i in
          let glyph = bar_glyphs.(i mod Array.length bar_glyphs) in
          let n = scale v in
          Buffer.add_string buf
            (Printf.sprintf "  %s |%s %s\n" (pad series_width name)
               (String.make n glyph) (float_cell v)))
        values)
    rows;
  if log2 then
    Buffer.add_string buf
      (Printf.sprintf "  (log2 scale: bar at %d chars = 1.0x)\n" (3 * width / 7));
  Buffer.contents buf

let line_chart ?(width = 60) ?(height = 16) ~title ~xlabel ~ylabel seriess =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  let all_pts = List.concat_map snd seriess in
  match all_pts with
  | [] -> Buffer.add_string buf "  (no data)\n"; Buffer.contents buf
  | _ ->
    let xs = List.map fst all_pts and ys = List.map snd all_pts in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax -. xmin <= 0.0 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = bar_glyphs.(si mod Array.length bar_glyphs) in
        List.iter
          (fun (x, y) ->
            let cx =
              Stats.clamp_int ~lo:0 ~hi:(width - 1)
                (int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)))
            in
            let cy =
              Stats.clamp_int ~lo:0 ~hi:(height - 1)
                (int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)))
            in
            grid.(height - 1 - cy).(cx) <- glyph)
          pts)
      seriess;
    Buffer.add_string buf (Printf.sprintf "%s (%.3g .. %.3g)\n" ylabel ymin ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf ("  |" ^ String.init width (Array.get row) ^ "\n"))
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf (Printf.sprintf "   %s (%.3g .. %.3g)\n" xlabel xmin xmax);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "   %c = %s\n" bar_glyphs.(si mod Array.length bar_glyphs) name))
      seriess;
    Buffer.contents buf
