lib/mdfg/compile.mli: Dfg Ir Overgen_workload Stream Suite
