lib/mdfg/dfg.mli: Dtype Op Overgen_adg
