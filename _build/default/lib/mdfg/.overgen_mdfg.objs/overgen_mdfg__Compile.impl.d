lib/mdfg/compile.ml: Dfg Dtype Float Hashtbl Ir Kernels List Op Overgen_adg Overgen_util Overgen_workload Printf Stream String Suite
