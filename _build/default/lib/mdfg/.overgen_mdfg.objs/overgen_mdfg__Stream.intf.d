lib/mdfg/stream.mli:
