lib/mdfg/stream.ml: Printf
