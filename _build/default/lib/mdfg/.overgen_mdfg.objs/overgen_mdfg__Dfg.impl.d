lib/mdfg/dfg.ml: Array Dtype Hashtbl List Op Option Overgen_adg Printf
