(** Dataflow graphs of compute instructions between vector ports.

    A DFG is the compute slice of one program region after unrolling and
    common-subexpression elimination: input vector ports deliver operand
    lanes, instruction nodes compute, output ports collect result lanes
    (paper Figure 2(b)).  Nodes are numbered so that every operand points to
    a lower id, which makes the graph acyclic by construction. *)

open Overgen_adg

type operand = { src : int; lane : int }

type kind =
  | Inst of { op : Op.t; dtype : Dtype.t; acc : bool }
      (** [acc] marks a self-accumulating reduction (internal register) *)
  | Const of { value : float; name : string option }
      (** literal or named scalar parameter, held in a PE constant register *)
  | Input of { width_bytes : int; stated : bool }
      (** vector input port; [stated] ports carry loop-dimension metadata *)
  | Output of { width_bytes : int }

type node = { id : int; kind : kind; operands : operand list }

type t

val nodes : t -> node list
val node : t -> int -> node
val size : t -> int

val insts : t -> node list
val inputs : t -> node list
val outputs : t -> node list
val inst_count : t -> int

val op_histogram : t -> (Op.t * int) list
(** Instruction histogram, sorted by operation. *)

val consumers : t -> int -> node list
(** Nodes that take the given node as an operand. *)

val depth : t -> int
(** Critical path length in pipeline cycles, using per-op latencies; the
    datapath's concurrency capacity for recurrence fitting. *)

val validate : t -> (unit, string) result
(** Operand ids must be smaller than the node id (acyclicity), instructions
    must have the right arity, outputs must not be read. *)

(** Imperative builder with hash-consing: emitting the same instruction with
    the same operands twice returns the first id (CSE). *)
module Builder : sig
  type dfg := t
  type t

  val create : unit -> t
  val input : t -> width_bytes:int -> stated:bool -> int
  val output : t -> width_bytes:int -> operand list -> int
  val const : t -> ?name:string -> float -> int
  (** CSE'd on (value, name). *)

  val inst : t -> Op.t -> Dtype.t -> ?acc:bool -> operand list -> int
  (** CSE'd on (op, dtype, acc, operands). *)

  val finish : t -> dfg
end
