(** Streams and the reuse annotations of the memory-enhanced DFG.

    A stream is a coarse-grain access pattern over one array, bound to one
    DFG vector port.  The compiler's reuse analysis (paper Section IV-B)
    annotates each stream with data traffic, footprint, stationary (port)
    reuse, and recurrence candidacy; the spatial scheduler and the DSE
    performance model consume these. *)

type direction = Read | Write

type access =
  | Linear of { stride : int }
      (** innermost element stride; 1 is fully coalesced *)
  | Indirect of { via : string }  (** gather/scatter through an index array *)

(** Reuse summary over the whole region execution, in {e elements}. *)
type reuse = {
  traffic : float;    (** elements crossing the port after stationary reuse *)
  footprint : int;    (** distinct elements touched *)
  stationary : float; (** port-FIFO reuse factor (>= 1) *)
}

val general_reuse : reuse -> float
(** traffic / footprint: the reuse a scratchpad could capture. *)

(** Loop-carried read-modify-write pair that can ride the recurrence stream
    engine instead of going to memory (paper's "recurrent reuse"). *)
type rec_info = {
  concurrent : int;   (** simultaneously live partial results *)
  recurs : float;     (** times each element recirculates *)
  mem_traffic : float;(** per-direction memory traffic if the engine is used *)
}

type t = {
  id : int;
  array : string;
  dir : direction;
  access : access;
  dims : int;         (** affine pattern dimensionality, 1..3 *)
  lanes : int;        (** elements delivered per DFG firing *)
  elem_bytes : int;
  port : int option;  (** DFG port node id; [None] for engine-internal index
                          streams of indirect accesses *)
  partitioned : bool;
      (** subscript involves the outermost (tile-parallelized) loop, so each
          tile touches a disjoint slice; shared arrays are re-streamed by
          every tile *)
  reuse : reuse;
  recurrence : rec_info option;
}

val bytes_per_firing : t -> int
val mem_bytes : t -> use_rec:bool -> float
(** Total bytes of memory traffic for the region: [reuse.traffic] scaled by
    element size, or the recurrence-engine residual when [use_rec]. *)

val describe : t -> string

(** An array of the program, candidate for scratchpad or DRAM placement
    (the mDFG "array node", paper Figure 5). *)
type array_info = {
  name : string;
  elems : int;
  elem_bytes : int;
  read_only : bool;
}

val array_bytes : array_info -> int
(** Footprint including double-buffering space when scratchpad-resident. *)
