open Overgen_adg

type operand = { src : int; lane : int }

type kind =
  | Inst of { op : Op.t; dtype : Dtype.t; acc : bool }
  | Const of { value : float; name : string option }
  | Input of { width_bytes : int; stated : bool }
  | Output of { width_bytes : int }

type node = { id : int; kind : kind; operands : operand list }

type t = { arr : node array }

let nodes t = Array.to_list t.arr
let node t id = t.arr.(id)
let size t = Array.length t.arr

let insts t =
  List.filter
    (fun n ->
      match n.kind with
      | Inst _ -> true
      | Const _ | Input _ | Output _ -> false)
    (nodes t)

let inputs t =
  List.filter
    (fun n ->
      match n.kind with
      | Input _ -> true
      | Inst _ | Const _ | Output _ -> false)
    (nodes t)

let outputs t =
  List.filter
    (fun n ->
      match n.kind with
      | Output _ -> true
      | Inst _ | Const _ | Input _ -> false)
    (nodes t)

let inst_count t = List.length (insts t)

let op_histogram t =
  let histo = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match n.kind with
      | Inst { op; _ } ->
        Hashtbl.replace histo op (1 + Option.value ~default:0 (Hashtbl.find_opt histo op))
      | Const _ | Input _ | Output _ -> ())
    (nodes t);
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) histo []
  |> List.sort (fun (a, _) (b, _) -> Op.compare a b)

let consumers t id =
  List.filter (fun n -> List.exists (fun o -> o.src = id) n.operands) (nodes t)

let depth t =
  let d = Array.make (size t) 0 in
  Array.iter
    (fun n ->
      let in_depth =
        List.fold_left (fun acc o -> max acc d.(o.src)) 0 n.operands
      in
      let lat =
        match n.kind with
        | Inst { op; dtype; _ } -> Op.latency op dtype
        | Const _ -> 0
        | Input _ | Output _ -> 1
      in
      d.(n.id) <- in_depth + lat)
    t.arr;
  Array.fold_left max 0 d

let validate t =
  let err = ref None in
  Array.iteri
    (fun i n ->
      if !err = None then begin
        if n.id <> i then err := Some (Printf.sprintf "node %d has id %d" i n.id);
        List.iter
          (fun o ->
            if o.src >= n.id then
              err := Some (Printf.sprintf "node %d reads forward operand %d" n.id o.src)
            else
              match t.arr.(o.src).kind with
              | Output _ ->
                err := Some (Printf.sprintf "node %d reads output node %d" n.id o.src)
              | Inst _ | Const _ | Input _ -> ())
          n.operands;
        match n.kind with
        | Inst { op; acc; _ } ->
          let expect = if acc then List.length n.operands else Op.arity op in
          (* acc-insts fold an arbitrary lane tree; others must match arity *)
          if List.length n.operands <> expect then
            err :=
              Some
                (Printf.sprintf "node %d: op %s wants %d operands, has %d" n.id
                   (Op.to_string op) expect (List.length n.operands))
        | Const _ | Input _ ->
          if n.operands <> [] then
            err := Some (Printf.sprintf "leaf node %d has operands" n.id)
        | Output _ ->
          if n.operands = [] then
            err := Some (Printf.sprintf "output node %d collects nothing" n.id)
      end)
    t.arr;
  match !err with None -> Ok () | Some e -> Error e

module Builder = struct
  type dfg = t [@@warning "-34"]

  type t = {
    mutable rev_nodes : node list;
    mutable next : int;
    cse : (kind * operand list, int) Hashtbl.t;
  }

  let create () = { rev_nodes = []; next = 0; cse = Hashtbl.create 64 }

  let push b kind operands =
    let id = b.next in
    b.next <- id + 1;
    b.rev_nodes <- { id; kind; operands } :: b.rev_nodes;
    id

  let input b ~width_bytes ~stated = push b (Input { width_bytes; stated }) []

  let output b ~width_bytes operands = push b (Output { width_bytes }) operands

  let const b ?name value =
    let kind = Const { value; name } in
    match Hashtbl.find_opt b.cse (kind, []) with
    | Some id -> id
    | None ->
      let id = push b kind [] in
      Hashtbl.add b.cse (kind, []) id;
      id

  let inst b op dtype ?(acc = false) operands =
    let kind = Inst { op; dtype; acc } in
    match Hashtbl.find_opt b.cse (kind, operands) with
    | Some id -> id
    | None ->
      let id = push b kind operands in
      Hashtbl.add b.cse (kind, operands) id;
      id

  let finish b = { arr = Array.of_list (List.rev b.rev_nodes) }
end
