type direction = Read | Write

type access = Linear of { stride : int } | Indirect of { via : string }

type reuse = { traffic : float; footprint : int; stationary : float }

let general_reuse r =
  if r.footprint <= 0 then 1.0 else r.traffic /. float_of_int r.footprint

type rec_info = { concurrent : int; recurs : float; mem_traffic : float }

type t = {
  id : int;
  array : string;
  dir : direction;
  access : access;
  dims : int;
  lanes : int;
  elem_bytes : int;
  port : int option;
  partitioned : bool;
  reuse : reuse;
  recurrence : rec_info option;
}

let bytes_per_firing t = t.lanes * t.elem_bytes

let mem_bytes t ~use_rec =
  let elems =
    match (use_rec, t.recurrence) with
    | true, Some r -> r.mem_traffic
    | true, None | false, _ -> t.reuse.traffic
  in
  elems *. float_of_int t.elem_bytes

let describe t =
  Printf.sprintf "%s %s%s lanes=%d traffic=%.0f foot=%d stat=%.1f%s"
    (match t.dir with Read -> "read" | Write -> "write")
    t.array
    (match t.access with
     | Linear { stride } -> Printf.sprintf "(+%d)" stride
     | Indirect { via } -> Printf.sprintf "[%s[.]]" via)
    t.lanes t.reuse.traffic t.reuse.footprint t.reuse.stationary
    (match t.recurrence with
     | Some r -> Printf.sprintf " rec(conc=%d)" r.concurrent
     | None -> "")

type array_info = {
  name : string;
  elems : int;
  elem_bytes : int;
  read_only : bool;
}

let array_bytes a =
  (* Double-buffering space is reserved when the array is staged into a
     scratchpad, matching the paper's size accounting (Section IV-A). *)
  2 * a.elems * a.elem_bytes
