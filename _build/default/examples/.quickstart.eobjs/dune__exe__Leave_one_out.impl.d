examples/leave_one_out.ml: Ir Kernels List Overgen Overgen_dse Overgen_hls Overgen_workload Printf String Suite
