examples/quickstart.mli:
