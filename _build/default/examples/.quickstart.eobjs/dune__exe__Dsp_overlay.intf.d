examples/dsp_overlay.mli:
