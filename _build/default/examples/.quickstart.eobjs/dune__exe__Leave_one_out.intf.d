examples/leave_one_out.mli:
