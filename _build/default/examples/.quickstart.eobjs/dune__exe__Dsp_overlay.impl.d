examples/dsp_overlay.ml: Adg Ir Kernels List Overgen Overgen_adg Overgen_dse Overgen_hls Overgen_workload Printf Suite Sys_adg
