examples/quickstart.ml: Dtype Ir Op Overgen Overgen_adg Overgen_dse Overgen_fpga Overgen_workload Printf Suite Sys_adg
