examples/vision_pipeline.ml: Kernels List Overgen Overgen_adg Overgen_dse Overgen_hls Overgen_workload Printf Suite
