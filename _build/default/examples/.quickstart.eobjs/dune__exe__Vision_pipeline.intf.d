examples/vision_pipeline.mli:
