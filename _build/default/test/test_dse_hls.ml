open Overgen_adg
open Overgen_workload
open Overgen_scheduler
module Dse = Overgen_dse.Dse
module Mutate = Overgen_dse.Mutate
module Hls = Overgen_hls.Hls
module Predict = Overgen_mlp.Predict
module Res = Overgen_fpga.Res

let model = lazy (Predict.train ~seed:11 ())

let small_cfg seed = { Dse.default_config with iterations = 60; seed }

(* ---------------- mutations ---------------- *)

let fir_usage () =
  let sys = Builder.general_overlay () in
  let c = Overgen_mdfg.Compile.compile (Kernels.find "fir") in
  match Spatial.schedule_app sys c with
  | Ok s -> (sys, s, Mutate.usage_of s)
  | Error e -> Alcotest.failf "fir: %s" e

let test_usage_marks_used_nodes () =
  let _, scheds, usage = fir_usage () in
  (* every placed PE must be detected as used; exercised via prune *)
  let sys, _, _ = fir_usage () in
  let pruned, _ = Mutate.prune_unused sys.adg usage in
  (* pruning must keep the schedules valid *)
  let sys' = Sys_adg.with_adg sys pruned in
  List.iter
    (fun s ->
      match Schedule.validate s sys' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "prune broke schedule: %s" e)
    scheds

let test_prune_removes_unused_caps () =
  let sys, _, usage = fir_usage () in
  let before =
    List.fold_left
      (fun acc (_, (pe : Comp.pe)) -> acc + Op.Cap.cardinal pe.caps)
      0 (Adg.pes sys.adg)
  in
  let pruned, n = Mutate.prune_unused sys.adg usage in
  let after =
    List.fold_left
      (fun acc (_, (pe : Comp.pe)) -> acc + Op.Cap.cardinal pe.caps)
      0 (Adg.pes pruned)
  in
  Alcotest.(check bool) "prunes happened" true (n > 0);
  Alcotest.(check bool) "capability count shrank" true (after < before)

let test_propose_produces_change () =
  let sys, _, usage = fir_usage () in
  let rng = Overgen_util.Rng.create 42 in
  let pool = Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.F64 ] in
  let changed = ref 0 in
  for _ = 1 to 50 do
    let adg', desc = Mutate.propose rng ~preserve:true ~caps_pool:pool sys.adg usage in
    if Adg.node_count adg' <> Adg.node_count sys.adg
       || Adg.edge_count adg' <> Adg.edge_count sys.adg
       || String.length desc > 0 && not (String.length desc >= 4 && String.sub desc 0 4 = "noop")
    then incr changed
  done;
  Alcotest.(check bool) "most proposals change the graph" true (!changed > 30)

let test_preserving_remove_switch_collapses () =
  let sys, scheds, usage = fir_usage () in
  (* find a switch on a route and remove it with preservation: repair must
     succeed via the collapsed edges *)
  let rng = Overgen_util.Rng.create 1 in
  let pool = Op.Cap.of_ops [ Op.Add ] [ Dtype.F64 ] in
  let rec attempt n =
    if n = 0 then ()
    else
      let adg', desc = Mutate.propose rng ~preserve:true ~caps_pool:pool sys.adg usage in
      if String.length desc >= 13 && String.sub desc 0 13 = "remove switch" then begin
        match Spatial.repair (Sys_adg.with_adg sys adg') scheds with
        | Ok _ -> ()
        | Error _ -> () (* rerouting may still fail; the DSE abandons then *)
      end
      else attempt (n - 1)
  in
  attempt 200

(* ---------------- DSE ---------------- *)

let test_dse_improves_over_seed () =
  let model = Lazy.force model in
  let r = Dse.explore ~config:(small_cfg 5) ~model (Dse.compile_apps ~tuned:false [ Kernels.find "vecmax" ]) in
  (match r.trace with
  | first :: _ ->
    Alcotest.(check bool) "objective does not regress" true
      (r.best.objective >= first.est_ipc *. 0.99)
  | [] -> Alcotest.fail "empty trace");
  Alcotest.(check bool) "stats consistent" true
    (r.stats.accepted <= 60 && r.stats.invalid <= 60)

let test_dse_fits_device () =
  let model = Lazy.force model in
  let r = Dse.explore ~config:(small_cfg 6) ~model (Dse.compile_apps ~tuned:false [ Kernels.find "accumulate" ]) in
  let usable = Overgen_fpga.Device.(usable default) in
  Alcotest.(check bool) "predicted resources fit" true
    (Res.fits r.best.predicted ~within:usable)

let test_dse_schedules_valid () =
  let model = Lazy.force model in
  let r = Dse.explore ~config:(small_cfg 7) ~model (Dse.compile_apps ~tuned:false [ Kernels.find "acc-sqr" ]) in
  List.iter
    (List.iter (fun s ->
         match Schedule.validate s r.best.sys with
         | Ok () -> ()
         | Error e -> Alcotest.failf "best design schedule invalid: %s" e))
    r.best.per_app

let test_dse_deterministic () =
  let model = Lazy.force model in
  let apps = Dse.compile_apps ~tuned:false [ Kernels.find "convert-bit" ] in
  let a = Dse.explore ~config:(small_cfg 8) ~model apps in
  let b = Dse.explore ~config:(small_cfg 8) ~model apps in
  Alcotest.(check (float 1e-9)) "same objective" a.best.objective b.best.objective

let test_dse_trace_monotone_time () =
  let model = Lazy.force model in
  let r = Dse.explore ~config:(small_cfg 9) ~model (Dse.compile_apps ~tuned:false [ Kernels.find "vecmax" ]) in
  let rec mono = function
    | (a : Dse.trace_point) :: (b :: _ as rest) ->
      a.modeled_hours <= b.modeled_hours && mono rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "modeled time increases" true (mono r.trace)

let test_evaluate_fixed_design () =
  let model = Lazy.force model in
  let sys = Builder.general_overlay () in
  match Dse.evaluate ~model sys (Dse.compile_apps ~tuned:false (Kernels.of_suite Suite.Vision)) with
  | Ok d -> Alcotest.(check bool) "objective positive" true (d.objective > 0.0)
  | Error e -> Alcotest.failf "general should host vision: %s" e

(* ---------------- HLS baseline ---------------- *)

let test_hls_ii_matches_table4 () =
  let ii name tuned = (Hls.evaluate ~tuned (Kernels.find name) { unroll = 1; partition = 1 }).ii in
  Alcotest.(check int) "cholesky untuned" 10 (ii "cholesky" false);
  Alcotest.(check int) "cholesky tuned" 5 (ii "cholesky" true);
  Alcotest.(check int) "channel-ext untuned" 8 (ii "channel-ext" false);
  Alcotest.(check int) "channel-ext tuned" 1 (ii "channel-ext" true)

let test_hls_unroll_helps_clean_kernels () =
  let k = Kernels.find "mm" in
  let slow = Hls.runtime_ms (Hls.evaluate ~tuned:false k { unroll = 1; partition = 1 }) in
  let fast = Hls.runtime_ms (Hls.evaluate ~tuned:false k { unroll = 8; partition = 8 }) in
  Alcotest.(check bool) "8x unroll faster" true (fast < slow)

let test_hls_partition_relieves_ports () =
  let k = Kernels.find "stencil-2d" in
  let starved = Hls.evaluate ~tuned:false k { unroll = 8; partition = 1 } in
  let fed = Hls.evaluate ~tuned:false k { unroll = 8; partition = 16 } in
  Alcotest.(check bool) "partition lowers ii" true (fed.ii < starved.ii)

let test_autodse_beats_default () =
  List.iter
    (fun name ->
      let k = Kernels.find name in
      let d0 = Hls.evaluate ~tuned:false k { unroll = 1; partition = 1 } in
      let e = Hls.autodse ~tuned:false k in
      Alcotest.(check bool)
        (name ^ " explorer no worse than default") true
        (Hls.runtime_ms e.best <= Hls.runtime_ms d0 +. 1e-9);
      Alcotest.(check bool) "positive dse time" true (e.dse_hours > 0.0))
    [ "mm"; "fir"; "blur"; "accumulate" ]

let test_autodse_database_gemm () =
  let e = Hls.autodse ~tuned:false (Kernels.find "gemm") in
  Alcotest.(check int) "database hit: one candidate" 1 e.candidates

let test_tuning_never_slower () =
  List.iter
    (fun (k : Ir.kernel) ->
      let u = Hls.runtime_ms (Hls.autodse ~tuned:false k).best in
      let t = Hls.runtime_ms (Hls.autodse ~tuned:true k).best in
      Alcotest.(check bool) (k.name ^ " tuned <= untuned") true (t <= u *. 1.05))
    Kernels.all

let test_more_dram_channels_help_hls () =
  let k = Kernels.find "accumulate" in
  let one = Hls.runtime_ms (Hls.autodse ~dram_channels:1 ~tuned:false k).best in
  let four = Hls.runtime_ms (Hls.autodse ~dram_channels:4 ~tuned:false k).best in
  Alcotest.(check bool) "4 channels <= 1" true (four <= one)

let prop_hls_resources_grow_with_unroll =
  QCheck.Test.make ~name:"hls resources monotone in unroll" ~count:20
    QCheck.(int_range 0 5)
    (fun log_u ->
      let u = 1 lsl log_u in
      let k = Kernels.find "bgr2grey" in
      let a = Hls.evaluate ~tuned:false k { unroll = u; partition = 1 } in
      let b = Hls.evaluate ~tuned:false k { unroll = 2 * u; partition = 1 } in
      b.res.Res.lut >= a.res.Res.lut)

let tests =
  [
    Alcotest.test_case "usage + prune keep schedules" `Quick test_usage_marks_used_nodes;
    Alcotest.test_case "prune removes caps" `Quick test_prune_removes_unused_caps;
    Alcotest.test_case "proposals mutate" `Quick test_propose_produces_change;
    Alcotest.test_case "collapse + repair" `Quick test_preserving_remove_switch_collapses;
    Alcotest.test_case "dse improves" `Slow test_dse_improves_over_seed;
    Alcotest.test_case "dse fits device" `Slow test_dse_fits_device;
    Alcotest.test_case "dse schedules valid" `Slow test_dse_schedules_valid;
    Alcotest.test_case "dse deterministic" `Slow test_dse_deterministic;
    Alcotest.test_case "dse time monotone" `Slow test_dse_trace_monotone_time;
    Alcotest.test_case "evaluate fixed design" `Slow test_evaluate_fixed_design;
    Alcotest.test_case "hls II table" `Quick test_hls_ii_matches_table4;
    Alcotest.test_case "hls unroll helps" `Quick test_hls_unroll_helps_clean_kernels;
    Alcotest.test_case "hls partition" `Quick test_hls_partition_relieves_ports;
    Alcotest.test_case "autodse explores" `Quick test_autodse_beats_default;
    Alcotest.test_case "autodse database" `Quick test_autodse_database_gemm;
    Alcotest.test_case "tuning never slower" `Quick test_tuning_never_slower;
    Alcotest.test_case "dram channels (hls)" `Quick test_more_dram_channels_help_hls;
    QCheck_alcotest.to_alcotest prop_hls_resources_grow_with_unroll;
  ]
