open Overgen_workload

let test_19_kernels () =
  Alcotest.(check int) "19 workloads" 19 (List.length Kernels.all)

let test_suite_partition () =
  Alcotest.(check int) "5 dsp" 5 (List.length (Kernels.of_suite Suite.Dsp));
  Alcotest.(check int) "5 machsuite" 5 (List.length (Kernels.of_suite Suite.Machsuite));
  Alcotest.(check int) "9 vision" 9 (List.length (Kernels.of_suite Suite.Vision));
  List.iter
    (fun s ->
      List.iter
        (fun (k : Ir.kernel) -> Alcotest.(check bool) "suite matches" true (k.suite = s))
        (Kernels.of_suite s))
    Suite.all

let test_find () =
  let k = Kernels.find "fir" in
  Alcotest.(check string) "name" "fir" k.Ir.name;
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Kernels.find "nope"))

let test_affine_subst () =
  let a = Ir.affine ~const:5 [ ("i", 3); ("j", 1) ] in
  let b = Ir.affine_subst_scaled a ~var:"i" ~scale:4 ~offset:2 in
  Alcotest.(check int) "coeff scaled" 12 (Ir.affine_coeff b "i");
  Alcotest.(check int) "const shifted" 11 b.Ir.const;
  Alcotest.(check int) "other coeff untouched" 1 (Ir.affine_coeff b "j")

let test_affine_subst_absent_var () =
  let a = Ir.affine [ ("j", 2) ] in
  let b = Ir.affine_subst_scaled a ~var:"i" ~scale:4 ~offset:1 in
  Alcotest.(check bool) "unchanged" true (Ir.affine_equal a b)

let test_trip_avg () =
  Alcotest.(check (float 1e-9)) "fixed" 8.0 (Ir.trip_avg (Ir.Fixed 8));
  Alcotest.(check (float 1e-9)) "triangular" 24.0 (Ir.trip_avg (Ir.Triangular 48));
  Alcotest.(check int) "triangular max" 48 (Ir.trip_max (Ir.Triangular 48))

let test_region_iterations () =
  let k = Kernels.find "mm" in
  let r = List.hd k.Ir.regions in
  Alcotest.(check (float 1.0)) "32^3 iters" (32.0 ** 3.0) (Ir.region_iterations r)

let test_region_arrays () =
  let k = Kernels.find "crs" in
  let r = List.hd k.Ir.regions in
  let arrays = Ir.region_arrays r in
  Alcotest.(check bool) "includes index array" true (List.mem "cidx" arrays);
  Alcotest.(check bool) "includes x" true (List.mem "x" arrays);
  Alcotest.(check bool) "includes y" true (List.mem "y" arrays)

let test_op_histogram_fir () =
  let k = Kernels.find "fir" in
  let r = List.hd k.Ir.regions in
  let h = Ir.region_op_histogram r in
  Alcotest.(check (option int)) "one mul" (Some 1) (List.assoc_opt Overgen_adg.Op.Mul h);
  Alcotest.(check (option int)) "one add (accum)" (Some 1)
    (List.assoc_opt Overgen_adg.Op.Add h)

let test_arrays_declared () =
  (* Every array referenced in a region body must be declared on the kernel,
     with a large enough element count for the region footprint. *)
  List.iter
    (fun (k : Ir.kernel) ->
      List.iter
        (fun r ->
          List.iter
            (fun a ->
              Alcotest.(check bool)
                (Printf.sprintf "%s declares %s" k.name a)
                true
                (List.mem_assoc a k.arrays))
            (Ir.region_arrays r))
        (k.regions @ match k.og_tuning with Some t -> t.regions | None -> []))
    Kernels.all

let test_tuned_variants () =
  let tuned_names =
    List.filter_map
      (fun (k : Ir.kernel) -> Option.map (fun _ -> k.name) k.og_tuning)
      Kernels.all
  in
  Alcotest.(check (list string)) "paper Q2's four OverGen-tuned kernels"
    [ "fft"; "gemm"; "stencil-2d"; "blur" ]
    tuned_names

let test_regions_for () =
  let k = Kernels.find "gemm" in
  let untuned = Kernels.regions_for ~tuned:false k in
  let tuned = Kernels.regions_for ~tuned:true k in
  Alcotest.(check bool) "different regions when tuned" true (untuned <> tuned);
  let k2 = Kernels.find "fir" in
  Alcotest.(check bool) "no tuning falls back" true
    (Kernels.regions_for ~tuned:true k2 = k2.Ir.regions)

let test_hls_patterns_match_table4 () =
  (* Table IV: cholesky 10->5, crs 4->2, fft 2->1; strided bgr2. 9, blur 6,
     chan. 8, stcl-3d 6. *)
  let ii name =
    let k = Kernels.find name in
    match (List.hd k.Ir.regions).hls with
    | Ir.Variable_trip { untuned_ii; tuned_ii } -> (untuned_ii, tuned_ii)
    | Ir.Strided { untuned_ii } -> (untuned_ii, 1)
    | Ir.Clean -> (1, 1)
  in
  Alcotest.(check (pair int int)) "cholesky" (10, 5) (ii "cholesky");
  Alcotest.(check (pair int int)) "crs" (4, 2) (ii "crs");
  Alcotest.(check (pair int int)) "fft" (2, 1) (ii "fft");
  Alcotest.(check (pair int int)) "bgr2grey" (9, 1) (ii "bgr2grey");
  Alcotest.(check (pair int int)) "blur" (6, 1) (ii "blur");
  Alcotest.(check (pair int int)) "channel-ext" (8, 1) (ii "channel-ext");
  Alcotest.(check (pair int int)) "stencil-3d" (6, 1) (ii "stencil-3d")

let test_dtypes_match_table2 () =
  let dt name = (Kernels.find name).Ir.dtype in
  Alcotest.(check bool) "cholesky f64" true (dt "cholesky" = Overgen_adg.Dtype.F64);
  Alcotest.(check bool) "fft f32" true (dt "fft" = Overgen_adg.Dtype.F32);
  Alcotest.(check int) "fft lanes 2" 2 (Kernels.find "fft").Ir.lanes;
  Alcotest.(check bool) "gemm i64" true (dt "gemm" = Overgen_adg.Dtype.I64);
  List.iter
    (fun (k : Ir.kernel) ->
      Alcotest.(check bool) "vision is i16" true (k.dtype = Overgen_adg.Dtype.I16))
    (Kernels.of_suite Suite.Vision)

let test_pretty_renders () =
  List.iter
    (fun k ->
      let s = Ir.pretty k in
      Alcotest.(check bool) "pragma present" true
        (String.length s > 0 && String.sub s 0 2 = "//"))
    Kernels.all

let test_flags () =
  Alcotest.(check bool) "ellpack broadcast" true (Kernels.find "ellpack").Ir.needs_broadcast;
  Alcotest.(check bool) "stencil-2d window" true (Kernels.find "stencil-2d").Ir.window_reuse;
  Alcotest.(check bool) "blur window" true (Kernels.find "blur").Ir.window_reuse;
  Alcotest.(check bool) "derivative window" true (Kernels.find "derivative").Ir.window_reuse

let count_char ch s =
  String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 s

let test_c_emission_structure () =
  List.iter
    (fun (k : Ir.kernel) ->
      let c = C_source.emit k in
      Alcotest.(check int) (k.name ^ " balanced braces") (count_char '{' c)
        (count_char '}' c);
      let has sub =
        let n = String.length c and m = String.length sub in
        let rec go i = i + m <= n && (String.sub c i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "dsa config pragma" true (has "#pragma dsa config");
      Alcotest.(check bool) "dsa decouple pragma" true (has "#pragma dsa decouple");
      Alcotest.(check bool) "has main" true (has "int main(void)"))
    Kernels.all

let test_c_emission_compiles () =
  (* syntax-check every emitted kernel with the host C compiler, the real
     consumer of the paper's programming interface; skipped without gcc *)
  if Sys.command "command -v gcc > /dev/null 2>&1" <> 0 then ()
  else
    List.iter
      (fun (k : Ir.kernel) ->
        List.iter
          (fun tuned ->
            let path = Filename.temp_file "overgen_kernel" ".c" in
            let oc = open_out path in
            output_string oc (C_source.emit ~tuned k);
            close_out oc;
            let rc =
              Sys.command
                (Printf.sprintf
                   "gcc -std=c99 -fsyntax-only -Werror=implicit %s 2>/dev/null"
                   (Filename.quote path))
            in
            Sys.remove path;
            Alcotest.(check int)
              (Printf.sprintf "%s (tuned=%b) is valid C" k.name tuned)
              0 rc)
          [ false; true ])
      Kernels.all

let prop_region_iterations_positive =
  QCheck.Test.make ~name:"every region has positive iteration count" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun (k : Ir.kernel) ->
          List.for_all (fun r -> Ir.region_iterations r > 0.0) k.regions)
        Kernels.all)

let tests =
  [
    Alcotest.test_case "19 kernels" `Quick test_19_kernels;
    Alcotest.test_case "suite partition" `Quick test_suite_partition;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "affine subst" `Quick test_affine_subst;
    Alcotest.test_case "affine subst absent" `Quick test_affine_subst_absent_var;
    Alcotest.test_case "trip avg" `Quick test_trip_avg;
    Alcotest.test_case "region iterations" `Quick test_region_iterations;
    Alcotest.test_case "region arrays" `Quick test_region_arrays;
    Alcotest.test_case "fir op histogram" `Quick test_op_histogram_fir;
    Alcotest.test_case "arrays declared" `Quick test_arrays_declared;
    Alcotest.test_case "tuned variants" `Quick test_tuned_variants;
    Alcotest.test_case "regions_for" `Quick test_regions_for;
    Alcotest.test_case "hls patterns (Table IV)" `Quick test_hls_patterns_match_table4;
    Alcotest.test_case "dtypes (Table II)" `Quick test_dtypes_match_table2;
    Alcotest.test_case "pretty renders" `Quick test_pretty_renders;
    Alcotest.test_case "kernel flags" `Quick test_flags;
    Alcotest.test_case "C emission structure" `Quick test_c_emission_structure;
    Alcotest.test_case "C emission compiles (gcc)" `Slow test_c_emission_compiles;
    QCheck_alcotest.to_alcotest prop_region_iterations_positive;
  ]
