open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
module Perf = Overgen_perf.Perf
module Sim = Overgen_sim.Sim

let general = lazy (Builder.general_overlay ())

let schedules name =
  let sys = Lazy.force general in
  match Spatial.schedule_app sys (Compile.compile (Kernels.find name)) with
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: %s" name e

(* ---------------- performance model ---------------- *)

let test_factors_in_unit_range () =
  let sys = Lazy.force general in
  List.iter
    (fun (k : Ir.kernel) ->
      List.iter
        (fun s ->
          let r = Perf.region sys s in
          let in01 x = x > 0.0 && x <= 1.0 in
          Alcotest.(check bool) "spad" true (in01 r.spad_factor);
          Alcotest.(check bool) "noc" true (in01 r.noc_factor);
          Alcotest.(check bool) "l2" true (in01 r.l2_factor);
          Alcotest.(check bool) "dram" true (in01 r.dram_factor);
          Alcotest.(check (float 1e-9)) "bottleneck is the min"
            (Float.min r.spad_factor
               (Float.min r.noc_factor (Float.min r.l2_factor r.dram_factor)))
            r.bottleneck;
          Alcotest.(check bool) "cycles positive" true (r.cycles > 0.0))
        (schedules k.name))
    Kernels.all

let test_eq1_structure () =
  (* Equation 1: est_ipc = ipc_single * tiles * bottleneck *)
  let sys = Lazy.force general in
  let s = List.hd (schedules "fir") in
  let r = Perf.region sys s in
  Alcotest.(check (float 1e-6)) "eq1"
    (r.ipc_single *. float_of_int sys.system.System.tiles *. r.bottleneck)
    r.est_ipc

let test_more_tiles_more_ipc_until_bandwidth () =
  let sys = Lazy.force general in
  let s = schedules "fir" in
  let ipc_at tiles =
    let sys' = Sys_adg.with_system sys { sys.system with System.tiles } in
    (Perf.app sys' s).app_ipc
  in
  Alcotest.(check bool) "2 tiles >= 1 tile" true (ipc_at 2 >= ipc_at 1);
  Alcotest.(check bool) "4 tiles >= 2 tiles" true (ipc_at 4 >= ipc_at 2)

let test_memory_bound_kernel_saturates () =
  (* accumulate is bandwidth-bound: 16 tiles cannot be 4x of 4 tiles *)
  let sys = Lazy.force general in
  let s = schedules "accumulate" in
  let ipc_at tiles =
    let sys' = Sys_adg.with_system sys { sys.system with System.tiles } in
    (Perf.app sys' s).app_ipc
  in
  Alcotest.(check bool) "sublinear scaling" true (ipc_at 16 < 4.0 *. ipc_at 4)

let test_more_banks_help_l2_bound () =
  let sys = Lazy.force general in
  let s = schedules "accumulate" in
  let cyc banks =
    let sys' = Sys_adg.with_system sys { sys.system with System.l2_banks = banks } in
    (Perf.app sys' s).total_cycles
  in
  Alcotest.(check bool) "8 banks <= 2 banks" true (cyc 8 <= cyc 2)

let test_objective_geomean () =
  let sys = Lazy.force general in
  let a = schedules "fir" and b = schedules "mm" in
  let oa = Perf.objective sys [ a ] and ob = Perf.objective sys [ b ] in
  let oab = Perf.objective sys [ a; b ] in
  Alcotest.(check (float 1e-6)) "geomean of the pair" (sqrt (oa *. ob)) oab

let test_stride_waste () =
  let s4 =
    List.find
      (fun (s : Stream.t) -> s.dir = Stream.Read)
      (List.hd (schedules "channel-ext")).variant.streams
  in
  Alcotest.(check (float 1e-9)) "stride-4 wastes 4x" 4.0 (Perf.stride_waste s4)

(* ---------------- simulator ---------------- *)

let test_sim_runs_everything () =
  let sys = Lazy.force general in
  List.iter
    (fun (k : Ir.kernel) ->
      let r = Sim.run sys (schedules k.name) in
      Alcotest.(check bool) (k.name ^ " finishes") true (r.total_cycles > 0);
      Alcotest.(check bool) "ipc positive" true (r.sim_ipc > 0.0))
    Kernels.all

let test_sim_work_conservation () =
  (* the L2 must serve at least the data the DMA streams move *)
  let sys = Lazy.force general in
  let r = Sim.run sys (schedules "accumulate") in
  let expected = 2.0 *. 65536.0 *. 2.0 (* read + write of 64K i16 *) in
  Alcotest.(check bool) "l2 bytes >= stream bytes" true (r.l2_bytes >= expected *. 0.9)

let test_sim_vs_model_agreement () =
  let sys = Lazy.force general in
  List.iter
    (fun name ->
      let s = schedules name in
      let est = (Perf.app sys s).total_cycles in
      let sim = float_of_int (Sim.run sys s).total_cycles in
      let ratio = sim /. est in
      Alcotest.(check bool)
        (Printf.sprintf "%s sim/est=%.2f within [0.7, 3]" name ratio)
        true
        (ratio > 0.7 && ratio < 3.0))
    [ "fir"; "mm"; "gemm"; "blur"; "accumulate"; "stencil-2d" ]

let test_one_hot_bypass_helps_single_stream () =
  (* disabling the Figure 11 bypass halves single-stream issue and must not
     make anything faster *)
  let sys = Lazy.force general in
  let s = schedules "channel-ext" in
  let with_bp = Sim.run ~config:Sim.default_config sys s in
  let without_bp =
    Sim.run ~config:{ Sim.default_config with one_hot_bypass = false } sys s
  in
  Alcotest.(check bool) "bypass helps" true
    (without_bp.total_cycles >= with_bp.total_cycles)

let test_more_dram_channels_do_not_hurt () =
  let sys = Lazy.force general in
  let s = schedules "accumulate" in
  let cyc ch =
    let sys' = Sys_adg.with_system sys { sys.system with System.dram_channels = ch } in
    (Sim.run sys' s).total_cycles
  in
  Alcotest.(check bool) "2ch <= 1ch" true (cyc 2 <= cyc 1);
  Alcotest.(check bool) "4ch <= 2ch" true (cyc 4 <= cyc 2)

let test_latency_sensitivity () =
  let sys = Lazy.force general in
  let s = schedules "crs" in
  let fast = Sim.run ~config:{ Sim.default_config with dram_latency = 20 } sys s in
  let slow = Sim.run ~config:{ Sim.default_config with dram_latency = 400 } sys s in
  Alcotest.(check bool) "longer latency, more cycles" true
    (slow.total_cycles >= fast.total_cycles)

let test_reconfigure_cycles_scale () =
  let sys = Lazy.force general in
  let small =
    Sys_adg.make
      (Builder.seed ~caps:(Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ]) ~width_bits:64)
      System.default
  in
  Alcotest.(check bool) "bigger design reconfigures slower" true
    (Sim.reconfigure_cycles sys > Sim.reconfigure_cycles small)

let test_sim_deterministic () =
  let sys = Lazy.force general in
  let s = schedules "bgr2grey" in
  Alcotest.(check int) "same cycles" (Sim.run sys s).total_cycles
    (Sim.run sys s).total_cycles

let test_multi_tenant () =
  let sys = Lazy.force general in
  let a = schedules "fir" and b = schedules "accumulate" in
  let m = Sim.run_multi sys [ (a, 2); (b, 2) ] in
  Alcotest.(check int) "two tenants" 2 (List.length m.tenants);
  List.iter
    (fun (t : Sim.tenant_result) ->
      Alcotest.(check bool) "tenant finished" true (t.t_cycles > 0);
      Alcotest.(check bool) "within makespan" true (t.t_cycles <= m.m_cycles))
    m.tenants;
  (* fewer tiles and shared bandwidth: each tenant is no faster than solo *)
  let solo_a = (Sim.run sys a).total_cycles in
  let cyc k =
    (List.find (fun (t : Sim.tenant_result) -> t.t_kernel = k) m.tenants).t_cycles
  in
  Alcotest.(check bool) "fir no faster with half the tiles" true
    (cyc "fir" >= solo_a)

let test_multi_tenant_rejects_oversubscription () =
  let sys = Lazy.force general in
  let a = schedules "vecmax" in
  Alcotest.check_raises "too many tiles"
    (Invalid_argument "Sim.run_multi: tile shares exceed the system's tiles")
    (fun () -> ignore (Sim.run_multi sys [ (a, 3); (a, 3) ]))

let prop_sim_cycles_bounded_below =
  (* cannot finish faster than firings/tiles at the schedule II *)
  QCheck.Test.make ~name:"sim cycles >= ideal pipeline bound" ~count:1 QCheck.unit
    (fun () ->
      let sys = Lazy.force general in
      List.for_all
        (fun name ->
          let scheds = schedules name in
          let r = Sim.run sys scheds in
          let ideal =
            List.fold_left
              (fun acc (s : Schedule.t) ->
                acc
                +. (s.variant.firings /. float_of_int sys.system.System.tiles
                   *. float_of_int s.ii))
              0.0 scheds
          in
          float_of_int r.total_cycles >= ideal *. 0.99)
        [ "fir"; "mm"; "accumulate"; "vecmax" ])

let tests =
  [
    Alcotest.test_case "factors in (0,1]" `Quick test_factors_in_unit_range;
    Alcotest.test_case "equation 1 structure" `Quick test_eq1_structure;
    Alcotest.test_case "tiles scale ipc" `Quick test_more_tiles_more_ipc_until_bandwidth;
    Alcotest.test_case "memory-bound saturates" `Quick test_memory_bound_kernel_saturates;
    Alcotest.test_case "banks help" `Quick test_more_banks_help_l2_bound;
    Alcotest.test_case "objective geomean" `Quick test_objective_geomean;
    Alcotest.test_case "stride waste" `Quick test_stride_waste;
    Alcotest.test_case "sim runs all kernels" `Quick test_sim_runs_everything;
    Alcotest.test_case "sim work conservation" `Quick test_sim_work_conservation;
    Alcotest.test_case "sim vs model" `Quick test_sim_vs_model_agreement;
    Alcotest.test_case "one-hot bypass (Fig 11)" `Quick test_one_hot_bypass_helps_single_stream;
    Alcotest.test_case "dram channels monotone" `Quick test_more_dram_channels_do_not_hurt;
    Alcotest.test_case "latency sensitivity" `Quick test_latency_sensitivity;
    Alcotest.test_case "reconfig scales" `Quick test_reconfigure_cycles_scale;
    Alcotest.test_case "sim deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "multi-tenant" `Quick test_multi_tenant;
    Alcotest.test_case "multi-tenant oversubscription" `Quick
      test_multi_tenant_rejects_oversubscription;
    QCheck_alcotest.to_alcotest prop_sim_cycles_bounded_below;
  ]
