open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
module Bitstream = Overgen_isa.Bitstream
module Assemble = Overgen_isa.Assemble
module Emit = Overgen_rtl.Emit
module Exec = Overgen_exec.Exec

let general = lazy (Builder.general_overlay ())

let schedules name =
  let sys = Lazy.force general in
  match Spatial.schedule_app sys (Compile.compile (Kernels.find name)) with
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: %s" name e

(* ---------------- bitstream ---------------- *)

let test_bitstream_packing () =
  let bs =
    List.fold_left Bitstream.add Bitstream.empty
      [
        { Bitstream.node = 0; tag = "a"; value = 0x5L; bits = 3 };
        { Bitstream.node = 1; tag = "b"; value = 0xFFL; bits = 8 };
        { Bitstream.node = 2; tag = "c"; value = 0x1L; bits = 1 };
      ]
  in
  Alcotest.(check int) "12 payload bits" 12 (Bitstream.bit_count bs);
  let w = Bitstream.words bs in
  (* header + 1 payload + checksum *)
  Alcotest.(check int) "3 words" 3 (Array.length w);
  (* payload: 0b1_11111111_101 = 0xFFD *)
  Alcotest.(check int64) "packed payload" 0xFFDL w.(1)

let test_bitstream_verify () =
  let bs =
    Bitstream.add Bitstream.empty
      { Bitstream.node = 0; tag = "x"; value = 42L; bits = 16 }
  in
  let w = Bitstream.words bs in
  Alcotest.(check bool) "verifies" true (Bitstream.verify w);
  let corrupted = Array.copy w in
  corrupted.(1) <- Int64.add corrupted.(1) 1L;
  Alcotest.(check bool) "detects corruption" false (Bitstream.verify corrupted)

let test_bitstream_rejects_bad_width () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitstream.add: bits in 1..64")
    (fun () ->
      ignore
        (Bitstream.add Bitstream.empty
           { Bitstream.node = 0; tag = "x"; value = 0L; bits = 0 }))

(* ---------------- assembler ---------------- *)

let test_assemble_program () =
  let sys = Lazy.force general in
  let p = Assemble.assemble sys (schedules "fir") in
  Alcotest.(check string) "kernel name" "fir" p.kernel;
  Alcotest.(check int) "one region" 1 (List.length p.regions);
  let r = List.hd p.regions in
  Alcotest.(check bool) "streams present" true (List.length r.commands >= 3);
  Alcotest.(check bool) "config fields emitted" true
    (Bitstream.bit_count p.bitstream > 0);
  Alcotest.(check bool) "bitstream verifies" true
    (Bitstream.verify (Bitstream.words p.bitstream))

let test_assemble_rec_flag () =
  let sys = Lazy.force general in
  let p = Assemble.assemble sys (schedules "fir") in
  let cmds = (List.hd p.regions).commands in
  Alcotest.(check bool) "recurrence-forward streams flagged" true
    (List.exists (fun (c : Assemble.stream_cmd) -> c.rec_forward) cmds)

let test_assemble_indirect_flag () =
  let sys = Lazy.force general in
  let p = Assemble.assemble sys (schedules "crs") in
  let cmds = (List.hd p.regions).commands in
  Alcotest.(check bool) "indirect streams flagged" true
    (List.exists (fun (c : Assemble.stream_cmd) -> c.indirect) cmds)

let test_encode_cmd_roundtrippable_flags () =
  let c =
    {
      Assemble.engine = 5;
      port = Some 9;
      write = true;
      indirect = false;
      rec_forward = true;
      base_offset = 4096;
      dims = [ (1, 64); (64, 199) ];
      elem_bytes = 8;
    }
  in
  match Assemble.encode_cmd c with
  | base :: flags :: dims ->
    Alcotest.(check int64) "base" 4096L base;
    Alcotest.(check int) "write bit" 1 (Int64.to_int (Int64.logand flags 1L));
    Alcotest.(check int) "rec bit" 4 (Int64.to_int (Int64.logand flags 4L));
    Alcotest.(check int) "two dim words" 2 (List.length dims)
  | _ -> Alcotest.fail "encoding too short"

let test_disassemble_readable () =
  let sys = Lazy.force general in
  let p = Assemble.assemble sys (schedules "mm") in
  let text = Assemble.disassemble p in
  Alcotest.(check bool) "mentions kernel" true
    (String.length text > 0
    && String.sub text 0 10 = "program mm")

let test_distinct_kernels_distinct_bitstreams () =
  let sys = Lazy.force general in
  let a = Assemble.config_bitstream sys (schedules "fir") in
  let b = Assemble.config_bitstream sys (schedules "mm") in
  Alcotest.(check bool) "different configurations" true
    (Bitstream.words a <> Bitstream.words b)

(* ---------------- RTL emitter ---------------- *)

let rtl = lazy (Emit.emit (Lazy.force general))

let count_sub text sub =
  let sl = String.length sub and tl = String.length text in
  let rec go i acc =
    if i + sl > tl then acc
    else if String.sub text i sl = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_rtl_module_balance () =
  let text = Emit.to_string (Lazy.force rtl) in
  Alcotest.(check int) "module/endmodule balanced"
    (count_sub text "\nendmodule")
    (count_sub text "module overgen_")

let test_rtl_instance_counts () =
  let sys = Lazy.force general in
  let stats = Emit.stats (Lazy.force rtl) in
  let get k = List.assoc k stats in
  Alcotest.(check int) "24 PEs instantiated" (List.length (Adg.pes sys.adg)) (get "pe");
  Alcotest.(check int) "35 switches" (List.length (Adg.switches sys.adg)) (get "switch");
  Alcotest.(check int) "engines" (List.length (Adg.engines sys.adg)) (get "engine")

let test_rtl_tiles_replicated () =
  let sys = Lazy.force general in
  let top = List.assoc "overgen_top" (Lazy.force rtl).modules in
  Alcotest.(check int) "tile instances" sys.system.System.tiles
    (count_sub top "overgen_tile u_tile_")

let test_rtl_has_dispatcher_and_bypass () =
  let text = Emit.to_string (Lazy.force rtl) in
  Alcotest.(check bool) "dispatcher module" true
    (count_sub text "module overgen_dispatcher" = 1);
  Alcotest.(check bool) "one-hot bypass logic present" true
    (count_sub text "one_hot" > 0)

let test_rtl_unique_module_names () =
  let names = List.map fst (Lazy.force rtl).modules in
  Alcotest.(check int) "no duplicate module names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---------------- functional executor ---------------- *)

let test_all_kernels_functionally_correct () =
  List.iter
    (fun (k : Ir.kernel) ->
      List.iter
        (fun u ->
          match Exec.check ~unroll:u k with
          | Ok () -> ()
          | Error e -> Alcotest.failf "u=%d: %s" u e)
        [ 1; 2; 4 ])
    Kernels.all

let test_tuned_variants_functionally_correct () =
  List.iter
    (fun (k : Ir.kernel) ->
      if k.og_tuning <> None then
        match Exec.check ~tuned:true ~unroll:2 k with
        | Ok () -> ()
        | Error e -> Alcotest.failf "tuned %s" e)
    Kernels.all

let test_executor_detects_injected_bug () =
  (* sanity: the checker is not vacuous — a wrong reference must differ *)
  let k = Kernels.find "acc-sqr" in
  let env = Exec.make_env k in
  let a = Exec.copy_env env and b = Exec.copy_env env in
  Exec.run_reference a k (List.hd k.regions);
  (* b left unexecuted: must differ *)
  Alcotest.(check bool) "difference detected" true (Exec.max_abs_diff a b > 1e-6)

let prop_exec_deterministic =
  QCheck.Test.make ~name:"executor deterministic across seeds" ~count:5
    QCheck.(int_range 1 1000)
    (fun seed ->
      match Exec.check ~seed ~unroll:4 (Kernels.find "bgr2grey") with
      | Ok () -> true
      | Error _ -> false)

let tests =
  [
    Alcotest.test_case "bitstream packing" `Quick test_bitstream_packing;
    Alcotest.test_case "bitstream verify" `Quick test_bitstream_verify;
    Alcotest.test_case "bitstream widths" `Quick test_bitstream_rejects_bad_width;
    Alcotest.test_case "assemble program" `Quick test_assemble_program;
    Alcotest.test_case "rec flag" `Quick test_assemble_rec_flag;
    Alcotest.test_case "indirect flag" `Quick test_assemble_indirect_flag;
    Alcotest.test_case "encode cmd" `Quick test_encode_cmd_roundtrippable_flags;
    Alcotest.test_case "disassemble" `Quick test_disassemble_readable;
    Alcotest.test_case "distinct bitstreams" `Quick test_distinct_kernels_distinct_bitstreams;
    Alcotest.test_case "rtl module balance" `Quick test_rtl_module_balance;
    Alcotest.test_case "rtl instance counts" `Quick test_rtl_instance_counts;
    Alcotest.test_case "rtl tile replication" `Quick test_rtl_tiles_replicated;
    Alcotest.test_case "rtl dispatcher+bypass" `Quick test_rtl_has_dispatcher_and_bypass;
    Alcotest.test_case "rtl unique modules" `Quick test_rtl_unique_module_names;
    Alcotest.test_case "all kernels functional (VCS analog)" `Slow
      test_all_kernels_functionally_correct;
    Alcotest.test_case "tuned variants functional" `Slow
      test_tuned_variants_functionally_correct;
    Alcotest.test_case "checker not vacuous" `Quick test_executor_detects_injected_bug;
    QCheck_alcotest.to_alcotest prop_exec_deterministic;
  ]
