open Overgen_adg
open Overgen_fpga
module Mlp = Overgen_mlp.Mlp
module Predict = Overgen_mlp.Predict
module Rng = Overgen_util.Rng

(* ---------------- resource vectors & device ---------------- *)

let test_res_arith () =
  let a = { Res.lut = 10; ff = 20; bram = 1; dsp = 2 } in
  let b = { Res.lut = 5; ff = 5; bram = 0; dsp = 1 } in
  Alcotest.(check bool) "add" true (Res.add a b = { Res.lut = 15; ff = 25; bram = 1; dsp = 3 });
  Alcotest.(check bool) "scale" true (Res.scale 2 b = { Res.lut = 10; ff = 10; bram = 0; dsp = 2 });
  Alcotest.(check bool) "fits" true (Res.fits b ~within:a);
  Alcotest.(check bool) "does not fit" false (Res.fits a ~within:b)

let test_device () =
  Alcotest.(check int) "vu9p luts" 1182240 Device.xcvu9p.capacity.Res.lut;
  Alcotest.(check bool) "usable below capacity" true
    ((Device.usable Device.xcvu9p).Res.lut < Device.xcvu9p.capacity.Res.lut)

(* ---------------- oracle ---------------- *)

let test_fu_costs_ordered () =
  (* f64 units cost more than f32; div more than add *)
  let lut op dt = (Oracle.fu_cost op dt).Res.lut in
  Alcotest.(check bool) "f64 div > f32 div" true (lut Op.Div Dtype.F64 > lut Op.Div Dtype.F32);
  Alcotest.(check bool) "div > add (f64)" true (lut Op.Div Dtype.F64 > lut Op.Add Dtype.F64);
  Alcotest.(check bool) "int mul uses dsp" true
    ((Oracle.fu_cost Op.Mul Dtype.I64).Res.dsp > 0)

let test_pe_unit_sharing () =
  (* adding a second simple int op must NOT add a second ALU *)
  let pe1 = Comp.default_pe (Op.Cap.of_ops [ Op.Add ] [ Dtype.I64 ]) in
  let pe2 = Comp.default_pe (Op.Cap.of_ops [ Op.Add; Op.Sub; Op.Min; Op.Max ] [ Dtype.I64 ]) in
  let c1 = Oracle.pe pe1 ~fan_in:2 ~fan_out:1 in
  let c2 = Oracle.pe pe2 ~fan_in:2 ~fan_out:1 in
  Alcotest.(check int) "one shared ALU" c1.Res.lut c2.Res.lut

let test_switch_cost_scales_with_radix () =
  let small = Oracle.switch ~width_bits:64 ~fan_in:2 ~fan_out:2 in
  let big = Oracle.switch ~width_bits:64 ~fan_in:6 ~fan_out:6 in
  Alcotest.(check bool) "radix grows cost" true (big.Res.lut > small.Res.lut)

let test_spad_brams () =
  let e = { (Comp.default_engine Comp.Spad) with capacity = 64 * 1024 } in
  Alcotest.(check bool) "64KB needs >= 14 BRAM36" true ((Oracle.engine e).Res.bram >= 14)

let test_ring_noc_cheaper () =
  let xbar = Oracle.noc ~topology:System.Crossbar ~tiles:8 ~banks:8 ~noc_bytes:32 () in
  let ring = Oracle.noc ~topology:System.Ring ~tiles:8 ~banks:8 ~noc_bytes:32 () in
  Alcotest.(check bool) "ring cheaper" true (ring.Res.lut < xbar.Res.lut)

let test_u250_bigger () =
  Alcotest.(check bool) "u250 has more LUTs" true
    (Device.u250.capacity.Res.lut > Device.xcvu9p.capacity.Res.lut)

let test_synth_full_general () =
  let f = Oracle.synth_full (Builder.general_overlay ()) in
  let l, _, _, _ = Res.utilization f.res ~device:Device.xcvu9p.capacity in
  Alcotest.(check bool) "general is LUT-hungry" true (l > 0.8 && l < 1.0);
  Alcotest.(check bool) "frequency near the paper's 92.87MHz" true
    (f.freq_mhz > 80.0 && f.freq_mhz < 110.0);
  Alcotest.(check bool) "hours positive" true (f.hours > 0.0);
  List.iter
    (fun cat ->
      Alcotest.(check bool) ("breakdown has " ^ cat) true
        (List.mem_assoc cat f.breakdown))
    [ "pe"; "n/w"; "vp"; "spad"; "dma"; "core"; "noc" ]

let test_synth_deterministic () =
  let sys = Builder.general_overlay () in
  let a = Oracle.synth_full sys and b = Oracle.synth_full sys in
  Alcotest.(check bool) "same result" true (a.res = b.res && a.freq_mhz = b.freq_mhz)

let test_ooc_pessimistic () =
  let rng = Rng.create 3 in
  let pe = Comp.default_pe (Op.Cap.of_ops [ Op.Add; Op.Mul ] [ Dtype.F64 ]) in
  let base = Oracle.pe pe ~fan_in:2 ~fan_out:1 in
  let samples =
    List.init 50 (fun _ -> (Oracle.ooc ~rng (Comp.Pe pe) ~fan_in:2 ~fan_out:1).Res.lut)
  in
  let mean = Overgen_util.Stats.mean (List.map float_of_int samples) in
  Alcotest.(check bool) "ooc mean above in-context cost" true
    (mean > float_of_int base.Res.lut)

(* ---------------- MLP ---------------- *)

let test_mlp_learns_linear () =
  let rng = Rng.create 5 in
  let net = Mlp.create ~rng ~layers:[ 2; 8; 1 ] in
  let data =
    List.init 200 (fun _ ->
        let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
        ([| x; y |], [| (0.3 *. x) +. (0.5 *. y) |]))
  in
  Mlp.train net ~rng ~rate:0.02 ~epochs:120 data;
  Alcotest.(check bool) "low loss" true (Mlp.loss net data < 1e-3)

let test_mlp_learns_product () =
  (* a non-linear target: x*y *)
  let rng = Rng.create 6 in
  let net = Mlp.create ~rng ~layers:[ 2; 16; 8; 1 ] in
  let data =
    List.init 400 (fun _ ->
        let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
        ([| x; y |], [| x *. y |]))
  in
  Mlp.train net ~rng ~rate:0.01 ~epochs:200 data;
  Alcotest.(check bool) "loss below 5e-3" true (Mlp.loss net data < 5e-3)

let test_scaler_roundtrip () =
  let rows = [ [| 0.0; 10.0 |]; [| 5.0; 20.0 |]; [| 10.0; 40.0 |] ] in
  let s = Mlp.Scaler.fit rows in
  List.iter
    (fun row ->
      let back = Mlp.Scaler.unapply s (Mlp.Scaler.apply s row) in
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-9)) "roundtrip" row.(i) v)
        back)
    rows;
  let scaled = Mlp.Scaler.apply s [| 10.0; 40.0 |] in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "max scales to 1" 1.0 v) scaled

(* ---------------- predictor ---------------- *)

let model = lazy (Predict.train ~seed:3 ())

let test_predictor_accuracy () =
  let m = Lazy.force model in
  List.iter
    (fun (k, _) ->
      let e = Predict.test_error m k in
      Alcotest.(check bool)
        (Printf.sprintf "%s err %.2f below 35%%" (Predict.kind_name k) e)
        true (e < 0.35))
    Predict.default_counts

let test_predictor_pessimism () =
  let m = Lazy.force model in
  let sys = Builder.general_overlay () in
  let pred = Predict.predict_full m sys in
  let act = (Oracle.synth_full sys).res in
  let ratio = float_of_int pred.Res.lut /. float_of_int act.Res.lut in
  Alcotest.(check bool)
    (Printf.sprintf "pessimistic (%.2fx in [1.0, 1.8])" ratio)
    true
    (ratio >= 1.0 && ratio <= 1.8)

let test_predictor_monotone_in_tiles () =
  let m = Lazy.force model in
  let sys = Builder.general_overlay () in
  let p tiles =
    (Predict.predict_full m (Sys_adg.with_system sys { sys.system with System.tiles })).Res.lut
  in
  Alcotest.(check bool) "8 tiles > 4 tiles" true (p 8 > p 4)

let test_paper_counts () =
  Alcotest.(check (option int)) "PE count" (Some 100000)
    (List.assoc_opt Predict.Pe_k Predict.paper_counts);
  List.iter2
    (fun (k1, n1) (k2, n2) ->
      Alcotest.(check bool) "same kind order" true (k1 = k2);
      Alcotest.(check int) "1/100 scaling" (n1 / 100) n2)
    Predict.paper_counts Predict.default_counts

let prop_predictions_nonnegative =
  QCheck.Test.make ~name:"predictions are non-negative" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (fan_in, fan_out) ->
      let m = Lazy.force model in
      let r =
        Predict.predict_comp m (Comp.Switch { width_bits = 64 }) ~fan_in ~fan_out
      in
      r.Res.lut >= 0 && r.Res.ff >= 0 && r.Res.bram >= 0 && r.Res.dsp >= 0)

let tests =
  [
    Alcotest.test_case "res arithmetic" `Quick test_res_arith;
    Alcotest.test_case "device" `Quick test_device;
    Alcotest.test_case "fu cost ordering" `Quick test_fu_costs_ordered;
    Alcotest.test_case "pe unit sharing" `Quick test_pe_unit_sharing;
    Alcotest.test_case "switch radix cost" `Quick test_switch_cost_scales_with_radix;
    Alcotest.test_case "spad brams" `Quick test_spad_brams;
    Alcotest.test_case "ring noc cheaper" `Quick test_ring_noc_cheaper;
    Alcotest.test_case "u250 capacity" `Quick test_u250_bigger;
    Alcotest.test_case "synth general overlay" `Quick test_synth_full_general;
    Alcotest.test_case "synth deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "ooc pessimism" `Quick test_ooc_pessimistic;
    Alcotest.test_case "mlp linear" `Slow test_mlp_learns_linear;
    Alcotest.test_case "mlp product" `Slow test_mlp_learns_product;
    Alcotest.test_case "scaler roundtrip" `Quick test_scaler_roundtrip;
    Alcotest.test_case "predictor accuracy" `Slow test_predictor_accuracy;
    Alcotest.test_case "predictor pessimism" `Slow test_predictor_pessimism;
    Alcotest.test_case "predictor monotone" `Slow test_predictor_monotone_in_tiles;
    Alcotest.test_case "Table I counts" `Quick test_paper_counts;
    QCheck_alcotest.to_alcotest prop_predictions_nonnegative;
  ]
