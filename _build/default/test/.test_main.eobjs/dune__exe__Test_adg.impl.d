test/test_adg.ml: Adg Alcotest Builder Comp Digraph Dtype Filename Fun Int List Op Option Overgen_adg Overgen_dse Overgen_util QCheck QCheck_alcotest Serial String Sys Sys_adg System
