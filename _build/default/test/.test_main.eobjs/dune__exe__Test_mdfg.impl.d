test/test_mdfg.ml: Alcotest Compile Dfg Float Ir Kernels List Option Overgen_adg Overgen_mdfg Overgen_workload QCheck QCheck_alcotest Stream
