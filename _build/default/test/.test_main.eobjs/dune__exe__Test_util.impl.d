test/test_util.ml: Alcotest Float Fun Gen List Overgen_util QCheck QCheck_alcotest Render Rng Stats String
