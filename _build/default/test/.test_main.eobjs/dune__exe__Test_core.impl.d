test/test_core.ml: Alcotest Ir Kernels Lazy List Overgen Overgen_dse Overgen_workload
