test/test_fpga_mlp.ml: Alcotest Array Builder Comp Device Dtype Lazy List Op Oracle Overgen_adg Overgen_fpga Overgen_mlp Overgen_util Printf QCheck QCheck_alcotest Res Sys_adg System
