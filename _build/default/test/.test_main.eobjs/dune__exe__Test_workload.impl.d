test/test_workload.ml: Alcotest C_source Filename Ir Kernels List Option Overgen_adg Overgen_workload Printf QCheck QCheck_alcotest String Suite Sys
