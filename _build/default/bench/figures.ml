open Overgen_workload
open Overgen_util
module Res = Overgen_fpga.Res
module Device = Overgen_fpga.Device
module Oracle = Overgen_fpga.Oracle
module Adg = Overgen_adg.Adg

(* ------------------------------------------------------------------ *)
(* Figure 13: overall performance vs AutoDSE                           *)
(* ------------------------------------------------------------------ *)

let fig13_speedups kname suite =
  let base = Exp_common.ad_ms ~tuned:false kname in
  let tuned_ad = base /. Exp_common.ad_ms ~tuned:true kname in
  let over tag overlay =
    Exp_common.speedup_over_ad (Exp_common.og_report ~tag overlay kname) kname
  in
  let general = over "general" (Exp_common.general ()) in
  let suite_og = over ("suite-" ^ Suite.to_string suite) (Exp_common.suite_overlay suite) in
  let wl_og = over ("wl-" ^ kname) (Exp_common.workload_overlay kname) in
  (tuned_ad, general, suite_og, wl_og)

let fig13 () =
  Exp_common.header
    "Figure 13: Overall Performance (speedup over untuned AutoDSE = 1.0)";
  let all =
    List.map
      (fun (k : Ir.kernel) ->
        let t, g, s, w = fig13_speedups k.name k.suite in
        (k, t, g, s, w))
      Kernels.all
  in
  List.iter
    (fun suite ->
      let rows = List.filter (fun ((k : Ir.kernel), _, _, _, _) -> k.suite = suite) all in
      let table_rows =
        List.map
          (fun ((k : Ir.kernel), t, g, s, w) ->
            [
              Exp_common.short k.name;
              Render.float_cell t;
              "1.00";
              Render.float_cell g;
              Render.float_cell s;
              Render.float_cell w;
            ])
          rows
      in
      let gm f = Stats.geomean (List.map f rows) in
      let gm_row =
        [
          "gm";
          Render.float_cell (gm (fun (_, t, _, _, _) -> t));
          "1.00";
          Render.float_cell (gm (fun (_, _, g, _, _) -> g));
          Render.float_cell (gm (fun (_, _, _, s, _) -> s));
          Render.float_cell (gm (fun (_, _, _, _, w) -> w));
        ]
      in
      Printf.printf "\n[%s]\n" (Suite.to_string suite);
      print_endline
        (Render.table
           ~headers:
             [ "Workload"; "Tuned-AD"; "AutoDSE"; "general-OG"; "suite-OG"; "w/l-OG" ]
           ~rows:(table_rows @ [ gm_row ]));
      print_endline
        (Render.bar_chart ~log2:true
           ~title:(Printf.sprintf "speedup over AutoDSE (%s)" (Suite.to_string suite))
           (List.map
              (fun ((k : Ir.kernel), t, g, s, w) ->
                (Exp_common.short k.name, [ t; 1.0; g; s; w ]))
              rows)
           ~series:[ "Tuned-AD"; "AutoDSE"; "general-OG"; "suite-OG"; "w/l-OG" ]))
    Suite.all;
  (* headline numbers *)
  let per_suite f =
    List.map
      (fun suite ->
        let rows = List.filter (fun ((k : Ir.kernel), _, _, _, _) -> k.suite = suite) all in
        (suite, Stats.geomean (List.map f rows)))
      Suite.all
  in
  Printf.printf "\nsuite-OG geomean speedup over untuned AutoDSE:";
  List.iter
    (fun (s, v) -> Printf.printf " %s=%.2fx" (Suite.to_string s) v)
    (per_suite (fun (_, _, _, s, _) -> s));
  Printf.printf "\nsuite-OG relative to TUNED AutoDSE:";
  List.iter
    (fun (s, v) -> Printf.printf " %s=%.2fx" (Suite.to_string s) v)
    (per_suite (fun (_, t, _, s, _) -> s /. t));
  Printf.printf "\nw/l-OG geomean over untuned AutoDSE: %.2fx\n"
    (Stats.geomean (List.map (fun (_, _, _, _, w) -> w) all))

(* ------------------------------------------------------------------ *)
(* Figure 14: effect of tuned kernels                                  *)
(* ------------------------------------------------------------------ *)

let fig14_workloads =
  [ "cholesky"; "fft"; "stencil-3d"; "crs"; "gemm"; "stencil-2d"; "channel-ext";
    "bgr2grey"; "blur" ]

let fig14 () =
  Exp_common.header
    "Figure 14: Effect of tuned kernels (speedup over vanilla AutoDSE)";
  let rows =
    List.map
      (fun kname ->
        let base = Exp_common.ad_ms ~tuned:false kname in
        let ad_tuned = base /. Exp_common.ad_ms ~tuned:true kname in
        let wl = Exp_common.workload_overlay kname in
        let og_untuned =
          Exp_common.speedup_over_ad (Exp_common.og_report ~tag:("wl-" ^ kname) wl kname) kname
        in
        let has_tuning = (Kernels.find kname).og_tuning <> None in
        let og_tuned =
          if has_tuning then
            (* the paper's OverGen-side tuning reruns the flow on the tuned
               source, so the overlay is generated for it too *)
            try
              let wlt = Exp_common.workload_overlay ~tuned:true kname in
              Float.max og_untuned
                (Exp_common.speedup_over_ad
                   (Exp_common.og_report ~tuned:true ~tag:("wlt-" ^ kname) wlt kname)
                   kname)
            with Failure _ -> og_untuned
          else og_untuned
        in
        (kname, ad_tuned, og_untuned, og_tuned, has_tuning))
      fig14_workloads
  in
  print_endline
    (Render.table
       ~headers:[ "Workload"; "AutoDSE"; "AutoDSE tuned"; "w/l-OG"; "w/l-OG tuned" ]
       ~rows:
         (List.map
            (fun (k, adt, ogu, ogt, has) ->
              [
                Exp_common.short k;
                "1.00";
                Render.float_cell adt;
                Render.float_cell ogu;
                (if has then Render.float_cell ogt else Render.float_cell ogu ^ " (=)");
              ])
            rows));
  let gm f = Stats.geomean (List.map f rows) in
  Printf.printf
    "geomeans: AutoDSE tuning gains %.2fx; OverGen tuning gains %.2fx\n\
     (HLS depends more heavily on kernel tuning, paper Q2)\n"
    (gm (fun (_, adt, _, _, _) -> adt))
    (gm (fun (_, _, ogu, ogt, _) -> ogt /. ogu))

(* ------------------------------------------------------------------ *)
(* Figure 15: DSE and synthesis time                                   *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  Exp_common.header "Figure 15: DSE and synthesis time (modeled hours)";
  let grand_ad = ref 0.0 and grand_og = ref 0.0 in
  List.iter
    (fun suite ->
      let kernels = Kernels.of_suite suite in
      let rows =
        List.map
          (fun (k : Ir.kernel) ->
            let e = Exp_common.autodse ~tuned:false k.name in
            (Exp_common.short k.name, e.dse_hours, e.synth_hours))
          kernels
      in
      let ad_total =
        List.fold_left (fun acc (_, d, s) -> acc +. d +. s) 0.0 rows
      in
      let og = Exp_common.suite_overlay suite in
      let og_dse =
        match og.dse with Some r -> r.modeled_hours | None -> 0.0
      in
      let og_syn = og.synth.hours in
      grand_ad := !grand_ad +. ad_total;
      grand_og := !grand_og +. og_dse +. og_syn;
      Printf.printf "\n[%s] AutoDSE total: %.1fh\n" (Suite.to_string suite) ad_total;
      print_endline
        (Render.table
           ~headers:[ "Design"; "dse (h)"; "syn (h)"; "total (h)" ]
           ~rows:
             (List.map
                (fun (n, d, s) ->
                  [ n; Render.float_cell d; Render.float_cell s; Render.float_cell (d +. s) ])
                rows
             @ [
                 [
                   "suite-OG";
                   Render.float_cell og_dse;
                   Render.float_cell og_syn;
                   Render.float_cell (og_dse +. og_syn);
                 ];
               ])))
    Suite.all;
  Printf.printf
    "\nOverGen builds one reconfigurable design per suite in %.0f%% of the time\n\
     AutoDSE spends synthesizing every application separately (paper: 47%%).\n"
    (100.0 *. !grand_og /. !grand_ad)

(* ------------------------------------------------------------------ *)
(* Figure 16: FPGA resource breakdown                                  *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  Exp_common.header "Figure 16(a): Overlay designs, FPGA resource occupation";
  let cap = Device.xcvu9p.capacity in
  let overlay_row tag (o : Overgen.overlay) =
    let lut_of r = float_of_int r.Res.lut /. float_of_int cap.Res.lut in
    let breakdown = o.synth.breakdown in
    let total = Res.sum (List.map snd breakdown) in
    let l, f, b, d = Res.utilization total ~device:cap in
    [
      tag;
      Render.pct_cell l;
      Render.pct_cell f;
      Render.pct_cell b;
      Render.pct_cell d;
      String.concat " "
        (List.map
           (fun (n, r) -> Printf.sprintf "%s=%s" n (Render.pct_cell (lut_of r)))
           breakdown);
    ]
  in
  let rows =
    List.concat_map
      (fun suite ->
        List.map
          (fun (k : Ir.kernel) ->
            overlay_row (Exp_common.short k.name) (Exp_common.workload_overlay k.name))
          (Kernels.of_suite suite)
        @ [ overlay_row (Suite.to_string suite ^ "-suite") (Exp_common.suite_overlay suite) ])
      Suite.all
  in
  print_endline
    (Render.table
       ~headers:[ "Design"; "LUT"; "FF"; "BRAM"; "DSP"; "LUT breakdown" ]
       ~rows);
  let luts =
    List.map
      (fun (k : Ir.kernel) ->
        let o = Exp_common.workload_overlay k.name in
        let l, _, _, _ = Res.utilization o.synth.res ~device:cap in
        l)
      Kernels.all
  in
  Printf.printf
    "Overlay LUT occupation range: %.0f%%..%.0f%% (paper: 81%%..97%%; LUTs are the\n\
     limiting resource because the DSE greedily spends them for generality)\n"
    (100.0 *. List.fold_left Float.min 1.0 luts)
    (100.0 *. List.fold_left Float.max 0.0 luts);
  Exp_common.header "Figure 16(b): AutoDSE designs, FPGA resource occupation";
  let rows =
    List.map
      (fun (k : Ir.kernel) ->
        let d = (Exp_common.autodse ~tuned:true k.name).best in
        let l, f, b, dsp = Res.utilization d.res ~device:cap in
        [
          Exp_common.short k.name;
          Render.pct_cell l;
          Render.pct_cell f;
          Render.pct_cell b;
          Render.pct_cell dsp;
        ])
      Kernels.all
  in
  print_endline
    (Render.table ~headers:[ "Design"; "LUT"; "FF"; "BRAM"; "DSP" ] ~rows);
  print_endline
    "AutoDSE consumes far less: it stops at the memory/parallelism bound, as\n\
     generality is not one of its goals (paper Q4)."
