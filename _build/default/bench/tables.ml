open Overgen_workload
open Overgen_util
module Predict = Overgen_mlp.Predict
module Compile = Overgen_mdfg.Compile
module Adg = Overgen_adg.Adg
module Res = Overgen_fpga.Res
module Device = Overgen_fpga.Device
module Oracle = Overgen_fpga.Oracle

(* ------------------------------------------------------------------ *)
(* Table I: hardware modules synthesized to train the ML model         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Exp_common.header "Table I: Number of Hardware Modules Synthesized (ML model training)";
  let m = Exp_common.model () in
  let rows =
    List.map
      (fun (kind, paper_n) ->
        [
          Predict.kind_name kind;
          string_of_int paper_n;
          string_of_int (Predict.samples_trained m kind);
          Render.pct_cell (Predict.test_error m kind);
        ])
      Predict.paper_counts
  in
  print_endline
    (Render.table
       ~headers:[ "Hardware Unit"; "Paper Synthesized"; "Ours (1/100)"; "Test LUT err" ]
       ~rows);
  (* pessimism check: model vs post-PnR actual on the general overlay *)
  let g = (Exp_common.general ()).design.sys in
  let pred = Predict.predict_full m g in
  let act = (Oracle.synth_full g).res in
  Printf.printf
    "Model pessimism on the general overlay: predicted/actual LUTs = %.2fx\n\
     (out-of-context training makes the model conservative, as in the paper)\n"
    (float_of_int pred.Res.lut /. float_of_int act.Res.lut)

(* ------------------------------------------------------------------ *)
(* Table II: workload specification                                    *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Exp_common.header "Table II: Workload specification (best-DFG ports/arrays/ops)";
  let rows =
    List.map
      (fun (k : Ir.kernel) ->
        let c = Compile.compile k in
        let s = Compile.summarize c in
        [
          Suite.to_string k.suite;
          Exp_common.short k.name;
          k.size_desc;
          (Overgen_adg.Dtype.to_string k.dtype
          ^ if k.lanes > 1 then Printf.sprintf "x%d" k.lanes else "");
          string_of_int s.n_in_ports;
          string_of_int s.n_out_ports;
          string_of_int s.n_arrays;
          Printf.sprintf "%d,%d,%d" s.n_mul s.n_add s.n_div;
        ])
      Kernels.all
  in
  print_endline
    (Render.table
       ~headers:[ "Suite"; "Workload"; "Size"; "Type"; "#ivp"; "#ovp"; "#arr"; "#m,a,d" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Table III: suite-specific overlay specifications                    *)
(* ------------------------------------------------------------------ *)

let spec_rows () =
  let overlays =
    [
      ("Mach.", Exp_common.suite_overlay Suite.Machsuite);
      ("Vitis", Exp_common.suite_overlay Suite.Vision);
      ("DSP", Exp_common.suite_overlay Suite.Dsp);
      ("General", Exp_common.general ());
    ]
  in
  let cell f = List.map (fun (_, (o : Overgen.overlay)) -> f o) overlays in
  let names = List.map fst overlays in
  let stats (o : Overgen.overlay) = Adg.stats o.design.sys.adg in
  let sysp (o : Overgen.overlay) = o.design.sys.system in
  let int_cell f = cell (fun o -> string_of_int (f o)) in
  ( names,
    [
      ("Tile Count", int_cell (fun o -> (sysp o).tiles));
      ("L2 #Bank", int_cell (fun o -> (sysp o).l2_banks));
      ("NoC B/W (Byte)", int_cell (fun o -> (sysp o).noc_bytes));
      ("PEs", int_cell (fun o -> (stats o).n_pe));
      ("Switches", int_cell (fun o -> (stats o).n_switch));
      ("Avg. Radix", cell (fun o -> Printf.sprintf "%.2f" (stats o).avg_radix));
      ( "Int +/x/div",
        cell (fun o ->
            let s = stats o in
            Printf.sprintf "%d/%d/%d" s.int_add s.int_mul s.int_div) );
      ( "Flt +/x/div/sqrt",
        cell (fun o ->
            let s = stats o in
            Printf.sprintf "%d/%d/%d/%d" s.flt_add s.flt_mul s.flt_div s.flt_sqrt) );
      ( "Spad Cap. (KB)",
        cell (fun o ->
            match (stats o).spad_caps with
            | [] -> "-"
            | l -> String.concat ", " (List.map (fun c -> string_of_int (c / 1024)) l)) );
      ( "Spad B/W (B/cyc)",
        cell (fun o ->
            match (stats o).spad_bws with
            | [] -> "-"
            | l -> String.concat ", " (List.map string_of_int l)) );
      ( "Spad Indirect?",
        cell (fun o ->
            match (stats o).spad_indirect with
            | [] -> "-"
            | l -> String.concat ", " (List.map (fun b -> if b then "Yes" else "No") l)) );
      ( "GEN/REC/REG",
        cell (fun o ->
            let s = stats o in
            Printf.sprintf "%d/%d/%d" s.n_gen s.n_rec s.n_reg) );
      ("In Ports B/W (B)", int_cell (fun o -> (stats o).in_port_bw));
      ("Out Ports B/W (B)", int_cell (fun o -> (stats o).out_port_bw));
    ] )

let table3 () =
  Exp_common.header "Table III: Specification of Suite-Specific Overlays";
  let names, rows = spec_rows () in
  print_endline
    (Render.table ~headers:("Spec." :: names)
       ~rows:(List.map (fun (name, cells) -> name :: cells) rows))

(* ------------------------------------------------------------------ *)
(* Table IV: HLS initiation-interval optimization                      *)
(* ------------------------------------------------------------------ *)

let table4 () =
  Exp_common.header "Table IV: HLS Initiation Interval (II) Optimization";
  let var_tc = [ "cholesky"; "crs"; "fft" ] in
  let strided = [ "bgr2grey"; "blur"; "channel-ext"; "stencil-3d" ] in
  let row name =
    let untuned = (Exp_common.autodse ~tuned:false name).best in
    let tuned = (Exp_common.autodse ~tuned:true name).best in
    [
      Exp_common.short name;
      (if List.mem name var_tc then "Var. Loop TC" else "Strided Access");
      string_of_int untuned.ii;
      string_of_int tuned.ii;
    ]
  in
  print_endline
    (Render.table
       ~headers:[ "Workload"; "Cause"; "Untuned II"; "Tuned II" ]
       ~rows:(List.map row (var_tc @ strided)));
  (* the paper's note: all other workloads achieve II=1 untuned *)
  let others =
    List.filter (fun (k : Ir.kernel) -> not (List.mem k.name (var_tc @ strided))) Kernels.all
  in
  let bad =
    List.filter (fun (k : Ir.kernel) -> (Exp_common.autodse ~tuned:false k.name).best.ii > 2)
      others
  in
  Printf.printf "Other workloads with untuned II > 2: %s\n"
    (match bad with
     | [] -> "none (II<=2, as the paper reports II=1 modulo port pressure)"
     | l -> String.concat ", " (List.map (fun (k : Ir.kernel) -> k.name) l))
