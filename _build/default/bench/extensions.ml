(* Extension experiments beyond the paper's evaluation, implementing two of
   its named future-work directions:

   1. NoC topology specialization (Conclusion: "Examples include the NoC
      topology"): let the system DSE choose between the crossbar and a
      bisection-limited ring that costs far fewer LUTs.

   2. Device portability (Section III-A: "Leveraging learned models means
      that this framework can more easily be ported to other FPGAs"):
      regenerate a suite overlay for an Alveo U250 and compare the designs
      the DSE picks for each part. *)

open Overgen_workload
open Overgen_util
module Dse = Overgen_dse.Dse
module Sim = Overgen_sim.Sim
module Spatial = Overgen_scheduler.Spatial
module Compile = Overgen_mdfg.Compile
module System = Overgen_adg.System
module Res = Overgen_fpga.Res
module Device = Overgen_fpga.Device
module Oracle = Overgen_fpga.Oracle

let run () =
  Exp_common.header "Extensions: NoC topology specialization + device portability";
  let model = Exp_common.model () in

  (* --- NoC topology --- *)
  print_endline "\n[NoC topology specialization] (paper future work)";
  let apps = Dse.compile_apps ~tuned:false (Kernels.of_suite Suite.Vision) in
  let explore topologies seed =
    Dse.explore
      ~config:
        { Dse.default_config with iterations = 300; seed; topologies }
      ~model apps
  in
  let rows =
    List.map
      (fun (name, topologies, seed) ->
        let r = explore topologies seed in
        let sysp = r.best.sys.system in
        let noc_cost =
          Oracle.noc ~topology:sysp.System.noc_topology ~tiles:sysp.tiles
            ~banks:sysp.l2_banks ~noc_bytes:sysp.noc_bytes ()
        in
        [
          name;
          (match sysp.noc_topology with
          | System.Crossbar -> "crossbar"
          | System.Ring -> "ring");
          string_of_int sysp.tiles;
          string_of_int noc_cost.Res.lut;
          Render.float_cell r.best.objective;
        ])
      [
        ("crossbar only (paper)", [ System.Crossbar ], 711);
        ("ring only", [ System.Ring ], 711);
        ("DSE chooses", [ System.Crossbar; System.Ring ], 711);
      ]
  in
  print_endline
    (Render.table
       ~headers:[ "search space"; "chosen NoC"; "tiles"; "NoC LUTs"; "est. IPC" ]
       ~rows);
  print_endline
    "The ring frees NoC LUTs for more tiles when the domain is not\n\
     bisection-limited; the DSE picks per domain.";

  (* --- device portability --- *)
  print_endline "\n[device portability: VCU118 (XCVU9P) vs Alveo U250]";
  let dsp = Dse.compile_apps ~tuned:false (Kernels.of_suite Suite.Dsp) in
  let rows =
    List.map
      (fun (dev : Device.t) ->
        let r =
          Dse.explore
            ~config:{ Dse.default_config with iterations = 300; seed = 97 }
            ~device:dev ~model dsp
        in
        let full = Oracle.synth_full ~device:dev r.best.sys in
        let l, _, _, _ = Res.utilization full.res ~device:dev.capacity in
        [
          dev.name;
          string_of_int r.best.sys.system.System.tiles;
          Render.float_cell r.best.objective;
          Render.pct_cell l;
          Printf.sprintf "%.1f MHz" full.freq_mhz;
        ])
      [ Device.xcvu9p; Device.u250 ]
  in
  print_endline
    (Render.table
       ~headers:[ "device"; "tiles"; "est. IPC"; "LUT util"; "clock" ]
       ~rows);
  print_endline
    "The same learned-model flow retargets the larger part and converts the\n\
     extra capacity into tiles, as the paper's portability argument predicts.";

  (* --- multi-tenant execution --- *)
  print_endline
    "\n[multi-tenant execution] (paper future work: heterogeneous mixes)";
  let general = (Exp_common.general ()).design.sys in
  let sched name =
    match Spatial.schedule_app general (Compile.compile (Kernels.find name)) with
    | Ok s -> s
    | Error e -> failwith e
  in
  (* a compute-bound tenant keeps most tiles; a bandwidth-bound one rides
     along on the leftover tile, using memory bandwidth the first cannot *)
  let a = sched "fir" and b = sched "accumulate" in
  let solo_a = (Sim.run general a).total_cycles in
  let solo_b = (Sim.run general b).total_cycles in
  let multi = Sim.run_multi general [ (a, 3); (b, 1) ] in
  let cyc k =
    (List.find (fun (t : Sim.tenant_result) -> t.t_kernel = k) multi.tenants).t_cycles
  in
  print_endline
    (Render.table
       ~headers:[ "schedule"; "fir cyc"; "accumulate cyc"; "makespan" ]
       ~rows:
         [
           [ "time-multiplexed (4 tiles each)"; string_of_int solo_a;
             string_of_int solo_b; string_of_int (solo_a + solo_b) ];
           [ "co-scheduled (3 + 1 tiles)"; string_of_int (cyc "fir");
             string_of_int (cyc "accumulate"); string_of_int multi.m_cycles ];
         ]);
  Printf.printf
    "Co-scheduling the mix finishes in %.0f%% of serial time-multiplexing\n\
     (a win when the mix pairs compute-bound with bandwidth-bound tenants;\n\
     pairing two bandwidth-bound kernels instead loses, since DRAM is the\n\
     conserved quantity either way - the scheduling problem the paper's\n\
     future-work section anticipates).\n"
    (100.0 *. float_of_int multi.m_cycles /. float_of_int (solo_a + solo_b))
