bench/tables.ml: Exp_common Ir Kernels List Overgen Overgen_adg Overgen_fpga Overgen_mdfg Overgen_mlp Overgen_util Overgen_workload Printf Render String Suite
