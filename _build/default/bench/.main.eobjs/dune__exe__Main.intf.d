bench/main.mli:
