bench/ablation.ml: Adg Builder Comp Compile Exp_common Kernels List Overgen_adg Overgen_mdfg Overgen_scheduler Overgen_sim Overgen_util Overgen_workload Printf Render Spatial Sys_adg System
