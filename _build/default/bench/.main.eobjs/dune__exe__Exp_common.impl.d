bench/exp_common.ml: Hashtbl Kernels Overgen Overgen_dse Overgen_hls Overgen_workload Printf String Suite
