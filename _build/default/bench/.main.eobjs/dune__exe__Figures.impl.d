bench/figures.ml: Exp_common Float Ir Kernels List Overgen Overgen_adg Overgen_fpga Overgen_util Overgen_workload Printf Render Stats String Suite
