bench/figures2.ml: Exp_common Float Hashtbl Ir Kernels List Overgen Overgen_adg Overgen_dse Overgen_fpga Overgen_hls Overgen_util Overgen_workload Printf Render Stats String Suite
