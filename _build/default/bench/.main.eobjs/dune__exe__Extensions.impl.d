bench/extensions.ml: Exp_common Kernels List Overgen_adg Overgen_dse Overgen_fpga Overgen_mdfg Overgen_scheduler Overgen_sim Overgen_util Overgen_workload Printf Render Suite
