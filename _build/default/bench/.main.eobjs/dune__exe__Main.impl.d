bench/main.ml: Ablation Array Extensions Figures Figures2 List Micro Printf String Sys Tables Unix
