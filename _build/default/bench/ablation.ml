(* Ablation benches for the design choices DESIGN.md calls out: the
   recurrence engine, scratchpads, the stream-table one-hot bypass
   (Figure 11), and delay-FIFO depth (the edge-delay-preservation target).
   Each ablates one mechanism out of the general overlay and re-measures. *)

open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
open Overgen_util
module Sim = Overgen_sim.Sim

let simulate sys name =
  match Spatial.schedule_app sys (Compile.compile (Kernels.find name)) with
  | Ok scheds -> Some (Sim.run sys scheds).total_cycles
  | Error _ -> None

let without_engines kind (sys : Sys_adg.t) =
  let adg =
    List.fold_left
      (fun adg (id, _) -> Adg.remove_node adg id)
      sys.adg
      (Adg.engines_of_kind sys.adg kind)
  in
  Sys_adg.with_adg sys adg

let with_delay_fifo depth (sys : Sys_adg.t) =
  let adg =
    List.fold_left
      (fun adg (id, pe) ->
        Adg.set_comp adg id (Comp.Pe { pe with Comp.delay_fifo = depth }))
      sys.adg (Adg.pes sys.adg)
  in
  Sys_adg.with_adg sys adg

let row name base variant =
  let cell = function
    | Some c -> string_of_int c
    | None -> "unmappable"
  in
  let slowdown =
    match (base, variant) with
    | Some b, Some v -> Printf.sprintf "%.2fx" (float_of_int v /. float_of_int b)
    | _, None -> "-"
    | None, _ -> "-"
  in
  [ name; cell base; cell variant; slowdown ]

let run () =
  Exp_common.header "Ablations: what each overlay mechanism is worth";
  let sys = Builder.general_overlay () in

  (* 1. recurrence engine: loop-carried reductions fall back to memory *)
  let no_rec = without_engines Comp.Rec sys in
  print_endline "\n[no recurrence engine] (paper Section IV: recurrent reuse)";
  print_endline
    (Render.table ~headers:[ "kernel"; "baseline cyc"; "ablated cyc"; "slowdown" ]
       ~rows:
         (List.map
            (fun k -> row k (simulate sys k) (simulate no_rec k))
            [ "fir"; "mm"; "gemm" ]));

  (* 2. scratchpads: all reuse must be captured by the shared L2.  The
     general overlay's 32KB spad is too small for the reuse-heavy arrays, so
     this ablation compares a 256KB-spad variant against no spad at all,
     under a narrow 2-bank L2 that makes the shared level precious. *)
  let tight_l2 s = Sys_adg.with_system s { s.Sys_adg.system with System.l2_banks = 2 } in
  let big_spad =
    let adg =
      List.fold_left
        (fun adg (id, e) ->
          Adg.set_comp adg id (Comp.Engine { e with Comp.capacity = 256 * 1024 }))
        sys.adg
        (Adg.engines_of_kind sys.adg Comp.Spad)
    in
    tight_l2 (Sys_adg.with_adg sys adg)
  in
  let no_spad = tight_l2 (without_engines Comp.Spad sys) in
  print_endline "\n[no scratchpads] (paper Section IV: general reuse; 2-bank L2)";
  print_endline
    (Render.table ~headers:[ "kernel"; "256KB spad cyc"; "no spad cyc"; "slowdown" ]
       ~rows:
         (List.map
            (fun k -> row k (simulate big_spad k) (simulate no_spad k))
            [ "gemm"; "stencil-2d"; "blur"; "cholesky" ]));

  (* 3. one-hot bypass (Figure 11): halves single-stream issue when off.
     Give each array its own DMA engine so engines really do hold a single
     active stream, the case the bypass exists for. *)
  print_endline "\n[stream-table one-hot bypass off] (paper Figure 11)";
  let multi_dma =
    let adg = ref sys.adg in
    for _ = 1 to 3 do
      let a, id = Adg.add !adg (Comp.Engine { (Comp.default_engine Comp.Dma) with bandwidth = 16 }) in
      adg := a;
      List.iter
        (fun (ip, _) -> try adg := Adg.add_edge !adg id ip with Invalid_argument _ -> ())
        (Adg.in_ports !adg);
      List.iter
        (fun (op_, _) -> try adg := Adg.add_edge !adg op_ id with Invalid_argument _ -> ())
        (Adg.out_ports !adg)
    done;
    Sys_adg.with_adg sys !adg
  in
  let bypass_rows =
    List.filter_map
      (fun k ->
        match Spatial.schedule_app multi_dma (Compile.compile (Kernels.find k)) with
        | Error _ -> None
        | Ok scheds ->
          let on = (Sim.run multi_dma scheds).total_cycles in
          let off =
            (Sim.run ~config:{ Sim.default_config with one_hot_bypass = false }
               multi_dma scheds)
              .total_cycles
          in
          Some
            [ k; string_of_int on; string_of_int off;
              Printf.sprintf "%.2fx" (float_of_int off /. float_of_int on) ])
      [ "channel-ext"; "accumulate"; "vecmax"; "stencil-3d" ]
  in
  print_endline
    (Render.table ~headers:[ "kernel"; "bypass on"; "bypass off"; "slowdown" ]
       ~rows:bypass_rows);

  (* 4. delay-FIFO depth: shallow FIFOs bubble unbalanced operands *)
  print_endline "\n[delay-FIFO depth] (paper Figure 7b: edge-delay preservation)";
  let shallow = with_delay_fifo 2 sys in
  print_endline
    (Render.table ~headers:[ "kernel"; "fifo=16 cyc"; "fifo=2 cyc"; "slowdown" ]
       ~rows:
         (List.map
            (fun k -> row k (simulate sys k) (simulate shallow k))
            [ "fft"; "blur"; "stencil-2d"; "derivative" ]))
