(** The affine loop-nest intermediate representation.

    Kernels are perfect (or triangular) loop nests with constant trip counts
    over restrict-qualified arrays — exactly the program class the OverGen
    pragmas delimit ([#pragma dsa config] / [#pragma dsa decouple]).  The
    decoupled-spatial compiler ({!Overgen_mdfg}) slices a region's body into
    compute instructions and memory streams, and the reuse analysis of paper
    Section IV-B is computed from the affine indices and trip counts here. *)

open Overgen_adg

(** Affine expression over loop induction variables: [sum coeff*var + const],
    in units of array {e elements}. *)
type affine = { terms : (string * int) list; const : int }

val affine : ?const:int -> (string * int) list -> affine
val affine_const : int -> affine
val affine_vars : affine -> string list
(** Variables with non-zero coefficient. *)

val affine_coeff : affine -> string -> int
val affine_shift : affine -> int -> affine
(** Add a constant offset. *)

val affine_subst_scaled : affine -> var:string -> scale:int -> offset:int -> affine
(** [affine_subst_scaled a ~var ~scale ~offset] rewrites occurrences of [var]
    as [scale*var + offset]; this is how unrolling by [scale] re-indexes the
    lane at position [offset]. *)

val affine_equal : affine -> affine -> bool

val affine_render : sep_plus:string -> sep_minus:string -> affine -> string
(** Canonical rendering: negative coefficients/constants join with the
    minus separator (["2*i - 3"], never ["2*i + -3"]), a leading negative
    term renders as ["-j"].  [affine_to_string] is the compact
    (["+"]/["-"]) instance; {!C_source} uses the spaced one. *)

val affine_to_string : affine -> string

(** Array subscript: direct affine, or single-level indirect [a\[b\[e\]\]]. *)
type index = Direct of affine | Indirect of { idx_array : string; at : affine }

type aref = { array : string; index : index }

val aref_equal : aref -> aref -> bool
val aref_to_string : aref -> string

type expr =
  | Load of aref
  | Const of float
  | Param of string  (** scalar kernel parameter kept in a PE constant reg *)
  | Unop of Op.t * expr
  | Binop of Op.t * expr * expr

type stmt =
  | Store of aref * expr
  | Accum of aref * Op.t * expr
      (** [a\[i\] <op>= e]: read-modify-write carried across a reduction
          loop; candidate for the recurrence stream engine. *)
  | Reduce of string * Op.t * expr
      (** scalar reduction collected through the register engine *)

(** Trip count of one loop level. *)
type trip =
  | Fixed of int
  | Triangular of int
      (** bound depends on an outer induction variable; max [n], average
          [n/2] — the "variable loop trip count" pattern of paper Q2 *)

val trip_max : trip -> int
val trip_avg : trip -> float

type loop = { var : string; trip : trip }

(** How a state-of-the-art HLS toolchain fares on this region's code pattern
    before/after manual kernel tuning (paper Table IV). *)
type hls_pattern =
  | Clean  (** II = 1 out of the box *)
  | Variable_trip of { untuned_ii : int; tuned_ii : int }
  | Strided of { untuned_ii : int }  (** tuning restores II = 1 *)

type region = {
  rname : string;
  loops : loop list;  (** outermost first; innermost is the vectorized one *)
  body : stmt list;
  hls : hls_pattern;
}

type tuning = { desc : string; regions : region list }

type kernel = {
  name : string;
  suite : Suite.t;
  dtype : Dtype.t;
  lanes : int;  (** elements packed per logical value (fft is f32x2) *)
  arrays : (string * int) list;  (** name, element count *)
  size_desc : string;  (** Table II "Size" column *)
  regions : region list;
  og_tuning : tuning option;
      (** OverGen-side manual kernel tuning (Q2): peeling, multi-dim unroll *)
  window_reuse : bool;
      (** sliding-window kernels where HLS line buffers excel (Q1 outliers) *)
  needs_broadcast : bool;
      (** kernels needing DRAM->all-scratchpad broadcast (ellpack outlier) *)
}

val loads_of_expr : expr -> aref list
(** All loads, left-to-right, duplicates preserved. *)

val ops_of_expr : expr -> (Op.t * int) list
(** Operation histogram of an expression. *)

val stmt_loads : stmt -> aref list
(** Loads including the implicit read of an [Accum] target. *)

val stmt_store : stmt -> aref option
val stmt_ops : stmt -> (Op.t * int) list
(** Includes the reduction op of [Accum]/[Reduce]. *)

val region_op_histogram : region -> (Op.t * int) list
val region_iterations : region -> float
(** Product of average trip counts. *)

val region_arrays : region -> string list
(** Arrays touched by the region, without duplicates. *)

val innermost : region -> loop
(** @raise Invalid_argument on a region with no loops. *)

val elem_bytes : kernel -> int
(** Bytes per logical element: [Dtype.bytes dtype * lanes]. *)

val float_literal : float -> string
(** Shortest decimal spelling that reads back to the same float, always
    carrying a ['.'], an exponent or a special-value name. *)

val const_to_string : float -> string
(** Integer spelling for exactly-representable integer values (|f| < 2^53,
    guarding [int_of_float] beyond that), {!float_literal} otherwise. *)

val pretty : kernel -> string
(** Pseudo-C rendering with the dsa pragmas, for documentation output. *)
