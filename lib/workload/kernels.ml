open Overgen_adg
open Ir

(* Construction helpers.  Kernels below are data; these keep them terse. *)
let v ?(scale = 1) ?(const = 0) var = affine ~const [ (var, scale) ]
let a2 ?(const = 0) (v1, c1) (v2, c2) = affine ~const [ (v1, c1); (v2, c2) ]

let a3 ?(const = 0) (v1, c1) (v2, c2) (v3, c3) =
  affine ~const [ (v1, c1); (v2, c2); (v3, c3) ]

let ld array index = Load { array; index = Direct index }
let ldi array ~via at = Load { array; index = Indirect { idx_array = via; at } }
let st array index e = Store ({ array; index = Direct index }, e)
let acc array index op e = Accum ({ array; index = Direct index }, op, e)
let ( *: ) a b = Binop (Op.Mul, a, b)
let ( +: ) a b = Binop (Op.Add, a, b)
let ( -: ) a b = Binop (Op.Sub, a, b)
let ( /: ) a b = Binop (Op.Div, a, b)
let fixed var trip = { var; trip = Fixed trip }
let tri var trip = { var; trip = Triangular trip }

let kernel ?(lanes = 1) ?og_tuning ?(window_reuse = false)
    ?(needs_broadcast = false) name suite dtype ~arrays ~size regions =
  {
    name;
    suite;
    dtype;
    lanes;
    arrays;
    size_desc = size;
    regions;
    og_tuning;
    window_reuse;
    needs_broadcast;
  }

(* ------------------------------------------------------------------ *)
(* DSP suite                                                           *)
(* ------------------------------------------------------------------ *)

let cholesky =
  let n = 48 in
  kernel "cholesky" Suite.Dsp Dtype.F64
    ~arrays:[ ("a", n * n); ("l", n * n) ]
    ~size:"48^2"
    [
      {
        rname = "update";
        loops = [ fixed "j" n; tri "i" n; tri "k" n ];
        body =
          [
            acc "l" (a2 ("i", n) ("j", 1)) Op.Sub
              (ld "a" (a2 ("i", n) ("k", 1)) *: ld "a" (a2 ("j", n) ("k", 1)));
          ];
        hls = Variable_trip { untuned_ii = 10; tuned_ii = 5 };
      };
      {
        rname = "scale";
        loops = [ fixed "j" n; tri "i" n ];
        body =
          [
            st "l"
              (a2 ("i", n) ("j", 1))
              (ld "l" (a2 ("i", n) ("j", 1))
              /: Unop (Op.Sqrt, ld "a" (v ~scale:(n + 1) "j")));
          ];
        hls = Variable_trip { untuned_ii = 10; tuned_ii = 5 };
      };
    ]

let fft =
  (* One radix-2 stage over 2^12 complex singles; the butterfly twiddle
     products are shared between the +/- outputs (the DFG builder CSEs
     them, as the real compiler would). *)
  let butterfly ~idx0 ~idx1 =
    let tr =
      (ld "wre" (v "j") *: ld "re" idx1) -: (ld "wim" (v "j") *: ld "im" idx1)
    in
    let ti =
      (ld "wre" (v "j") *: ld "im" idx1) +: (ld "wim" (v "j") *: ld "re" idx1)
    in
    [
      st "nre" idx0 (ld "re" idx0 +: tr);
      st "nre" idx1 (ld "re" idx0 -: tr);
      st "nim" idx0 (ld "im" idx0 +: ti);
      st "nim" idx1 (ld "im" idx0 -: ti);
    ]
  in
  let untuned =
    {
      rname = "butterfly";
      loops = [ fixed "j" 64; fixed "i" 32 ];
      body = butterfly ~idx0:(a2 ("j", 64) ("i", 1)) ~idx1:(a2 ~const:32 ("j", 64) ("i", 1));
      hls = Variable_trip { untuned_ii = 2; tuned_ii = 1 };
    }
  in
  let tuned =
    (* Peeled/reordered so both butterfly legs are unit-stride pairs,
       coalescing the scalar accesses (paper Q2). *)
    {
      untuned with
      rname = "butterfly_peeled";
      body =
        butterfly ~idx0:(a2 ("j", 64) ("i", 2)) ~idx1:(a2 ~const:1 ("j", 64) ("i", 2));
    }
  in
  kernel "fft" Suite.Dsp Dtype.F32 ~lanes:2
    ~arrays:
      [ ("re", 4096); ("im", 4096); ("nre", 4096); ("nim", 4096); ("wre", 64); ("wim", 64) ]
    ~size:"2^12"
    ~og_tuning:{ desc = "peel last iterations to coalesce strided scalar access"; regions = [ tuned ] }
    [ untuned ]

let fir =
  (* Tiled FIR, the paper's running example (Figure 5): 2^10-tap output,
     199-tap filter, inner tile of 128 concurrent accumulations carried by
     the recurrence engine. *)
  kernel "fir" Suite.Dsp Dtype.F64
    ~arrays:[ ("a", 1222); ("b", 199); ("c", 1024) ]
    ~size:"2^10x199"
    [
      {
        rname = "taps";
        loops = [ fixed "io" 16; fixed "j" 199; fixed "ii" 64 ];
        body =
          [
            acc "c"
              (a2 ("io", 64) ("ii", 1))
              Op.Add
              (ld "a" (a3 ("io", 64) ("ii", 1) ("j", 1)) *: ld "b" (v "j"));
          ];
        hls = Clean;
      };
    ]

let solver =
  let n = 48 in
  kernel "solver" Suite.Dsp Dtype.F64
    ~arrays:[ ("lm", n * n); ("x", n); ("b", n) ]
    ~size:"48^2"
    [
      {
        rname = "sweep";
        loops = [ fixed "i" n; tri "j" n ];
        body =
          [ acc "x" (v "i") Op.Sub (ld "lm" (a2 ("i", n) ("j", 1)) *: ld "b" (v "j")) ];
        hls = Clean;
      };
      {
        rname = "scale";
        loops = [ fixed "i" n ];
        body = [ st "x" (v "i") (ld "x" (v "i") /: ld "lm" (v ~scale:(n + 1) "i")) ];
        hls = Clean;
      };
    ]

let mm =
  let n = 32 in
  kernel "mm" Suite.Dsp Dtype.F64
    ~arrays:[ ("a", n * n); ("b", n * n); ("c", n * n) ]
    ~size:"32^3"
    [
      {
        rname = "matmul";
        loops = [ fixed "i" n; fixed "k" n; fixed "j" n ];
        body =
          [
            acc "c" (a2 ("i", n) ("j", 1)) Op.Add
              (ld "a" (a2 ("i", n) ("k", 1)) *: ld "b" (a2 ("k", n) ("j", 1)));
          ];
        hls = Clean;
      };
    ]

(* ------------------------------------------------------------------ *)
(* MachSuite                                                           *)
(* ------------------------------------------------------------------ *)

let stencil3d =
  let plane = 34 * 34 in
  let idx = a3 ("i", plane) ("j", 34) ("k", 1) in
  let nbr off = ld "sin" (affine_shift idx off) in
  kernel "stencil-3d" Suite.Machsuite Dtype.I64
    ~arrays:[ ("sin", 34 * 34 * 34); ("sout", 34 * 34 * 34) ]
    ~size:"34^3x8"
    [
      {
        rname = "sweep";
        loops = [ fixed "t" 8; fixed "i" 32; fixed "j" 32; fixed "k" 32 ];
        body =
          [
            st "sout"
              (affine_shift idx (plane + 34 + 1))
              ((Param "c0" *: nbr (plane + 34 + 1))
              +: (Param "c1"
                 *: (nbr (plane + 34)
                    +: nbr (plane + 34 + 2)
                    +: nbr (plane + 1)
                    +: nbr ((2 * plane) + 34 + 1)
                    +: nbr 35
                    +: nbr (plane + (2 * 34) + 1))));
          ];
        hls = Strided { untuned_ii = 6 };
      };
    ]

let crs =
  (* CRS sparse matrix-vector product: variable row lengths (avg 4, max 8)
     and an indirect gather of the dense vector.  The nonzero slabs carry
     a 2-element tail pad past the 494x4 average: the triangular trip of
     the final row ((493 mod 8) + 1 = 6) walks up to index 4*493+5. *)
  kernel "crs" Suite.Machsuite Dtype.F64
    ~arrays:[ ("va", 1978); ("cidx", 1978); ("x", 494); ("y", 494) ]
    ~size:"494x4"
    [
      {
        rname = "spmv";
        loops = [ fixed "row" 494; tri "nz" 8 ];
        body =
          [
            acc "y" (v "row") Op.Add
              (ld "va" (a2 ("row", 4) ("nz", 1))
              *: ldi "x" ~via:"cidx" (a2 ("row", 4) ("nz", 1)));
          ];
        hls = Variable_trip { untuned_ii = 4; tuned_ii = 2 };
      };
    ]

let gemm =
  let n = 64 in
  let untuned =
    {
      rname = "blocked";
      loops = [ fixed "i" n; fixed "k" n; fixed "j" n ];
      body =
        [
          acc "c" (a2 ("i", n) ("j", 1)) Op.Add
            (ld "a" (a2 ("i", n) ("k", 1)) *: ld "b" (a2 ("k", n) ("j", 1)));
        ];
      hls = Clean;
    }
  in
  let tuned =
    (* Unrolled over two inner dimensions (tensorized): the a-operand is
       shared across the j-pair and each b-column is reused across the
       k-pair, halving ingest traffic per multiply. *)
    {
      untuned with
      rname = "blocked_2d";
      loops = [ fixed "i" n; fixed "k" (n / 2); fixed "j" (n / 2) ];
      body =
        (let aa kk = ld "a" (a2 ~const:kk ("i", n) ("k", 2)) in
         let bb kk jj = ld "b" (a2 ~const:((kk * n) + jj) ("k", 2 * n) ("j", 2)) in
         let cc jj = a2 ~const:jj ("i", n) ("j", 2) in
         [
           acc "c" (cc 0) Op.Add ((aa 0 *: bb 0 0) +: (aa 1 *: bb 1 0));
           acc "c" (cc 1) Op.Add ((aa 0 *: bb 0 1) +: (aa 1 *: bb 1 1));
         ]);
    }
  in
  kernel "gemm" Suite.Machsuite Dtype.I64
    ~arrays:[ ("a", n * n); ("b", n * n); ("c", n * n) ]
    ~size:"64^2"
    ~og_tuning:{ desc = "unroll across two inner-loop dimensions (tensorize)"; regions = [ tuned ] }
    [ untuned ]

let stencil2d =
  let w = 66 in
  let tap kr kc =
    ld "f" (affine_const ((kr * 3) + kc)) *: ld "sin" (a2 ~const:((kr * w) + kc) ("r", w) ("c", 1))
  in
  let sum9 =
    tap 0 0 +: tap 0 1 +: tap 0 2 +: tap 1 0 +: tap 1 1 +: tap 1 2 +: tap 2 0
    +: tap 2 1 +: tap 2 2
  in
  let untuned =
    {
      rname = "conv3x3";
      loops = [ fixed "t" 32; fixed "r" 64; fixed "c" 64 ];
      body = [ st "sout" (a2 ("r", 64) ("c", 1)) sum9 ];
      hls = Clean;
    }
  in
  let tuned =
    (* Manual unroll by two in the column dimension: 6 of the 18 input loads
       overlap between the adjacent windows and are CSE'd. *)
    let tap2 off kr kc =
      ld "f" (affine_const ((kr * 3) + kc))
      *: ld "sin" (a2 ~const:((kr * w) + kc + off) ("r", w) ("c", 2))
    in
    let sum9' off =
      tap2 off 0 0 +: tap2 off 0 1 +: tap2 off 0 2 +: tap2 off 1 0
      +: tap2 off 1 1 +: tap2 off 1 2 +: tap2 off 2 0 +: tap2 off 2 1
      +: tap2 off 2 2
    in
    {
      untuned with
      rname = "conv3x3_unroll2";
      loops = [ fixed "t" 32; fixed "r" 64; fixed "c" 32 ];
      body =
        [
          st "sout" (a2 ("r", 64) ("c", 2)) (sum9' 0);
          st "sout" (a2 ~const:1 ("r", 64) ("c", 2)) (sum9' 1);
        ];
    }
  in
  kernel "stencil-2d" Suite.Machsuite Dtype.I64
    ~arrays:[ ("sin", w * w); ("sout", 64 * 64); ("f", 9) ]
    ~size:"66^2x32" ~window_reuse:true
    ~og_tuning:
      { desc = "manually unroll columns to reuse overlapped window loads"; regions = [ tuned ] }
    [ untuned ]

let ellpack =
  kernel "ellpack" Suite.Machsuite Dtype.F64
    ~arrays:[ ("va", 1976); ("cidx", 1976); ("x", 494); ("y", 494) ]
    ~size:"494x4" ~needs_broadcast:true
    [
      {
        rname = "ell";
        loops = [ fixed "row" 494; fixed "j" 4 ];
        body =
          [
            acc "y" (v "row") Op.Add
              (ld "va" (a2 ("row", 4) ("j", 1))
              *: ldi "x" ~via:"cidx" (a2 ("row", 4) ("j", 1)));
          ];
        hls = Clean;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Vitis Vision                                                        *)
(* ------------------------------------------------------------------ *)

let npix = 128 * 128 * 4

let channel_ext =
  kernel "channel-ext" Suite.Vision Dtype.I16
    ~arrays:[ ("cin", npix * 4); ("cout", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "extract";
        loops = [ fixed "i" npix ];
        body = [ st "cout" (v "i") (ld "cin" (v ~scale:4 ~const:2 "i")) ];
        hls = Strided { untuned_ii = 8 };
      };
    ]

let bgr2grey =
  kernel "bgr2grey" Suite.Vision Dtype.I16
    ~arrays:[ ("bgr", npix * 3); ("grey", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "grey";
        loops = [ fixed "i" npix ];
        body =
          [
            st "grey" (v "i")
              (((Param "wb" *: ld "bgr" (v ~scale:3 "i"))
               +: (Param "wg" *: ld "bgr" (v ~scale:3 ~const:1 "i"))
               +: (Param "wr" *: ld "bgr" (v ~scale:3 ~const:2 "i"))
               +: Param "round")
              /: Const 256.0);
          ];
        hls = Strided { untuned_ii = 9 };
      };
    ]

let blur =
  let w = 128 in
  let pix ?(const = 0) cscale = ld "img" (a2 ~const ("r", w) ("c", cscale)) in
  let window ~cscale ~off =
    let p dr dc = pix ~const:((dr * w) + dc + off) cscale in
    p 0 0 +: p 0 1 +: p 0 2 +: p 1 0 +: p 1 1 +: p 1 2 +: p 2 0 +: p 2 1 +: p 2 2
  in
  let untuned =
    {
      rname = "box3x3";
      loops = [ fixed "t" 4; fixed "r" 126; fixed "c" 126 ];
      body = [ st "out" (a2 ("r", 126) ("c", 1)) (window ~cscale:1 ~off:0 /: Const 9.0) ];
      hls = Strided { untuned_ii = 6 };
    }
  in
  let tuned =
    {
      untuned with
      rname = "box3x3_unroll2";
      loops = [ fixed "t" 4; fixed "r" 126; fixed "c" 63 ];
      body =
        [
          st "out" (a2 ("r", 126) ("c", 2)) (window ~cscale:2 ~off:0 /: Const 9.0);
          st "out" (a2 ~const:1 ("r", 126) ("c", 2)) (window ~cscale:2 ~off:1 /: Const 9.0);
        ];
    }
  in
  kernel "blur" Suite.Vision Dtype.I16
    ~arrays:[ ("img", w * w); ("out", 126 * 126) ]
    ~size:"128^2x4" ~window_reuse:true
    ~og_tuning:
      { desc = "manually unroll columns to reuse overlapped window loads"; regions = [ tuned ] }
    [ untuned ]

let accumulate =
  kernel "accumulate" Suite.Vision Dtype.I16
    ~arrays:[ ("accb", npix); ("ain", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "acc";
        loops = [ fixed "i" npix ];
        body = [ acc "accb" (v "i") Op.Add (ld "ain" (v "i")) ];
        hls = Clean;
      };
    ]

let acc_sqr =
  kernel "acc-sqr" Suite.Vision Dtype.I16
    ~arrays:[ ("accb", npix); ("ain", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "accsq";
        loops = [ fixed "i" npix ];
        body = [ acc "accb" (v "i") Op.Add (ld "ain" (v "i") *: ld "ain" (v "i")) ];
        hls = Clean;
      };
    ]

let vecmax =
  kernel "vecmax" Suite.Vision Dtype.I16
    ~arrays:[ ("xa", npix); ("xb", npix); ("xm", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "vmax";
        loops = [ fixed "i" npix ];
        body = [ st "xm" (v "i") (Binop (Op.Max, ld "xa" (v "i"), ld "xb" (v "i"))) ];
        hls = Clean;
      };
    ]

let acc_weight =
  kernel "acc-weight" Suite.Vision Dtype.I16
    ~arrays:[ ("accb", npix); ("ain", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "accw";
        loops = [ fixed "i" npix ];
        body =
          [
            st "accb" (v "i")
              (((ld "accb" (v "i") *: Param "ialpha")
               +: (ld "ain" (v "i") *: Param "alpha"))
              /: Const 256.0);
          ];
        hls = Clean;
      };
    ]

let convert_bit =
  kernel "convert-bit" Suite.Vision Dtype.I16
    ~arrays:[ ("cin", npix); ("cout", npix) ]
    ~size:"128^2x4"
    [
      {
        rname = "convert";
        loops = [ fixed "i" npix ];
        body =
          [
            st "cout" (v "i")
              (Binop (Op.Shr, ld "cin" (v "i"), Const 4.0) +: Param "bias");
          ];
        hls = Clean;
      };
    ]

let derivative =
  let w = 130 in
  kernel "derivative" Suite.Vision Dtype.I16
    ~arrays:[ ("img", w * w); ("out", 128 * 128) ]
    ~size:"130^2x4" ~window_reuse:true
    [
      {
        rname = "sobel";
        loops = [ fixed "t" 4; fixed "r" 128; fixed "c" 128 ];
        body =
          (let p dr dc = ld "img" (a2 ~const:((dr * w) + dc) ("r", w) ("c", 1)) in
           [
             st "out"
               (a2 ("r", 128) ("c", 1))
               (((Param "gx" *: Unop (Op.Abs, p 1 2 -: p 1 0))
                +: (Param "gy" *: Unop (Op.Abs, p 2 1 -: p 0 1)))
               /: Const 4.0);
           ]);
        hls = Clean;
      };
    ]

let dsp = [ cholesky; fft; fir; solver; mm ]
let machsuite = [ stencil3d; crs; gemm; stencil2d; ellpack ]

let vision =
  [
    channel_ext; bgr2grey; blur; accumulate; acc_sqr; vecmax; acc_weight;
    convert_bit; derivative;
  ]

let all = dsp @ machsuite @ vision

let of_suite = function
  | Suite.Dsp -> dsp
  | Suite.Machsuite -> machsuite
  | Suite.Vision -> vision

let find name =
  match List.find_opt (fun k -> k.name = name) all with
  | Some k -> k
  | None -> raise Not_found

let names = List.map (fun k -> k.name) all

let regions_for ~tuned k =
  match (tuned, k.og_tuning) with
  | true, Some t -> t.regions
  | true, None | false, _ -> k.regions
