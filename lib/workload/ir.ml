open Overgen_adg

type affine = { terms : (string * int) list; const : int }

let normalize_terms terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let affine ?(const = 0) terms = { terms = normalize_terms terms; const }
let affine_const const = { terms = []; const }
let affine_vars a = List.map fst a.terms

let affine_coeff a var =
  match List.assoc_opt var a.terms with Some c -> c | None -> 0

let affine_shift a off = { a with const = a.const + off }

let affine_subst_scaled a ~var ~scale ~offset =
  let c = affine_coeff a var in
  if c = 0 then a
  else
    let terms = (var, c * scale) :: List.remove_assoc var a.terms in
    { terms = normalize_terms terms; const = a.const + (c * offset) }

let affine_equal a b = a.terms = b.terms && a.const = b.const

(* Canonical affine rendering: negative coefficients and constants join
   with a proper [-] separator (never "i+-3"), so printed forms re-parse
   to equal values.  [sep_plus]/[sep_minus] let callers pick compact
   ("+"/"-") or spaced (" + "/" - ") style. *)
let affine_render ~sep_plus ~sep_minus a =
  let magnitude v c =
    let c = abs c in
    if c = 1 then v else Printf.sprintf "%d*%s" c v
  in
  let buf = Buffer.create 16 in
  let part ~negative s =
    if Buffer.length buf = 0 then begin
      if negative then Buffer.add_char buf '-';
      Buffer.add_string buf s
    end
    else begin
      Buffer.add_string buf (if negative then sep_minus else sep_plus);
      Buffer.add_string buf s
    end
  in
  List.iter (fun (v, c) -> part ~negative:(c < 0) (magnitude v c)) a.terms;
  if a.const <> 0 then
    part ~negative:(a.const < 0) (string_of_int (abs a.const));
  if Buffer.length buf = 0 then "0" else Buffer.contents buf

let affine_to_string = affine_render ~sep_plus:"+" ~sep_minus:"-"

type index = Direct of affine | Indirect of { idx_array : string; at : affine }

type aref = { array : string; index : index }

let aref_equal a b =
  a.array = b.array
  &&
  match (a.index, b.index) with
  | Direct x, Direct y -> affine_equal x y
  | Indirect x, Indirect y -> x.idx_array = y.idx_array && affine_equal x.at y.at
  | Direct _, Indirect _ | Indirect _, Direct _ -> false

let aref_to_string r =
  match r.index with
  | Direct a -> Printf.sprintf "%s[%s]" r.array (affine_to_string a)
  | Indirect { idx_array; at } ->
    Printf.sprintf "%s[%s[%s]]" r.array idx_array (affine_to_string at)

type expr =
  | Load of aref
  | Const of float
  | Param of string
  | Unop of Op.t * expr
  | Binop of Op.t * expr * expr

type stmt =
  | Store of aref * expr
  | Accum of aref * Op.t * expr
  | Reduce of string * Op.t * expr

type trip = Fixed of int | Triangular of int

let trip_max = function Fixed n -> n | Triangular n -> n
let trip_avg = function
  | Fixed n -> float_of_int n
  | Triangular n -> float_of_int n /. 2.0

type loop = { var : string; trip : trip }

type hls_pattern =
  | Clean
  | Variable_trip of { untuned_ii : int; tuned_ii : int }
  | Strided of { untuned_ii : int }

type region = {
  rname : string;
  loops : loop list;
  body : stmt list;
  hls : hls_pattern;
}

type tuning = { desc : string; regions : region list }

type kernel = {
  name : string;
  suite : Suite.t;
  dtype : Dtype.t;
  lanes : int;
  arrays : (string * int) list;
  size_desc : string;
  regions : region list;
  og_tuning : tuning option;
  window_reuse : bool;
  needs_broadcast : bool;
}

let rec loads_of_expr = function
  | Load r -> [ r ]
  | Const _ | Param _ -> []
  | Unop (_, e) -> loads_of_expr e
  | Binop (_, a, b) -> loads_of_expr a @ loads_of_expr b

let add_op histo op =
  match List.assoc_opt op histo with
  | Some n -> (op, n + 1) :: List.remove_assoc op histo
  | None -> (op, 1) :: histo

let rec ops_of_expr_acc acc = function
  | Load _ | Const _ | Param _ -> acc
  | Unop (op, e) -> ops_of_expr_acc (add_op acc op) e
  | Binop (op, a, b) -> ops_of_expr_acc (ops_of_expr_acc (add_op acc op) a) b

let ops_of_expr e = ops_of_expr_acc [] e

let stmt_loads = function
  | Store (_, e) -> loads_of_expr e
  | Accum (r, _, e) -> r :: loads_of_expr e
  | Reduce (_, _, e) -> loads_of_expr e

let stmt_store = function
  | Store (r, _) | Accum (r, _, _) -> Some r
  | Reduce (_, _, _) -> None

let stmt_ops = function
  | Store (_, e) -> ops_of_expr e
  | Accum (_, op, e) -> add_op (ops_of_expr e) op
  | Reduce (_, op, e) -> add_op (ops_of_expr e) op

let merge_histos a b = List.fold_left (fun acc (op, n) ->
    match List.assoc_opt op acc with
    | Some m -> (op, m + n) :: List.remove_assoc op acc
    | None -> (op, n) :: acc)
    a b

let region_op_histogram r =
  List.fold_left (fun acc s -> merge_histos acc (stmt_ops s)) [] r.body

let region_iterations r =
  List.fold_left (fun acc l -> acc *. trip_avg l.trip) 1.0 r.loops

let region_arrays r =
  let arrays =
    List.concat_map
      (fun s ->
        let loads = List.map (fun (a : aref) -> a.array) (stmt_loads s) in
        let idx_arrays =
          List.filter_map
            (fun (a : aref) ->
              match a.index with
              | Indirect { idx_array; _ } -> Some idx_array
              | Direct _ -> None)
            (stmt_loads s)
        in
        let stores =
          match stmt_store s with Some a -> [ a.array ] | None -> []
        in
        loads @ idx_arrays @ stores)
      r.body
  in
  List.sort_uniq String.compare arrays

let innermost r =
  match List.rev r.loops with
  | [] -> invalid_arg "Ir.innermost: region with no loops"
  | l :: _ -> l

let elem_bytes k = Dtype.bytes k.dtype * k.lanes

(* Magnitude bound under which an integer-valued float is exactly
   representable and [int]-rendering is faithful: 2^53.  Beyond it
   [int_of_float] is lossy (and undefined past [max_int]), so huge
   integer-valued constants keep their float spelling. *)
let max_exact_int_float = 9007199254740992.0

(* Shortest decimal spelling that reads back to the same float, always
   carrying a '.', an exponent or a special-value name so it cannot be
   mistaken for an integer literal. *)
let float_literal f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

let const_to_string f =
  if Float.is_integer f && Float.abs f < max_exact_int_float then
    Printf.sprintf "%.0f" f
  else float_literal f

let rec pretty_expr = function
  | Load r -> aref_to_string r
  | Const f -> const_to_string f
  | Param p -> p
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (Op.to_string op) (pretty_expr e)
  | Binop (op, a, b) ->
    let sym =
      match op with
      | Op.Add -> "+"
      | Op.Sub -> "-"
      | Op.Mul -> "*"
      | Op.Div -> "/"
      | Op.Shl -> "<<"
      | Op.Shr -> ">>"
      | Op.Band -> "&"
      | Op.Bor -> "|"
      | Op.Bxor -> "^"
      | Op.Cmp_lt -> "<"
      | Op.Cmp_eq -> "=="
      | Op.Sqrt | Op.Min | Op.Max | Op.Abs | Op.Select | Op.Acc ->
        Op.to_string op
    in
    (match op with
     | Op.Min | Op.Max ->
       Printf.sprintf "%s(%s, %s)" sym (pretty_expr a) (pretty_expr b)
     | _ -> Printf.sprintf "(%s %s %s)" (pretty_expr a) sym (pretty_expr b))

let pretty_stmt ind s =
  let pad = String.make ind ' ' in
  match s with
  | Store (r, e) -> Printf.sprintf "%s%s = %s;" pad (aref_to_string r) (pretty_expr e)
  | Accum (r, op, e) ->
    Printf.sprintf "%s%s %s= %s;" pad (aref_to_string r)
      (match op with
       | Op.Add -> "+"
       | Op.Sub -> "-"
       | Op.Mul -> "*"
       | _ -> Op.to_string op)
      (pretty_expr e)
  | Reduce (name, op, e) ->
    Printf.sprintf "%s%s = %s(%s, %s);" pad name (Op.to_string op) name
      (pretty_expr e)

let pretty k =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "// %s (%s, %s%s, %s)\n" k.name (Suite.to_string k.suite)
       (Dtype.to_string k.dtype)
       (if k.lanes > 1 then Printf.sprintf "x%d" k.lanes else "")
       k.size_desc);
  Buffer.add_string buf "#pragma dsa config\n{\n";
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "  // region %s\n" r.rname);
      Buffer.add_string buf "  #pragma dsa decouple\n";
      let ind = ref 2 in
      List.iter
        (fun (l : loop) ->
          let bound =
            match l.trip with
            | Fixed n -> string_of_int n
            | Triangular n -> Printf.sprintf "%d-outer /*triangular*/" n
          in
          Buffer.add_string buf
            (Printf.sprintf "%sfor (%s = 0; %s < %s; ++%s)\n"
               (String.make !ind ' ') l.var l.var bound l.var);
          ind := !ind + 2)
        r.loops;
      List.iter
        (fun s -> Buffer.add_string buf (pretty_stmt !ind s ^ "\n"))
        r.body)
    k.regions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
