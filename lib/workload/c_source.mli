(** Emission of compilable C sources with the OverGen pragmas.

    The paper's programming interface is "multithreaded C with pragmas"
    (Section III-A); this module renders each IR kernel back into exactly
    that artifact — a self-contained C translation unit with
    [#pragma dsa config] / [#pragma dsa decouple] around the offloaded
    regions, array definitions and a reference [main].  Useful for
    inspecting what the flow consumes, for cross-checking the IR against
    a host C compiler — and, since the emission carries the kernel's full
    metadata ([#pragma dsa kernel ...], per-region [region(...)]/
    [hls(...)] attributes, an [OG_TRI] dependent bound for triangular
    loops and a [#pragma dsa tune]-marked [_tuned] variant function), as
    the exact dialect {!module:Overgen_frontend} parses back into a
    structurally equal {!Ir.kernel}. *)

val emit : ?tuned:bool -> Ir.kernel -> string
(** The full translation unit.  With [~tuned:false] (default) the tuned
    regions, if any, are emitted as a second [<name>_kernel_tuned]
    function behind a [#pragma dsa tune desc(...)] marker; with
    [~tuned:true] they replace the main function's regions (the legacy
    single-function rendering). *)

val region_body : Ir.kernel -> Ir.region -> string
(** Just one region's loop nest (with its decouple pragma). *)

val ctype : Ir.kernel -> string
(** The C element type, e.g. "double", "int16_t". *)

val fn_name : Ir.kernel -> string
(** The C identifier of the kernel function ('-' mapped to '_'). *)

val mangle : string -> string
(** The [og_] global-name prefix applied to every emitted array, scalar
    parameter and reduction target. *)
