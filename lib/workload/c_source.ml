open Overgen_adg

let ctype (k : Ir.kernel) =
  match k.dtype with
  | Dtype.I8 -> "int8_t"
  | Dtype.I16 -> "int16_t"
  | Dtype.I32 -> "int32_t"
  | Dtype.I64 -> "int64_t"
  | Dtype.F32 -> "float"
  | Dtype.F64 -> "double"

(* IR names may collide with libc (e.g. an array called "sin"); emitted
   globals carry a prefix. *)
let mangle name = "og_" ^ name

let fn_name (k : Ir.kernel) =
  String.map (function '-' -> '_' | c -> c) k.name

let affine_c = Ir.affine_render ~sep_plus:" + " ~sep_minus:" - "

let aref_c (r : Ir.aref) =
  match r.index with
  | Ir.Direct a -> Printf.sprintf "%s[%s]" (mangle r.array) (affine_c a)
  | Ir.Indirect { idx_array; at } ->
    Printf.sprintf "%s[%s[%s]]" (mangle r.array) (mangle idx_array) (affine_c at)

(* Dtype-correct literals: a float-typed kernel must never see a bare C
   int literal (const/const division would truncate), and integer-valued
   floats only render as int literals while [int] rendering is exact. *)
let const_c (k : Ir.kernel) f =
  if Dtype.is_float k.dtype then Ir.float_literal f else Ir.const_to_string f

let rec expr_c k (e : Ir.expr) =
  match e with
  | Ir.Load r -> aref_c r
  | Ir.Const f -> const_c k f
  | Ir.Param p -> mangle p
  | Ir.Unop (Op.Sqrt, x) -> Printf.sprintf "sqrt(%s)" (expr_c k x)
  | Ir.Unop (Op.Abs, x) -> Printf.sprintf "fabs(%s)" (expr_c k x)
  | Ir.Unop (op, x) -> Printf.sprintf "%s(%s)" (Op.to_string op) (expr_c k x)
  | Ir.Binop (op, x, y) -> (
    let bin sym = Printf.sprintf "(%s %s %s)" (expr_c k x) sym (expr_c k y) in
    match op with
    | Op.Add -> bin "+"
    | Op.Sub -> bin "-"
    | Op.Mul -> bin "*"
    | Op.Div -> bin "/"
    | Op.Shl -> bin "<<"
    | Op.Shr -> bin ">>"
    | Op.Band -> bin "&"
    | Op.Bor -> bin "|"
    | Op.Bxor -> bin "^"
    | Op.Cmp_lt -> bin "<"
    | Op.Cmp_eq -> bin "=="
    | Op.Min -> Printf.sprintf "MIN(%s, %s)" (expr_c k x) (expr_c k y)
    | Op.Max -> Printf.sprintf "MAX(%s, %s)" (expr_c k x) (expr_c k y)
    | Op.Sqrt | Op.Abs | Op.Select | Op.Acc ->
      Printf.sprintf "%s(%s, %s)" (Op.to_string op) (expr_c k x) (expr_c k y))

(* Read-modify-write rendering shared by array accumulations and scalar
   reductions: += / -= for Add/Sub, the MIN/MAX macros (not undefined
   lowercase calls) for Min/Max, and the explicit binop form otherwise. *)
let rmw_c k ~target op e =
  match op with
  | Op.Add -> Printf.sprintf "%s += %s;" target (expr_c k e)
  | Op.Sub -> Printf.sprintf "%s -= %s;" target (expr_c k e)
  | Op.Min -> Printf.sprintf "%s = MIN(%s, %s);" target target (expr_c k e)
  | Op.Max -> Printf.sprintf "%s = MAX(%s, %s);" target target (expr_c k e)
  | Op.Mul -> Printf.sprintf "%s = (%s * %s);" target target (expr_c k e)
  | _ ->
    Printf.sprintf "%s = %s(%s, %s);" target (Op.to_string op) target
      (expr_c k e)

let stmt_c k ind s =
  let pad = String.make ind ' ' in
  match s with
  | Ir.Store (r, e) -> Printf.sprintf "%s%s = %s;" pad (aref_c r) (expr_c k e)
  | Ir.Accum (r, op, e) -> pad ^ rmw_c k ~target:(aref_c r) op e
  | Ir.Reduce (name, op, e) -> pad ^ rmw_c k ~target:(mangle name) op e

let hls_c = function
  | Ir.Clean -> "clean"
  | Ir.Variable_trip { untuned_ii; tuned_ii } ->
    Printf.sprintf "variable_trip %d %d" untuned_ii tuned_ii
  | Ir.Strided { untuned_ii } -> Printf.sprintf "strided %d" untuned_ii

let region_body (k : Ir.kernel) (r : Ir.region) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "  #pragma dsa decouple region(%s) hls(%s)\n" r.rname
       (hls_c r.hls));
  let ind = ref 2 in
  let outer = ref None in
  List.iter
    (fun (l : Ir.loop) ->
      let bound =
        match l.trip with
        | Ir.Fixed n -> string_of_int n
        | Ir.Triangular n ->
          (* the dependent bound: rides the nearest enclosing induction
             variable (degenerate OG_TRI(0, n) = 1 when outermost) *)
          Printf.sprintf "OG_TRI(%s, %d)"
            (match !outer with Some v -> v | None -> "0")
            n
      in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = 0; %s < %s; ++%s) {\n"
           (String.make !ind ' ') l.var l.var bound l.var);
      outer := Some l.var;
      ind := !ind + 2)
    r.loops;
  List.iter (fun s -> Buffer.add_string buf (stmt_c k !ind s ^ "\n")) r.body;
  List.iter
    (fun (_ : Ir.loop) ->
      ind := !ind - 2;
      Buffer.add_string buf (String.make !ind ' ' ^ "}\n"))
    r.loops;
  Buffer.contents buf

let all_regions (k : Ir.kernel) =
  k.regions @ match k.og_tuning with Some t -> t.regions | None -> []

let params_of (k : Ir.kernel) =
  let rec of_expr acc (e : Ir.expr) =
    match e with
    | Ir.Param p -> if List.mem p acc then acc else p :: acc
    | Ir.Load _ | Ir.Const _ -> acc
    | Ir.Unop (_, x) -> of_expr acc x
    | Ir.Binop (_, x, y) -> of_expr (of_expr acc x) y
  in
  let of_stmt acc = function
    | Ir.Store (_, e) | Ir.Accum (_, _, e) | Ir.Reduce (_, _, e) -> of_expr acc e
  in
  List.fold_left
    (fun acc (r : Ir.region) -> List.fold_left of_stmt acc r.body)
    [] (all_regions k)
  |> List.rev

let reduce_names (k : Ir.kernel) =
  List.concat_map
    (fun (r : Ir.region) ->
      List.filter_map
        (function Ir.Reduce (name, _, _) -> Some name | _ -> None)
        r.body)
    (all_regions k)
  |> List.sort_uniq String.compare

let index_array_names (k : Ir.kernel) =
  List.concat_map
    (fun (r : Ir.region) ->
      List.concat_map
        (fun stmt ->
          List.filter_map
            (fun (a : Ir.aref) ->
              match a.index with
              | Ir.Indirect { idx_array; _ } -> Some idx_array
              | Ir.Direct _ -> None)
            (Ir.stmt_loads stmt))
        r.body)
    (all_regions k)
  |> List.sort_uniq String.compare

let kernel_pragma (k : Ir.kernel) =
  Printf.sprintf
    "#pragma dsa kernel name(%s) suite(%s) dtype(%s) lanes(%d) size(%s)%s%s\n"
    k.name (Suite.to_string k.suite) (Dtype.to_string k.dtype) k.lanes
    k.size_desc
    (if k.window_reuse then " window_reuse" else "")
    (if k.needs_broadcast then " broadcast" else "")

let config_fn buf (k : Ir.kernel) ~suffix regions =
  Buffer.add_string buf
    (Printf.sprintf "void %s_kernel%s(void) {\n" (fn_name k) suffix);
  Buffer.add_string buf "#pragma dsa config\n{\n";
  List.iter (fun r -> Buffer.add_string buf (region_body k r)) regions;
  Buffer.add_string buf "}\n}\n\n"

let emit ?(tuned = false) (k : Ir.kernel) =
  let buf = Buffer.create 1024 in
  let ty = ctype k in
  let idx_arrays = index_array_names k in
  Buffer.add_string buf
    (Printf.sprintf
       "/* %s (%s, %s) - generated from the OverGen loop-nest IR%s */\n"
       k.name (Suite.to_string k.suite) k.size_desc
       (if tuned then "; manually tuned variant" else ""));
  Buffer.add_string buf (kernel_pragma k);
  Buffer.add_string buf "#include <stdint.h>\n#include <math.h>\n\n";
  Buffer.add_string buf "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  Buffer.add_string buf "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  (* the data-dependent (triangular) trip count, as a function of the
     enclosing induction variable *)
  Buffer.add_string buf "#define OG_TRI(v, n) (((v) % (n)) + 1)\n\n";
  List.iter
    (fun (name, elems) ->
      (* indirection indices must be an integer type regardless of the
         kernel's element type *)
      let aty = if List.mem name idx_arrays then "int32_t" else ty in
      Buffer.add_string buf
        (Printf.sprintf "static %s %s[%d];\n" aty (mangle name) elems))
    k.arrays;
  let reductions = reduce_names k in
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "static %s %s = 1;\n" ty (mangle p)))
    (List.filter (fun p -> not (List.mem p reductions)) (params_of k));
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "static %s %s = 0;\n" ty (mangle r)))
    reductions;
  Buffer.add_char buf '\n';
  config_fn buf k ~suffix:"" (Kernels.regions_for ~tuned k);
  (match k.og_tuning with
  | Some t when not tuned ->
    Buffer.add_string buf (Printf.sprintf "#pragma dsa tune desc(%s)\n" t.desc);
    config_fn buf k ~suffix:"_tuned" t.regions
  | _ -> ());
  Buffer.add_string buf
    (Printf.sprintf "int main(void) {\n  %s_kernel();\n  return 0;\n}\n"
       (fn_name k));
  Buffer.contents buf
