type t = Dsp | Machsuite | Vision

let all = [ Dsp; Machsuite; Vision ]

let to_string = function
  | Dsp -> "dsp"
  | Machsuite -> "machsuite"
  | Vision -> "vision"

let of_string = function
  | "dsp" -> Some Dsp
  | "machsuite" -> Some Machsuite
  | "vision" -> Some Vision
  | _ -> None

let equal = ( = )
let compare = Stdlib.compare
