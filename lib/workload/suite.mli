(** The three workload suites of the evaluation (paper Section VII). *)

type t = Dsp | Machsuite | Vision

val all : t list
val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
