(** Spatial schedules: the result of mapping one region's mDFG variant onto
    an ADG.

    A schedule binds every DFG instruction to a dedicated PE, every DFG
    vector port to a hardware port, every array node to a memory stream
    engine, and every DFG edge to a route through the switch network,
    with operand delays balanced within the PEs' delay-FIFO budget. *)

open Overgen_adg
open Overgen_mdfg

module Imap : Map.S with type key = int

type route = { hops : Adg.id list; delay : int }
(** [hops] includes the endpoints; [delay] is the extra per-operand
    delay-FIFO setting applied at the consumer. *)

type t = {
  variant : Compile.variant;
  inst_pe : Adg.id Imap.t;          (** DFG instruction -> PE *)
  port_map : Adg.id Imap.t;         (** DFG vector port -> hardware port *)
  array_engine : (string * Adg.id) list;
  rec_streams : (int * Adg.id) list;
      (** streams riding a recurrence engine instead of memory *)
  reg_streams : (int * Adg.id) list;
      (** scalar-collection streams on the register engine *)
  routes : ((int * int) * route) list;  (** DFG edge (src,dst) -> route *)
  max_link_share : int;
      (** worst-case number of distinct values time-multiplexed over one
          network link; lower-bounds the initiation interval *)
  skew_penalty : int;
      (** throughput loss from operand-arrival skew beyond the delay-FIFO
          budget: unbalanced pipelines bubble (paper Section V-B) *)
  ii : int;                         (** initiation interval, cycles/firing *)
}

val mem_ops : t -> int
(** Memory operations (stream lanes) per firing, counted into IPC as the
    paper does. *)

val ipc : t -> float
(** Estimated single-tile IPC of this schedule before memory bottlenecks:
    (instructions + memory ops) / II. *)

val engine_of_stream : t -> Stream.t -> Adg.id option
(** The engine serving a stream under this schedule: its recurrence/register
    engine if riding one, otherwise the engine its array is mapped to. *)

val is_rec : t -> Stream.t -> bool

val uses_node : t -> Adg.id -> bool
val used_edges : t -> (Adg.id * Adg.id) list
(** ADG edges traversed by any route, with duplicates removed. *)

val compute_ii : ?comp:(Adg.id -> Comp.t option) -> Sys_adg.t -> t -> int
(** Initiation interval implied by port widths, engine bandwidths, and
    recurrence distances on the given hardware.  [?comp] overrides the
    component lookup with a faster (e.g. array-backed) one; it must agree
    with [Adg.comp sys.adg]. *)

val validate :
  ?comp:(Adg.id -> Comp.t option) ->
  ?mem_edge:(Adg.id -> Adg.id -> bool) ->
  t ->
  Sys_adg.t ->
  (unit, string) result
(** Check the schedule is still legal on the given (possibly mutated)
    hardware: all nodes exist with sufficient capability, all routes are
    intact, delays within FIFO budget.  [?comp] / [?mem_edge] override the
    graph lookups with faster ones; they must agree with the graph. *)
