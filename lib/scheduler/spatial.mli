(** The spatial scheduler (paper Sections II-B, IV-B).

    A deterministic greedy mapper: arrays are bound to memory engines using
    capacity, route and access-pattern legality plus the reuse heuristics of
    Section IV-B; instructions are placed on capable PEs nearest their
    producers; operand routes are found by BFS through switches with
    link-sharing only for common sources; operand delays are balanced within
    the delay-FIFO budget.  All code regions of one application share the
    fabric, so scheduling is performed against a shared-usage context.

    The speculative schedule/score/rollback loop is O(changes): every
    mutation of the usage tables pushes an inverse entry onto an undo log,
    a snapshot is just a mark into that log, and restore pops back to the
    mark. *)

open Overgen_adg
open Overgen_mdfg

type ctx
(** Mutable resource usage shared by all regions of one application. *)

val fresh_ctx : Sys_adg.t -> ctx

type snap
(** A mark into the context's undo log (generation-stamped). *)

val snapshot : ctx -> snap
(** O(1): records the current undo-log position.  Allocates nothing but the
    mark itself. *)

val restore : ctx -> snap -> unit
(** Pop the undo log back to the mark, in time proportional to the number
    of mutations since {!snapshot}.  Restoring the same mark repeatedly is
    fine (the second restore pops nothing), as is restoring nested marks in
    LIFO order.  @raise Invalid_argument if the mark is stale, i.e. the
    context was already rolled back past it by restoring an older mark —
    the captured state no longer exists in the log. *)

val debug_state : ctx -> string
(** Canonical dump of the observable usage state (used PEs/ports, spad
    bytes, engine demand, link owners, next route tag); two contexts with
    equal dumps are observably identical to the scheduler.  For tests. *)

val schedule_variant : ctx -> Compile.variant -> (Schedule.t, string) result
(** Map one region variant onto the hardware, consuming context resources.
    On failure the context is left unchanged. *)

val schedule_app :
  Sys_adg.t -> Compile.compiled -> (Schedule.t list, string) result
(** Schedule every region of an application concurrently onto the fabric,
    choosing for each region the most aggressive variant that fits ("relax
    DFG complexity" fallback).  Returns one schedule per region. *)

val repair :
  Sys_adg.t -> Schedule.t list -> (Schedule.t list, string) result
(** Schedule repair (paper Section V-A): revalidate prior schedules on
    mutated hardware, recompute IIs, and attempt to re-route any broken
    operand paths without touching placements.  Fails if placements
    themselves became illegal. *)

type reschedule_outcome =
  | Repaired     (** placements intact; routes refreshed / IIs recomputed *)
  | Incremental  (** only the broken placements were re-mapped *)
  | Full         (** conflict: fell back to a full re-map *)

val reschedule :
  Sys_adg.t ->
  Compile.compiled ->
  prior:Schedule.t list ->
  (Schedule.t list * reschedule_outcome, string) result
(** Re-map an application after a hardware mutation, reusing [prior] (its
    schedules on the pre-mutation graph) as far as possible: first try
    {!repair}; then re-place only the instructions and ports whose bindings
    the mutation broke (keeping all intact placements pinned) and re-route;
    finally fall back to {!schedule_app} from scratch.  Engine-binding
    breaks always fall through to the full re-map, since re-binding an
    array cascades into port legality. *)
