(** The spatial scheduler (paper Sections II-B, IV-B).

    A deterministic greedy mapper: arrays are bound to memory engines using
    capacity, route and access-pattern legality plus the reuse heuristics of
    Section IV-B; instructions are placed on capable PEs nearest their
    producers; operand routes are found by BFS through switches with
    link-sharing only for common sources; operand delays are balanced within
    the delay-FIFO budget.  All code regions of one application share the
    fabric, so scheduling is performed against a shared-usage context. *)

open Overgen_adg
open Overgen_mdfg

type ctx
(** Mutable resource usage shared by all regions of one application. *)

val fresh_ctx : Sys_adg.t -> ctx

type snap
(** An immutable capture of a context's resource usage. *)

val snapshot : ctx -> snap

val restore : ctx -> snap -> unit
(** Reset [ctx] to the captured state.  The snapshot stays independent of
    the live context, so one snapshot may be restored any number of
    times, interleaved with further scheduling. *)

val schedule_variant : ctx -> Compile.variant -> (Schedule.t, string) result
(** Map one region variant onto the hardware, consuming context resources.
    On failure the context is left unchanged. *)

val schedule_app :
  Sys_adg.t -> Compile.compiled -> (Schedule.t list, string) result
(** Schedule every region of an application concurrently onto the fabric,
    choosing for each region the most aggressive variant that fits ("relax
    DFG complexity" fallback).  Returns one schedule per region. *)

val repair :
  Sys_adg.t -> Schedule.t list -> (Schedule.t list, string) result
(** Schedule repair (paper Section V-A): revalidate prior schedules on
    mutated hardware, recompute IIs, and attempt to re-route any broken
    operand paths without touching placements.  Fails if placements
    themselves became illegal. *)
