open Overgen_adg
open Overgen_mdfg
module Imap = Schedule.Imap

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* ---------- inner-loop counters (gated; no-ops until Obs.enable) ---------- *)

module Obs = Overgen_obs.Obs

let m_tried =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_variants_tried_total"
       ~help:"variant scheduling attempts")

let m_accepted =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_variants_accepted_total"
       ~help:"variant scheduling attempts that produced a schedule")

let m_route_fail =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_routing_failures_total"
       ~help:"failed route searches (initial and repair rerouting)")

let m_repairs =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_scheduler_repairs_total"
       ~help:"schedule repair passes")

let m_rollback =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_rollback_entries_total"
       ~help:"undo-log entries popped by snapshot restores")

let m_incremental =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_incremental_total"
       ~help:"reschedules resolved by incremental re-placement")

let m_incremental_fallback =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_incremental_fallback_total"
       ~help:"reschedules that fell back to a full re-map")

(* ------------------------------------------------------------------ *)
(* Topology caches                                                     *)
(* ------------------------------------------------------------------ *)

(* Everything here depends only on the sysADG's structure, never on
   scheduling state, so one [topo] serves every context built against the
   same graph value.  The scratch arrays for route search live here too:
   they are reset in O(1) by bumping [visit_gen], and route searches never
   nest, so sharing them across contexts of one domain is safe. *)
type topo = {
  n_ids : int;                         (* ids are < n_ids *)
  comp_arr : Comp.t option array;      (* O(1) Adg.comp *)
  succs : int array array;
  is_sw : bool array;
  lane_w : int array;                  (* fabric width in bits; -1 = none *)
  pes : (Adg.id * Comp.pe) list;
  in_ports : (Adg.id * Comp.port) list;
  out_ports : (Adg.id * Comp.port) list;
  rec_engines : Adg.id list;
  reg_engines : Adg.id list;
  spads : (Adg.id * Comp.engine) list;
  dmas : (Adg.id * Comp.engine) list;
  max_in_fifo : int;
  dist_cache : (Adg.id, int array) Hashtbl.t;  (* BFS maps, filled lazily *)
  cap_cache : (Op.t * Dtype.t, (Adg.id * Comp.pe) list) Hashtbl.t;
      (* PEs statically capable of (op, dtype): caps + width *)
  mutable repair_memo : (Schedule.t list * Schedule.t list) option;
      (* last all-valid repair on this graph, keyed by physical identity *)
  (* Dijkstra scratch *)
  d_dist : int array;
  d_parent : int array;
  d_seen : int array;                  (* stamp = visit_gen when discovered *)
  d_settled : int array;
  (* binary min-heap with lazy deletion; pushes <= relaxations <= edges+1 *)
  h_key : int array;
  h_id : int array;
  mutable h_len : int;
  mutable visit_gen : int;
}

let build_topo adg =
  let n = max 1 (Adg.max_id adg + 1) in
  let comp_arr = Array.make n None in
  let succs = Array.make n [||] in
  let is_sw = Array.make n false in
  let lane_w = Array.make n (-1) in
  List.iter
    (fun (id, c) ->
      comp_arr.(id) <- Some c;
      succs.(id) <- Array.of_list (Adg.succs adg id);
      match c with
      | Comp.Switch { width_bits } ->
        is_sw.(id) <- true;
        lane_w.(id) <- width_bits
      | Comp.Pe p -> lane_w.(id) <- p.Comp.width_bits
      | Comp.In_port _ | Comp.Out_port _ | Comp.Engine _ -> ())
    (Adg.nodes adg);
  let in_ports = Adg.in_ports adg in
  {
    n_ids = n;
    comp_arr;
    succs;
    is_sw;
    lane_w;
    pes = Adg.pes adg;
    in_ports;
    out_ports = Adg.out_ports adg;
    rec_engines = List.map fst (Adg.engines_of_kind adg Comp.Rec);
    reg_engines = List.map fst (Adg.engines_of_kind adg Comp.Reg);
    spads = Adg.engines_of_kind adg Comp.Spad;
    dmas = Adg.engines_of_kind adg Comp.Dma;
    max_in_fifo =
      List.fold_left
        (fun acc (_, (p : Comp.port)) -> max acc p.fifo_depth)
        0 in_ports;
    dist_cache = Hashtbl.create 16;
    cap_cache = Hashtbl.create 16;
    repair_memo = None;
    d_dist = Array.make n max_int;
    d_parent = Array.make n (-1);
    d_seen = Array.make n 0;
    d_settled = Array.make n 0;
    h_key = Array.make (Adg.edge_count adg + n + 1) 0;
    h_id = Array.make (Adg.edge_count adg + n + 1) 0;
    h_len = 0;
    visit_gen = 0;
  }

(* One-slot per-domain cache keyed on the graph's physical identity: the
   ADG is a persistent value, so [==] implies structural equality.  The
   DSE evaluates each candidate graph many times (scoring, repair, full
   re-map) before mutating again, and micro-benchmarks hammer one graph in
   a loop, so a single slot hits almost always. *)
let topo_slot : (Adg.t * topo) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let topo_of adg =
  let slot = Domain.DLS.get topo_slot in
  match !slot with
  | Some (key, t) when key == adg -> t
  | _ ->
    let t = build_topo adg in
    slot := Some (adg, t);
    t

let array_mem x arr =
  let n = Array.length arr in
  let rec go i = i < n && (arr.(i) = x || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Context: resource usage + undo log                                  *)
(* ------------------------------------------------------------------ *)

(* Inverse entries for every mutation of the five usage tables.  [restore]
   pops the log back to a mark instead of copying whole tables, making the
   speculative schedule/score/rollback loop O(changes) rather than
   O(state). *)
type undo =
  | U_pe of Adg.id
  | U_port of Adg.id
  | U_spad of Adg.id * int
  | U_demand of Adg.id * float
  | U_link of (Adg.id * Adg.id) * int list option

type ctx = {
  sys : Sys_adg.t;
  topo : topo;
  used_pes : bool array;
  used_ports : bool array;
  spad_used : int array;
  engine_demand : float array;
  link_owner : (Adg.id * Adg.id, int list) Hashtbl.t;
  mutable next_tag : int;
  mutable log : undo array;
  mutable log_stamp : int array;  (* push id of each entry, for staleness *)
  mutable log_len : int;
  mutable gen : int;              (* total pushes ever; never decreases *)
}

let fresh_ctx sys =
  let topo = topo_of sys.Sys_adg.adg in
  let n = topo.n_ids in
  {
    sys;
    topo;
    used_pes = Array.make n false;
    used_ports = Array.make n false;
    spad_used = Array.make n 0;
    engine_demand = Array.make n 0.0;
    link_owner = Hashtbl.create 64;
    next_tag = 0;
    log = [||];
    log_stamp = [||];
    log_len = 0;
    gen = 0;
  }

let log_push c e =
  let cap = Array.length c.log in
  if c.log_len = cap then begin
    let cap' = max 64 (2 * cap) in
    let log = Array.make cap' (U_pe (-1)) in
    Array.blit c.log 0 log 0 cap;
    let stamp = Array.make cap' 0 in
    Array.blit c.log_stamp 0 stamp 0 cap;
    c.log <- log;
    c.log_stamp <- stamp
  end;
  c.log.(c.log_len) <- e;
  c.log_stamp.(c.log_len) <- c.gen;
  c.log_len <- c.log_len + 1;
  c.gen <- c.gen + 1

let use_pe c id =
  if not c.used_pes.(id) then begin
    log_push c (U_pe id);
    c.used_pes.(id) <- true
  end

let use_port c id =
  if not c.used_ports.(id) then begin
    log_push c (U_port id);
    c.used_ports.(id) <- true
  end

let set_spad c id v =
  log_push c (U_spad (id, c.spad_used.(id)));
  c.spad_used.(id) <- v

let set_demand c id v =
  log_push c (U_demand (id, c.engine_demand.(id)));
  c.engine_demand.(id) <- v

let set_link c key owners =
  log_push c (U_link (key, Hashtbl.find_opt c.link_owner key));
  Hashtbl.replace c.link_owner key owners

type snap = { m_len : int; m_gen : int; m_tag : int }

let snapshot c = { m_len = c.log_len; m_gen = c.gen; m_tag = c.next_tag }

(* A mark is stale once the log has been popped below it: either the log
   is now shorter, or the entry just under the mark carries a push id the
   mark has never seen (popped and re-pushed since).  Restoring the same
   mark repeatedly, or marks in LIFO order, stays valid. *)
let stale c m =
  c.log_len < m.m_len || (m.m_len > 0 && c.log_stamp.(m.m_len - 1) >= m.m_gen)

let restore c m =
  if stale c m then
    invalid_arg
      "Spatial.restore: stale snapshot (context was rolled back past it)";
  let popped = c.log_len - m.m_len in
  for i = c.log_len - 1 downto m.m_len do
    match c.log.(i) with
    | U_pe id -> c.used_pes.(id) <- false
    | U_port id -> c.used_ports.(id) <- false
    | U_spad (id, prev) -> c.spad_used.(id) <- prev
    | U_demand (id, prev) -> c.engine_demand.(id) <- prev
    | U_link (key, prev) -> (
      match prev with
      | None -> Hashtbl.remove c.link_owner key
      | Some owners -> Hashtbl.replace c.link_owner key owners)
  done;
  c.log_len <- m.m_len;
  c.next_tag <- m.m_tag;
  if popped > 0 then Obs.incr ~by:popped (Lazy.force m_rollback)

(* Canonical dump of the observable usage state, for the property tests
   that check undo-log restores against a copy-based oracle. *)
let debug_state c =
  let b = Buffer.create 256 in
  Array.iteri (fun id u -> if u then Printf.bprintf b "pe %d\n" id) c.used_pes;
  Array.iteri
    (fun id u -> if u then Printf.bprintf b "port %d\n" id)
    c.used_ports;
  Array.iteri
    (fun id v -> if v <> 0 then Printf.bprintf b "spad %d=%d\n" id v)
    c.spad_used;
  Array.iteri
    (fun id v -> if v <> 0.0 then Printf.bprintf b "demand %d=%.17g\n" id v)
    c.engine_demand;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.link_owner []
  |> List.filter (fun (_, owners) -> owners <> [])
  |> List.sort compare
  |> List.iter (fun ((a, bb), owners) ->
         Printf.bprintf b "link %d->%d=[%s]\n" a bb
           (String.concat ";" (List.map string_of_int owners)));
  Printf.bprintf b "next_tag %d\n" c.next_tag;
  Buffer.contents b

(* ---------- routing with link ownership ---------- *)

(* Links are time-multiplexed: a link already carrying [k] other values can
   still be used, at a cost; the worst sharing degree lower-bounds the II.
   Routing is a small Dijkstra where reusing a link of the same source is
   free and each additional foreign value costs dearly. *)
let max_share = 4

let owners ctx a b =
  Option.value ~default:[] (Hashtbl.find_opt ctx.link_owner (a, b))

(* How many distinct 64-bit values one hop can carry per cycle: wider
   switches carry subword lanes in parallel; ports and engines aggregate a
   whole vector, so their adjacent hops are not the bottleneck (the port
   width is accounted separately in the II). *)
let lane_capacity ctx a b =
  let wa = ctx.topo.lane_w.(a) and wb = ctx.topo.lane_w.(b) in
  if wa >= 0 then
    if wb >= 0 then max 1 (min wa wb / 64) else max 1 (wa / 64 * 4)
  else if wb >= 0 then max 1 (wb / 64 * 4)
  else 16

let effective_share ctx a b extra =
  let n = List.length (owners ctx a b) + extra in
  Overgen_util.Stats.div_ceil n (lane_capacity ctx a b)

let heap_push t key id =
  let k = t.h_key and v = t.h_id in
  let i = ref t.h_len in
  t.h_len <- t.h_len + 1;
  k.(!i) <- key;
  v.(!i) <- id;
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    k.(p) > k.(!i)
    &&
    (let tk = k.(p) and tv = v.(p) in
     k.(p) <- k.(!i);
     v.(p) <- v.(!i);
     k.(!i) <- tk;
     v.(!i) <- tv;
     i := p;
     true)
  do
    ()
  done

(* pops the min entry; with lazy deletion the caller skips settled ids *)
let heap_pop t =
  if t.h_len = 0 then -1
  else begin
    let k = t.h_key and v = t.h_id in
    let top = v.(0) in
    t.h_len <- t.h_len - 1;
    let n = t.h_len in
    if n > 0 then begin
      k.(0) <- k.(n);
      v.(0) <- v.(n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < n && k.(l) < k.(!m) then m := l;
        if r < n && k.(r) < k.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tk = k.(!m) and tv = v.(!m) in
          k.(!m) <- k.(!i);
          v.(!m) <- v.(!i);
          k.(!i) <- tk;
          v.(!i) <- tv;
          i := !m
        end
      done
    end;
    top
  end

let find_route ctx ~tag ~src ~dst =
  let t = ctx.topo in
  t.visit_gen <- t.visit_gen + 1;
  let vg = t.visit_gen in
  let dist = t.d_dist
  and parent = t.d_parent
  and seen = t.d_seen
  and settled = t.d_settled in
  let edge_cost a b =
    let os = owners ctx a b in
    if List.mem tag os then 1
    else
      let eff =
        Overgen_util.Stats.div_ceil (List.length os + 1) (lane_capacity ctx a b)
      in
      if eff > max_share then -1 else 1 + (8 * (eff - 1))
  in
  dist.(src) <- 0;
  seen.(src) <- vg;
  t.h_len <- 0;
  heap_push t 0 src;
  let found = ref false in
  let finished = ref false in
  while not !finished do
    let cur = heap_pop t in
    if cur < 0 then finished := true
    else if settled.(cur) <> vg then begin
      settled.(cur) <- vg;
      if cur = dst then begin
        found := true;
        finished := true
      end
      else if cur = src || t.is_sw.(cur) then
        Array.iter
          (fun next ->
            if next = dst || t.is_sw.(next) then begin
              let c = edge_cost cur next in
              if c >= 0 then begin
                let nd = dist.(cur) + c in
                if seen.(next) <> vg then begin
                  seen.(next) <- vg;
                  dist.(next) <- nd;
                  parent.(next) <- cur;
                  heap_push t nd next
                end
                else if settled.(next) <> vg && nd < dist.(next) then begin
                  dist.(next) <- nd;
                  parent.(next) <- cur;
                  heap_push t nd next
                end
              end
            end)
          t.succs.(cur)
    end
  done;
  if not !found then None
  else begin
    let rec build acc id =
      if id = src then id :: acc else build (id :: acc) parent.(id)
    in
    Some (build [] dst)
  end

let claim_route ctx ~tag hops =
  let rec go = function
    | a :: (b :: _ as rest) ->
      let os = owners ctx a b in
      if not (List.mem tag os) then set_link ctx (a, b) (tag :: os);
      go rest
    | [ _ ] | [] -> ()
  in
  go hops

let max_share_on ctx hops_list =
  List.fold_left
    (fun acc hops ->
      let rec go acc = function
        | a :: (b :: _ as rest) -> go (max acc (effective_share ctx a b 0)) rest
        | [ _ ] | [] -> acc
      in
      go acc hops)
    1 hops_list

(* BFS distance through switches, for placement scoring.  Purely
   topological, so maps are memoized on the topo and shared by every
   context over the same graph. *)
let distances ctx src =
  let t = ctx.topo in
  match Hashtbl.find_opt t.dist_cache src with
  | Some d -> d
  | None ->
    let d = Array.make t.n_ids max_int in
    let q = Queue.create () in
    d.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let cur = Queue.pop q in
      let dd = d.(cur) in
      if cur = src || t.is_sw.(cur) then
        Array.iter
          (fun next ->
            if d.(next) = max_int then begin
              d.(next) <- dd + 1;
              Queue.add next q
            end)
          t.succs.(cur)
    done;
    Hashtbl.replace t.dist_cache src d;
    d

(* ---------- stream classification ---------- *)

let is_scalar_stream (v : Compile.variant) (s : Stream.t) =
  s.dir = Stream.Write && s.lanes = 1
  && (match s.access with Stream.Linear { stride } -> stride = 0 | _ -> false)
  && List.exists
       (fun (a : Stream.array_info) -> a.name = s.array && a.elems = 1)
       v.arrays

let array_streams (v : Compile.variant) name =
  List.filter (fun (s : Stream.t) -> s.array = name) v.streams

(* ---------- shared placement helpers ---------- *)

let n_consts_of (v : Compile.variant) (n : Dfg.node) =
  List.length
    (List.filter
       (fun (o : Dfg.operand) ->
         match (Dfg.node v.dfg o.src).kind with
         | Dfg.Const _ -> true
         | _ -> false)
       n.operands)

(* statically capable PEs, memoized per (op, dtype) on the topo: capability
   sets never change under a fixed graph, so the Set.mem tests run once *)
let capable_pes ctx ~op ~dtype =
  let t = ctx.topo in
  match Hashtbl.find_opt t.cap_cache (op, dtype) with
  | Some l -> l
  | None ->
    let l =
      List.filter
        (fun (_, (p : Comp.pe)) ->
          Op.Cap.supports p.caps op dtype && p.width_bits >= Dtype.bits dtype)
        t.pes
    in
    Hashtbl.replace t.cap_cache (op, dtype) l;
    l

let pe_candidates ctx ~op ~dtype ~n_consts =
  List.filter
    (fun (pe_id, (p : Comp.pe)) ->
      (not ctx.used_pes.(pe_id)) && p.const_regs >= n_consts)
    (capable_pes ctx ~op ~dtype)

(* nearest-to-producers PE *)
let best_pe ctx cands producers =
  let dists = List.map (distances ctx) producers in
  let score pe_id =
    List.fold_left
      (fun acc d ->
        let d = d.(pe_id) in
        acc + if d = max_int then 1000 else d)
      0 dists
  in
  match cands with
  | [] -> None
  | (first, _) :: rest ->
    let best, _ =
      List.fold_left
        (fun (b, bs) (pe_id, _) ->
          let s = score pe_id in
          if s < bs then (pe_id, s) else (b, bs))
        (first, score first) rest
    in
    Some best

(* smallest adequate width first, to keep wide ports available *)
let choose_port ctx ~dir ~eng ~mem_eng ~need_mem_feed (s : Stream.t) =
  let adg = ctx.sys.Sys_adg.adg in
  let cands =
    match dir with `In -> ctx.topo.in_ports | `Out -> ctx.topo.out_ports
  in
  let ok (id, (p : Comp.port)) =
    (not ctx.used_ports.(id))
    && p.width_bytes >= s.elem_bytes
    && ((not (s.reuse.stationary > 1.0)) || p.stated)
    && (match eng with
       | Some e -> (
         match dir with
         | `In -> Adg.mem_edge adg e id
         | `Out -> Adg.mem_edge adg id e)
       | None -> true)
    && (* recurrence read ports must also be fed by the memory engine
          holding the array, for the initial fill *)
    ((not need_mem_feed)
    || match mem_eng with Some m -> Adg.mem_edge adg m id | None -> true)
  in
  let cands = List.filter ok cands in
  let cands =
    List.sort
      (fun (_, (a : Comp.port)) (_, (b : Comp.port)) ->
        let full = Stream.bytes_per_firing s in
        let score (p : Comp.port) =
          if p.width_bytes >= full then (0, p.width_bytes)
          else (1, -p.width_bytes)
        in
        compare (score a) (score b))
      cands
  in
  match cands with
  | (id, _) :: _ ->
    use_port ctx id;
    Some id
  | [] -> None

(* ---------- the scheduler ---------- *)

let schedule_variant ctx (v : Compile.variant) =
  let adg = ctx.sys.Sys_adg.adg in
  let saved = snapshot ctx in
  Obs.incr (Lazy.force m_tried);
  try
    let demand_of e = ctx.engine_demand.(e) in
    let add_demand e d = set_demand ctx e (demand_of e +. d) in
    (* --- recurrence candidacy: decide which accum pairs ride a rec engine --- *)
    let rec_engines = ctx.topo.rec_engines in
    let max_in_fifo = ctx.topo.max_in_fifo in
    let dfg_depth = Dfg.depth v.dfg in
    let rec_ok (s : Stream.t) =
      match (s.recurrence, rec_engines) with
      | Some r, _ :: _ -> r.concurrent <= (max_in_fifo * s.lanes) + dfg_depth
      | Some _, [] | None, _ -> false
    in
    let rec_stream_ids =
      List.filter_map
        (fun (s : Stream.t) -> if rec_ok s then Some s.id else None)
        v.streams
    in
    (* A pair is recurrent only if both directions qualify. *)
    let rec_arrays =
      List.sort_uniq String.compare
        (List.filter_map
           (fun (s : Stream.t) ->
             if List.mem s.id rec_stream_ids then Some s.array else None)
           v.streams)
    in
    let rec_pair_ok name =
      let dirs =
        List.filter_map
          (fun (s : Stream.t) ->
            if s.array = name && List.mem s.id rec_stream_ids then Some s.dir
            else None)
          v.streams
      in
      List.mem Stream.Read dirs && List.mem Stream.Write dirs
    in
    let rec_arrays = List.filter rec_pair_ok rec_arrays in
    let rec_streams =
      List.filter_map
        (fun (s : Stream.t) ->
          if List.mem s.array rec_arrays && s.recurrence <> None then
            Some (s.id, List.hd rec_engines)
          else None)
        v.streams
    in
    let is_rec_stream (s : Stream.t) = List.mem_assoc s.id rec_streams in
    (* --- scalar register streams --- *)
    let reg_streams =
      List.filter_map
        (fun (s : Stream.t) ->
          if is_scalar_stream v s then
            match ctx.topo.reg_engines with
            | e :: _ -> Some (s.id, e)
            | [] -> failf "no register engine for scalar %s" s.array
          else None)
        v.streams
    in
    let scalar_arrays =
      List.filter_map
        (fun (s : Stream.t) ->
          if List.mem_assoc s.id reg_streams then Some s.array else None)
        v.streams
    in
    (* --- arrays onto memory engines --- *)
    let engine_supports (e : Comp.engine) streams =
      List.for_all
        (fun (s : Stream.t) ->
          (match s.access with
          | Stream.Indirect _ -> e.indirect
          | Stream.Linear _ -> true)
          && s.dims <= e.max_dims)
        streams
    in
    let spads = ctx.topo.spads in
    let dmas = ctx.topo.dmas in
    let array_traffic name =
      List.fold_left
        (fun acc (s : Stream.t) ->
          acc +. Stream.mem_bytes s ~use_rec:(is_rec_stream s))
        0.0 (array_streams v name)
    in
    let place_array (a : Stream.array_info) =
      let streams = array_streams v a.name in
      let want_spad =
        List.exists
          (fun (s : Stream.t) ->
            Stream.general_reuse s.reuse >= 2.0
            && s.reuse.stationary < Stream.general_reuse s.reuse)
          streams
      in
      let spad_candidates =
        List.filter
          (fun (e_id, (e : Comp.engine)) ->
            engine_supports e streams
            && Stream.array_bytes a + ctx.spad_used.(e_id) <= e.capacity)
          spads
      in
      let pick_least = function
        | [] -> None
        | cands ->
          Some
            (fst
               (List.fold_left
                  (fun (best, bd) (e, _) ->
                    let d = demand_of e in
                    if d < bd then (e, d) else (best, bd))
                  (fst (List.hd cands), demand_of (fst (List.hd cands)))
                  (List.tl cands)))
      in
      let chosen =
        if want_spad then
          match pick_least spad_candidates with
          | Some e -> Some e
          | None ->
            pick_least
              (List.filter (fun (_, e) -> engine_supports e streams) dmas)
        else
          match
            pick_least
              (List.filter (fun (_, e) -> engine_supports e streams) dmas)
          with
          | Some e -> Some e
          | None -> pick_least spad_candidates
      in
      match chosen with
      | None -> failf "no engine supports array %s" a.name
      | Some e ->
        (match Adg.comp_exn adg e with
        | Comp.Engine { kind = Comp.Spad; _ } ->
          set_spad ctx e (Stream.array_bytes a + ctx.spad_used.(e))
        | _ -> ());
        add_demand e (array_traffic a.name /. Float.max 1.0 v.firings);
        (a.name, e)
    in
    let array_engine =
      List.filter_map
        (fun (a : Stream.array_info) ->
          if List.mem a.name scalar_arrays then None else Some (place_array a))
        v.arrays
    in
    (* recirculation load on the recurrence engine *)
    List.iter
      (fun (s : Stream.t) ->
        match List.assoc_opt s.id rec_streams with
        | Some e -> add_demand e (float_of_int (Stream.bytes_per_firing s))
        | None -> ())
      v.streams;
    (* --- DFG ports onto hardware ports --- *)
    let engine_for_array name = List.assoc_opt name array_engine in
    let pick_port ~dir (s : Stream.t) =
      let eng =
        match List.assoc_opt s.id rec_streams with
        | Some e -> Some e
        | None -> (
          match List.assoc_opt s.id reg_streams with
          | Some e -> Some e
          | None -> engine_for_array s.array)
      in
      let mem_eng = engine_for_array s.array in
      let need_mem_feed = is_rec_stream s && dir = `In in
      match choose_port ctx ~dir ~eng ~mem_eng ~need_mem_feed s with
      | Some id -> id
      | None ->
        failf "no %s port for stream %s"
          (match dir with `In -> "input" | `Out -> "output")
          (Stream.describe s)
    in
    let port_map = ref Imap.empty in
    List.iter
      (fun (s : Stream.t) ->
        match s.port with
        | None -> ()
        | Some dfg_port ->
          let dir =
            match s.dir with Stream.Read -> `In | Stream.Write -> `Out
          in
          let hw = pick_port ~dir s in
          port_map := Imap.add dfg_port hw !port_map)
      v.streams;
    (* --- instruction placement --- *)
    let dfg_n = Dfg.size v.dfg in
    let tags = Array.make dfg_n (-1) in
    let tag_of id =
      if tags.(id) >= 0 then tags.(id)
      else begin
        let t = ctx.next_tag in
        ctx.next_tag <- t + 1;
        tags.(id) <- t;
        t
      end
    in
    let inst_pe = ref Imap.empty in
    let adg_node_of dfg_id =
      let n = Dfg.node v.dfg dfg_id in
      match n.kind with
      | Dfg.Input _ | Dfg.Output _ -> Imap.find_opt dfg_id !port_map
      | Dfg.Inst _ -> Imap.find_opt dfg_id !inst_pe
      | Dfg.Const _ -> None
    in
    List.iter
      (fun (n : Dfg.node) ->
        match n.kind with
        | Dfg.Inst { op; dtype; _ } ->
          let cands =
            pe_candidates ctx ~op ~dtype ~n_consts:(n_consts_of v n)
          in
          let producers =
            List.filter_map
              (fun (o : Dfg.operand) -> adg_node_of o.src)
              n.operands
          in
          (match best_pe ctx cands producers with
          | None ->
            failf "no free PE for %s.%s" (Op.to_string op)
              (Dtype.to_string dtype)
          | Some pe_id ->
            use_pe ctx pe_id;
            inst_pe := Imap.add n.id pe_id !inst_pe)
        | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> ())
      (Dfg.nodes v.dfg);
    (* --- routing --- *)
    let route_tbl = Hashtbl.create 32 in
    List.iter
      (fun (n : Dfg.node) ->
        List.iter
          (fun (o : Dfg.operand) ->
            match (Dfg.node v.dfg o.src).kind with
            | Dfg.Const _ -> () (* constants live in the PE's registers *)
            | Dfg.Inst _ | Dfg.Input _ | Dfg.Output _ -> (
              match (adg_node_of o.src, adg_node_of n.id) with
              | Some src, Some dst -> (
                let tag = tag_of o.src in
                match find_route ctx ~tag ~src ~dst with
                | Some hops ->
                  claim_route ctx ~tag hops;
                  Hashtbl.replace route_tbl (o.src, n.id)
                    { Schedule.hops; delay = 0 }
                | None ->
                  Obs.incr (Lazy.force m_route_fail);
                  failf "no route %d->%d" src dst)
              | _ -> failf "unplaced endpoint for edge %d->%d" o.src n.id))
          n.operands)
      (Dfg.nodes v.dfg);
    (* --- delay balancing --- *)
    let arrival = Array.make dfg_n 0 in
    let node_latency (n : Dfg.node) =
      match n.kind with
      | Dfg.Inst { op; dtype; _ } -> Op.latency op dtype
      | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> 0
    in
    let route_len src dst =
      match Hashtbl.find_opt route_tbl (src, dst) with
      | Some r -> max 0 (List.length r.Schedule.hops - 1)
      | None -> 0
    in
    let routes_with_delay = ref [] in
    let skew_penalty = ref 1 in
    List.iter
      (fun (n : Dfg.node) ->
        let op_arrivals =
          List.filter_map
            (fun (o : Dfg.operand) ->
              match (Dfg.node v.dfg o.src).kind with
              | Dfg.Const _ -> None
              | Dfg.Inst _ | Dfg.Input _ | Dfg.Output _ ->
                let a =
                  arrival.(o.src)
                  + node_latency (Dfg.node v.dfg o.src)
                  + route_len o.src n.id
                in
                Some (o.src, a))
            n.operands
        in
        let t_max = List.fold_left (fun acc (_, a) -> max acc a) 0 op_arrivals in
        arrival.(n.id) <- t_max;
        (* set delays to balance operand arrival *)
        List.iter
          (fun (src, a) ->
            let slack = t_max - a in
            match Hashtbl.find_opt route_tbl (src, n.id) with
            | Some r ->
              let budget =
                match Imap.find_opt n.id !inst_pe with
                | Some pe_id -> (
                  match Adg.comp_exn adg pe_id with
                  | Comp.Pe p -> p.delay_fifo
                  | _ -> 0)
                | None -> 64 (* output ports tolerate skew via their FIFOs *)
              in
              (* skew beyond the FIFO budget bubbles the pipeline instead of
                 failing the schedule; the DSE's edge-delay preservation
                 exists precisely to remove this penalty *)
              if slack > budget then
                skew_penalty :=
                  max !skew_penalty
                    (Overgen_util.Stats.div_ceil (slack + 1) (budget + 1));
              routes_with_delay :=
                ((src, n.id), { r with Schedule.delay = min slack budget })
                :: !routes_with_delay
            | None -> ())
          op_arrivals)
      (Dfg.nodes v.dfg);
    let final_routes = List.rev !routes_with_delay in
    let share =
      max_share_on ctx (List.map (fun (_, r) -> r.Schedule.hops) final_routes)
    in
    let sched =
      {
        Schedule.variant = v;
        inst_pe = !inst_pe;
        port_map = !port_map;
        array_engine;
        rec_streams;
        reg_streams;
        routes = final_routes;
        max_link_share = share;
        skew_penalty = !skew_penalty;
        ii = 1;
      }
    in
    let sched = { sched with Schedule.ii = Schedule.compute_ii ctx.sys sched } in
    Obs.incr (Lazy.force m_accepted);
    Ok sched
  with Fail msg ->
    restore ctx saved;
    Error msg

let schedule_app sys (c : Compile.compiled) =
  Overgen_fault.Fault.(point Points.scheduler_schedule_app);
  let ctx = fresh_ctx sys in
  let try_variants region_variants =
    (* Evaluate every variant against the current context and keep the one
       with the best single-tile IPC: a narrower DFG at II=1 often beats a
       wide one strangled by link sharing or operand skew. *)
    match region_variants with
    | [] -> Error "region has no variants"
    | _ ->
      let sorted =
        List.sort
          (fun (a : Compile.variant) b -> compare b.unroll a.unroll)
          region_variants
      in
      let scored =
        List.filter_map
          (fun v ->
            let saved = snapshot ctx in
            match schedule_variant ctx v with
            | Ok s ->
              restore ctx saved;
              (* throughput in loop iterations per cycle *)
              Some (float_of_int s.variant.unroll /. float_of_int (max 1 s.ii), v)
            | Error _ -> None)
          sorted
      in
      match scored with
      | [] -> (
        (* re-run the widest for its error message *)
        match schedule_variant ctx (List.hd sorted) with
        | Ok s -> Ok s (* cannot happen, but keep it if it does *)
        | Error e -> Error e)
      | _ ->
        let _, best_v =
          List.fold_left
            (fun (bi, bv) (i, v) -> if i > bi then (i, v) else (bi, bv))
            (List.hd scored) (List.tl scored)
        in
        schedule_variant ctx best_v
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | region :: rest -> (
      match try_variants region with
      | Ok s -> all (s :: acc) rest
      | Error e -> Error (Printf.sprintf "%s: %s" c.kname e))
  in
  all [] c.per_region

(* ------------------------------------------------------------------ *)
(* Schedule repair                                                     *)
(* ------------------------------------------------------------------ *)

(* Re-route one schedule with its placements pinned; the context must
   already hold every placement claim.  Fails if a placement itself is
   broken. *)
let reroute_pinned ctx (s : Schedule.t) =
  let adg = ctx.sys.Sys_adg.adg in
  let t = ctx.topo in
  let comp id = if id >= 0 && id < t.n_ids then t.comp_arr.(id) else None in
  let v = s.variant in
  let placements_ok =
    Imap.for_all
      (fun inst pe ->
        match (comp pe, (Dfg.node v.dfg inst).kind) with
        | Some (Comp.Pe p), Dfg.Inst { op; dtype; _ } ->
          Op.Cap.supports p.caps op dtype && p.width_bits >= Dtype.bits dtype
        | _ -> false)
      s.inst_pe
    && Imap.for_all
         (fun dfg_port hw ->
           match ((Dfg.node v.dfg dfg_port).kind, comp hw) with
           | Dfg.Input _, Some (Comp.In_port _)
           | Dfg.Output _, Some (Comp.Out_port _) -> true
           | _ -> false)
         s.port_map
    && List.for_all
         (fun (_, e) ->
           match comp e with Some (Comp.Engine _) -> true | _ -> false)
         s.array_engine
    && List.for_all
         (fun (_, e) ->
           match comp e with Some (Comp.Engine _) -> true | _ -> false)
         (s.rec_streams @ s.reg_streams)
  in
  if not placements_ok then Error "placement broken"
  else begin
    let adg_node_of dfg_id =
      let n = Dfg.node v.dfg dfg_id in
      match n.kind with
      | Dfg.Input _ | Dfg.Output _ -> Imap.find_opt dfg_id s.port_map
      | Dfg.Inst _ -> Imap.find_opt dfg_id s.inst_pe
      | Dfg.Const _ -> None
    in
    let tags = Hashtbl.create 16 in
    let tag_of id =
      match Hashtbl.find_opt tags id with
      | Some t -> t
      | None ->
        let t = ctx.next_tag in
        ctx.next_tag <- t + 1;
        Hashtbl.replace tags id t;
        t
    in
    try
      let routes =
        List.map
          (fun ((src, dst), (old_r : Schedule.route)) ->
            match (adg_node_of src, adg_node_of dst) with
            | Some a, Some b -> (
              let tag = tag_of src in
              match find_route ctx ~tag ~src:a ~dst:b with
              | Some hops ->
                claim_route ctx ~tag hops;
                ((src, dst), { old_r with Schedule.hops })
              | None ->
                Obs.incr (Lazy.force m_route_fail);
                failf "reroute failed %d->%d" a b)
            | _ -> failf "endpoint missing")
          s.routes
      in
      let share =
        max_share_on ctx (List.map (fun (_, r) -> r.Schedule.hops) routes)
      in
      (* clamp per-edge delays to the (possibly shrunken) FIFO budget *)
      let budget_of dst =
        match Imap.find_opt dst s.inst_pe with
        | Some pe_id -> (
          match Adg.comp adg pe_id with
          | Some (Comp.Pe p) -> p.delay_fifo
          | _ -> 64)
        | None -> 64
      in
      let penalty = ref s.skew_penalty in
      let routes =
        List.map
          (fun ((src, dst), (r : Schedule.route)) ->
            let b = budget_of dst in
            if r.delay > b then
              penalty :=
                max !penalty (Overgen_util.Stats.div_ceil (r.delay + 1) (b + 1));
            ((src, dst), { r with Schedule.delay = min r.delay b }))
          routes
      in
      let s' =
        { s with Schedule.routes; max_link_share = share; skew_penalty = !penalty }
      in
      Ok { s' with Schedule.ii = Schedule.compute_ii ctx.sys s' }
    with Fail m -> Error m
  end

let claim_placements ctx (s : Schedule.t) =
  Imap.iter (fun _ pe -> use_pe ctx pe) s.inst_pe;
  Imap.iter (fun _ p -> use_port ctx p) s.port_map

let repair sys schedules =
  Obs.incr (Lazy.force m_repairs);
  let t = topo_of sys.Sys_adg.adg in
  match t.repair_memo with
  (* Revalidating the same schedules on the same graph is pure
     recomputation (the service re-serves unchanged overlays, benches loop
     on one configuration); one memo slot on the topo covers it. *)
  | Some (key, result) when key == schedules -> Ok result
  | _ ->
  let comp id = if id >= 0 && id < t.n_ids then t.comp_arr.(id) else None in
  let mem_edge a b = a >= 0 && a < t.n_ids && array_mem b t.succs.(a) in
  (* Fast path: everything still valid; just refresh IIs. *)
  let all_valid =
    List.for_all
      (fun s -> Schedule.validate ~comp ~mem_edge s sys = Ok ())
      schedules
  in
  if all_valid then begin
    let result =
      List.map
        (fun s -> { s with Schedule.ii = Schedule.compute_ii ~comp sys s })
        schedules
    in
    t.repair_memo <- Some (schedules, result);
    Ok result
  end
  else begin
    (* Re-route everything with placements pinned; fail if a placement
       itself is broken. *)
    let ctx = fresh_ctx sys in
    List.iter (claim_placements ctx) schedules;
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
        match reroute_pinned ctx s with
        | Ok s' -> go (s' :: acc) rest
        | Error e -> Error e)
    in
    go [] schedules
  end

(* ------------------------------------------------------------------ *)
(* Incremental rescheduling                                            *)
(* ------------------------------------------------------------------ *)

type reschedule_outcome = Repaired | Incremental | Full

(* Bindings whose legality a mutation can break, checked one at a time so
   an incremental pass can re-place exactly the broken ones. *)
let inst_binding_ok ctx (v : Compile.variant) inst pe =
  let t = ctx.topo in
  let c = if pe >= 0 && pe < t.n_ids then t.comp_arr.(pe) else None in
  match (c, (Dfg.node v.dfg inst).kind) with
  | Some (Comp.Pe p), Dfg.Inst { op; dtype; _ } ->
    Op.Cap.supports p.caps op dtype && p.width_bits >= Dtype.bits dtype
  | _ -> false

let port_binding_ok ctx (v : Compile.variant) dfg_port hw =
  let t = ctx.topo in
  let c = if hw >= 0 && hw < t.n_ids then t.comp_arr.(hw) else None in
  let elem, needs_stated =
    List.fold_left
      (fun (e, st) (s : Stream.t) ->
        if s.port = Some dfg_port then
          (max e s.elem_bytes, st || s.reuse.stationary > 1.0)
        else (e, st))
      (1, false) v.streams
  in
  match ((Dfg.node v.dfg dfg_port).kind, c) with
  | Dfg.Input _, Some (Comp.In_port p) | Dfg.Output _, Some (Comp.Out_port p)
    ->
    p.width_bytes >= elem && ((not needs_stated) || p.stated)
  | _ -> false

(* Re-place only the broken instruction and port bindings of [prior],
   keeping every intact binding pinned, then re-route.  Raises [Fail] (or
   returns None) when the delta cannot be absorbed without a full re-map:
   an engine binding broke, nothing is re-placeable, or re-routing the
   patched schedules fails. *)
let incremental_attempt sys prior =
  let ctx = fresh_ctx sys in
  let classified =
    List.map
      (fun (s : Schedule.t) ->
        let v = s.variant in
        let broken_insts =
          Imap.fold
            (fun inst pe acc ->
              if inst_binding_ok ctx v inst pe then acc else inst :: acc)
            s.inst_pe []
          |> List.rev
        in
        let broken_ports =
          Imap.fold
            (fun dfg_port hw acc ->
              if port_binding_ok ctx v dfg_port hw then acc else dfg_port :: acc)
            s.port_map []
          |> List.rev
        in
        (s, broken_insts, broken_ports))
      prior
  in
  if List.for_all (fun (_, bi, bp) -> bi = [] && bp = []) classified then
    (* repair already failed for a non-placement reason (e.g. congestion);
       only a full re-map can help *)
    None
  else begin
    (* claim every intact placement across all regions first: regions share
       the fabric, and a re-placement must not steal a sibling's PE *)
    List.iter
      (fun ((s : Schedule.t), broken_insts, broken_ports) ->
        Imap.iter
          (fun inst pe ->
            if not (List.mem inst broken_insts) then use_pe ctx pe)
          s.inst_pe;
        Imap.iter
          (fun dfg_port hw ->
            if not (List.mem dfg_port broken_ports) then use_port ctx hw)
          s.port_map)
      classified;
    let fix ((s : Schedule.t), broken_insts, broken_ports) =
      let v = s.variant in
      let inst_pe = ref s.inst_pe in
      let port_map = ref s.port_map in
      List.iter (fun i -> inst_pe := Imap.remove i !inst_pe) broken_insts;
      List.iter (fun p -> port_map := Imap.remove p !port_map) broken_ports;
      (* ports first: instructions score by distance to their producers,
         which include freshly re-placed ports *)
      List.iter
        (fun dfg_port ->
          match
            List.find_opt
              (fun (st : Stream.t) -> st.port = Some dfg_port)
              v.streams
          with
          | None -> failf "incremental: no stream feeds dfg port %d" dfg_port
          | Some st -> (
            let dir =
              match st.dir with Stream.Read -> `In | Stream.Write -> `Out
            in
            let eng = Schedule.engine_of_stream s st in
            let mem_eng = List.assoc_opt st.array s.array_engine in
            let need_mem_feed = Schedule.is_rec s st && dir = `In in
            match choose_port ctx ~dir ~eng ~mem_eng ~need_mem_feed st with
            | Some hw -> port_map := Imap.add dfg_port hw !port_map
            | None ->
              failf "incremental: no port for stream %s" (Stream.describe st)))
        broken_ports;
      List.iter
        (fun inst ->
          let n = Dfg.node v.dfg inst in
          match n.kind with
          | Dfg.Inst { op; dtype; _ } -> (
            let cands =
              pe_candidates ctx ~op ~dtype ~n_consts:(n_consts_of v n)
            in
            let producers =
              List.filter_map
                (fun (o : Dfg.operand) ->
                  match (Dfg.node v.dfg o.src).kind with
                  | Dfg.Input _ | Dfg.Output _ -> Imap.find_opt o.src !port_map
                  | Dfg.Inst _ -> Imap.find_opt o.src !inst_pe
                  | Dfg.Const _ -> None)
                n.operands
            in
            match best_pe ctx cands producers with
            | Some pe ->
              use_pe ctx pe;
              inst_pe := Imap.add inst pe !inst_pe
            | None ->
              failf "incremental: no free PE for %s.%s" (Op.to_string op)
                (Dtype.to_string dtype))
          | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ ->
            failf "incremental: %d is not an instruction" inst)
        broken_insts;
      { s with Schedule.inst_pe = !inst_pe; port_map = !port_map }
    in
    let fixed = List.map fix classified in
    (* all placements (intact + re-placed) are claimed; re-route every
       region against them *)
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | s :: rest -> (
        match reroute_pinned ctx s with
        | Ok s' -> go (s' :: acc) rest
        | Error _ -> None)
    in
    go [] fixed
  end

let reschedule sys (c : Compile.compiled) ~prior =
  match repair sys prior with
  | Ok s -> Ok (s, Repaired)
  | Error _ -> (
    let patched =
      match incremental_attempt sys prior with
      | r -> r
      | exception Fail _ -> None
    in
    match patched with
    | Some s ->
      Obs.incr (Lazy.force m_incremental);
      Ok (s, Incremental)
    | None -> (
      Obs.incr (Lazy.force m_incremental_fallback);
      match schedule_app sys c with
      | Ok s -> Ok (s, Full)
      | Error e -> Error e))
