open Overgen_adg
open Overgen_mdfg
module Imap = Schedule.Imap

type ctx = {
  sys : Sys_adg.t;
  mutable used_pes : (Adg.id, unit) Hashtbl.t;
  mutable used_ports : (Adg.id, unit) Hashtbl.t;
  mutable spad_used : (Adg.id, int) Hashtbl.t;
  mutable engine_demand : (Adg.id, float) Hashtbl.t;
  mutable link_owner : (Adg.id * Adg.id, int list) Hashtbl.t;
  mutable next_tag : int;
}

let fresh_ctx sys =
  {
    sys;
    used_pes = Hashtbl.create 32;
    used_ports = Hashtbl.create 16;
    spad_used = Hashtbl.create 4;
    engine_demand = Hashtbl.create 8;
    link_owner = Hashtbl.create 64;
    next_tag = 0;
  }

type snap = {
  s_pes : (Adg.id, unit) Hashtbl.t;
  s_ports : (Adg.id, unit) Hashtbl.t;
  s_spad : (Adg.id, int) Hashtbl.t;
  s_demand : (Adg.id, float) Hashtbl.t;
  s_links : (Adg.id * Adg.id, int list) Hashtbl.t;
  s_tag : int;
}

let snapshot c =
  {
    s_pes = Hashtbl.copy c.used_pes;
    s_ports = Hashtbl.copy c.used_ports;
    s_spad = Hashtbl.copy c.spad_used;
    s_demand = Hashtbl.copy c.engine_demand;
    s_links = Hashtbl.copy c.link_owner;
    s_tag = c.next_tag;
  }

(* The restored tables must be copies: handing the snapshot's own tables
   to the live context would let subsequent scheduling mutate the
   snapshot, so a second restore of the same snapshot would resurrect
   corrupted state instead of the captured one. *)
let restore c s =
  c.used_pes <- Hashtbl.copy s.s_pes;
  c.used_ports <- Hashtbl.copy s.s_ports;
  c.spad_used <- Hashtbl.copy s.s_spad;
  c.engine_demand <- Hashtbl.copy s.s_demand;
  c.link_owner <- Hashtbl.copy s.s_links;
  c.next_tag <- s.s_tag

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* ---------- inner-loop counters (gated; no-ops until Obs.enable) ---------- *)

module Obs = Overgen_obs.Obs

let m_tried =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_variants_tried_total"
       ~help:"variant scheduling attempts")

let m_accepted =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_variants_accepted_total"
       ~help:"variant scheduling attempts that produced a schedule")

let m_route_fail =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default
       "overgen_scheduler_routing_failures_total"
       ~help:"failed route searches (initial and repair rerouting)")

let m_repairs =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_scheduler_repairs_total"
       ~help:"schedule repair passes")

(* ---------- routing with link ownership ---------- *)

(* Links are time-multiplexed: a link already carrying [k] other values can
   still be used, at a cost; the worst sharing degree lower-bounds the II.
   Routing is a small Dijkstra where reusing a link of the same source is
   free and each additional foreign value costs dearly. *)
let max_share = 4

let owners ctx a b =
  Option.value ~default:[] (Hashtbl.find_opt ctx.link_owner (a, b))

(* How many distinct 64-bit values one hop can carry per cycle: wider
   switches carry subword lanes in parallel; ports and engines aggregate a
   whole vector, so their adjacent hops are not the bottleneck (the port
   width is accounted separately in the II). *)
let lane_capacity adg a b =
  let width id =
    match Adg.comp adg id with
    | Some (Comp.Switch { width_bits }) -> Some width_bits
    | Some (Comp.Pe p) -> Some p.Comp.width_bits
    | Some (Comp.In_port _ | Comp.Out_port _ | Comp.Engine _) | None -> None
  in
  match (width a, width b) with
  | Some wa, Some wb -> max 1 (min wa wb / 64)
  | Some w, None | None, Some w -> max 1 (w / 64 * 4)
  | None, None -> 16

let effective_share ctx adg a b extra =
  let n = List.length (owners ctx a b) + extra in
  Overgen_util.Stats.div_ceil n (lane_capacity adg a b)

let find_route ctx ~tag ~src ~dst =
  let adg = ctx.sys.Sys_adg.adg in
  let edge_cost a b =
    let os = owners ctx a b in
    if List.mem tag os then Some 1
    else
      let eff = effective_share ctx adg a b 1 in
      if eff > max_share then None else Some (1 + (8 * (eff - 1)))
  in
  let is_switch id =
    match Adg.comp adg id with Some (Comp.Switch _) -> true | _ -> false
  in
  let dist = Hashtbl.create 32 in
  let parent = Hashtbl.create 32 in
  let settled = Hashtbl.create 32 in
  Hashtbl.replace dist src 0;
  let rec pick_min () =
    let best = ref None in
    Hashtbl.iter
      (fun id d ->
        if not (Hashtbl.mem settled id) then
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | _ -> best := Some (id, d))
      dist;
    !best
  and loop () =
    match pick_min () with
    | None -> ()
    | Some (cur, d) ->
      Hashtbl.replace settled cur ();
      if cur <> dst then begin
        let expand = cur = src || is_switch cur in
        if expand then
          List.iter
            (fun next ->
              match edge_cost cur next with
              | Some c when next = dst || is_switch next ->
                let nd = d + c in
                let better =
                  match Hashtbl.find_opt dist next with
                  | Some old -> nd < old
                  | None -> true
                in
                if better && not (Hashtbl.mem settled next) then begin
                  Hashtbl.replace dist next nd;
                  Hashtbl.replace parent next cur
                end
              | Some _ | None -> ())
            (Adg.succs adg cur);
        loop ()
      end
  in
  loop ();
  if not (Hashtbl.mem dist dst) || not (Hashtbl.mem settled dst) then None
  else begin
    let rec build acc id =
      if id = src then src :: acc else build (id :: acc) (Hashtbl.find parent id)
    in
    Some (build [] dst)
  end

let claim_route ctx ~tag hops =
  let rec go = function
    | a :: (b :: _ as rest) ->
      let os = owners ctx a b in
      if not (List.mem tag os) then
        Hashtbl.replace ctx.link_owner (a, b) (tag :: os);
      go rest
    | [ _ ] | [] -> ()
  in
  go hops

let max_share_on ctx hops_list =
  let adg = ctx.sys.Sys_adg.adg in
  List.fold_left
    (fun acc hops ->
      let rec go acc = function
        | a :: (b :: _ as rest) ->
          go (max acc (effective_share ctx adg a b 0)) rest
        | [ _ ] | [] -> acc
      in
      go acc hops)
    1 hops_list

(* BFS distance through switches, for placement scoring. *)
let distances ctx src =
  let adg = ctx.sys.Sys_adg.adg in
  let dist = Hashtbl.create 32 in
  Hashtbl.replace dist src 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let cur = Queue.pop q in
    let d = Hashtbl.find dist cur in
    let expand =
      cur = src
      || match Adg.comp adg cur with Some (Comp.Switch _) -> true | _ -> false
    in
    if expand then
      List.iter
        (fun next ->
          if not (Hashtbl.mem dist next) then begin
            Hashtbl.replace dist next (d + 1);
            Queue.add next q
          end)
        (Adg.succs adg cur)
  done;
  dist

(* ---------- stream classification ---------- *)

let is_scalar_stream (v : Compile.variant) (s : Stream.t) =
  s.dir = Stream.Write && s.lanes = 1
  && (match s.access with Stream.Linear { stride } -> stride = 0 | _ -> false)
  && List.exists
       (fun (a : Stream.array_info) -> a.name = s.array && a.elems = 1)
       v.arrays

let array_streams (v : Compile.variant) name =
  List.filter (fun (s : Stream.t) -> s.array = name) v.streams

(* ---------- the scheduler ---------- *)

let schedule_variant ctx (v : Compile.variant) =
  let adg = ctx.sys.Sys_adg.adg in
  let saved = snapshot ctx in
  Obs.incr (Lazy.force m_tried);
  try
    let demand_of e = Option.value ~default:0.0 (Hashtbl.find_opt ctx.engine_demand e) in
    let add_demand e d = Hashtbl.replace ctx.engine_demand e (demand_of e +. d) in
    (* --- recurrence candidacy: decide which accum pairs ride a rec engine --- *)
    let rec_engines = List.map fst (Adg.engines_of_kind adg Comp.Rec) in
    let max_in_fifo =
      List.fold_left
        (fun acc (_, (p : Comp.port)) -> max acc p.fifo_depth)
        0 (Adg.in_ports adg)
    in
    let dfg_depth = Dfg.depth v.dfg in
    let rec_ok (s : Stream.t) =
      match (s.recurrence, rec_engines) with
      | Some r, _ :: _ -> r.concurrent <= (max_in_fifo * s.lanes) + dfg_depth
      | Some _, [] | None, _ -> false
    in
    let rec_stream_ids =
      List.filter_map
        (fun (s : Stream.t) -> if rec_ok s then Some s.id else None)
        v.streams
    in
    (* A pair is recurrent only if both directions qualify. *)
    let rec_arrays =
      List.sort_uniq String.compare
        (List.filter_map
           (fun (s : Stream.t) ->
             if List.mem s.id rec_stream_ids then Some s.array else None)
           v.streams)
    in
    let rec_pair_ok name =
      let dirs =
        List.filter_map
          (fun (s : Stream.t) ->
            if s.array = name && List.mem s.id rec_stream_ids then Some s.dir
            else None)
          v.streams
      in
      List.mem Stream.Read dirs && List.mem Stream.Write dirs
    in
    let rec_arrays = List.filter rec_pair_ok rec_arrays in
    let rec_streams =
      List.filter_map
        (fun (s : Stream.t) ->
          if List.mem s.array rec_arrays && s.recurrence <> None then
            Some (s.id, List.hd rec_engines)
          else None)
        v.streams
    in
    let is_rec_stream (s : Stream.t) = List.mem_assoc s.id rec_streams in
    (* --- scalar register streams --- *)
    let reg_engines = List.map fst (Adg.engines_of_kind adg Comp.Reg) in
    let reg_streams =
      List.filter_map
        (fun (s : Stream.t) ->
          if is_scalar_stream v s then
            match reg_engines with
            | e :: _ -> Some (s.id, e)
            | [] -> failf "no register engine for scalar %s" s.array
          else None)
        v.streams
    in
    let scalar_arrays =
      List.filter_map
        (fun (s : Stream.t) ->
          if List.mem_assoc s.id reg_streams then Some s.array else None)
        v.streams
    in
    (* --- arrays onto memory engines --- *)
    let engine_supports (e : Comp.engine) streams =
      List.for_all
        (fun (s : Stream.t) ->
          (match s.access with
          | Stream.Indirect _ -> e.indirect
          | Stream.Linear _ -> true)
          && s.dims <= e.max_dims)
        streams
    in
    let spads = Adg.engines_of_kind adg Comp.Spad in
    let dmas = Adg.engines_of_kind adg Comp.Dma in
    let array_traffic name =
      List.fold_left
        (fun acc (s : Stream.t) ->
          acc +. Stream.mem_bytes s ~use_rec:(is_rec_stream s))
        0.0 (array_streams v name)
    in
    let place_array (a : Stream.array_info) =
      let streams = array_streams v a.name in
      let want_spad =
        let good_general =
          List.exists
            (fun (s : Stream.t) ->
              Stream.general_reuse s.reuse >= 2.0
              && s.reuse.stationary < Stream.general_reuse s.reuse)
            streams
        in
        good_general
      in
      let spad_candidates =
        List.filter
          (fun (e_id, (e : Comp.engine)) ->
            engine_supports e streams
            && Stream.array_bytes a
                 + Option.value ~default:0 (Hashtbl.find_opt ctx.spad_used e_id)
               <= e.capacity)
          spads
      in
      let pick_least = function
        | [] -> None
        | cands ->
          Some
            (fst
               (List.fold_left
                  (fun (best, bd) (e, _) ->
                    let d = demand_of e in
                    if d < bd then (e, d) else (best, bd))
                  (fst (List.hd cands), demand_of (fst (List.hd cands)))
                  (List.tl cands)))
      in
      let chosen =
        if want_spad then
          match pick_least spad_candidates with
          | Some e -> Some e
          | None ->
            pick_least
              (List.filter (fun (_, e) -> engine_supports e streams) dmas)
        else
          match
            pick_least (List.filter (fun (_, e) -> engine_supports e streams) dmas)
          with
          | Some e -> Some e
          | None -> pick_least spad_candidates
      in
      match chosen with
      | None -> failf "no engine supports array %s" a.name
      | Some e ->
        (match Adg.comp_exn adg e with
        | Comp.Engine { kind = Comp.Spad; _ } ->
          Hashtbl.replace ctx.spad_used e
            (Stream.array_bytes a
            + Option.value ~default:0 (Hashtbl.find_opt ctx.spad_used e))
        | _ -> ());
        add_demand e (array_traffic a.name /. Float.max 1.0 v.firings);
        (a.name, e)
    in
    let array_engine =
      List.filter_map
        (fun (a : Stream.array_info) ->
          if List.mem a.name scalar_arrays then None else Some (place_array a))
        v.arrays
    in
    (* recirculation load on the recurrence engine *)
    List.iter
      (fun (s : Stream.t) ->
        match List.assoc_opt s.id rec_streams with
        | Some e -> add_demand e (float_of_int (Stream.bytes_per_firing s))
        | None -> ())
      v.streams;
    (* --- DFG ports onto hardware ports --- *)
    let engine_for_array name = List.assoc_opt name array_engine in
    let pick_port ~dir (s : Stream.t) =
      let cands =
        match dir with
        | `In -> List.map (fun (id, p) -> (id, p)) (Adg.in_ports adg)
        | `Out -> List.map (fun (id, p) -> (id, p)) (Adg.out_ports adg)
      in
      let eng =
        match List.assoc_opt s.id rec_streams with
        | Some e -> Some e
        | None -> (
          match List.assoc_opt s.id reg_streams with
          | Some e -> Some e
          | None -> engine_for_array s.array)
      in
      let mem_eng = engine_for_array s.array in
      let ok (id, (p : Comp.port)) =
        (not (Hashtbl.mem ctx.used_ports id))
        && p.width_bytes >= s.elem_bytes
        && ((not (s.reuse.stationary > 1.0)) || p.stated)
        && (match eng with
           | Some e -> (
             match dir with
             | `In -> Adg.mem_edge adg e id
             | `Out -> Adg.mem_edge adg id e)
           | None -> true)
        && (* recurrence read ports must also be fed by the memory engine
              holding the array, for the initial fill *)
        (not (is_rec_stream s && dir = `In)
        || match mem_eng with Some m -> Adg.mem_edge adg m id | None -> true)
      in
      let cands = List.filter ok cands in
      (* smallest adequate width first, to keep wide ports available *)
      let cands =
        List.sort
          (fun (_, (a : Comp.port)) (_, (b : Comp.port)) ->
            let full = Stream.bytes_per_firing s in
            let score (p : Comp.port) =
              if p.width_bytes >= full then (0, p.width_bytes)
              else (1, -p.width_bytes)
            in
            compare (score a) (score b))
          cands
      in
      match cands with
      | (id, _) :: _ ->
        Hashtbl.replace ctx.used_ports id ();
        id
      | [] -> failf "no %s port for stream %s"
                (match dir with `In -> "input" | `Out -> "output")
                (Stream.describe s)
    in
    let port_map = ref Imap.empty in
    List.iter
      (fun (s : Stream.t) ->
        match s.port with
        | None -> ()
        | Some dfg_port ->
          let dir = match s.dir with Stream.Read -> `In | Stream.Write -> `Out in
          let hw = pick_port ~dir s in
          port_map := Imap.add dfg_port hw !port_map)
      v.streams;
    (* --- instruction placement --- *)
    let tags = Hashtbl.create 32 in
    let tag_of id =
      match Hashtbl.find_opt tags id with
      | Some t -> t
      | None ->
        let t = ctx.next_tag in
        ctx.next_tag <- t + 1;
        Hashtbl.replace tags id t;
        t
    in
    let inst_pe = ref Imap.empty in
    let adg_node_of dfg_id =
      let n = Dfg.node v.dfg dfg_id in
      match n.kind with
      | Dfg.Input _ | Dfg.Output _ -> Imap.find_opt dfg_id !port_map
      | Dfg.Inst _ -> Imap.find_opt dfg_id !inst_pe
      | Dfg.Const _ -> None
    in
    let dist_memo = Hashtbl.create 16 in
    let dist_from src =
      match Hashtbl.find_opt dist_memo src with
      | Some d -> d
      | None ->
        let d = distances ctx src in
        Hashtbl.replace dist_memo src d;
        d
    in
    List.iter
      (fun (n : Dfg.node) ->
        match n.kind with
        | Dfg.Inst { op; dtype; _ } ->
          let n_consts =
            List.length
              (List.filter
                 (fun (o : Dfg.operand) ->
                   match (Dfg.node v.dfg o.src).kind with
                   | Dfg.Const _ -> true
                   | _ -> false)
                 n.operands)
          in
          let cands =
            List.filter
              (fun (pe_id, (p : Comp.pe)) ->
                (not (Hashtbl.mem ctx.used_pes pe_id))
                && Op.Cap.supports p.caps op dtype
                && p.width_bits >= Dtype.bits dtype
                && p.const_regs >= n_consts)
              (Adg.pes adg)
          in
          let producers =
            List.filter_map (fun (o : Dfg.operand) -> adg_node_of o.src) n.operands
          in
          let score pe_id =
            List.fold_left
              (fun acc src ->
                match Hashtbl.find_opt (dist_from src) pe_id with
                | Some d -> acc + d
                | None -> acc + 1000)
              0 producers
          in
          (match cands with
          | [] ->
            failf "no free PE for %s.%s" (Op.to_string op) (Dtype.to_string dtype)
          | (first, _) :: _ ->
            let best =
              List.fold_left
                (fun (b, bs) (pe_id, _) ->
                  let s = score pe_id in
                  if s < bs then (pe_id, s) else (b, bs))
                (first, score first) (List.tl cands)
            in
            let pe_id = fst best in
            Hashtbl.replace ctx.used_pes pe_id ();
            inst_pe := Imap.add n.id pe_id !inst_pe)
        | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> ())
      (Dfg.nodes v.dfg);
    (* --- routing --- *)
    let routes = ref [] in
    List.iter
      (fun (n : Dfg.node) ->
        List.iter
          (fun (o : Dfg.operand) ->
            match (Dfg.node v.dfg o.src).kind with
            | Dfg.Const _ -> () (* constants live in the PE's registers *)
            | Dfg.Inst _ | Dfg.Input _ | Dfg.Output _ -> (
              match (adg_node_of o.src, adg_node_of n.id) with
              | Some src, Some dst -> (
                let tag = tag_of o.src in
                match find_route ctx ~tag ~src ~dst with
                | Some hops ->
                  claim_route ctx ~tag hops;
                  routes := ((o.src, n.id), { Schedule.hops; delay = 0 }) :: !routes
                | None ->
                  Obs.incr (Lazy.force m_route_fail);
                  failf "no route %d->%d" src dst)
              | _ -> failf "unplaced endpoint for edge %d->%d" o.src n.id))
          n.operands)
      (Dfg.nodes v.dfg);
    let routes = List.rev !routes in
    (* --- delay balancing --- *)
    let arrival = Hashtbl.create 32 in
    let node_latency (n : Dfg.node) =
      match n.kind with
      | Dfg.Inst { op; dtype; _ } -> Op.latency op dtype
      | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> 0
    in
    let route_len src dst =
      match List.assoc_opt (src, dst) routes with
      | Some r -> max 0 (List.length r.Schedule.hops - 1)
      | None -> 0
    in
    let routes_with_delay = ref [] in
    let skew_penalty = ref 1 in
    List.iter
      (fun (n : Dfg.node) ->
        let op_arrivals =
          List.filter_map
            (fun (o : Dfg.operand) ->
              match (Dfg.node v.dfg o.src).kind with
              | Dfg.Const _ -> None
              | Dfg.Inst _ | Dfg.Input _ | Dfg.Output _ ->
                let a =
                  Option.value ~default:0 (Hashtbl.find_opt arrival o.src)
                  + node_latency (Dfg.node v.dfg o.src)
                  + route_len o.src n.id
                in
                Some (o.src, a))
            n.operands
        in
        let t_max = List.fold_left (fun acc (_, a) -> max acc a) 0 op_arrivals in
        Hashtbl.replace arrival n.id t_max;
        (* set delays to balance operand arrival *)
        List.iter
          (fun (src, a) ->
            let slack = t_max - a in
            match List.assoc_opt (src, n.id) routes with
            | Some r ->
              let budget =
                match Imap.find_opt n.id !inst_pe with
                | Some pe_id -> (
                  match Adg.comp_exn adg pe_id with
                  | Comp.Pe p -> p.delay_fifo
                  | _ -> 0)
                | None -> 64 (* output ports tolerate skew via their FIFOs *)
              in
              (* skew beyond the FIFO budget bubbles the pipeline instead of
                 failing the schedule; the DSE's edge-delay preservation
                 exists precisely to remove this penalty *)
              if slack > budget then
                skew_penalty :=
                  max !skew_penalty
                    (Overgen_util.Stats.div_ceil (slack + 1) (budget + 1));
              routes_with_delay :=
                ((src, n.id), { r with Schedule.delay = min slack budget })
                :: !routes_with_delay
            | None -> ())
          op_arrivals)
      (Dfg.nodes v.dfg);
    let final_routes = List.rev !routes_with_delay in
    let share =
      max_share_on ctx (List.map (fun (_, r) -> r.Schedule.hops) final_routes)
    in
    let sched =
      {
        Schedule.variant = v;
        inst_pe = !inst_pe;
        port_map = !port_map;
        array_engine;
        rec_streams;
        reg_streams;
        routes = final_routes;
        max_link_share = share;
        skew_penalty = !skew_penalty;
        ii = 1;
      }
    in
    let sched = { sched with Schedule.ii = Schedule.compute_ii ctx.sys sched } in
    Obs.incr (Lazy.force m_accepted);
    Ok sched
  with Fail msg ->
    restore ctx saved;
    Error msg

let schedule_app sys (c : Compile.compiled) =
  Overgen_fault.Fault.(point Points.scheduler_schedule_app);
  let ctx = fresh_ctx sys in
  let try_variants region_variants =
    (* Evaluate every variant against the current context and keep the one
       with the best single-tile IPC: a narrower DFG at II=1 often beats a
       wide one strangled by link sharing or operand skew. *)
    match region_variants with
    | [] -> Error "region has no variants"
    | _ ->
      let sorted =
        List.sort
          (fun (a : Compile.variant) b -> compare b.unroll a.unroll)
          region_variants
      in
      let scored =
        List.filter_map
          (fun v ->
            let saved = snapshot ctx in
            match schedule_variant ctx v with
            | Ok s ->
              restore ctx saved;
              (* throughput in loop iterations per cycle *)
              Some (float_of_int s.variant.unroll /. float_of_int (max 1 s.ii), v)
            | Error _ -> None)
          sorted
      in
      match scored with
      | [] -> (
        (* re-run the widest for its error message *)
        match schedule_variant ctx (List.hd sorted) with
        | Ok s -> Ok s (* cannot happen, but keep it if it does *)
        | Error e -> Error e)
      | _ ->
        let _, best_v =
          List.fold_left
            (fun (bi, bv) (i, v) -> if i > bi then (i, v) else (bi, bv))
            (List.hd scored) (List.tl scored)
        in
        schedule_variant ctx best_v
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | region :: rest -> (
      match try_variants region with
      | Ok s -> all (s :: acc) rest
      | Error e -> Error (Printf.sprintf "%s: %s" c.kname e))
  in
  all [] c.per_region

(* ------------------------------------------------------------------ *)
(* Schedule repair                                                     *)
(* ------------------------------------------------------------------ *)

let repair sys schedules =
  Obs.incr (Lazy.force m_repairs);
  (* Fast path: everything still valid; just refresh IIs. *)
  let revalidated =
    List.map (fun s -> (s, Schedule.validate s sys)) schedules
  in
  if List.for_all (fun (_, r) -> r = Ok ()) revalidated then
    Ok
      (List.map
         (fun (s, _) -> { s with Schedule.ii = Schedule.compute_ii sys s })
         revalidated)
  else begin
    (* Re-route everything with placements pinned; fail if a placement
       itself is broken. *)
    let ctx = fresh_ctx sys in
    let adg = sys.Sys_adg.adg in
    (* re-claim placement resources *)
    let claim_placements (s : Schedule.t) =
      Imap.iter (fun _ pe -> Hashtbl.replace ctx.used_pes pe ()) s.inst_pe;
      Imap.iter (fun _ p -> Hashtbl.replace ctx.used_ports p ()) s.port_map
    in
    List.iter claim_placements schedules;
    let reroute (s : Schedule.t) =
      let v = s.variant in
      let placements_ok =
        Imap.for_all
          (fun inst pe ->
            match (Adg.comp adg pe, (Dfg.node v.dfg inst).kind) with
            | Some (Comp.Pe p), Dfg.Inst { op; dtype; _ } ->
              Op.Cap.supports p.caps op dtype && p.width_bits >= Dtype.bits dtype
            | _ -> false)
          s.inst_pe
        && Imap.for_all
             (fun dfg_port hw ->
               match ((Dfg.node v.dfg dfg_port).kind, Adg.comp adg hw) with
               | Dfg.Input _, Some (Comp.In_port _)
               | Dfg.Output _, Some (Comp.Out_port _) -> true
               | _ -> false)
             s.port_map
        && List.for_all
             (fun (_, e) ->
               match Adg.comp adg e with Some (Comp.Engine _) -> true | _ -> false)
             s.array_engine
        && List.for_all
             (fun (_, e) ->
               match Adg.comp adg e with Some (Comp.Engine _) -> true | _ -> false)
             (s.rec_streams @ s.reg_streams)
      in
      if not placements_ok then Error "placement broken"
      else begin
        let adg_node_of dfg_id =
          let n = Dfg.node v.dfg dfg_id in
          match n.kind with
          | Dfg.Input _ | Dfg.Output _ -> Imap.find_opt dfg_id s.port_map
          | Dfg.Inst _ -> Imap.find_opt dfg_id s.inst_pe
          | Dfg.Const _ -> None
        in
        let tags = Hashtbl.create 16 in
        let tag_of id =
          match Hashtbl.find_opt tags id with
          | Some t -> t
          | None ->
            let t = ctx.next_tag in
            ctx.next_tag <- t + 1;
            Hashtbl.replace tags id t;
            t
        in
        try
          let routes =
            List.map
              (fun ((src, dst), (old_r : Schedule.route)) ->
                match (adg_node_of src, adg_node_of dst) with
                | Some a, Some b -> (
                  let tag = tag_of src in
                  match find_route ctx ~tag ~src:a ~dst:b with
                  | Some hops ->
                    claim_route ctx ~tag hops;
                    ((src, dst), { old_r with Schedule.hops })
                  | None ->
                    Obs.incr (Lazy.force m_route_fail);
                    failf "reroute failed %d->%d" a b)
                | _ -> failf "endpoint missing")
              s.routes
          in
          let share =
            max_share_on ctx (List.map (fun (_, r) -> r.Schedule.hops) routes)
          in
          (* clamp per-edge delays to the (possibly shrunken) FIFO budget *)
          let budget_of dst =
            match Imap.find_opt dst s.inst_pe with
            | Some pe_id -> (
              match Adg.comp adg pe_id with
              | Some (Comp.Pe p) -> p.delay_fifo
              | _ -> 64)
            | None -> 64
          in
          let penalty = ref s.skew_penalty in
          let routes =
            List.map
              (fun ((src, dst), (r : Schedule.route)) ->
                let b = budget_of dst in
                if r.delay > b then
                  penalty :=
                    max !penalty (Overgen_util.Stats.div_ceil (r.delay + 1) (b + 1));
                ((src, dst), { r with Schedule.delay = min r.delay b }))
              routes
          in
          let s' =
            { s with Schedule.routes; max_link_share = share; skew_penalty = !penalty }
          in
          Ok { s' with Schedule.ii = Schedule.compute_ii sys s' }
        with Fail m -> Error m
      end
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
        match reroute s with
        | Ok s' -> go (s' :: acc) rest
        | Error e -> Error e)
    in
    go [] schedules
  end
