open Overgen_adg
open Overgen_mdfg
module Imap = Map.Make (Int)

type route = { hops : Adg.id list; delay : int }

type t = {
  variant : Compile.variant;
  inst_pe : Adg.id Imap.t;
  port_map : Adg.id Imap.t;
  array_engine : (string * Adg.id) list;
  rec_streams : (int * Adg.id) list;
  reg_streams : (int * Adg.id) list;
  routes : ((int * int) * route) list;
  max_link_share : int;
  skew_penalty : int;
  ii : int;
}

let mem_ops t =
  List.fold_left
    (fun acc (s : Stream.t) ->
      match s.port with Some _ -> acc + s.lanes | None -> acc)
    0 t.variant.streams

let ipc t =
  float_of_int (Dfg.inst_count t.variant.dfg + mem_ops t) /. float_of_int (max 1 t.ii)

let is_rec t (s : Stream.t) = List.mem_assoc s.id t.rec_streams

let engine_of_stream t (s : Stream.t) =
  match List.assoc_opt s.id t.rec_streams with
  | Some e -> Some e
  | None -> (
    match List.assoc_opt s.id t.reg_streams with
    | Some e -> Some e
    | None -> List.assoc_opt s.array t.array_engine)

let uses_node t id =
  Imap.exists (fun _ v -> v = id) t.inst_pe
  || Imap.exists (fun _ v -> v = id) t.port_map
  || List.exists (fun (_, v) -> v = id) t.array_engine
  || List.exists (fun (_, v) -> v = id) t.rec_streams
  || List.exists (fun (_, v) -> v = id) t.reg_streams
  || List.exists (fun (_, r) -> List.mem id r.hops) t.routes

let used_edges t =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.concat_map (fun (_, r) -> pairs r.hops) t.routes
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Initiation interval                                                 *)
(* ------------------------------------------------------------------ *)

let compute_ii ?comp (sys : Sys_adg.t) t =
  let adg = sys.adg in
  let comp = match comp with Some f -> f | None -> fun id -> Adg.comp adg id in
  let v = t.variant in
  (* Port-width limit: a firing needs lanes*eb bytes through each port. *)
  let port_ii =
    Imap.fold
      (fun dfg_port hw acc ->
        let need =
          match (Dfg.node v.dfg dfg_port).kind with
          | Dfg.Input { width_bytes; _ } | Dfg.Output { width_bytes } -> width_bytes
          | Dfg.Inst _ | Dfg.Const _ -> 0
        in
        let width =
          match comp hw with
          | Some (Comp.In_port p) | Some (Comp.Out_port p) -> p.width_bytes
          | Some (Comp.Pe _ | Comp.Switch _ | Comp.Engine _) | None -> 1
        in
        max acc (Overgen_util.Stats.div_ceil (max 1 need) (max 1 width)))
      t.port_map 1
  in
  (* Engine-bandwidth limit: average bytes an engine must move per firing. *)
  let engine_demand = Hashtbl.create 8 in
  List.iter
    (fun (s : Stream.t) ->
      match engine_of_stream t s with
      | None -> ()
      | Some e ->
        let bytes =
          Stream.mem_bytes s ~use_rec:(is_rec t s) /. Float.max 1.0 v.firings
        in
        Hashtbl.replace engine_demand e
          (bytes +. Option.value ~default:0.0 (Hashtbl.find_opt engine_demand e)))
    v.streams;
  let engine_ii =
    Hashtbl.fold
      (fun e demand acc ->
        let bw =
          match comp e with
          | Some (Comp.Engine en) -> float_of_int (max 1 en.bandwidth)
          | Some (Comp.Pe _ | Comp.Switch _ | Comp.In_port _ | Comp.Out_port _)
          | None -> 1.0
        in
        max acc (int_of_float (ceil (demand /. bw))))
      engine_demand 1
  in
  (* Recurrence distance: a loop-carried chain of pipeline depth D with C
     concurrent instances initiates at best every ceil(D/C) cycles. *)
  let depth = lazy (Dfg.depth v.dfg + 4 (* port + engine forwarding *)) in
  let rec_ii =
    List.fold_left
      (fun acc (s : Stream.t) ->
        match s.recurrence with
        | Some r when is_rec t s ->
          max acc
            (Overgen_util.Stats.div_ceil (Lazy.force depth)
               (max 1 r.concurrent))
        | Some _ | None -> acc)
      1 v.streams
  in
  max (max port_ii (t.max_link_share * t.skew_penalty)) (max engine_ii rec_ii)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate ?comp ?mem_edge t (sys : Sys_adg.t) =
  let adg = sys.adg in
  let comp = match comp with Some f -> f | None -> fun id -> Adg.comp adg id in
  let mem_edge =
    match mem_edge with
    | Some f -> f
    | None -> fun a b -> Adg.mem_edge adg a b
  in
  let v = t.variant in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* instructions on capable PEs *)
  Imap.iter
    (fun inst pe_id ->
      match ((Dfg.node v.dfg inst).kind, comp pe_id) with
      | Dfg.Inst { op; dtype; _ }, Some (Comp.Pe p) ->
        if not (Op.Cap.supports p.caps op dtype) then
          fail "pe %d lost cap %s.%s" pe_id (Op.to_string op) (Dtype.to_string dtype)
        else if p.width_bits < Dtype.bits dtype then
          fail "pe %d too narrow" pe_id
      | Dfg.Inst _, _ -> fail "inst %d mapped to missing/non-pe %d" inst pe_id
      | (Dfg.Const _ | Dfg.Input _ | Dfg.Output _), _ ->
        fail "non-inst %d in inst_pe" inst)
    t.inst_pe;
  (* dedicated model: at most one instruction per PE *)
  let seen = Hashtbl.create 16 in
  Imap.iter
    (fun inst pe_id ->
      (match Hashtbl.find_opt seen pe_id with
      | Some other -> fail "pe %d shared by insts %d and %d" pe_id other inst
      | None -> ());
      Hashtbl.replace seen pe_id inst)
    t.inst_pe;
  (* ports *)
  Imap.iter
    (fun dfg_port hw ->
      match ((Dfg.node v.dfg dfg_port).kind, comp hw) with
      | Dfg.Input _, Some (Comp.In_port p) | Dfg.Output _, Some (Comp.Out_port p) ->
        (* the port must at least pass one element per cycle of its stream *)
        let elem =
          List.fold_left
            (fun acc (s : Stream.t) ->
              if s.port = Some dfg_port then max acc s.elem_bytes else acc)
            1 v.streams
        in
        if p.width_bytes < elem then
          fail "hw port %d narrower than element (%dB < %dB)" hw p.width_bytes elem;
        (* stationary reuse holds values in the port FIFO and needs the
           stream-state metadata capability *)
        let needs_stated =
          List.exists
            (fun (s : Stream.t) ->
              s.port = Some dfg_port && s.reuse.stationary > 1.0)
            v.streams
        in
        if needs_stated && not p.stated then fail "hw port %d lacks stream-state" hw
      | Dfg.Input _, _ -> fail "dfg input %d on non-in-port %d" dfg_port hw
      | Dfg.Output _, _ -> fail "dfg output %d on non-out-port %d" dfg_port hw
      | (Dfg.Inst _ | Dfg.Const _), _ -> fail "non-port %d in port_map" dfg_port)
    t.port_map;
  (* arrays on engines with capacity and feature support *)
  let spad_load = Hashtbl.create 4 in
  List.iter
    (fun (name, e) ->
      match comp e with
      | Some (Comp.Engine en) ->
        let info = List.find_opt (fun (a : Stream.array_info) -> a.name = name) v.arrays in
        (match (en.kind, info) with
        | Comp.Spad, Some a ->
          let total =
            Stream.array_bytes a
            + Option.value ~default:0 (Hashtbl.find_opt spad_load e)
          in
          Hashtbl.replace spad_load e total;
          if total > en.capacity then fail "spad %d over capacity" e
        | (Comp.Dma | Comp.Spad | Comp.Rec | Comp.Gen | Comp.Reg), _ -> ());
        (* feature support for this array's streams *)
        List.iter
          (fun (s : Stream.t) ->
            if s.array = name then begin
              (match s.access with
              | Stream.Indirect _ when not en.indirect ->
                if en.kind = Comp.Dma || en.kind = Comp.Spad then
                  fail "engine %d lacks indirect for %s" e name
              | Stream.Indirect _ | Stream.Linear _ -> ());
              if s.dims > en.max_dims && (en.kind = Comp.Dma || en.kind = Comp.Spad)
              then fail "engine %d lacks %dD patterns" e s.dims
            end)
          v.streams
      | Some (Comp.Pe _ | Comp.Switch _ | Comp.In_port _ | Comp.Out_port _) | None ->
        fail "array %s on missing engine %d" name e)
    t.array_engine;
  List.iter
    (fun (_, e) ->
      match comp e with
      | Some (Comp.Engine { kind = Comp.Rec; _ }) -> ()
      | _ -> fail "rec stream on non-rec engine %d" e)
    t.rec_streams;
  List.iter
    (fun (_, e) ->
      match comp e with
      | Some (Comp.Engine { kind = Comp.Reg; _ }) -> ()
      | _ -> fail "reg stream on non-reg engine %d" e)
    t.reg_streams;
  (* routes intact: every hop edge present, intermediates are switches *)
  List.iter
    (fun ((src, dst), r) ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
          if not (mem_edge a b) then fail "route %d->%d broken at %d->%d" src dst a b;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk r.hops;
      let n_hops = List.length r.hops in
      List.iteri
        (fun i hop ->
          if i > 0 && i < n_hops - 1 then
            match comp hop with
            | Some (Comp.Switch _) -> ()
            | _ -> fail "route %d->%d passes through non-switch %d" src dst hop)
        r.hops;
      (* delay budget on the consuming PE *)
      match Imap.find_opt dst t.inst_pe with
      | Some pe_id -> (
        match comp pe_id with
        | Some (Comp.Pe p) ->
          if r.delay > p.delay_fifo then
            fail "route %d->%d needs delay %d > fifo %d" src dst r.delay p.delay_fifo
        | _ -> ())
      | None -> ())
    t.routes;
  match !err with None -> Ok () | Some e -> Error e
