(** The unified system + accelerator design-space explorer (paper Section V),
    parallelized as an island model over OCaml 5 domains.

    Graph-based simulated annealing over the ADG with nested exhaustive
    system-parameter search: each iteration proposes a mutated ADG (random
    or schedule-preserving), repairs or reschedules the pre-generated mDFG
    variants onto it, exhaustively picks the best tile-count/NoC/L2
    configuration under the ML resource model's FPGA budget, and accepts
    stochastically on the bottleneck-model objective.

    {2 Island model}

    [config.islands] independent annealing chains split the total
    [config.iterations] budget and run concurrently on the shared
    {!Overgen_par.Pool}.  Each island draws from its own
    {!Overgen_util.Rng.streams} stream.  Every [config.migration_interval]
    iterations the islands hit a barrier: their bests are published to a
    shared elite pool and islands whose current design scores below the
    elite head adopt it.  Island 0 is the {e anchor}: it uses the exact
    sequential RNG stream and never adopts migrants, so

    - [islands = 1] reproduces the historical sequential explorer bit for
      bit for the same seed, and
    - an [islands = n] run with an [n]-times larger total budget (the same
      {e modeled-hours} budget, since islands run concurrently) always
      achieves an objective at least as good as the sequential run.

    Migration happens between rounds, on the driver, after the pool's
    barrier — results are deterministic in [(seed, islands,
    migration_interval, iterations)] regardless of worker timing.

    Wall-clock is accounted in {e modeled hours} at the paper's scale: full
    recompilation, schedule repair, and synthesis each carry a calibrated
    cost so the DSE-time figures (paper Q3, Q8) are reproducible.  A
    parallel run's modeled time is the maximum over its islands. *)

open Overgen_adg
open Overgen_workload
open Overgen_mdfg
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp

(** How mutations are proposed (the Q8 ablation switch):
    [Schedule_preserving] repairs existing schedules across transforms,
    [Random] allows arbitrary mutations with full rescheduling. *)
type mutation_policy = Random | Schedule_preserving

type config = {
  seed : int;
  iterations : int;
      (** total iteration budget, split evenly across the islands *)
  initial_temp : float;
  mutation_policy : mutation_policy;
  islands : int;  (** parallel annealing chains; 1 = sequential *)
  migration_interval : int;
      (** iterations between elite-migration barriers *)
  topologies : System.noc_topology list;
      (** NoC topologies the nested system DSE may choose from; the paper
          uses the crossbar only, the ring is the topology-specialization
          extension *)
}

val default_config : config
(** Today's sequential behaviour: [islands = 1],
    [mutation_policy = Schedule_preserving], [migration_interval = 25]. *)

type design = {
  sys : Sys_adg.t;
  per_app : Schedule.t list list;  (** one schedule list per application *)
  objective : float;               (** geomean estimated IPC *)
  predicted : Res.t;               (** ML-model full-SoC resources *)
}

type trace_point = {
  island : int;           (** which chain produced the point *)
  iter : int;             (** island-local iteration number *)
  modeled_hours : float;
  est_ipc : float;
}

type stats = {
  accepted : int;
  invalid : int;
  repaired : int;
  incremental : int;
      (** moves absorbed by incremental re-placement of only the broken
          instruction/port bindings (see {!Overgen_scheduler.Spatial.reschedule}) *)
  rescheduled : int;
}

type result = {
  best : design;
  trace : trace_point list;
      (** all islands' traces merged once after the run, stably sorted so
          [modeled_hours] is monotone *)
  stats : stats;           (** summed across islands *)
  wall_seconds : float;    (** real OCaml runtime of this exploration *)
  modeled_hours : float;   (** paper-scale DSE wall-clock: max over islands *)
}

val compile_apps : tuned:bool -> Ir.kernel list -> Compile.compiled list
(** Pre-generate all mDFG variants for the workload set (Section V-A). *)

val caps_pool : Compile.compiled list -> Op.Cap.t
(** Capability pairs any workload can use; the mutation vocabulary. *)

(** Periodic durable checkpointing of a run into an
    {!Overgen_store.Store}.  A snapshot is written under
    [(ns "dse-checkpoint", key)] every [interval] migration rounds and
    once more when the driver loop exits; it captures the complete
    barrier state of every island — current/best designs, traces,
    counters, and the exact {!Overgen_util.Rng} stream word — plus the
    shared elite pool, so a resumed run continues {e bit-identically} to
    an uninterrupted one.  Checkpoints are stamped with a signature of
    the config and workload; resuming under a different one is refused
    rather than silently diverging. *)
type checkpoint = {
  store : Overgen_store.Store.t;
  key : string;       (** store key naming this run *)
  interval : int;     (** migration rounds between snapshot writes; >= 1 *)
}

val run_signature : config -> Compile.compiled list -> string
(** The compatibility stamp recorded in (and demanded of) a checkpoint. *)

val explore :
  ?config:config ->
  ?device:Device.t ->
  ?checkpoint:checkpoint ->
  ?resume:bool ->
  ?stop_after_rounds:int ->
  model:Predict.t ->
  Compile.compiled list ->
  result
(** Run the island-model DSE for a pre-compiled workload set.

    [checkpoint] enables periodic durable snapshots (see {!checkpoint}).
    [resume] (default [false]) loads the snapshot at [checkpoint.key]
    instead of seeding fresh islands and continues it bit for bit;
    it fails if no checkpoint exists, the record is unreadable, or its
    signature does not match this config/workload.  [stop_after_rounds]
    halts the driver after that many migration rounds (a final snapshot
    is still written) — the hook the kill-and-resume tests use to
    simulate an interrupted run.

    @raise Invalid_argument if [config.islands < 1],
    [config.migration_interval < 1], [checkpoint.interval < 1],
    [stop_after_rounds < 1], or [resume] without [checkpoint]. *)

val explore_kernels :
  ?config:config ->
  ?device:Device.t ->
  ?tuned:bool ->
  model:Predict.t ->
  Ir.kernel list ->
  result
(** Convenience: compile then explore. *)

val evaluate :
  ?device:Device.t ->
  model:Predict.t ->
  Sys_adg.t ->
  Compile.compiled list ->
  (design, string) Stdlib.result
(** Schedule a workload set on a fixed design (no exploration) and evaluate
    the objective; used for the hand-built general overlay and for
    leave-one-out mapping. *)

(** Modeled time constants (paper-scale seconds), shared with the benchmark
    harness so Figures 15 and 20 use one cost model. *)
module Time : sig
  val pregen_per_app_s : float
  val reschedule_per_app_s : float
  val incremental_per_app_s : float
  val repair_per_app_s : float
  val iteration_overhead_s : float
end
