open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp
module Rng = Overgen_util.Rng
module Pool = Overgen_par.Pool
module Perf = Overgen_perf.Perf
module Obs = Overgen_obs.Obs
module Store = Overgen_store.Store
module Codec = Overgen_store.Codec

(* DSE counters on the shared default registry (gated).  Per-island
   objective gauges are registered on demand — the island count is a run
   parameter. *)
let m_iterations =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_dse_iterations_total"
       ~help:"annealer iterations across all islands")

let m_moves_accepted =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_dse_accepted_total"
       ~help:"accepted annealer moves across all islands")

let m_moves_invalid =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_dse_invalid_total"
       ~help:"proposals rejected as unschedulable or unfittable")

let m_checkpoints =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_dse_checkpoints_total"
       ~help:"DSE checkpoints written to the durable store")

let island_gauge idx =
  Obs.Metrics.gauge Obs.Metrics.default "overgen_dse_island_objective"
    ~help:"current objective (weighted-geomean IPC) per island"
    ~labels:[ ("island", string_of_int idx) ]

type mutation_policy = Random | Schedule_preserving

type config = {
  seed : int;
  iterations : int;
  initial_temp : float;
  mutation_policy : mutation_policy;
  islands : int;
  migration_interval : int;
  topologies : System.noc_topology list;
}

let default_config =
  { seed = 17; iterations = 250; initial_temp = 0.35;
    mutation_policy = Schedule_preserving; islands = 1;
    migration_interval = 25; topologies = [ System.Crossbar ] }

type design = {
  sys : Sys_adg.t;
  per_app : Schedule.t list list;
  objective : float;
  predicted : Res.t;
}

type trace_point = {
  island : int;
  iter : int;
  modeled_hours : float;
  est_ipc : float;
}

type stats = {
  accepted : int;
  invalid : int;
  repaired : int;
  incremental : int;
  rescheduled : int;
}

type result = {
  best : design;
  trace : trace_point list;
  stats : stats;
  wall_seconds : float;
  modeled_hours : float;
}

module Time = struct
  let pregen_per_app_s = 90.0
  let reschedule_per_app_s = 18.0
  let incremental_per_app_s = 5.0
  let repair_per_app_s = 2.0
  let iteration_overhead_s = 3.0
end

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type checkpoint = { store : Store.t; key : string; interval : int }

let checkpoint_ns = "dse-checkpoint"
let checkpoint_schema = "dse-checkpoint-v2"

type island_snap = {
  s_idx : int;
  s_rng : int64;
  s_iters : int;
  s_iter : int;
  s_cur_score : float;
  s_cur : design;
  s_best_score : float;
  s_best : design;
  s_trace_rev : trace_point list;
  s_modeled_s : float;
  s_accepted : int;
  s_invalid : int;
  s_repaired : int;
  s_incremental : int;
  s_rescheduled : int;
}

type snapshot = {
  snap_sig : string;
  snap_islands : island_snap list;
  snap_elites : (float * design) list;
}

(* Everything the continuation depends on must be pinned: the config
   knobs and the exact workload variant sets.  Resuming under a different
   signature would silently diverge, so it is refused instead. *)
let run_signature (config : config) apps =
  let topo = function System.Crossbar -> "xbar" | System.Ring -> "ring" in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([
             string_of_int config.seed;
             string_of_int config.iterations;
             Printf.sprintf "%h" config.initial_temp;
             (match config.mutation_policy with
             | Random -> "random"
             | Schedule_preserving -> "preserve");
             string_of_int config.islands;
             string_of_int config.migration_interval;
           ]
          @ List.map topo config.topologies
          @ List.map Compile.hash_compiled apps)))

let compile_apps ~tuned kernels = List.map (Compile.compile ~tuned) kernels

let caps_pool apps =
  List.fold_left
    (fun acc (c : Compile.compiled) ->
      List.fold_left
        (fun acc variants ->
          List.fold_left
            (fun acc (v : Compile.variant) ->
              List.fold_left
                (fun acc (n : Dfg.node) ->
                  match n.kind with
                  | Dfg.Inst { op; dtype; _ } -> Op.Cap.add (op, dtype) acc
                  | Dfg.Const _ | Dfg.Input _ | Dfg.Output _ -> acc)
                acc (Dfg.nodes v.dfg))
            acc variants)
        acc c.per_region)
    Op.Cap.empty apps

(* ------------------------------------------------------------------ *)
(* Nested exhaustive system DSE (Section V-A)                          *)
(* ------------------------------------------------------------------ *)

let system_dse ?(topologies = [ System.Crossbar ]) ~device ~model adg per_app =
  let usable = Device.usable device in
  let tile_res = Predict.predict_accel model adg in
  let best = ref None in
  List.iter
    (fun (sysp : System.t) ->
      let predicted =
        Res.add (Res.scale sysp.tiles tile_res) (Oracle.system_overhead sysp)
      in
      if Res.fits predicted ~within:usable then begin
        let sys = Sys_adg.make adg sysp in
        let obj = Perf.objective sys per_app in
        (* secondary objectives: prune resources-per-accelerator (and uncore
           overheads such as the NoC), but spend the freed budget on more
           tiles — the paper's DSE greedily consumes the FPGA for
           cross-workload generality even when bandwidth-bound *)
        let lut_frac =
          float_of_int (tile_res.Res.lut + (predicted.Res.lut / max 1 sysp.tiles))
          /. float_of_int (max 1 usable.Res.lut)
        in
        let score =
          obj
          *. (1.0 +. (0.02 *. (1.0 -. lut_frac)))
          *. (1.0 +. (0.004 *. float_of_int sysp.tiles))
        in
        match !best with
        | Some (bs, _, _, _) when bs >= score -> ()
        | _ -> best := Some (score, sysp, obj, predicted)
      end)
    (System.candidates ~topologies ());
  match !best with
  | Some (score, sysp, obj, predicted) -> Some (score, sysp, obj, predicted)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Scheduling with repair-first strategy                               *)
(* ------------------------------------------------------------------ *)

type sched_outcome = {
  per_app : Schedule.t list list;
  n_repaired : int;
  n_incremental : int;
  n_rescheduled : int;
}

let schedule_all ~additive sys apps prior =
  let n_repaired = ref 0
  and n_incremental = ref 0
  and n_rescheduled = ref 0 in
  let rec go acc apps prior =
    match (apps, prior) with
    | [], _ -> Some (List.rev acc)
    | app :: apps', prior_scheds :: prior' -> (
      match Spatial.reschedule sys app ~prior:prior_scheds with
      | Error _ -> None
      | Ok (s, outcome) ->
        let s =
          match outcome with
          | Spatial.Repaired when additive -> (
            (* capacity grew: see if a more aggressive variant now fits *)
            match Spatial.schedule_app sys app with
            | Ok s' ->
              incr n_rescheduled;
              let better =
                (Perf.app sys s').app_ipc >= (Perf.app sys s).app_ipc
              in
              if better then s' else s
            | Error _ -> s)
          | Spatial.Repaired | Spatial.Incremental | Spatial.Full -> s
        in
        (match outcome with
        | Spatial.Repaired -> incr n_repaired
        | Spatial.Incremental -> incr n_incremental
        | Spatial.Full -> incr n_rescheduled);
        go (s :: acc) apps' prior')
    | _ :: _, [] -> None
  in
  match go [] apps prior with
  | Some per_app ->
    Some
      {
        per_app;
        n_repaired = !n_repaired;
        n_incremental = !n_incremental;
        n_rescheduled = !n_rescheduled;
      }
  | None -> None

(* ------------------------------------------------------------------ *)
(* Fixed-design evaluation                                             *)
(* ------------------------------------------------------------------ *)

let evaluate ?(device = Device.default) ~model (sys : Sys_adg.t) apps =
  ignore device;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | app :: rest -> (
      match Spatial.schedule_app sys app with
      | Ok s -> go (s :: acc) rest
      | Error e -> Error e)
  in
  match go [] apps with
  | Error e -> Error e
  | Ok per_app ->
    Ok
      {
        sys;
        per_app;
        objective = Perf.objective sys per_app;
        predicted = Predict.predict_full model sys;
      }

(* ------------------------------------------------------------------ *)
(* The island-model annealer                                           *)
(* ------------------------------------------------------------------ *)

(* One independent annealing chain.  Mutable state is only ever touched by
   the island's own worker job between migration barriers; the driver reads
   and migrates at the barriers, after the pool's drain synchronizes. *)
type island = {
  idx : int;
  rng : Rng.t;
  iters : int;  (* this island's share of the total iteration budget *)
  mutable iter : int;  (* completed iterations *)
  mutable cur_score : float;
  mutable cur : design;
  mutable best_score : float;
  mutable best : design;
  mutable trace_rev : trace_point list;
  mutable modeled_s : float;
  mutable accepted : int;
  mutable invalid : int;
  mutable repaired : int;
  mutable incremental : int;
  mutable rescheduled : int;
}

(* An island's complete state is plain data plus one Rng word, so a
   snapshot taken at a migration barrier (when no worker owns the island)
   captures everything a bit-identical continuation needs. *)
let snap_island (isl : island) =
  {
    s_idx = isl.idx; s_rng = Rng.state isl.rng; s_iters = isl.iters;
    s_iter = isl.iter; s_cur_score = isl.cur_score; s_cur = isl.cur;
    s_best_score = isl.best_score; s_best = isl.best;
    s_trace_rev = isl.trace_rev; s_modeled_s = isl.modeled_s;
    s_accepted = isl.accepted; s_invalid = isl.invalid;
    s_repaired = isl.repaired; s_incremental = isl.incremental;
    s_rescheduled = isl.rescheduled;
  }

let restore_island s =
  {
    idx = s.s_idx; rng = Rng.of_state s.s_rng; iters = s.s_iters;
    iter = s.s_iter; cur_score = s.s_cur_score; cur = s.s_cur;
    best_score = s.s_best_score; best = s.s_best;
    trace_rev = s.s_trace_rev; modeled_s = s.s_modeled_s;
    accepted = s.s_accepted; invalid = s.s_invalid;
    repaired = s.s_repaired; incremental = s.s_incremental;
    rescheduled = s.s_rescheduled;
  }

(* One annealing iteration; draw-for-draw identical to the historical
   sequential explorer so a single island reproduces it bit for bit. *)
let step ~config ~device ~model ~caps apps isl =
  let accepted0 = isl.accepted and invalid0 = isl.invalid in
  let iter = isl.iter + 1 in
  let temp =
    config.initial_temp
    *. exp (-3.0 *. float_of_int iter /. float_of_int (max 1 isl.iters))
  in
  let cur = isl.cur in
  let usage = Mutate.usage_of (List.concat cur.per_app) in
  let preserve = config.mutation_policy = Schedule_preserving in
  let adg', desc =
    Mutate.propose isl.rng ~preserve ~caps_pool:caps cur.sys.Sys_adg.adg usage
  in
  let additive =
    String.length desc >= 3
    && (String.sub desc 0 3 = "add"
       || String.length desc >= 6 && String.sub desc 0 6 = "retune")
  in
  isl.modeled_s <- isl.modeled_s +. Time.iteration_overhead_s;
  (if Adg.node_count adg' > 400 then isl.invalid <- isl.invalid + 1
   else
     let sys' = Sys_adg.with_adg cur.sys adg' in
     match schedule_all ~additive sys' apps cur.per_app with
     | None -> isl.invalid <- isl.invalid + 1
     | Some outcome -> (
       isl.repaired <- isl.repaired + outcome.n_repaired;
       isl.incremental <- isl.incremental + outcome.n_incremental;
       isl.rescheduled <- isl.rescheduled + outcome.n_rescheduled;
       isl.modeled_s <-
         isl.modeled_s
         +. (Time.repair_per_app_s *. float_of_int outcome.n_repaired)
         +. (Time.incremental_per_app_s *. float_of_int outcome.n_incremental)
         +. (Time.reschedule_per_app_s *. float_of_int outcome.n_rescheduled);
       match
         system_dse ~topologies:config.topologies ~device ~model adg'
           outcome.per_app
       with
       | None -> isl.invalid <- isl.invalid + 1
       | Some (score', sysp', obj', pred') ->
         let accept =
           score' >= isl.cur_score
           ||
           let delta = (score' -. isl.cur_score) /. Float.max 1e-9 isl.cur_score in
           Rng.float isl.rng 1.0 < exp (delta /. Float.max 1e-6 temp)
         in
         if accept then begin
           isl.accepted <- isl.accepted + 1;
           let d =
             {
               sys = Sys_adg.make adg' sysp';
               per_app = outcome.per_app;
               objective = obj';
               predicted = pred';
             }
           in
           isl.cur_score <- score';
           isl.cur <- d;
           if score' > isl.best_score then begin
             isl.best_score <- score';
             isl.best <- d
           end
         end));
  isl.iter <- iter;
  if Obs.on () then begin
    Obs.incr (Lazy.force m_iterations);
    if isl.accepted > accepted0 then Obs.incr (Lazy.force m_moves_accepted);
    if isl.invalid > invalid0 then Obs.incr (Lazy.force m_moves_invalid)
  end;
  isl.trace_rev <-
    { island = isl.idx; iter; modeled_hours = isl.modeled_s /. 3600.0;
      est_ipc = isl.cur.objective }
    :: isl.trace_rev

let run_span ~config ~device ~model ~caps apps isl ~upto =
  Obs.Span.with_span "dse_island"
    ~attrs:
      [ ("island", string_of_int isl.idx); ("upto", string_of_int upto) ]
  @@ fun () ->
  while isl.iter < upto do
    step ~config ~device ~model ~caps apps isl
  done;
  if Obs.on () then Obs.set_gauge (island_gauge isl.idx) isl.cur.objective

let explore ?(config = default_config) ?(device = Device.default) ?checkpoint
    ?(resume = false) ?stop_after_rounds ~model apps =
  if config.islands < 1 then invalid_arg "Dse.explore: islands < 1";
  if config.migration_interval < 1 then
    invalid_arg "Dse.explore: migration_interval < 1";
  (match checkpoint with
  | Some cp when cp.interval < 1 ->
    invalid_arg "Dse.explore: checkpoint interval < 1"
  | _ -> ());
  (match stop_after_rounds with
  | Some k when k < 1 -> invalid_arg "Dse.explore: stop_after_rounds < 1"
  | _ -> ());
  if resume && checkpoint = None then
    invalid_arg "Dse.explore: resume requested without a checkpoint";
  let t_start = Unix.gettimeofday () in
  let caps = caps_pool apps in
  let signature = run_signature config apps in
  let pregen_s = Time.pregen_per_app_s *. float_of_int (List.length apps) in
  let n = config.islands in
  (* Total budget split across islands; earlier islands take the remainder,
     so islands=1 runs exactly [config.iterations]. *)
  let share i =
    (config.iterations / n) + (if i < config.iterations mod n then 1 else 0)
  in
  (* Seed designs of increasing size: the smallest mesh able to host every
     workload at some unrolling degree wins. *)
  let seed_candidates =
    let engines =
      [
        { (Comp.default_engine Comp.Dma) with indirect = true };
        { (Comp.default_engine Comp.Spad) with indirect = true };
        Comp.default_engine Comp.Rec;
        Comp.default_engine Comp.Gen;
        Comp.default_engine Comp.Reg;
      ]
    in
    [
      Builder.seed ~caps ~width_bits:64;
      Builder.mesh ~rows:3 ~cols:4 ~caps ~sw_width_bits:128 ~width_bits:64
        ~in_port_widths:[ 32; 32; 16; 16; 16; 8; 8; 8 ]
        ~out_port_widths:[ 32; 16; 16; 8; 8 ] ~engines;
      Builder.mesh ~rows:4 ~cols:6 ~caps ~sw_width_bits:256 ~width_bits:64
        ~in_port_widths:[ 64; 32; 32; 16; 16; 16; 8; 8; 8; 8 ]
        ~out_port_widths:[ 64; 32; 16; 16; 8; 8 ] ~engines;
      Builder.mesh ~rows:5 ~cols:8 ~caps ~sw_width_bits:256 ~width_bits:64
        ~in_port_widths:[ 64; 64; 32; 32; 16; 16; 16; 16; 8; 8; 8; 8 ]
        ~out_port_widths:[ 64; 32; 32; 16; 16; 8; 8; 8 ] ~engines;
    ]
  in
  let initial sys_adg =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | app :: rest -> (
        match Spatial.schedule_app sys_adg app with
        | Ok s -> go (s :: acc) rest
        | Error _ -> None)
    in
    go [] apps
  in
  (* Start from the largest seed that hosts the workloads and fits the
     device: the schedule-preserving prunes then shrink it with a reward at
     every step, which anneals far better than growing across the reward
     plateau between unroll levels. *)
  let fresh_islands () =
    let seed_adg, prior0 =
      let rec pick = function
        | [] -> failwith "Dse.explore: no seed design can host the workloads"
        | adg :: rest -> (
          match initial (Sys_adg.make adg System.default) with
          | Some p when system_dse ~topologies:config.topologies ~device ~model adg p <> None ->
            (adg, p)
          | Some _ | None -> pick rest)
      in
      pick (List.rev seed_candidates)
    in
    let score0, sysp0, obj0, pred0 =
      match system_dse ~topologies:config.topologies ~device ~model seed_adg prior0 with
      | Some r -> r
      | None -> failwith "Dse.explore: seed design does not fit the device"
    in
    let init_design =
      { sys = Sys_adg.make seed_adg sysp0; per_app = prior0; objective = obj0;
        predicted = pred0 }
    in
    List.mapi
      (fun i rng ->
        { idx = i; rng; iters = share i; iter = 0; cur_score = score0;
          cur = init_design; best_score = score0; best = init_design;
          trace_rev = []; modeled_s = pregen_s; accepted = 0; invalid = 0;
          repaired = 0; incremental = 0; rescheduled = 0 })
      (Rng.streams config.seed n)
  in
  (* Resume skips the seed-design selection entirely: the snapshot holds
     the complete barrier state of every island (including the Rng word),
     so the continuation is draw-for-draw the uninterrupted run. *)
  let islands, elites0 =
    if not resume then (fresh_islands (), [])
    else
      let cp = Option.get checkpoint in
      match Store.get cp.store ~ns:checkpoint_ns ~key:cp.key with
      | None -> failwith "Dse.explore: no checkpoint to resume from"
      | Some blob -> (
        match
          (Codec.decode_marshal ~schema:checkpoint_schema blob
            : (snapshot, string) Stdlib.result)
        with
        | Error e -> failwith ("Dse.explore: unreadable checkpoint: " ^ e)
        | Ok snap ->
          if snap.snap_sig <> signature then
            failwith
              "Dse.explore: checkpoint was written by a different \
               configuration or workload";
          (List.map restore_island snap.snap_islands, snap.snap_elites))
  in
  let pool =
    Pool.create
      (if n = 1 then Pool.Deterministic
       else Pool.Domains (min n (max 1 (Domain.recommended_domain_count ()))))
  in
  (* The shared elite pool: (score, design) pairs published at migration
     barriers, best first, capped.  Driver-owned, mutated only between
     rounds, so migration is deterministic regardless of worker timing. *)
  let elites = ref elites0 in
  let migrate () =
    List.iter
      (fun isl -> elites := (isl.best_score, isl.best) :: !elites)
      islands;
    elites :=
      List.filteri
        (fun i _ -> i < max 2 n)
        (List.stable_sort (fun (a, _) (b, _) -> compare b a) !elites);
    match !elites with
    | [] -> ()
    | (es, ed) :: _ ->
      List.iter
        (fun isl ->
          (* island 0 is the anchor chain: it never adopts migrants, so it
             replays the sequential explorer exactly and the parallel run's
             best can only dominate it *)
          if isl.idx > 0 && isl.cur_score < es then begin
            isl.cur_score <- es;
            isl.cur <- ed
          end)
        islands
  in
  (* Checkpoints are written by the driver at migration barriers only, when
     every worker has joined and no job owns any island, so a snapshot is a
     consistent cut of the whole run. *)
  let write_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some cp ->
      Obs.Span.with_span "dse_checkpoint" @@ fun () ->
      let snap =
        { snap_sig = signature;
          snap_islands = List.map snap_island islands;
          snap_elites = !elites }
      in
      Store.put cp.store ~ns:checkpoint_ns ~key:cp.key
        (Codec.encode_marshal ~schema:checkpoint_schema snap);
      if Obs.on () then Obs.incr (Lazy.force m_checkpoints)
  in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let rounds_done = ref 0 in
      let rec rounds () =
        match List.filter (fun isl -> isl.iter < isl.iters) islands with
        | [] -> ()
        | active ->
          ignore
            (Pool.map pool
               (fun isl ->
                 run_span ~config ~device ~model ~caps apps isl
                   ~upto:(min isl.iters (isl.iter + config.migration_interval));
                 isl.idx)
               active);
          if n > 1 then migrate ();
          incr rounds_done;
          (match checkpoint with
          | Some cp when !rounds_done mod cp.interval = 0 -> write_checkpoint ()
          | _ -> ());
          (match stop_after_rounds with
          | Some k when !rounds_done >= k -> ()
          | _ -> rounds ())
      in
      rounds ();
      (* One final snapshot at loop exit: a stopped run resumes from exactly
         where it halted, and resuming a completed run replays no work. *)
      write_checkpoint ());
  let best_isl =
    List.fold_left
      (fun acc isl -> if isl.best_score > acc.best_score then isl else acc)
      (List.hd islands) islands
  in
  (* Merge per-island traces once, after every worker has joined: stable
     sort on modeled time keeps a single island's trace untouched and makes
     the merged trace monotone in modeled_hours. *)
  let trace =
    List.stable_sort
      (fun (a : trace_point) (b : trace_point) ->
        compare a.modeled_hours b.modeled_hours)
      (List.concat_map (fun isl -> List.rev isl.trace_rev) islands)
  in
  let sum f = List.fold_left (fun acc isl -> acc + f isl) 0 islands in
  let modeled_s =
    List.fold_left (fun acc isl -> Float.max acc isl.modeled_s) 0.0 islands
  in
  {
    best = best_isl.best;
    trace;
    stats =
      {
        accepted = sum (fun i -> i.accepted);
        invalid = sum (fun i -> i.invalid);
        repaired = sum (fun i -> i.repaired);
        incremental = sum (fun i -> i.incremental);
        rescheduled = sum (fun i -> i.rescheduled);
      };
    wall_seconds = Unix.gettimeofday () -. t_start;
    modeled_hours = modeled_s /. 3600.0;
  }

let explore_kernels ?config ?device ?(tuned = false) ~model kernels =
  explore ?config ?device ~model (compile_apps ~tuned kernels)
