(** Deterministic, seeded fault injection.

    Subsystems mark their failure-prone operations with named {e fault
    points} ({!point}).  Disarmed — the default — a fault point costs one
    atomic load and a branch and never raises.  Armed with a {!config}, a
    visit to a fault point raises {!Injected} according to a plan that is a
    pure function of (seed, point name, per-point visit index): replaying
    a scenario with the same seed injects the same faults at the same
    visit indices no matter how worker domains interleave, which is what
    makes failure behaviour testable ([bench/main.exe fault],
    [overgen serve-bench --faults]).

    Faults come in two kinds mirroring the service's failure taxonomy:
    [Transient] faults model flaky infrastructure (worth retrying, never
    cached) and [Deterministic] faults model input-determined failures
    (cacheable, pointless to retry). *)

type kind = Transient | Deterministic

exception Injected of { point : string; kind : kind }

val kind_to_string : kind -> string

type config = {
  seed : int;  (** plan seed; same seed, same injections *)
  rate : float;  (** injection probability per fault-point visit, in [0,1] *)
  transient_fraction : float;
      (** fraction of injected faults that are [Transient], in [0,1] *)
  points : string list;  (** enabled point names; [[]] enables every point *)
}

val default_config : config
(** seed 1, rate 0.2, all faults transient, every point enabled. *)

(** The canonical fault-point names threaded through the pipeline. *)
module Points : sig
  val mdfg_compile : string  (** kernel → mDFG variant compilation *)

  val scheduler_schedule_app : string  (** spatial scheduling of an app *)

  val oracle_synth : string  (** FPGA synthesis oracle *)

  val cache_store : string  (** schedule-cache store of a computed outcome *)

  val service_process : string  (** per-request service processing *)

  val store_append : string
  (** artifact-store record append, visited before any byte is written *)

  val store_torn : string
  (** artifact-store write completion, visited after the record header is
      on disk: a [Transient] injection models a torn write (the payload is
      cut short), a [Deterministic] injection models bit rot (the full
      record lands with a flipped payload byte, so the checksum fails) *)

  val net_frame_corrupt : string
  (** network server frame decode, visited before a received frame is
      parsed: an injection makes the server treat the frame as corrupt —
      the connection is closed with a counted error, exactly as for a
      genuine CRC mismatch *)

  val net_conn_drop : string
  (** network server request handling, visited after a compile request is
      read but before any response is written: an injection drops the
      whole connection, modeling a client that must retry over a fresh
      connection *)

  val all : string list
end

val arm : config -> unit
(** Start injecting.  @raise Invalid_argument on a rate or fraction
    outside [0, 1]. *)

val disarm : unit -> unit
(** Stop injecting (the default state). *)

val armed : unit -> bool

val point : string -> unit
(** Visit a named fault point: no-op when disarmed, raises {!Injected}
    when the armed plan fires for this visit.  Thread-safe. *)

val would_inject : config -> string -> int -> kind option
(** The pure injection plan: what [point] does on the [n]-th visit (from
    0) of a point under [cfg].  Exposed so tests and drivers can predict
    and count injections without raising. *)

val is_transient : exn -> bool
(** [true] exactly for [Injected {kind = Transient; _}]. *)

val describe : exn -> string
(** Human-readable rendering; falls back to {!Printexc.to_string}. *)

val stats : unit -> (string * int * int) list
(** Per-point (name, visits, injections) since the last
    {!reset_stats}, sorted by name.  Counted only while armed. *)

val injected_total : unit -> int

val reset_stats : unit -> unit

val with_faults : config -> (unit -> 'a) -> 'a
(** [with_faults cfg f]: arm, reset stats, run [f], and disarm even if
    [f] raises. *)
