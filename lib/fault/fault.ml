module Rng = Overgen_util.Rng

type kind = Transient | Deterministic

exception Injected of { point : string; kind : kind }

let kind_to_string = function
  | Transient -> "transient"
  | Deterministic -> "deterministic"

type config = {
  seed : int;
  rate : float;
  transient_fraction : float;
  points : string list;
}

let default_config = { seed = 1; rate = 0.2; transient_fraction = 1.0; points = [] }

module Points = struct
  let mdfg_compile = "mdfg.compile"
  let scheduler_schedule_app = "scheduler.schedule_app"
  let oracle_synth = "oracle.synth"
  let cache_store = "cache.store"
  let service_process = "service.process"
  let store_append = "store.append"
  let store_torn = "store.torn_write"
  let net_frame_corrupt = "net.frame_corrupt"
  let net_conn_drop = "net.conn_drop"

  let all =
    [ mdfg_compile; scheduler_schedule_app; oracle_synth; cache_store;
      service_process; store_append; store_torn; net_frame_corrupt;
      net_conn_drop ]
end

(* Disarmed is the overwhelmingly common state: one atomic load and a
   branch per fault point, nothing else. *)
let state : config option Atomic.t = Atomic.make None

type counts = { mutable visits : int; mutable injected : int }

let m = Mutex.create ()
let table : (string, counts) Hashtbl.t = Hashtbl.create 8

let arm cfg =
  if cfg.rate < 0.0 || cfg.rate > 1.0 then
    invalid_arg "Fault.arm: rate outside [0, 1]";
  if cfg.transient_fraction < 0.0 || cfg.transient_fraction > 1.0 then
    invalid_arg "Fault.arm: transient_fraction outside [0, 1]";
  Atomic.set state (Some cfg)

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None

let reset_stats () =
  Mutex.lock m;
  Hashtbl.reset table;
  Mutex.unlock m

let stats () =
  Mutex.lock m;
  let l = Hashtbl.fold (fun p c acc -> (p, c.visits, c.injected) :: acc) table [] in
  Mutex.unlock m;
  List.sort compare l

let injected_total () =
  List.fold_left (fun acc (_, _, i) -> acc + i) 0 (stats ())

(* The whole plan is a pure function of (seed, point, occurrence index):
   replaying a scenario with the same seed injects the same faults at the
   same per-point visit indices, regardless of how worker domains
   interleave the visits. *)
let would_inject cfg point n =
  let r = Rng.of_string (Printf.sprintf "%d\x00%s\x00%d" cfg.seed point n) in
  if Rng.float r 1.0 >= cfg.rate then None
  else
    Some
      (if Rng.float r 1.0 < cfg.transient_fraction then Transient
       else Deterministic)

let point pt =
  match Atomic.get state with
  | None -> ()
  | Some cfg ->
    if cfg.points = [] || List.mem pt cfg.points then begin
      Mutex.lock m;
      let c =
        match Hashtbl.find_opt table pt with
        | Some c -> c
        | None ->
          let c = { visits = 0; injected = 0 } in
          Hashtbl.add table pt c;
          c
      in
      let n = c.visits in
      c.visits <- n + 1;
      let verdict = would_inject cfg pt n in
      (match verdict with
      | Some _ -> c.injected <- c.injected + 1
      | None -> ());
      Mutex.unlock m;
      match verdict with
      | Some kind -> raise (Injected { point = pt; kind })
      | None -> ()
    end

let is_transient = function
  | Injected { kind = Transient; _ } -> true
  | _ -> false

let describe = function
  | Injected { point; kind } ->
    Printf.sprintf "injected %s fault at %s" (kind_to_string kind) point
  | e -> Printexc.to_string e

let with_faults cfg f =
  arm cfg;
  reset_stats ();
  Fun.protect ~finally:disarm f
