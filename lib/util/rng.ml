type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: the standard mix of Steele, Lea and Flood. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let of_string s =
  (* FNV-1a over the bytes, then feed into SplitMix seeding. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  { state = mix64 !h }

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let state t = t.state
let of_state state = { state }

let streams seed n =
  if n < 1 then invalid_arg "Rng.streams: n < 1";
  (* Stream 0 is exactly [create seed] (the sequential stream); the others
     are split off a private master so stream 0's own draws are untouched.
     Explicit recursion: splits must happen in index order 1..n-1. *)
  let master = create seed in
  let rec rest i =
    if i >= n then []
    else
      let s = split master in
      s :: rest (i + 1)
  in
  create seed :: rest 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  mean +. (stddev *. draw ())

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let choose_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0.0 w) 0.0 weighted in
  if weighted = [] || total <= 0.0 then
    invalid_arg "Rng.choose_weighted: empty or zero-weight list";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: unreachable"
    | [ (_, x) ] -> x
    | (w, x) :: rest ->
      let acc = acc +. Float.max 0.0 w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 weighted

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
