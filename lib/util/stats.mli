(** Small numeric helpers used across the framework. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values; 0 for the empty list.
    @raise Invalid_argument if any value is <= 0. *)

val weighted_geomean : (float * float) list -> float
(** [weighted_geomean [(w, x); ...]] with positive weights and values; this is
    the paper's objective aggregation over per-workload IPC estimates. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val percentile : p:float -> float list -> float
(** [percentile ~p l] is the p-th percentile of [l] (linear interpolation
    between closest ranks); 0 for the empty list.
    @raise Invalid_argument unless [0 <= p <= 100]. *)

val percentiles : float array -> float list -> float list
(** [percentiles data ps] computes every percentile in [ps] of [data]
    with a single sort ([data] itself is not mutated); prefer this over
    repeated {!percentile} calls.  Each result is 0 for empty [data].
    @raise Invalid_argument unless every p satisfies [0 <= p <= 100]. *)

val clamp : lo:float -> hi:float -> float -> float
val clamp_int : lo:int -> hi:int -> int -> int

val round_up_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be >= 1). *)

val div_ceil : int -> int -> int
(** Integer division rounding up. *)
