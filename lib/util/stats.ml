let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.0
  | l ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0.0 l
    in
    exp (log_sum /. float_of_int (List.length l))

let weighted_geomean = function
  | [] -> 0.0
  | l ->
    let wsum = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 l in
    if wsum <= 0.0 then invalid_arg "Stats.weighted_geomean: zero total weight";
    let log_sum =
      List.fold_left
        (fun acc (w, x) ->
          if x <= 0.0 then invalid_arg "Stats.weighted_geomean: non-positive value";
          acc +. (w *. log x))
        0.0 l
    in
    exp (log_sum /. wsum)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) l) in
    sqrt var

let median = function
  | [] -> 0.0
  | l ->
    let sorted = List.sort compare l in
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

(* linear interpolation between closest ranks of a sorted array *)
let interpolate sorted p =
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let percentiles data ps =
  List.iter
    (fun p ->
      if p < 0.0 || p > 100.0 then
        invalid_arg "Stats.percentiles: p outside [0, 100]")
    ps;
  if Array.length data = 0 then List.map (fun _ -> 0.0) ps
  else begin
    let sorted = Array.copy data in
    Array.sort compare sorted;
    List.map (interpolate sorted) ps
  end

let percentile ~p = function
  | [] -> 0.0
  | l ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
    let sorted = Array.of_list l in
    Array.sort compare sorted;
    interpolate sorted p

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)
let clamp_int ~lo ~hi x = max lo (min hi x)

let round_up_pow2 n =
  if n < 1 then invalid_arg "Stats.round_up_pow2";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let div_ceil a b = (a + b - 1) / b
