(** Deterministic, splittable pseudo-random number generator.

    All stochastic components of the framework (the annealer, the synthesis
    oracle's variation, MLP weight initialization) draw from values of type
    {!t} seeded explicitly, so every experiment is reproducible.  The
    implementation is SplitMix64, which supports cheap independent substreams
    via {!split}. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the hash of [s]; used to derive a
    stable stream per experiment name. *)

val split : t -> t
(** [split t] returns a new generator statistically independent from the
    future output of [t].  [t] itself advances. *)

val state : t -> int64
(** The full internal state (SplitMix64 is a single 64-bit counter); with
    {!of_state} this checkpoints a stream mid-run. *)

val of_state : int64 -> t
(** Resurrect a generator from {!state}: the draw sequence continues
    exactly where the captured generator's would. *)

val streams : int -> int -> t list
(** [streams seed n] derives [n] independent generators for parallel
    workers.  Stream 0 is {e exactly} [create seed] — a single-stream run
    reproduces the sequential draw sequence bit for bit — and streams
    1..n-1 are {!split} off a private master in index order, so the list
    is deterministic in [seed] and [n].  @raise Invalid_argument if
    [n < 1]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** Choice proportional to the non-negative weights.  @raise Invalid_argument
    if the list is empty or all weights are zero. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)
