(** Multi-tenant admission in front of the compile service.

    Replaces direct enqueue into [Service]: requests are quota-checked,
    stamped with their tenant's deadline class, parked in a per-tenant
    {!Drr} weighted-fair queue, and pumped into the service's worker pool
    through a bounded in-flight window — so under contention the share of
    worker time each tenant receives converges to its weight, instead of
    first-come-first-served.

    {b Quota.}  A tenant with a token bucket is metered at submission
    against the injected clock: over-quota requests are answered
    immediately with [Error Service.Quota_exceeded] — a deterministic
    shed that never queues, never reaches a worker and is never retried —
    counted in [Telemetry.record_quota] and flight-recorded as
    ["quota_shed"].

    {b Batching.}  Consecutive same-overlay requests from the tenant
    holding the DRR round are dispatched as one [Service.submit_batch_k]
    group (bounded by [batch_max] {e and} the tenant's round credit, so
    batching cannot distort fairness), amortizing pool round-trips and
    registry/ADG-fingerprint resolution across the group.

    {b Exactly-one-response.}  Every {!submit_k} call invokes [k] exactly
    once: quota sheds answer inline, queued requests ride the service's
    per-request isolation, and a service-level admission error (queue
    full, shutdown) is synthesized into an error response rather than
    dropped. *)

module Service := Overgen_service.Service

type t

val create :
  ?inflight_limit:int ->
  ?batch_max:int ->
  ?clock:(unit -> float) ->
  ?tenants:Tenant.t list ->
  Service.t ->
  t
(** [inflight_limit] bounds requests handed to the service but not yet
    answered; default 1 under [Deterministic] (dispatch order = DRR
    order) and [2 * n] under [Workers n].  Keep it at or below the
    service's queue capacity — the pump treats service-side [Queue_full]
    as an error response, not backpressure.  [batch_max] (default 8)
    caps same-overlay batches; 1 disables batching.  [clock] (default
    [Unix.gettimeofday]) feeds the quota buckets — inject a fake for
    deterministic shed sets.  Unlisted tenants that appear in requests
    are auto-registered with weight 1, no quota, [Standard]. *)

val add_tenant : t -> Tenant.t -> unit
(** Idempotent on the id. *)

val tenants : t -> string list

val submit_k : t -> Service.request -> k:(Service.response -> unit) -> unit
(** Admit (or quota-shed) one request; [k] fires exactly once.  Under a
    [Workers] service [k] runs on a worker domain; under [Deterministic]
    everything — including [k] — runs inline before this returns. *)

val hold : t -> unit
(** Park admitted requests in the weighted-fair queue without dispatching
    — quota sheds still answer inline.  Lets a caller build a backlog and
    then observe pure DRR order on {!release}; {!drain} while held (with
    work queued) blocks until someone releases. *)

val release : t -> unit
(** Resume dispatch and pump the backlog. *)

val drain : t -> unit
(** Block until the weighted-fair queue is empty and nothing is in
    flight. *)

val run : t -> Service.request list -> Service.response list
(** Submit a whole trace through {!submit_k} and {!drain}, returning
    exactly one response per request sorted by id — the tenant-aware
    analogue of [Service.run]. *)

val service : t -> Service.t

val on_complete : t -> (Service.response -> unit) -> unit
(** Register an observer called after each completion (on the completing
    thread) — how {!Manager} watches live traffic. *)

type stats = {
  admitted : int;          (** passed the quota gate and were queued *)
  quota_shed : int;        (** answered [Quota_exceeded] at the gate *)
  batches : int;           (** multi-request dispatch groups *)
  batched_requests : int;  (** requests that rode those groups *)
  max_batch : int;
  queued : int;            (** currently parked in the DRR queue *)
  inflight : int;
}

val stats : t -> stats
