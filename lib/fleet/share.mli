(** Achieved-share analysis of a completion order: did each tenant's
    fraction of service match its weight while everyone was backlogged?

    The measurement window is the longest prefix of the completion order
    in which every weighted tenant still has work outstanding — it ends
    when the first tenant receives its final completion.  Outside that
    window weights make no prediction (an empty queue donates its slots),
    so totals beyond it are reported but not judged. *)

type report = {
  tenant : string;
  weight : int;
  served : int;      (** completions inside the backlogged prefix *)
  total : int;       (** completions overall *)
  share : float;     (** served / prefix length *)
  expected : float;  (** weight / sum of weights *)
  rel_err : float;   (** |share - expected| / expected *)
}

val measure : weights:(string * int) list -> string list -> report list
(** [measure ~weights order] analyzes [order], the tenant ids of each
    completion in completion order.  Tenants with no completions (for
    example, fully quota-shed) are excluded — they had no backlog to be
    fair to.  Returns one report per participating tenant, in [weights]
    order. *)

val max_rel_err : report list -> float
(** Worst relative error across the reports; 0.0 for []. *)

val report_lines : report list -> string list
(** One human-readable line per report. *)
