(** Deficit round-robin: the weighted-fair queue in front of the worker
    pool.

    Per-tenant FIFOs with unit cost per request.  Backlogged tenants are
    served [weight] requests per ring round, so over any backlogged
    interval tenant [i]'s share of dequeues converges to
    [weight_i / sum weights] with error bounded by one round — and a
    weight-1 tenant can never be starved by a saturating heavyweight:
    every round serves it at least once.  Work-conserving: {!dequeue}
    returns an item whenever {!length} is positive.

    Not thread-safe; [Admission] owns the lock. *)

type 'a t

val create : unit -> 'a t

val add_tenant : 'a t -> id:string -> weight:int -> unit
(** Idempotent for an identical weight.
    @raise Invalid_argument on weight < 1 or a conflicting
    re-registration. *)

val tenants : 'a t -> (string * int) list
(** Registered (id, weight), sorted by id. *)

val enqueue : 'a t -> id:string -> 'a -> unit
(** Append to the tenant's FIFO.  Unbounded — admission quotas and the
    service queue bound memory, not this structure.
    @raise Invalid_argument on an unregistered tenant. *)

val length : 'a t -> int
(** Total queued items across tenants. *)

val tenant_length : 'a t -> id:string -> int

val dequeue : 'a t -> (string * 'a) option
(** The next item under DRR order, with the tenant that owned it. *)

val dequeue_batch : 'a t -> max:int -> same:('a -> 'a -> bool) -> 'a list
(** Like {!dequeue}, but serves up to [max] {e consecutive} items from
    the selected tenant's FIFO while [same first item] holds and the
    tenant's deficit lasts — the same-overlay batching hook: one dequeue
    round yields a group of requests sharing an ADG fingerprint, and the
    deficit bound keeps batching from distorting fairness (a batch never
    exceeds the credit a round would have granted anyway).  Empty only
    when the queue is empty.
    @raise Invalid_argument if [max < 1]. *)
