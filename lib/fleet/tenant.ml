type deadline_class = Interactive | Standard | Batch
type quota = { rate_per_s : float; burst : int }

type t = {
  id : string;
  weight : int;
  quota : quota option;
  deadline_class : deadline_class;
}

let make ?(weight = 1) ?quota ?(deadline_class = Standard) id =
  if id = "" then invalid_arg "Tenant.make: empty id";
  if weight < 1 then invalid_arg "Tenant.make: weight < 1";
  (match quota with
  | Some q when q.rate_per_s < 0.0 || q.burst < 0 ->
    invalid_arg "Tenant.make: negative quota"
  | _ -> ());
  { id; weight; quota; deadline_class }

let class_to_string = function
  | Interactive -> "interactive"
  | Standard -> "standard"
  | Batch -> "batch"

let class_of_string = function
  | "interactive" -> Some Interactive
  | "standard" -> Some Standard
  | "batch" -> Some Batch
  | _ -> None

(* Deadline classes anchor on the service policy's deadline rather than
   carrying absolute budgets of their own, so one knob (the policy)
   retunes the whole ladder: Interactive gets exactly the policy budget,
   Standard twice it, Batch runs unbounded.  With no policy deadline the
   ladder is inert — every class maps to None, matching the policy
   default's behaviour. *)
let deadline_s ~policy_deadline_s t =
  match (t.deadline_class, policy_deadline_s) with
  | _, None -> None
  | Interactive, Some d -> Some d
  | Standard, Some d -> Some (2.0 *. d)
  | Batch, Some _ -> None

let to_string t =
  Printf.sprintf "%s:%d:%s%s" t.id t.weight
    (class_to_string t.deadline_class)
    (match t.quota with
    | None -> ""
    | Some q -> Printf.sprintf ":%d@%g" q.burst q.rate_per_s)

(* One tenant: NAME:WEIGHT[:CLASS][:BURST@RATE], fields after the weight
   in either order.  "a:10", "b:3:interactive", "c:1:batch:5@0.5". *)
let parse_one s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty tenant spec"
  | name :: rest -> (
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok (weight, quota, cls) -> (
        match int_of_string_opt field with
        | Some w when w >= 1 -> Ok (Some w, quota, cls)
        | Some _ -> Error (Printf.sprintf "tenant %s: weight < 1" name)
        | None -> (
          match class_of_string field with
          | Some c -> Ok (weight, quota, Some c)
          | None -> (
            match String.index_opt field '@' with
            | Some i -> (
              let burst = String.sub field 0 i in
              let rate =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              match (int_of_string_opt burst, float_of_string_opt rate) with
              | Some b, Some r when b >= 0 && r >= 0.0 ->
                Ok (weight, Some { rate_per_s = r; burst = b }, cls)
              | _ ->
                Error
                  (Printf.sprintf "tenant %s: bad quota %S (want BURST@RATE)"
                     name field))
            | None ->
              Error
                (Printf.sprintf "tenant %s: unrecognized field %S" name field)
          )))
    in
    match List.fold_left parse_field (Ok (None, None, None)) rest with
    | Error _ as e -> e
    | Ok (weight, quota, cls) ->
      if name = "" then Error "empty tenant name"
      else
        Ok
          (make name
             ~weight:(Option.value ~default:1 weight)
             ?quota
             ~deadline_class:(Option.value ~default:Standard cls)))

let parse spec =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match parse_one s with
      | Error _ as e -> e
      | Ok t ->
        if List.exists (fun u -> u.id = t.id) acc then
          Error (Printf.sprintf "duplicate tenant %s" t.id)
        else go (t :: acc) rest)
  in
  match String.split_on_char ',' spec with
  | [ "" ] -> Ok []
  | parts -> go [] parts
