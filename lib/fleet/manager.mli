(** The fleet manager: supervision of the overlay registry as a
    continuous generate→compile loop.

    Watches live completions (via {!attach} or {!observe}) to maintain a
    fleet view — per-overlay request and hit counts, last use and the
    synthesized resource profile — and acts on it in two directions:

    - {e retire}: {!scan} unregisters overlays idle past the threshold,
      purges every schedule-cache record keyed by their (now
      unreachable) ADG fingerprint from memory and the durable log, and
      compacts the store — cold overlays stop costing registry space,
      cache capacity and disk, and the purge-before-compact order
      guarantees gc never strands orphaned cache records;
    - {e promote}: once enough traffic accumulated, {!maybe_promote}
      runs a checkpointed background [Dse.explore] for the hottest
      {e under-served} kernels (miss-weighted: demand the cache already
      absorbs does not trigger regeneration) and atomically registers
      the winner under a fresh [fleet-N] name.

    Both transitions are flight-recorded as pinned ["retire"] /
    ["promote"] events and counted on the fleet metrics registry
    ([overgen_fleet_overlays], [overgen_fleet_retired_total],
    [overgen_fleet_promoted_total], [overgen_fleet_observed_requests]). *)

module Service := Overgen_service.Service
module Registry := Overgen_service.Registry
module Cache := Overgen_service.Cache

type config = {
  retire_idle_s : float;   (** idle threshold for {!scan}; 3600 *)
  protected : string list; (** names {!retire} refuses (e.g. "general") *)
  promote_min_requests : int;
      (** completions observed before {!maybe_promote} fires; 200 *)
  dse_iterations : int;    (** background exploration budget; 400 *)
  dse_top_kernels : int;   (** workload-mix size per exploration; 4 *)
  dse_seed : int;
      (** base seed; promote [n] explores with [dse_seed + n], so the
          whole fleet evolution is reproducible *)
  gc_on_retire : bool;     (** compact the store after each retire; true *)
}

val default_config : config

type view = {
  name : string;
  fingerprint : string;
  requests : int;  (** completions observed for this overlay *)
  hits : int;
  hit_rate : float;
  idle_s : float;  (** since the last observed completion *)
  res : Overgen_fpga.Res.t;
  freq_mhz : float;
}

type t

val create :
  ?config:config ->
  ?cache:Cache.t ->
  ?store:Overgen_store.Store.t ->
  ?clock:(unit -> float) ->
  model:Overgen_mlp.Predict.t ->
  Registry.t ->
  t
(** [cache]/[store] enable the retire path's purge and gc (pass the same
    instances the service uses); [clock] (default [Unix.gettimeofday])
    drives idle ages — inject a fake for deterministic retire tests;
    [model] feeds the background DSE and the promoted overlays. *)

val observe : t -> Service.response -> unit
(** Feed one completion into the fleet view. *)

val attach : t -> Admission.t -> unit
(** Subscribe {!observe} to an admission layer's completions. *)

val views : t -> view list
(** Current fleet view, registry registration order. *)

val metrics : t -> Overgen_obs.Metrics.registry
(** The fleet gauge/counter registry, for Prometheus scrapes. *)

val retire : t -> string -> (int, string) result
(** Retire one overlay by name: unregister (delete-through to the
    registry's store), purge its fingerprint's schedule-cache records
    {e unless} another registered name aliases the same design, then
    compact the store if configured.  Returns the number of cache
    records purged.  Errors on protected or unknown names. *)

val scan : t -> string list
(** One retire pass over every registered overlay; returns the names
    retired. *)

val promote_now :
  t -> kernels:Overgen_workload.Ir.kernel list -> name:string ->
  (Registry.entry, string) result
(** Run the checkpointed background DSE for an explicit workload mix and
    register the winner — the deterministic entry point the tests and
    bench drive directly. *)

val maybe_promote : t -> Registry.entry option
(** The trigger: if at least [promote_min_requests] completions
    accumulated since the last promote and some kernel demand was seen,
    explore for the top under-served kernels and promote as [fleet-N].
    Resets the observation window on success. *)

val hot_kernels : t -> Overgen_workload.Ir.kernel list
(** The current top under-served mix (miss count, then volume). *)

val promotes : t -> int
val retires : t -> int

val start : t -> period_s:float -> unit
(** Spawn the background supervision thread: every [period_s], one
    {!scan} then one {!maybe_promote}.  Idempotent while running. *)

val stop : t -> unit
(** Signal and join the background thread.  Idempotent. *)
