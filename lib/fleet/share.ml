(* Achieved-share analysis of a completion order.

   Fairness is only observable while every tenant still has work queued:
   once a tenant's backlog empties, the scheduler rightly hands its slots
   to the others and raw totals stop reflecting weights.  So the measure
   is taken over the longest prefix in which all tenants remain
   backlogged — the prefix ends exactly when the first tenant receives
   its last completion — and within it tenant [i]'s fraction of
   completions is compared to [weight_i / sum weights].  Under pure DRR
   order the relative error is bounded by one ring round over the prefix
   length. *)

type report = {
  tenant : string;
  weight : int;
  served : int;     (* completions inside the backlogged prefix *)
  total : int;      (* completions overall *)
  share : float;
  expected : float;
  rel_err : float;
}

let measure ~weights order =
  let weights = List.filter (fun (_, w) -> w > 0) weights in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun id ->
      Hashtbl.replace totals id (1 + Option.value ~default:0 (Hashtbl.find_opt totals id)))
    order;
  (* only tenants that actually completed work participate: a tenant shed
     entirely at the quota gate has no backlog to be fair to *)
  let weights = List.filter (fun (id, _) -> Hashtbl.mem totals id) weights in
  let wsum = float_of_int (List.fold_left (fun a (_, w) -> a + w) 0 weights) in
  if weights = [] || wsum = 0.0 then []
  else begin
    let remaining = Hashtbl.copy totals in
    let in_prefix = Hashtbl.create 8 in
    let prefix_len = ref 0 in
    (try
       List.iter
         (fun id ->
           incr prefix_len;
           Hashtbl.replace in_prefix id
             (1 + Option.value ~default:0 (Hashtbl.find_opt in_prefix id));
           let left = Option.value ~default:0 (Hashtbl.find_opt remaining id) - 1 in
           Hashtbl.replace remaining id left;
           if left = 0 && List.mem_assoc id weights then raise Exit)
         order
     with Exit -> ());
    let n = float_of_int !prefix_len in
    List.map
      (fun (tenant, weight) ->
        let served = Option.value ~default:0 (Hashtbl.find_opt in_prefix tenant) in
        let total = Option.value ~default:0 (Hashtbl.find_opt totals tenant) in
        let share = if n = 0.0 then 0.0 else float_of_int served /. n in
        let expected = float_of_int weight /. wsum in
        let rel_err = Float.abs (share -. expected) /. expected in
        { tenant; weight; served; total; share; expected; rel_err })
      weights
  end

let max_rel_err reports =
  List.fold_left (fun acc r -> Float.max acc r.rel_err) 0.0 reports

let report_lines reports =
  List.map
    (fun r ->
      Printf.sprintf
        "%-12s weight %2d  share %5.1f%% (expected %5.1f%%, err %4.1f%%)  %d/%d in backlogged prefix"
        r.tenant r.weight (100.0 *. r.share) (100.0 *. r.expected)
        (100.0 *. r.rel_err) r.served r.total)
    reports
