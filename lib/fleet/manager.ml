module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Store = Overgen_store.Store
module Dse = Overgen_dse.Dse
module Oracle = Overgen_fpga.Oracle
module Predict = Overgen_mlp.Predict
module Ir = Overgen_workload.Ir
module Metrics = Overgen_obs.Metrics
module Log = Overgen_obs.Obs.Log

(* Per-overlay live stats, fed by completions. *)
type ostat = {
  mutable requests : int;
  mutable hits : int;
  mutable last_use : float;
}

(* Per-kernel demand, the workload mix the background DSE optimizes for.
   [missed] counts completions that actually ran the scheduler (or
   failed) — traffic the current fleet serves well from cache does not
   pull a new overlay into existence. *)
type kstat = { kernel : Ir.kernel; mutable count : int; mutable missed : int }

type config = {
  retire_idle_s : float;
  protected : string list;
  promote_min_requests : int;
  dse_iterations : int;
  dse_top_kernels : int;
  dse_seed : int;
  gc_on_retire : bool;
}

let default_config =
  {
    retire_idle_s = 3600.0;
    protected = [];
    promote_min_requests = 200;
    dse_iterations = 400;
    dse_top_kernels = 4;
    dse_seed = 11;
    gc_on_retire = true;
  }

type view = {
  name : string;
  fingerprint : string;
  requests : int;
  hits : int;
  hit_rate : float;
  idle_s : float;
  res : Overgen_fpga.Res.t;  (** synthesized resource profile *)
  freq_mhz : float;
}

type t = {
  registry : Registry.t;
  cache : Cache.t option;
  store : Store.t option;
  model : Predict.t;
  clock : unit -> float;
  cfg : config;
  started : float;
  m : Mutex.t;
  overlays : (string, ostat) Hashtbl.t;
  kernels : (string, kstat) Hashtbl.t;
  mutable observed : int;  (* completions since the last promote *)
  mutable promotes : int;
  mutable retires : int;
  mutable thread : Thread.t option;
  mutable stop_flag : bool;
  (* fleet gauges/counters on their own registry so any metrics scrape
     can pick them up alongside the service telemetry *)
  reg : Metrics.registry;
  g_overlays : Metrics.gauge;
  c_retired : Metrics.counter;
  c_promoted : Metrics.counter;
  g_observed : Metrics.gauge;
}

let create ?(config = default_config) ?cache ?store ?clock ~model registry =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let reg = Metrics.create_registry ~label:"overlay fleet" () in
  let t =
    {
      registry;
      cache;
      store;
      model;
      clock;
      cfg = config;
      started = clock ();
      m = Mutex.create ();
      overlays = Hashtbl.create 8;
      kernels = Hashtbl.create 16;
      observed = 0;
      promotes = 0;
      retires = 0;
      thread = None;
      stop_flag = false;
      reg;
      g_overlays =
        Metrics.gauge reg "overgen_fleet_overlays"
          ~help:"overlays currently registered";
      c_retired =
        Metrics.counter reg "overgen_fleet_retired_total"
          ~help:"overlays retired by the fleet manager";
      c_promoted =
        Metrics.counter reg "overgen_fleet_promoted_total"
          ~help:"overlays promoted by background DSE";
      g_observed =
        Metrics.gauge reg "overgen_fleet_observed_requests"
          ~help:"completions observed since the last promote";
    }
  in
  Metrics.set t.g_overlays (float_of_int (Registry.length registry));
  t

let metrics t = t.reg

let observe t (resp : Service.response) =
  Mutex.lock t.m;
  let name = resp.Service.request.Service.overlay in
  let os =
    match Hashtbl.find_opt t.overlays name with
    | Some os -> os
    | None ->
      let os = { requests = 0; hits = 0; last_use = 0.0 } in
      Hashtbl.add t.overlays name os;
      os
  in
  os.requests <- os.requests + 1;
  if resp.Service.cache_hit then os.hits <- os.hits + 1;
  os.last_use <- t.clock ();
  (match resp.Service.request.Service.payload with
  | Service.Kernel k ->
    let ks =
      match Hashtbl.find_opt t.kernels k.Ir.name with
      | Some ks -> ks
      | None ->
        let ks = { kernel = k; count = 0; missed = 0 } in
        Hashtbl.add t.kernels k.Ir.name ks;
        ks
    in
    ks.count <- ks.count + 1;
    if not resp.Service.cache_hit then ks.missed <- ks.missed + 1
  | Service.Source _ -> ());
  t.observed <- t.observed + 1;
  Metrics.set t.g_observed (float_of_int t.observed);
  Mutex.unlock t.m

let attach t admission = Admission.on_complete admission (observe t)

let views t =
  let names = Registry.names t.registry in
  let now = t.clock () in
  Mutex.lock t.m;
  let vs =
    List.filter_map
      (fun name ->
        match Registry.find t.registry name with
        | None -> None
        | Some entry ->
          let requests, hits, last_use =
            match Hashtbl.find_opt t.overlays name with
            | Some os -> (os.requests, os.hits, os.last_use)
            | None -> (0, 0, t.started)
          in
          Some
            {
              name;
              fingerprint = entry.Registry.fingerprint;
              requests;
              hits;
              hit_rate =
                (if requests = 0 then 0.0
                 else float_of_int hits /. float_of_int requests);
              idle_s = Float.max 0.0 (now -. last_use);
              res = entry.Registry.overlay.Overgen.synth.Oracle.res;
              freq_mhz = entry.Registry.overlay.Overgen.synth.Oracle.freq_mhz;
            })
      names
  in
  Mutex.unlock t.m;
  vs

let short fp = String.sub fp 0 (min 12 (String.length fp))

(* Retire: unregister, and — when no surviving name aliases the same
   design — purge every schedule-cache record keyed by its fingerprint
   from memory and the durable log, then compact the store ("store gc")
   so the bytes are actually reclaimed.  The purge-before-compact order
   is the orphan guard: compacting first would faithfully carry the
   now-unreachable records into the fresh log forever. *)
let retire t name =
  if List.mem name t.cfg.protected then
    Error (Printf.sprintf "overlay %S is protected" name)
  else
    match Registry.remove t.registry name with
    | Error e -> Error e
    | Ok entry ->
      let fingerprint = entry.Registry.fingerprint in
      let shared = Registry.find_fingerprint t.registry fingerprint <> [] in
      let purged =
        if shared then 0
        else
          match (t.cache, t.store) with
          | Some c, _ -> Cache.purge_fingerprint c ~fingerprint
          | None, Some s -> Cache.purge_fingerprint_store s ~fingerprint
          | None, None -> 0
      in
      if t.cfg.gc_on_retire then
        Option.iter (fun s -> Store.compact s) t.store;
      Mutex.lock t.m;
      t.retires <- t.retires + 1;
      Hashtbl.remove t.overlays name;
      Mutex.unlock t.m;
      Metrics.incr t.c_retired;
      Metrics.set t.g_overlays (float_of_int (Registry.length t.registry));
      Log.record ~pin:true Log.default "retire"
        ~attrs:
          [
            ("overlay", name);
            ("fingerprint", short fingerprint);
            ("purged", string_of_int purged);
            ("shared", string_of_bool shared);
          ];
      Ok purged

(* One retire pass: anything idle past the threshold goes.  Overlays the
   manager has never seen serve a request age from the manager's start
   time. *)
let scan t =
  let now = t.clock () in
  let cold =
    List.filter
      (fun name ->
        not (List.mem name t.cfg.protected)
        &&
        let last =
          Mutex.lock t.m;
          let l =
            match Hashtbl.find_opt t.overlays name with
            | Some os -> os.last_use
            | None -> t.started
          in
          Mutex.unlock t.m;
          l
        in
        now -. last > t.cfg.retire_idle_s)
      (Registry.names t.registry)
  in
  List.filter_map (fun name -> Result.to_option (retire t name) |> Option.map (fun _ -> name)) cold

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* The background-DSE trigger: once enough completions accumulated,
   explore for the hottest under-served kernels (miss-weighted — cache
   hits are already served well) and atomically promote the winner under
   a fresh fleet-N name.  The run checkpoints into the durable store, so
   a killed process resumes its exploration instead of restarting it. *)
let promote_now t ~kernels ~name =
  match kernels with
  | [] -> Error "no kernels to explore for"
  | kernels -> (
    let apps = Dse.compile_apps ~tuned:false kernels in
    let config =
      {
        Dse.default_config with
        iterations = t.cfg.dse_iterations;
        seed = t.cfg.dse_seed + t.promotes;
      }
    in
    let checkpoint =
      Option.map
        (fun s -> { Dse.store = s; key = "fleet-dse-" ^ name; interval = 1 })
        t.store
    in
    let result = Dse.explore ~config ?checkpoint ~model:t.model apps in
    let synth = Oracle.synth_full result.Dse.best.Dse.sys in
    let overlay =
      { Overgen.design = result.Dse.best; synth; model = t.model; dse = Some result }
    in
    match Registry.register t.registry ~name overlay with
    | Error e -> Error e
    | Ok entry ->
      Mutex.lock t.m;
      t.promotes <- t.promotes + 1;
      t.observed <- 0;
      Hashtbl.reset t.kernels;
      Mutex.unlock t.m;
      Metrics.incr t.c_promoted;
      Metrics.set t.g_observed 0.0;
      Metrics.set t.g_overlays (float_of_int (Registry.length t.registry));
      Log.record ~pin:true Log.default "promote"
        ~attrs:
          [
            ("overlay", name);
            ("fingerprint", short entry.Registry.fingerprint);
            ("objective", Printf.sprintf "%.4f" result.Dse.best.Dse.objective);
            ("kernels",
             String.concat "," (List.map (fun k -> k.Ir.name) kernels));
          ];
      Ok entry)

let hot_kernels t =
  Mutex.lock t.m;
  let ks = Hashtbl.fold (fun _ ks acc -> ks :: acc) t.kernels [] in
  Mutex.unlock t.m;
  ks
  |> List.sort (fun a b ->
         compare (b.missed, b.count, a.kernel.Ir.name)
           (a.missed, a.count, b.kernel.Ir.name))
  |> take t.cfg.dse_top_kernels
  |> List.map (fun ks -> ks.kernel)

let maybe_promote t =
  let ready =
    Mutex.lock t.m;
    let r = t.observed >= t.cfg.promote_min_requests in
    Mutex.unlock t.m;
    r
  in
  if not ready then None
  else
    match hot_kernels t with
    | [] -> None
    | kernels -> (
      let name = Printf.sprintf "fleet-%d" (t.promotes + 1) in
      match promote_now t ~kernels ~name with
      | Ok entry -> Some entry
      | Error e ->
        Log.record ~level:Log.Warn Log.default "promote_failed"
          ~attrs:[ ("overlay", name); ("error", e) ];
        None)

let promotes t =
  Mutex.lock t.m;
  let n = t.promotes in
  Mutex.unlock t.m;
  n

let retires t =
  Mutex.lock t.m;
  let n = t.retires in
  Mutex.unlock t.m;
  n

(* The continuous loop the production deployment runs: a plain thread
   (DSE itself fans out onto domains) alternating retire scans and the
   promote trigger. *)
let start t ~period_s =
  Mutex.lock t.m;
  let already = t.thread <> None in
  if not already then t.stop_flag <- false;
  Mutex.unlock t.m;
  if not already then
    let th =
      Thread.create
        (fun () ->
          let stopped () =
            Mutex.lock t.m;
            let s = t.stop_flag in
            Mutex.unlock t.m;
            s
          in
          while not (stopped ()) do
            ignore (scan t);
            ignore (maybe_promote t);
            (* sleep in slices so [stop] is prompt *)
            let slices = max 1 (int_of_float (period_s /. 0.01)) in
            let rec nap i =
              if i > 0 && not (stopped ()) then begin
                Thread.delay (Float.min period_s 0.01);
                nap (i - 1)
              end
            in
            nap slices
          done)
        ()
    in
    Mutex.lock t.m;
    t.thread <- Some th;
    Mutex.unlock t.m

let stop t =
  Mutex.lock t.m;
  t.stop_flag <- true;
  let th = t.thread in
  t.thread <- None;
  Mutex.unlock t.m;
  Option.iter Thread.join th
