(** The tenant model: who is asking, how much of the service they own,
    and what latency contract they bought.

    A tenant is a service-level identity — many users map onto one tenant
    — with three QoS levers: a {e weight} (the deficit-round-robin share
    {!Drr} enforces under contention), an optional token-bucket {e quota}
    (a hard rate cap: over-quota requests are shed deterministically with
    [Service.Quota_exceeded], never queued, never retried), and a
    {e deadline class} mapped onto the service policy's deadline. *)

type deadline_class =
  | Interactive  (** exactly the policy deadline *)
  | Standard     (** twice the policy deadline *)
  | Batch        (** no deadline: throughput traffic never deadline-sheds *)

type quota = {
  rate_per_s : float;  (** sustained admissions per second *)
  burst : int;         (** bucket capacity: admissions ahead of the rate *)
}

type t = {
  id : string;
  weight : int;  (** relative share under contention; >= 1 *)
  quota : quota option;  (** [None]: unmetered *)
  deadline_class : deadline_class;
}

val make :
  ?weight:int -> ?quota:quota -> ?deadline_class:deadline_class -> string -> t
(** Defaults: weight 1, no quota, [Standard].
    @raise Invalid_argument on an empty id, weight < 1 or negative quota. *)

val deadline_s : policy_deadline_s:float option -> t -> float option
(** The per-request deadline this tenant's class implies, anchored on the
    service policy's deadline ([Service.policy.deadline_s]).  [None] when
    the policy has no deadline (the ladder is inert) or the class is
    [Batch]. *)

val class_to_string : deadline_class -> string
val class_of_string : string -> deadline_class option

val parse : string -> (t list, string) result
(** Parse a CLI fleet spec: comma-separated
    [NAME:WEIGHT[:CLASS][:BURST@RATE]] with the post-weight fields in
    either order — e.g. ["gold:10,silver:3:interactive,free:1:batch:5@0.5"].
    [""] is the empty fleet.  Errors on duplicate names and malformed
    fields. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)
