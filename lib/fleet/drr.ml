(* Deficit round-robin over per-tenant FIFOs, unit cost per request.

   Classic DRR specialized to cost 1: each tenant carries a deficit
   counter and a FIFO; active (non-empty) tenants sit in a ring.  When a
   tenant reaches the head of the ring with no deficit it is replenished
   by its weight in place, then serves until the deficit runs out or its
   FIFO empties, then rotates to the back (deficit resets on empty, so
   credit never accumulates across idle periods).  Over any interval in
   which a set of tenants stays backlogged, tenant [i] receives exactly
   [weight_i] services per ring round — shares converge to
   [weight_i / sum weights] with error bounded by one round.

   Not thread-safe: {!Admission} serializes access under its own lock,
   and the property tests drive it single-threaded. *)

type 'a tenant_q = {
  id : string;
  weight : int;
  q : 'a Queue.t;
  mutable deficit : int;
  mutable active : bool;  (* in the ring *)
}

type 'a t = {
  tbl : (string, 'a tenant_q) Hashtbl.t;
  ring : string Queue.t;  (* active tenants, head = current *)
  mutable size : int;
}

let create () = { tbl = Hashtbl.create 8; ring = Queue.create (); size = 0 }

let add_tenant t ~id ~weight =
  if weight < 1 then invalid_arg "Drr.add_tenant: weight < 1";
  match Hashtbl.find_opt t.tbl id with
  | Some tq ->
    if tq.weight <> weight then
      invalid_arg
        (Printf.sprintf "Drr.add_tenant: %s re-registered with weight %d <> %d"
           id weight tq.weight)
  | None ->
    Hashtbl.add t.tbl id
      { id; weight; q = Queue.create (); deficit = 0; active = false }

let tenants t =
  Hashtbl.fold (fun id tq acc -> (id, tq.weight) :: acc) t.tbl []
  |> List.sort compare

let length t = t.size

let tenant_length t ~id =
  match Hashtbl.find_opt t.tbl id with
  | None -> 0
  | Some tq -> Queue.length tq.q

let enqueue t ~id x =
  match Hashtbl.find_opt t.tbl id with
  | None -> invalid_arg (Printf.sprintf "Drr.enqueue: unknown tenant %s" id)
  | Some tq ->
    Queue.push x tq.q;
    t.size <- t.size + 1;
    if not tq.active then begin
      (* (re)activation starts with no credit: rejoin at the back and
         earn the quantum on reaching the head *)
      tq.active <- true;
      tq.deficit <- 0;
      Queue.push id t.ring
    end

(* The head-of-ring tenant with a non-empty FIFO and deficit >= 1,
   replenishing in place when the head's credit ran out.  Every visited
   head either serves or leaves the ring, so this terminates within one
   ring pass. *)
let rec select t =
  if Queue.is_empty t.ring then None
  else begin
    let id = Queue.peek t.ring in
    let tq = Hashtbl.find t.tbl id in
    if Queue.is_empty tq.q then begin
      (* drained while rotated out of turn: deactivate *)
      ignore (Queue.pop t.ring);
      tq.active <- false;
      tq.deficit <- 0;
      select t
    end
    else begin
      if tq.deficit < 1 then tq.deficit <- tq.deficit + tq.weight;
      Some tq
    end
  end

(* After serving [tq] (still at the ring head): rotate or deactivate. *)
let settle t tq =
  if Queue.is_empty tq.q then begin
    ignore (Queue.pop t.ring);
    tq.active <- false;
    tq.deficit <- 0
  end
  else if tq.deficit = 0 then begin
    ignore (Queue.pop t.ring);
    Queue.push tq.id t.ring
  end

let serve t tq =
  let x = Queue.pop tq.q in
  t.size <- t.size - 1;
  tq.deficit <- tq.deficit - 1;
  x

let dequeue t =
  match select t with
  | None -> None
  | Some tq ->
    let x = serve t tq in
    settle t tq;
    Some (tq.id, x)

let dequeue_batch t ~max ~same =
  if max < 1 then invalid_arg "Drr.dequeue_batch: max < 1";
  match select t with
  | None -> []
  | Some tq ->
    let first = serve t tq in
    let rec grow acc n =
      if
        n >= max || tq.deficit < 1
        || Queue.is_empty tq.q
        || not (same first (Queue.peek tq.q))
      then List.rev acc
      else grow (serve t tq :: acc) (n + 1)
    in
    let batch = grow [ first ] 1 in
    settle t tq;
    batch
