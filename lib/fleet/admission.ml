module Service = Overgen_service.Service
module Telemetry = Overgen_service.Telemetry
module Log = Overgen_obs.Obs.Log

(* Token bucket, refilled lazily against the injected clock so quota
   verdicts are a pure function of (arrival times, quota) — the tests and
   the fleet bench drive a fake clock and get byte-stable shed sets. *)
type bucket = { mutable tokens : float; mutable last : float }

type tstate = {
  tenant : Tenant.t;
  bucket : bucket option;
  deadline : float option;  (* what the tenant's class maps the policy to *)
}

type pending = { preq : Service.request; pk : Service.response -> unit }

type t = {
  svc : Service.t;
  clock : unit -> float;
  batch_max : int;
  inflight_limit : int;
  tstates : (string, tstate) Hashtbl.t;
  q : pending Drr.t;
  m : Mutex.t;
  idle : Condition.t;
  mutable inflight : int;
  mutable pumping : bool;
  mutable held : bool;
  mutable admitted_ : int;
  mutable quota_shed_ : int;
  mutable batches_ : int;
  mutable batched_requests_ : int;
  mutable max_batch_ : int;
  mutable observers : (Service.response -> unit) list;
}

type stats = {
  admitted : int;
  quota_shed : int;
  batches : int;
  batched_requests : int;
  max_batch : int;
  queued : int;
  inflight : int;
}

let tstate_of_tenant t (tenant : Tenant.t) =
  {
    tenant;
    bucket =
      Option.map
        (fun (q : Tenant.quota) ->
          { tokens = float_of_int q.burst; last = t.clock () })
        tenant.quota;
    deadline =
      Tenant.deadline_s
        ~policy_deadline_s:(Service.policy t.svc).Service.deadline_s tenant;
  }

let add_tenant t tenant =
  Mutex.lock t.m;
  if not (Hashtbl.mem t.tstates tenant.Tenant.id) then begin
    Hashtbl.add t.tstates tenant.Tenant.id (tstate_of_tenant t tenant);
    Drr.add_tenant t.q ~id:tenant.Tenant.id ~weight:tenant.Tenant.weight
  end;
  Mutex.unlock t.m

let create ?inflight_limit ?(batch_max = 8) ?clock ?(tenants = []) svc =
  if batch_max < 1 then invalid_arg "Admission.create: batch_max < 1";
  let inflight_limit =
    match inflight_limit with
    | Some n ->
      if n < 1 then invalid_arg "Admission.create: inflight_limit < 1";
      n
    | None -> (
      (* Deterministic mode processes inline, so a window of 1 keeps the
         dispatch order exactly the DRR order; a domain pool wants enough
         outstanding work to keep every domain busy while the next batch
         queues. *)
      match Service.mode svc with
      | Service.Deterministic -> 1
      | Service.Workers n -> 2 * n)
  in
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let t =
    {
      svc;
      clock;
      batch_max;
      inflight_limit;
      tstates = Hashtbl.create 8;
      q = Drr.create ();
      m = Mutex.create ();
      idle = Condition.create ();
      inflight = 0;
      pumping = false;
      held = false;
      admitted_ = 0;
      quota_shed_ = 0;
      batches_ = 0;
      batched_requests_ = 0;
      max_batch_ = 0;
      observers = [];
    }
  in
  List.iter (add_tenant t) tenants;
  t

let service t = t.svc
let tenants t = List.map (fun (id, _) -> id) (Drr.tenants t.q)

let on_complete t f =
  Mutex.lock t.m;
  t.observers <- t.observers @ [ f ];
  Mutex.unlock t.m

(* Unknown tenants (including the empty id on untenanted requests) get a
   default SLA — weight 1, no quota, Standard class — rather than an
   error: the admission layer must be safe to put in front of existing
   single-tenant traffic. *)
let get_tstate_locked t id =
  match Hashtbl.find_opt t.tstates id with
  | Some ts -> ts
  | None ->
    let ts =
      tstate_of_tenant t
        {
          Tenant.id;
          weight = 1;
          quota = None;
          deadline_class = Tenant.Standard;
        }
    in
    Hashtbl.add t.tstates id ts;
    Drr.add_tenant t.q ~id ~weight:1;
    ts

let synthesize req err =
  {
    Service.request = req;
    result = Error err;
    cache_hit = false;
    service_s = 0.0;
  }

(* The pump: while the in-flight window has room, dequeue the next DRR
   batch and hand it to the service.  [pumping] makes re-entry a no-op —
   in Deterministic mode the service runs [k] inline inside [dispatch],
   so the completion's own pump call lands while the outer loop still
   owns the pump; it bows out and the outer loop continues.  The lock is
   never held across a dispatch. *)
let rec pump t =
  Mutex.lock t.m;
  if t.pumping || t.held then Mutex.unlock t.m
  else begin
    t.pumping <- true;
    let continue = ref true in
    while !continue do
      if t.inflight >= t.inflight_limit then continue := false
      else begin
        match
          Drr.dequeue_batch t.q ~max:t.batch_max ~same:(fun a b ->
              a.preq.Service.overlay = b.preq.Service.overlay)
        with
        | [] -> continue := false
        | batch ->
          let n = List.length batch in
          t.inflight <- t.inflight + n;
          if n > 1 then begin
            t.batches_ <- t.batches_ + 1;
            t.batched_requests_ <- t.batched_requests_ + n;
            if n > t.max_batch_ then t.max_batch_ <- n
          end;
          Mutex.unlock t.m;
          dispatch t batch;
          Mutex.lock t.m
      end
    done;
    t.pumping <- false;
    if t.inflight = 0 && Drr.length t.q = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.m
  end

(* Exactly one completion per dequeued request, whatever the service
   says: an admission error from the service (queue full, shutdown) is
   synthesized into error responses here rather than re-queued — the
   window bound makes genuine saturation a configuration error, and
   losing a response is the one thing this layer may never do. *)
and complete t pk resp =
  pk resp;
  Mutex.lock t.m;
  let observers = t.observers in
  Mutex.unlock t.m;
  List.iter (fun f -> f resp) observers;
  Mutex.lock t.m;
  t.inflight <- t.inflight - 1;
  Mutex.unlock t.m;
  pump t

and dispatch t = function
  | [] -> ()
  | [ p ] -> (
    match Service.submit_k t.svc p.preq ~k:(complete t p.pk) with
    | Ok () -> ()
    | Error e -> complete t p.pk (synthesize p.preq e))
  | batch -> (
    (* one pool job runs the batch sequentially, so pairing responses to
       callbacks by order is race-free *)
    let remaining = ref batch in
    let k resp =
      match !remaining with
      | [] -> ()
      | p :: rest ->
        remaining := rest;
        complete t p.pk resp
    in
    match Service.submit_batch_k t.svc (List.map (fun p -> p.preq) batch) ~k with
    | Ok () -> ()
    | Error e -> List.iter (fun p -> complete t p.pk (synthesize p.preq e)) batch)

let submit_k t (req : Service.request) ~k =
  Mutex.lock t.m;
  let ts = get_tstate_locked t req.Service.tenant in
  let admitted =
    match (ts.bucket, ts.tenant.Tenant.quota) with
    | Some b, Some q ->
      let now = t.clock () in
      b.tokens <-
        Float.min (float_of_int q.Tenant.burst)
          (b.tokens +. ((now -. b.last) *. q.Tenant.rate_per_s));
      b.last <- now;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        true
      end
      else false
    | _ -> true
  in
  if not admitted then begin
    t.quota_shed_ <- t.quota_shed_ + 1;
    Mutex.unlock t.m;
    Telemetry.record_quota ~tenant:req.tenant (Service.telemetry t.svc);
    Log.record ~level:Log.Warn ~trace:req.trace Log.default "quota_shed"
      ~attrs:
        [ ("id", string_of_int req.id); ("tenant", req.tenant) ];
    (* deterministic shed: answered immediately, never queued, and
       Quota_exceeded is non-retryable end to end *)
    k (synthesize req Service.Quota_exceeded)
  end
  else begin
    t.admitted_ <- t.admitted_ + 1;
    let req =
      match req.deadline_s with
      | Some _ -> req
      | None -> { req with Service.deadline_s = ts.deadline }
    in
    Drr.enqueue t.q ~id:req.tenant { preq = req; pk = k };
    Mutex.unlock t.m;
    Log.record ~level:Log.Debug ~trace:req.trace Log.default "wfq_admit"
      ~attrs:
        [ ("id", string_of_int req.id); ("tenant", req.tenant) ];
    pump t
  end

let hold t =
  Mutex.lock t.m;
  t.held <- true;
  Mutex.unlock t.m

let release t =
  Mutex.lock t.m;
  t.held <- false;
  Mutex.unlock t.m;
  pump t

let drain t =
  pump t;
  Mutex.lock t.m;
  while not (t.inflight = 0 && Drr.length t.q = 0) do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m

let run t reqs =
  let out = ref [] in
  let om = Mutex.create () in
  List.iter
    (fun r ->
      submit_k t r ~k:(fun resp ->
          Mutex.lock om;
          out := resp :: !out;
          Mutex.unlock om))
    reqs;
  drain t;
  List.sort
    (fun (a : Service.response) b ->
      compare a.request.Service.id b.request.Service.id)
    !out

let stats t =
  Mutex.lock t.m;
  let s =
    {
      admitted = t.admitted_;
      quota_shed = t.quota_shed_;
      batches = t.batches_;
      batched_requests = t.batched_requests_;
      max_batch = t.max_batch_;
      queued = Drr.length t.q;
      inflight = t.inflight;
    }
  in
  Mutex.unlock t.m;
  s
