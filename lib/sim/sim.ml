open Overgen_adg
open Overgen_mdfg
open Overgen_scheduler
module Obs = Overgen_obs.Obs

(* Simulator counters on the shared default registry; incremented once per
   simulated region (never inside the cycle loop), so the enabled-path
   overhead is independent of region length. *)
let m_regions =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_sim_regions_total"
       ~help:"simulated regions")

let m_cycles =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_sim_cycles_total"
       ~help:"simulated cycles, summed over regions")

let m_firings =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_sim_firings_total"
       ~help:"DFG instance firings, summed over tiles")

let m_stalls =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_sim_stall_cycles_total"
       ~help:"tile-cycles not covered by a firing's II occupancy")

type config = {
  one_hot_bypass : bool;
  l2_hit_latency : int;
  dram_latency : int;
  spad_latency : int;
  mshr_per_bank : int;
  rob_bytes : float;      (* per-engine reorder-buffer capacity: how far a
                             stream may run ahead of consumption *)
  max_cycles : int;
}

let default_config =
  {
    one_hot_bypass = true;
    l2_hit_latency = 20;
    dram_latency = 100;
    spad_latency = 2;
    mshr_per_bank = 32;
    rob_bytes = 1024.0;
    max_cycles = 50_000_000;
  }

type region_result = {
  rname : string;
  cycles : int;
  firings : int;
  dispatches : int;
}

type t = {
  total_cycles : int;
  per_region : region_result list;
  l2_bytes : float;
  dram_bytes : float;
  sim_ipc : float;
}

(* ------------------------------------------------------------------ *)
(* Per-stream simulation state                                         *)
(* ------------------------------------------------------------------ *)

type path = Local | Shared

type role = Read | Write | Fill | Drain

type sstate = {
  role : role;
  path : path;
  engine : Adg.id;
  port_cap : float;   (* bytes of port-side buffering *)
  mpf : float;        (* memory-side bytes per firing *)
  total : float;      (* memory-side bytes for the whole region, per tile *)
  miss_frac : float;
  waste : float;      (* line-granularity inflation on the shared path *)
  latency : int;
  mutable issued : float;
  mutable done_ : float;
  mutable write_buf : float;
  pending : (int * float) Queue.t;
}

type engine_state = { bw : float; mutable rr : int; members : sstate array }

type tile_state = {
  streams : sstate array;
  engines : engine_state array;
  ii : int;
  target : int;
  mutable fired : int;
  mutable cooldown : int;
  mutable dispatch_left : int;
}

let fnear a b = a >= b -. 1e-6

(* ------------------------------------------------------------------ *)
(* Region setup                                                        *)
(* ------------------------------------------------------------------ *)

let dispatches_of_region (v : Compile.variant) =
  (* loops deeper than the engines' 3D affine patterns force per-chunk
     stream re-dispatch *)
  let loops = v.region.Overgen_workload.Ir.loops in
  let extra = max 0 (List.length loops - 3) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let outer = take extra loops in
  int_of_float
    (List.fold_left
       (fun acc (l : Overgen_workload.Ir.loop) ->
         acc *. Overgen_workload.Ir.trip_avg l.trip)
       1.0 outer)

let setup_tile cfg (sys : Sys_adg.t) ~share (sched : Schedule.t) =
  let adg = sys.adg in
  let tiles = share in
  let v = sched.variant in
  let firings_tile =
    max 1 (int_of_float (ceil (v.firings /. float_of_int tiles)))
  in
  let port_cap_of dfg_port fallback =
    match Option.bind dfg_port (fun p -> Schedule.Imap.find_opt p sched.port_map) with
    | Some hw -> (
      match Adg.comp adg hw with
      | Some (Comp.In_port p) | Some (Comp.Out_port p) ->
        float_of_int (p.width_bytes * p.fifo_depth)
      | Some (Comp.Pe _ | Comp.Switch _ | Comp.Engine _) | None -> fallback)
    | None -> fallback
  in
  let working_set =
    List.fold_left
      (fun acc (a : Stream.array_info) -> acc + (a.elems * a.elem_bytes))
      0 v.arrays
  in
  let fits_l2 = working_set <= sys.system.System.l2_kb * 1024 in
  let spad_arrays =
    List.filter_map
      (fun (name, e) ->
        match Adg.comp adg e with
        | Some (Comp.Engine { kind = Comp.Spad; _ }) -> Some (name, e)
        | Some _ | None -> None)
      sched.array_engine
  in
  let miss_of (s : Stream.t) =
    if fits_l2 then
      let traffic = Float.max 1.0 s.reuse.traffic in
      Overgen_util.Stats.clamp ~lo:0.0 ~hi:1.0
        (float_of_int s.reuse.footprint /. traffic)
    else 1.0
  in
  let mk_stream (s : Stream.t) =
    let use_rec = Schedule.is_rec sched s in
    let total = Stream.mem_bytes s ~use_rec /. float_of_int tiles in
    let mpf = total /. float_of_int firings_tile in
    let on_spad = List.mem_assoc s.array spad_arrays in
    let path = if on_spad then Local else Shared in
    let engine =
      match Schedule.engine_of_stream sched s with
      | Some e -> e
      | None -> -1
    in
    let latency = if path = Local then cfg.spad_latency else cfg.l2_hit_latency in
    {
      role = (match s.dir with Stream.Read -> Read | Stream.Write -> Write);
      path;
      engine;
      port_cap = port_cap_of s.port 128.0;
      mpf;
      total;
      miss_frac = (if path = Local then 0.0 else miss_of s);
      waste = (if path = Local then 1.0 else Overgen_perf.Perf.stride_waste s);
      latency;
      issued = 0.0;
      done_ = 0.0;
      write_buf = 0.0;
      pending = Queue.create ();
    }
  in
  let data_streams = List.map mk_stream v.streams in
  (* scratchpad fill (before compute) and drain (after) on the shared path *)
  let array_partitioned name =
    List.for_all (fun (s : Stream.t) -> s.array <> name || s.partitioned) v.streams
  in
  let fills_drains =
    List.concat_map
      (fun (a : Stream.array_info) ->
        match List.assoc_opt a.name spad_arrays with
        | None -> []
        | Some _ ->
          let bytes = float_of_int (a.elems * a.elem_bytes) in
          let per_tile =
            if array_partitioned a.name then bytes /. float_of_int tiles else bytes
          in
          let dma =
            match
              List.find_opt
                (fun (_, e) ->
                  match Adg.comp adg e with
                  | Some (Comp.Engine { kind = Comp.Dma; _ }) -> true
                  | Some _ | None -> false)
                sched.array_engine
            with
            | Some (_, e) -> e
            | None -> -1
          in
          let base =
            {
              role = Fill;
              path = Shared;
              engine = dma;
              port_cap = infinity;
              mpf = 0.0;
              total = per_tile;
              miss_frac = 1.0;
              waste = 1.0;
              latency = cfg.dram_latency;
              issued = 0.0;
              done_ = 0.0;
              write_buf = 0.0;
              pending = Queue.create ();
            }
          in
          if a.read_only then [ base ]
          else [ base; { base with role = Drain; pending = Queue.create () } ])
      v.arrays
  in
  let streams = Array.of_list (data_streams @ fills_drains) in
  (* group streams by engine *)
  let engine_ids =
    Array.to_list streams
    |> List.map (fun s -> s.engine)
    |> List.sort_uniq compare
  in
  let engines =
    List.map
      (fun eid ->
        let bw =
          match Adg.comp adg eid with
          | Some (Comp.Engine en) -> float_of_int en.Comp.bandwidth
          | Some (Comp.Pe _ | Comp.Switch _ | Comp.In_port _ | Comp.Out_port _)
          | None -> 8.0
        in
        {
          bw;
          rr = 0;
          members =
            Array.of_list
              (List.filter (fun s -> s.engine = eid) (Array.to_list streams));
        })
      engine_ids
    |> Array.of_list
  in
  let n_streams = Array.length streams in
  let dispatch_events = dispatches_of_region v in
  let dispatch_cost = 2 + (2 * n_streams) + (dispatch_events * 2) in
  ( {
      streams;
      engines;
      ii = max 1 sched.ii;
      target = firings_tile;
      fired = 0;
      cooldown = 0;
      dispatch_left = dispatch_cost;
    },
    dispatch_events )

(* ------------------------------------------------------------------ *)
(* Cycle loop for one region across all tiles                          *)
(* ------------------------------------------------------------------ *)

let tile_done t =
  t.fired >= t.target
  && Array.for_all
       (fun s ->
         match s.role with
         | Read -> true
         | Write -> s.write_buf <= 1e-6
         | Fill -> fnear s.done_ s.total
         | Drain -> fnear s.done_ s.total)
       t.streams

(* Phase 1: deliver memory responses whose latency has elapsed. *)
let deliver_pending tiles c =
  Array.iter
    (fun t ->
      Array.iter
        (fun s ->
          let continue_ = ref true in
          while !continue_ && not (Queue.is_empty s.pending) do
            let ready, bytes = Queue.peek s.pending in
            if ready <= c then begin
              ignore (Queue.pop s.pending);
              s.done_ <- s.done_ +. bytes
            end
            else continue_ := false
          done)
        t.streams)
    tiles

(* Phase 2: stream engines issue; local requests complete against the
   spad/recurrence path, shared ones are returned for global arbitration
   after the per-tile NoC clamp. *)
let collect_wants cfg ~noc_bw tiles c =
  let shared_wants = ref [] in
  Array.iter
    (fun t ->
      if t.dispatch_left > 0 then t.dispatch_left <- t.dispatch_left - 1
      else begin
        let tile_shared = ref [] in
        Array.iter
          (fun e ->
            let active =
              Array.to_list e.members
              |> List.filter (fun s ->
                     match s.role with
                     | Read | Fill ->
                       s.issued < s.total -. 1e-9
                       && (s.role = Fill
                          || s.issued -. (float_of_int t.fired *. s.mpf)
                             < Float.max s.port_cap (2.0 *. s.mpf)
                               +. (if s.path = Shared then cfg.rob_bytes else 0.0))
                     | Write -> s.write_buf > 1e-9
                     | Drain -> t.fired >= t.target && s.issued < s.total -. 1e-9)
            in
            let bw =
              if List.length active = 1 && not cfg.one_hot_bypass then
                e.bw /. 2.0
              else e.bw
            in
            let budget = ref bw in
            let n = List.length active in
            if n > 0 then begin
              e.rr <- (e.rr + 1) mod n;
              let ordered =
                (* rotate for round-robin fairness *)
                let arr = Array.of_list active in
                Array.to_list (Array.init n (fun i -> arr.((i + e.rr) mod n)))
              in
              List.iter
                (fun s ->
                  if !budget > 1e-9 then begin
                    let want =
                      match s.role with
                      | Read | Fill ->
                        let window =
                          match s.role with
                          | Fill -> s.total -. s.issued
                          | _ ->
                            Float.min (s.total -. s.issued)
                              (Float.max s.port_cap (2.0 *. s.mpf)
                              +. (if s.path = Shared then cfg.rob_bytes else 0.0)
                              +. (float_of_int t.fired *. s.mpf)
                              -. s.issued)
                        in
                        Float.max 0.0 (Float.min !budget window)
                      | Write -> Float.min !budget s.write_buf
                      | Drain -> Float.min !budget (s.total -. s.issued)
                    in
                    if want > 1e-9 then begin
                      budget := !budget -. want;
                      match s.path with
                      | Local -> (
                        match s.role with
                        | Read | Fill ->
                          s.issued <- s.issued +. want;
                          Queue.add (c + s.latency, want) s.pending
                        | Write -> s.write_buf <- s.write_buf -. want
                        | Drain ->
                          s.issued <- s.issued +. want;
                          s.done_ <- s.done_ +. want)
                      | Shared -> tile_shared := (s, want) :: !tile_shared
                    end
                  end)
                ordered
            end)
          t.engines;
        (* per-tile NoC clamp *)
        let tot =
          List.fold_left (fun acc (s, w) -> acc +. (w *. s.waste)) 0.0 !tile_shared
        in
        let scale = if tot > noc_bw then noc_bw /. tot else 1.0 in
        List.iter
          (fun (s, w) -> shared_wants := (s, w *. scale) :: !shared_wants)
          !tile_shared
      end)
    tiles;
  !shared_wants

(* Phase 3: global L2 / DRAM arbitration over every tile's shared wants. *)
let arbitrate cfg ~l2_bw ~dram_bw (l2_count, dram_count) shared_wants c =
  let l2_demand =
    List.fold_left (fun acc (s, w) -> acc +. (w *. s.waste)) 0.0 shared_wants
  in
  let l2_scale = if l2_demand > l2_bw then l2_bw /. l2_demand else 1.0 in
  let miss_demand =
    List.fold_left
      (fun acc (s, w) -> acc +. (w *. s.waste *. l2_scale *. s.miss_frac))
      0.0 shared_wants
  in
  let dram_scale = if miss_demand > dram_bw then dram_bw /. miss_demand else 1.0 in
  List.iter
    (fun (s, w) ->
      let g = w *. l2_scale in
      let hit = g *. (1.0 -. s.miss_frac) in
      let miss = g *. s.miss_frac *. dram_scale in
      let granted = hit +. miss in
      l2_count := !l2_count +. (granted *. s.waste);
      dram_count := !dram_count +. (miss *. s.waste);
      if granted > 1e-9 then begin
        let lat =
          if s.miss_frac > 0.5 then cfg.dram_latency else cfg.l2_hit_latency
        in
        match s.role with
        | Read | Fill ->
          s.issued <- s.issued +. granted;
          Queue.add (c + lat, granted) s.pending
        | Write -> s.write_buf <- s.write_buf -. granted
        | Drain ->
          s.issued <- s.issued +. granted;
          s.done_ <- s.done_ +. granted
      end)
    shared_wants

(* Phase 4: the spatial fabric fires one DFG instance per II when ready. *)
let fire_tiles tiles =
  Array.iter
    (fun t ->
      if t.cooldown > 0 then t.cooldown <- t.cooldown - 1
      else if t.dispatch_left = 0 && t.fired < t.target then begin
        let ready =
          Array.for_all
            (fun s ->
              match s.role with
              | Read ->
                fnear s.done_ (Float.min s.total (float_of_int (t.fired + 1) *. s.mpf))
              | Write -> s.write_buf +. s.mpf <= s.port_cap +. 1e-6
              | Fill -> fnear s.done_ s.total
              | Drain -> true)
            t.streams
        in
        if ready then begin
          t.fired <- t.fired + 1;
          t.cooldown <- t.ii - 1;
          Array.iter
            (fun s -> if s.role = Write then s.write_buf <- s.write_buf +. s.mpf)
            t.streams
        end
      end)
    tiles

let shared_limits cfg (sysp : System.t) =
  let l2_bw =
    float_of_int
      (min (System.l2_bytes_per_cycle sysp) (System.shared_bandwidth sysp))
  in
  let line = float_of_int Overgen_perf.Perf.line_bytes in
  let mshr_bw =
    float_of_int (cfg.mshr_per_bank * sysp.System.l2_banks)
    *. line /. float_of_int cfg.dram_latency
  in
  let dram_bw =
    Float.min (float_of_int (System.dram_bytes_per_cycle sysp)) mshr_bw
  in
  (l2_bw, dram_bw)

let run_region cfg (sys : Sys_adg.t) (sched : Schedule.t) counters =
  Obs.Span.with_span "sim_region"
    ~attrs:[ ("region", sched.variant.region.Overgen_workload.Ir.rname) ]
  @@ fun () ->
  let sysp = sys.system in
  let tiles_n = sysp.System.tiles in
  let tiles =
    Array.init tiles_n (fun _ -> fst (setup_tile cfg sys ~share:tiles_n sched))
  in
  let _, dispatch_events = setup_tile cfg sys ~share:tiles_n sched in
  let l2_bw, dram_bw = shared_limits cfg sysp in
  let noc_bw = float_of_int sysp.System.noc_bytes in
  let cycle = ref 0 in
  let all_done () = Array.for_all tile_done tiles in
  while (not (all_done ())) && !cycle < cfg.max_cycles do
    let c = !cycle in
    deliver_pending tiles c;
    let wants = collect_wants cfg ~noc_bw tiles c in
    arbitrate cfg ~l2_bw ~dram_bw counters wants c;
    fire_tiles tiles;
    incr cycle
  done;
  if !cycle >= cfg.max_cycles then
    failwith
      (Printf.sprintf "Sim.run: region %s exceeded %d cycles (deadlock?)"
         sched.variant.region.Overgen_workload.Ir.rname cfg.max_cycles);
  if Obs.on () then begin
    let busy = Array.fold_left (fun acc t -> acc + (t.fired * t.ii)) 0 tiles in
    Obs.incr (Lazy.force m_regions);
    Obs.incr (Lazy.force m_cycles) ~by:!cycle;
    Obs.incr (Lazy.force m_firings)
      ~by:(Array.fold_left (fun acc t -> acc + t.fired) 0 tiles);
    Obs.incr (Lazy.force m_stalls) ~by:(max 0 ((!cycle * tiles_n) - busy))
  end;
  (* pipeline drain *)
  let drain = Dfg.depth sched.variant.dfg + cfg.l2_hit_latency in
  {
    rname = sched.variant.region.Overgen_workload.Ir.rname;
    cycles = !cycle + drain;
    firings = (Array.get tiles 0).target;
    dispatches = dispatch_events;
  }

let run ?(config = default_config) sys schedules =
  let l2_count = ref 0.0 and dram_count = ref 0.0 in
  let per_region =
    List.map (fun s -> run_region config sys s (l2_count, dram_count)) schedules
  in
  let total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 per_region in
  let work =
    List.fold_left
      (fun acc (sched : Schedule.t) ->
        acc
        +. (float_of_int (Dfg.inst_count sched.variant.dfg + Schedule.mem_ops sched)
           *. sched.variant.firings))
      0.0 schedules
  in
  {
    total_cycles;
    per_region;
    l2_bytes = !l2_count;
    dram_bytes = !dram_count;
    sim_ipc = work /. float_of_int (max 1 total_cycles);
  }

let wall_time_ms (_sys : Sys_adg.t) ~freq_mhz t =
  float_of_int t.total_cycles /. (freq_mhz *. 1000.0)

let reconfigure_cycles = Sys_adg.reconfigure_cycles

(* ------------------------------------------------------------------ *)
(* Multi-tenant execution (paper future work: heterogeneous workload   *)
(* mixes on one fabric)                                                *)
(* ------------------------------------------------------------------ *)

type tenant_result = {
  t_kernel : string;
  t_tiles : int;
  t_cycles : int;  (* when this tenant finished *)
}

type multi_result = {
  m_cycles : int;           (* makespan *)
  tenants : tenant_result list;
  m_l2_bytes : float;
  m_dram_bytes : float;
}

type tenant_state = {
  share : int;
  mutable remaining : Schedule.t list;
  mutable cur : tile_state array;  (* empty when finished *)
  mutable finished_at : int;
  name : string;
}

let run_multi ?(config = default_config) (sys : Sys_adg.t) assignments =
  let cfg = config in
  let sysp = sys.system in
  let total_share = List.fold_left (fun acc (_, s) -> acc + s) 0 assignments in
  if total_share > sysp.System.tiles then
    invalid_arg "Sim.run_multi: tile shares exceed the system's tiles";
  let counters = (ref 0.0, ref 0.0) in
  let l2_bw, dram_bw = shared_limits cfg sysp in
  let noc_bw = float_of_int sysp.System.noc_bytes in
  let setup share sched =
    Array.init share (fun _ -> fst (setup_tile cfg sys ~share sched))
  in
  let tenants =
    List.map
      (fun (schedules, share) ->
        match schedules with
        | [] -> invalid_arg "Sim.run_multi: tenant with no schedules"
        | (first : Schedule.t) :: rest ->
          {
            share;
            remaining = rest;
            cur = setup share first;
            finished_at = -1;
            name = first.variant.kernel;
          })
      assignments
  in
  let cycle = ref 0 in
  let active () = List.filter (fun t -> t.finished_at < 0) tenants in
  while active () <> [] && !cycle < cfg.max_cycles do
    let c = !cycle in
    let live = active () in
    List.iter (fun t -> deliver_pending t.cur c) live;
    let wants =
      List.concat_map (fun t -> collect_wants cfg ~noc_bw t.cur c) live
    in
    arbitrate cfg ~l2_bw ~dram_bw counters wants c;
    List.iter (fun t -> fire_tiles t.cur) live;
    (* region transitions and completion *)
    List.iter
      (fun t ->
        if Array.for_all tile_done t.cur then
          match t.remaining with
          | next :: rest ->
            t.remaining <- rest;
            t.cur <- setup t.share next
          | [] -> t.finished_at <- c + 1)
      live;
    incr cycle
  done;
  if !cycle >= cfg.max_cycles then
    failwith "Sim.run_multi: exceeded max_cycles (deadlock?)";
  let l2_count, dram_count = counters in
  {
    m_cycles = !cycle;
    tenants =
      List.map
        (fun t ->
          { t_kernel = t.name; t_tiles = t.share; t_cycles = t.finished_at })
        tenants;
    m_l2_bytes = !l2_count;
    m_dram_bytes = !dram_count;
  }
