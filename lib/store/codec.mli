(** The versioned binary codec of the artifact store.

    Two layers:

    - {b Framing primitives} ([put_u32]/[get_string]/…): little-endian
      length-prefixed fields, the only way bytes enter or leave a store
      record.  Length prefixes rather than delimiters, so no value can
      collide with another by containing a separator.
    - {b Schema-tagged payloads}: every persisted value starts with a
      schema string (e.g. ["cache-outcome-v1"]).  A reader demands an
      exact schema match and {e rejects} anything else with an [Error] —
      a format bump renames the schema, so old records are refused, never
      misparsed.  sysADG payloads are layered on
      {!Overgen_adg.Serial}: the canonical persisted form of a design is
      its stable textual serialization, re-validated on decode. *)

val version : int
(** Record-framing version; part of the store file header.  Bumping it
    makes old store files unreadable (open reports an incompatibility
    error) rather than misparsed. *)

exception Truncated
(** Raised by the [get_*] readers on a short buffer. *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument outside [0, 2^32). *)

val put_string : Buffer.t -> string -> unit
(** u32 length prefix, then the bytes. *)

val put_u64 : Buffer.t -> int64 -> unit
(** Little-endian 64-bit field; what the network wire protocol uses for
    request ids and counters. *)

val put_f64 : Buffer.t -> float -> unit
(** IEEE-754 bits via {!put_u64} — bit-exact round trip, no decimal
    formatting loss. *)

val get_u8 : string -> int ref -> int
val get_u32 : string -> int ref -> int
val get_string : string -> int ref -> string
val get_u64 : string -> int ref -> int64
val get_f64 : string -> int ref -> float

val encode_sys : Overgen_adg.Sys_adg.t -> string
(** Schema-tagged {!Overgen_adg.Serial.to_string} of a design. *)

val decode_sys : string -> (Overgen_adg.Sys_adg.t, string) result
(** Rejects a wrong schema tag; parse errors from
    {!Overgen_adg.Serial.of_string} surface as [Error]. *)

val encode_marshal : schema:string -> 'a -> string
(** Schema tag + [Marshal] of a pure-data value.  The schema string is
    the compatibility contract: bump it whenever the marshalled type
    changes shape. *)

val decode_marshal : schema:string -> string -> ('a, string) result
(** [Error] on a schema mismatch or a truncated buffer — an old-format
    record is refused, not misparsed. *)
