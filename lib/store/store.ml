module Fault = Overgen_fault.Fault
module Obs = Overgen_obs.Obs

(* ------------------------------------------------------------------ *)
(* Instrumentation (gated: no-ops until Obs.enable)                    *)
(* ------------------------------------------------------------------ *)

let m_appends =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_appends_total"
       ~help:"records appended to the artifact store")

let m_fsyncs =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_fsyncs_total"
       ~help:"fsync calls issued by the artifact store")

let m_reads =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_reads_total"
       ~help:"record reads served from the artifact store log")

let m_scanned =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_scan_records_total"
       ~help:"records replayed by scan-on-open")

let m_truncated =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_truncated_bytes_total"
       ~help:"damaged tail bytes dropped by recovery at open")

let m_compactions =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_store_compactions_total"
       ~help:"snapshot+rename compactions of the artifact store")

(* ------------------------------------------------------------------ *)
(* On-disk format                                                      *)
(* ------------------------------------------------------------------ *)

let header = Printf.sprintf "overgen-store v%d\n" Codec.version
let header_len = String.length header
let rec_head_len = 8 (* u32 payload length + u32 CRC32 *)

let tag_put = 1
let tag_del = 2

let encode_payload ~ns ~key value =
  let b = Buffer.create 64 in
  (match value with
  | Some v ->
    Codec.put_u8 b tag_put;
    Codec.put_string b ns;
    Codec.put_string b key;
    Codec.put_string b v
  | None ->
    Codec.put_u8 b tag_del;
    Codec.put_string b ns;
    Codec.put_string b key);
  Buffer.contents b

type decoded = { d_ns : string; d_key : string; d_value : string option }

let decode_payload payload =
  match
    let pos = ref 0 in
    let tag = Codec.get_u8 payload pos in
    let ns = Codec.get_string payload pos in
    let key = Codec.get_string payload pos in
    if tag = tag_put then
      Some { d_ns = ns; d_key = key; d_value = Some (Codec.get_string payload pos) }
    else if tag = tag_del then Some { d_ns = ns; d_key = key; d_value = None }
    else None
  with
  | exception Codec.Truncated -> None
  | d -> d

(* ------------------------------------------------------------------ *)
(* Scanning (shared by open and verify)                                *)
(* ------------------------------------------------------------------ *)

type damage = { dmg_offset : int; dmg_reason : string }

(* Walk [contents] from just past the header, calling [apply] on every
   intact record as (offset, total_bytes, decoded).  Returns the offset of
   the first byte past the last intact record and the damage, if any, that
   ended the scan: a short header/payload is a torn write, a CRC mismatch
   is corruption, an undecodable payload a framing error.  Everything
   after the first damaged record is unreachable (record boundaries are
   lost), so the scan stops there. *)
let scan contents apply =
  let len = String.length contents in
  let rec go off n =
    if off = len then (off, n, None)
    else if len - off < rec_head_len then
      (off, n, Some { dmg_offset = off; dmg_reason = "torn record header" })
    else
      let pos = ref off in
      let plen = Codec.get_u32 contents pos in
      let crc = Int32.of_int (Codec.get_u32 contents pos) in
      if len - !pos < plen then
        (off, n, Some { dmg_offset = off; dmg_reason = "torn record payload" })
      else if Crc32.string ~off:!pos ~len:plen contents <> crc then
        (off, n, Some { dmg_offset = off; dmg_reason = "checksum mismatch" })
      else
        match decode_payload (String.sub contents !pos plen) with
        | None ->
          (off, n, Some { dmg_offset = off; dmg_reason = "unparseable record payload" })
        | Some d ->
          let total = rec_head_len + plen in
          apply off total d;
          go (off + total) (n + 1)
  in
  go header_len 0

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type open_stats = { records : int; live : int; truncated_bytes : int }

type loc = { off : int; total : int; mutable seq : int }

type t = {
  path_ : string;
  fsync_every : bool;
  mutable fd : Unix.file_descr;
  index : (string * string, loc) Hashtbl.t;
  mutable next_seq : int;
  mutable good_len : int;  (* offset just past the last intact record *)
  mutable dirty : bool;    (* a failed append left bytes past good_len *)
  mutable live_bytes_ : int;
  mutable file_bytes_ : int;
  mutable stats : open_stats;
  mutable closed : bool;
  m : Mutex.t;
}

let path t = t.path_
let last_open_stats t = t.stats

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) (fun () ->
      if t.closed then failwith "Store: store is closed";
      f ())

let really_write fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let really_read fd ~off ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec go pos =
    if pos < len then
      match Unix.read fd b pos (len - pos) with
      | 0 -> failwith "Store: unexpected end of file (log changed underneath us?)"
      | n -> go (pos + n)
  in
  go 0;
  Bytes.unsafe_to_string b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* Replay one scanned record into the index.  Last write wins; a rewrite
   moves the binding to the end of the replay order so warm-started LRUs
   see the freshest bindings as most recently used. *)
let apply_record t off total d =
  let k = (d.d_ns, d.d_key) in
  (match Hashtbl.find_opt t.index k with
  | Some old ->
    t.live_bytes_ <- t.live_bytes_ - old.total;
    Hashtbl.remove t.index k
  | None -> ());
  match d.d_value with
  | Some _ ->
    Hashtbl.replace t.index k { off; total; seq = t.next_seq };
    t.next_seq <- t.next_seq + 1;
    t.live_bytes_ <- t.live_bytes_ + total
  | None -> ()

let open_ ?(fsync = false) ~path () =
  match
    if Sys.file_exists path then read_file path
    else begin
      (* fresh store: just the header *)
      let oc = open_out_bin path in
      output_string oc header;
      close_out oc;
      header
    end
  with
  | exception Sys_error e -> Error e
  | contents ->
    let contents =
      if contents <> "" then contents
      else begin
        (* an existing empty file (e.g. freshly touched, or a temp file) is
           a fresh store, not a corrupt one *)
        let oc = open_out_bin path in
        output_string oc header;
        close_out oc;
        header
      end
    in
    if
      String.length contents < header_len
      || String.sub contents 0 header_len <> header
    then
      Error
        (Printf.sprintf "%s: not an overgen store (or incompatible version; this \
                         build reads format v%d)" path Codec.version)
    else begin
      let t =
        {
          path_ = path;
          fsync_every = fsync;
          fd = Unix.openfile path [ Unix.O_RDWR ] 0o644;
          index = Hashtbl.create 64;
          next_seq = 0;
          good_len = header_len;
          dirty = false;
          live_bytes_ = 0;
          file_bytes_ = String.length contents;
          stats = { records = 0; live = 0; truncated_bytes = 0 };
          closed = false;
          m = Mutex.create ();
        }
      in
      Obs.Span.with_span "store_scan" ~attrs:[ ("path", path) ] @@ fun () ->
      let good_end, records, damage = scan contents (apply_record t) in
      let truncated_bytes = String.length contents - good_end in
      (match damage with
      | Some _ ->
        (* recovery: drop the damaged tail so the next append starts at a
           clean record boundary *)
        Unix.ftruncate t.fd good_end;
        t.file_bytes_ <- good_end
      | None -> ());
      t.good_len <- good_end;
      t.stats <- { records; live = Hashtbl.length t.index; truncated_bytes };
      Obs.incr ~by:records (Lazy.force m_scanned);
      if truncated_bytes > 0 then
        Obs.incr ~by:truncated_bytes (Lazy.force m_truncated);
      Ok t
    end

(* One record append.  The fault points model the two ways a write dies:
   [store.append] raises before any byte lands (a clean failure), and
   [store.torn_write] raises after the header is on disk — a Transient
   injection leaves a short payload (a torn tail), a Deterministic one a
   full record with a flipped byte (bit rot caught by the checksum).  A
   failed append leaves [dirty] set; the next append (or compact) rewinds
   the file to [good_len] first, so in-process retries keep working while
   a crash right after the fault leaves exactly the torn file recovery is
   tested against. *)
let append t payload =
  Fault.point Fault.Points.store_append;
  if t.dirty then begin
    Unix.ftruncate t.fd t.good_len;
    t.file_bytes_ <- t.good_len;
    t.dirty <- false
  end;
  ignore (Unix.lseek t.fd t.good_len Unix.SEEK_SET);
  let plen = String.length payload in
  let head = Buffer.create rec_head_len in
  Codec.put_u32 head plen;
  Codec.put_u32 head (Int32.to_int (Crc32.string payload) land 0xFFFFFFFF);
  let off = t.good_len in
  t.dirty <- true;
  really_write t.fd (Buffer.contents head);
  (try Fault.point Fault.Points.store_torn
   with Fault.Injected { kind; _ } as e ->
     (match kind with
     | Fault.Transient -> really_write t.fd (String.sub payload 0 (plen / 2))
     | Fault.Deterministic ->
       let b = Bytes.of_string payload in
       if plen > 0 then
         Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
       really_write t.fd (Bytes.unsafe_to_string b));
     t.file_bytes_ <- max t.file_bytes_ (Unix.lseek t.fd 0 Unix.SEEK_CUR);
     raise e);
  really_write t.fd payload;
  if t.fsync_every then begin
    Unix.fsync t.fd;
    Obs.incr (Lazy.force m_fsyncs)
  end;
  let total = rec_head_len + plen in
  t.good_len <- off + total;
  t.file_bytes_ <- max t.file_bytes_ t.good_len;
  t.dirty <- false;
  Obs.incr (Lazy.force m_appends);
  (off, total)

let put t ~ns ~key value =
  with_lock t @@ fun () ->
  let off, total = append t (encode_payload ~ns ~key (Some value)) in
  apply_record t off total { d_ns = ns; d_key = key; d_value = Some value }

let delete t ~ns ~key =
  with_lock t @@ fun () ->
  if Hashtbl.mem t.index (ns, key) then begin
    let off, total = append t (encode_payload ~ns ~key None) in
    apply_record t off total { d_ns = ns; d_key = key; d_value = None }
  end

(* Read a record back from the log and re-verify it: the index only holds
   offsets, so every [get] exercises the real on-disk bytes. *)
let read_value t (l : loc) =
  let contents = really_read t.fd ~off:l.off ~len:l.total in
  let pos = ref 0 in
  let plen = Codec.get_u32 contents pos in
  let crc = Int32.of_int (Codec.get_u32 contents pos) in
  if plen <> l.total - rec_head_len then failwith "Store: record length changed on disk";
  if Crc32.string ~off:rec_head_len ~len:plen contents <> crc then
    failwith "Store: checksum mismatch on read (log damaged underneath us)";
  match decode_payload (String.sub contents rec_head_len plen) with
  | Some { d_value = Some v; _ } ->
    Obs.incr (Lazy.force m_reads);
    v
  | _ -> failwith "Store: indexed record is not a Put"

let get t ~ns ~key =
  with_lock t @@ fun () ->
  Option.map (read_value t) (Hashtbl.find_opt t.index (ns, key))

let mem t ~ns ~key = with_lock t @@ fun () -> Hashtbl.mem t.index (ns, key)

let live_sorted t ~keep =
  Hashtbl.fold
    (fun (ns, key) l acc -> if keep ns then (l.seq, ns, key, l) :: acc else acc)
    t.index []
  |> List.sort compare

let bindings t ~ns =
  with_lock t @@ fun () ->
  List.map
    (fun (_, _, key, l) -> (key, read_value t l))
    (live_sorted t ~keep:(String.equal ns))

let namespaces t =
  with_lock t @@ fun () ->
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (ns, _) _ ->
      Hashtbl.replace counts ns (1 + Option.value ~default:0 (Hashtbl.find_opt counts ns)))
    t.index;
  List.sort compare (Hashtbl.fold (fun ns n acc -> (ns, n) :: acc) counts [])

let length t = with_lock t @@ fun () -> Hashtbl.length t.index
let file_bytes t = with_lock t @@ fun () -> t.file_bytes_
let live_bytes t = with_lock t @@ fun () -> t.live_bytes_

let sync t =
  with_lock t @@ fun () ->
  Unix.fsync t.fd;
  Obs.incr (Lazy.force m_fsyncs)

let close t =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) (fun () ->
      if not t.closed then begin
        Unix.fsync t.fd;
        Unix.close t.fd;
        t.closed <- true
      end)

(* Snapshot + atomic rename: write every live binding (in replay order) to
   [path.compact], fsync it, and rename over the log.  A crash anywhere
   leaves either the complete old file or the complete new one. *)
let compact t =
  with_lock t @@ fun () ->
  Obs.Span.with_span "store_compact" ~attrs:[ ("path", t.path_) ] @@ fun () ->
  let live = live_sorted t ~keep:(fun _ -> true) in
  let items =
    List.map (fun (_, ns, key, l) -> (ns, key, read_value t l)) live
  in
  let tmp = t.path_ ^ ".compact" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let new_locs =
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
        really_write fd header;
        let off = ref header_len in
        let locs =
          List.map
            (fun (ns, key, v) ->
              let payload = encode_payload ~ns ~key (Some v) in
              let plen = String.length payload in
              let head = Buffer.create rec_head_len in
              Codec.put_u32 head plen;
              Codec.put_u32 head (Int32.to_int (Crc32.string payload) land 0xFFFFFFFF);
              really_write fd (Buffer.contents head);
              really_write fd payload;
              let loc = ((ns, key), !off, rec_head_len + plen) in
              off := !off + rec_head_len + plen;
              loc)
            items
        in
        Unix.fsync fd;
        locs)
  in
  Unix.close t.fd;
  Unix.rename tmp t.path_;
  t.fd <- Unix.openfile t.path_ [ Unix.O_RDWR ] 0o644;
  Hashtbl.reset t.index;
  t.next_seq <- 0;
  t.live_bytes_ <- 0;
  List.iter
    (fun (k, off, total) ->
      Hashtbl.replace t.index k { off; total; seq = t.next_seq };
      t.next_seq <- t.next_seq + 1;
      t.live_bytes_ <- t.live_bytes_ + total)
    new_locs;
  t.good_len <- header_len + t.live_bytes_;
  t.file_bytes_ <- t.good_len;
  t.dirty <- false;
  Obs.incr (Lazy.force m_compactions)

(* ------------------------------------------------------------------ *)
(* Offline verification                                                *)
(* ------------------------------------------------------------------ *)

type verify_error = { offset : int; reason : string; intact_records : int }

let verify ~path =
  match read_file path with
  | exception Sys_error e -> Error { offset = 0; reason = e; intact_records = 0 }
  | contents ->
    if
      String.length contents < header_len
      || String.sub contents 0 header_len <> header
    then
      Error
        {
          offset = 0;
          reason =
            Printf.sprintf "bad or incompatible header (this build reads format v%d)"
              Codec.version;
          intact_records = 0;
        }
    else begin
      let live = Hashtbl.create 64 in
      let good_end, records, damage =
        scan contents (fun _ _ d ->
            match d.d_value with
            | Some _ -> Hashtbl.replace live (d.d_ns, d.d_key) ()
            | None -> Hashtbl.remove live (d.d_ns, d.d_key))
      in
      match damage with
      | Some { dmg_offset; dmg_reason } ->
        Error { offset = dmg_offset; reason = dmg_reason; intact_records = records }
      | None ->
        Ok
          {
            records;
            live = Hashtbl.length live;
            truncated_bytes = String.length contents - good_end;
          }
    end
