(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    Every record in the artifact store carries the CRC of its payload so
    torn writes and bit rot are detected at scan time instead of being
    misparsed.  Table-driven, allocation-free per byte. *)

val string : ?off:int -> ?len:int -> string -> int32
(** CRC of [len] bytes of [s] starting at [off]; defaults cover the whole
    string.  [string "123456789" = 0xCBF43926l]. *)
