module Serial = Overgen_adg.Serial

let version = 1

exception Truncated

let put_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.put_u8";
  Buffer.add_char b (Char.chr v)

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.put_u32";
  Buffer.add_int32_le b (Int32.of_int v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_u64 b v = Buffer.add_int64_le b v

let put_f64 b v = put_u64 b (Int64.bits_of_float v)

let need s pos n = if !pos + n > String.length s then raise Truncated

let get_u8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u32 s pos =
  need s pos 4;
  let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let get_string s pos =
  let n = get_u32 s pos in
  need s pos n;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let get_u64 s pos =
  need s pos 8;
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  v

let get_f64 s pos = Int64.float_of_bits (get_u64 s pos)

let tagged schema payload =
  let b = Buffer.create (String.length payload + String.length schema + 8) in
  put_string b schema;
  put_string b payload;
  Buffer.contents b

let untag ~schema s =
  match
    let pos = ref 0 in
    let tag = get_string s pos in
    let payload = get_string s pos in
    (tag, payload)
  with
  | exception Truncated -> Error "truncated payload"
  | tag, _ when tag <> schema ->
    Error (Printf.sprintf "schema mismatch: record is %S, reader wants %S" tag schema)
  | _, payload -> Ok payload

let sys_schema = "sys-adg-serial-v1"

let encode_sys sys = tagged sys_schema (Serial.to_string sys)

let decode_sys s =
  match untag ~schema:sys_schema s with
  | Error e -> Error e
  | Ok text -> Serial.of_string text

let encode_marshal ~schema v = tagged schema (Marshal.to_string v [])

let decode_marshal ~schema s =
  match untag ~schema s with
  | Error e -> Error e
  | Ok payload -> (
    if String.length payload < Marshal.header_size then Error "truncated marshal blob"
    else
      match Marshal.from_string payload 0 with
      | v -> Ok v
      | exception Failure e -> Error ("unmarshal: " ^ e))
