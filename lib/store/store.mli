(** The durable artifact store: a crash-safe, content-addressed on-disk
    key/value log.

    One store file persists every expensive artifact the serving system
    would otherwise recompute after a restart: schedule-cache outcomes,
    registered overlays, DSE checkpoints.  The design is a classic
    append-only record log with an in-memory index:

    {v
    +--------------------+
    | header: magic + v  |   "overgen-store v1\n"
    +--------------------+
    | u32 payload length |-+
    | u32 CRC32(payload) | |  one record
    | payload bytes      |-+
    +--------------------+
    | ...                |
    v}

    where each payload is a {!Codec}-framed binding: a Put
    (namespace, key, value) or a Delete (namespace, key).  Within a
    namespace the {e last} record for a key wins, so an overwrite is just
    another append — no in-place mutation, which is what makes the format
    crash-safe.

    {b Recovery.}  Opening scans the log and rebuilds the index.  A torn
    or checksum-corrupt record ends the scan: everything before it is
    kept, the damaged tail is truncated from the file, and the loss is
    reported in {!last_open_stats} — a crash mid-append never makes a
    store unopenable, it only loses the record being written.  A header
    from a different format version is rejected outright (never
    misparsed).

    {b Compaction.}  Appends accumulate dead bytes (overwritten and
    deleted bindings).  {!compact} rewrites the live bindings to a
    temporary file and atomically renames it over the log, so a crash
    during compaction leaves either the old or the new file, both valid.

    {b Durability.}  Writes go through the OS page cache; pass
    [~fsync:true] (or call {!sync}) to force records to stable storage —
    the Obs counters [overgen_store_appends/fsyncs_total] track the cost.

    All operations are thread-safe (one internal mutex); worker domains
    write through the schedule cache concurrently. *)

type t

type open_stats = {
  records : int;        (** intact records scanned at open *)
  live : int;           (** live bindings after replay (last-wins) *)
  truncated_bytes : int;
      (** damaged tail bytes dropped by recovery; 0 for a clean log *)
}

val open_ : ?fsync:bool -> path:string -> unit -> (t, string) result
(** Open or create the store at [path], scanning the log into memory.
    [fsync] (default [false]) forces every append to stable storage.
    Errors are structural: an unreadable file or an incompatible header
    version.  Damaged tails are {e not} errors — they are truncated and
    counted in {!last_open_stats}. *)

val last_open_stats : t -> open_stats

val path : t -> string

val put : t -> ns:string -> key:string -> string -> unit
(** Append a binding.  Visits the [store.append] fault point before
    writing and [store.torn_write] mid-record (an injection there leaves
    a torn or corrupt record on disk, exactly like a crash); on any
    append failure the dirty tail is rewound before the next append so
    one failed write cannot shadow later ones. *)

val get : t -> ns:string -> key:string -> string option
(** Read a binding back {e from disk} (the index holds only offsets); a
    checksum mismatch on read raises [Failure] — it means the file
    changed underneath us. *)

val mem : t -> ns:string -> key:string -> bool
val delete : t -> ns:string -> key:string -> unit

val bindings : t -> ns:string -> (string * string) list
(** Live bindings of a namespace in write order (rewriting a key moves
    it to the end) — replaying them into an LRU makes the most recently
    written binding the most recently used. *)

val namespaces : t -> (string * int) list
(** [(namespace, live bindings)], sorted by name. *)

val length : t -> int
(** Live bindings across all namespaces. *)

val file_bytes : t -> int
val live_bytes : t -> int
(** Bytes occupied by live records; [file_bytes - live_bytes] is what
    {!compact} reclaims. *)

val compact : t -> unit
(** Rewrite live bindings and atomically swap the log.  Also rewinds any
    dirty tail left by a failed append. *)

val sync : t -> unit
val close : t -> unit
(** Flush and close.  Using a closed store raises [Failure]. *)

type verify_error = { offset : int; reason : string; intact_records : int }

val verify : path:string -> (open_stats, verify_error) result
(** Read-only integrity scan, for CI/ops health checks: walks every
    record without repairing anything and reports the byte offset and
    cause of the first damaged record.  [Error] also covers a missing
    file or an incompatible header (offset 0). *)
