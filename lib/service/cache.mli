(** The content-addressed schedule cache.

    Keys are content addresses: a sysADG structural fingerprint
    ({!Overgen_adg.Serial.fingerprint}) joined with an mDFG content hash
    ({!Overgen_mdfg.Compile.hash_compiled}).  Values are scheduling
    outcomes — failures are cached too (negative caching), so a kernel that
    cannot map onto an overlay is rejected from the cache instead of
    re-running the scheduler on every retry.

    Capacity is bounded with LRU eviction.  All operations are
    thread-safe; {!find_or_compute} additionally coalesces concurrent
    requests for the same key so the spatial scheduler runs at most once
    per key no matter how many workers race on it — which also makes
    hit/miss totals identical between the deterministic and parallel
    service modes. *)

open Overgen_scheduler

type outcome = (Schedule.t list, string) result

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 1024 entries. *)

val key : fingerprint:string -> variant_hash:string -> string
(** The cache key for one (overlay structure, compiled application) pair.
    Equal to {!Overgen.schedule_key} on the same inputs. *)

val find : t -> string -> outcome option
(** Counted lookup: a [Some] is a hit, a [None] a miss. *)

val add : t -> string -> outcome -> unit

val find_or_compute : t -> string -> (unit -> outcome) -> outcome * bool
(** [find_or_compute t key compute] returns the cached outcome (flag
    [true]) or runs [compute], stores its outcome and returns it (flag
    [false]).  If another thread is already computing [key], blocks until
    that computation resolves and returns its outcome as a hit. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** hits / (hits + misses); 0 when empty. *)

val hooks : t -> Overgen.cache_hooks
(** Adapt the cache to the core API: pass as [Overgen.compile_opts.cache]
    to {!Overgen.compile} / {!Overgen.run}. *)
