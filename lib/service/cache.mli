(** The content-addressed schedule cache.

    Keys are content addresses: a sysADG structural fingerprint
    ({!Overgen_adg.Serial.fingerprint}) joined with an mDFG content hash
    ({!Overgen_mdfg.Compile.hash_compiled}).  Values are scheduling
    outcomes with a typed failure taxonomy:
    - [Ok schedules] and {e deterministic} errors (a kernel that cannot
      map onto an overlay) are properties of the inputs and are cached —
      negative caching stops the scheduler re-running on every retry of an
      unmappable kernel;
    - {e transient} failures (injected faults, flaky infrastructure) are
      {b never} stored, so one hiccup cannot poison a key forever: the
      next request recomputes.

    {b Durability.}  Backed by an {!Overgen_store.Store} the cache
    writes every cacheable outcome through to disk and reads through to
    it on a memory miss, so entries evicted from the bounded LRU — or
    computed by a previous process — are still served (and promoted back
    into memory).  A fresh cache on an existing store warm-starts its
    LRU from the persisted bindings.  The taxonomy carries over exactly:
    deterministic negatives persist, transient failures never reach
    disk.

    Capacity is bounded with LRU eviction.  All operations are
    thread-safe; {!find_or_compute} additionally coalesces concurrent
    requests for the same key so the spatial scheduler runs at most once
    per key no matter how many workers race on it — which also makes
    hit/miss totals identical between the deterministic and parallel
    service modes.  If the computing thread raises, the key's pending
    mark is cleared and the blocked waiters recompute instead of
    deadlocking. *)

open Overgen_scheduler

type failure = { reason : string; transient : bool }

type outcome = (Schedule.t list, failure) result

val deterministic : string -> failure
(** An input-determined failure: cacheable. *)

val transient : string -> failure
(** A retryable failure: never cached. *)

val cacheable : outcome -> bool
(** [Ok _] or a non-transient [Error _]. *)

type t

val create : ?capacity:int -> ?store:Overgen_store.Store.t -> unit -> t
(** [capacity] defaults to 1024 entries.  With [store], the LRU is
    warm-started from the persisted bindings (most recently written =
    most recently used, capacity applies) and all later traffic writes
    and reads through.  Bindings persisted under an older codec schema
    are skipped, not misparsed. *)

val warm_loaded : t -> int
(** Entries replayed from the store at {!create}. *)

val store_reads : t -> int
(** Memory misses served from the backing store since {!create}. *)

val key : fingerprint:string -> variant_hash:string -> string
(** The cache key for one (overlay structure, compiled application) pair:
    {!Overgen.make_schedule_key}'s length-prefixed join, equal to
    {!Overgen.schedule_key} on the same inputs.  Length prefixes mean no
    two distinct input pairs share a key, whatever bytes the hashes
    contain. *)

val find : t -> string -> outcome option
(** Counted lookup: a [Some] is a hit (from memory or the backing
    store), a [None] a miss. *)

val add : t -> string -> outcome -> unit
(** Store a {!cacheable} outcome (written through to the backing store);
    silently drops transient failures. *)

val find_or_compute : t -> string -> (unit -> outcome) -> outcome * bool
(** [find_or_compute t key compute] returns the cached outcome (flag
    [true]) or runs [compute], stores its outcome if {!cacheable} and
    returns it (flag [false]).  If another thread is already computing
    [key], blocks until that computation resolves and returns its outcome
    as a hit.  An exception from [compute] propagates to the caller after
    clearing the key's pending mark (waiters then recompute); nothing is
    stored.  Visits the [cache.store] fault point before storing. *)

val purge_fingerprint : t -> fingerprint:string -> int
(** Drop every outcome keyed under [fingerprint] — the retire path's
    orphan guard: from the in-memory LRU and, when a store is attached,
    from the durable log (so a later [Store.compact] actually reclaims
    the bytes and a warm restart cannot resurrect records no registered
    overlay can address).  Length-prefixed keys make the prefix match
    exact — no other fingerprint can be swept up.  Returns the number of
    records purged.  Only call when no registered overlay still aliases
    the fingerprint ({!Registry.find_fingerprint}). *)

val purge_fingerprint_store : Overgen_store.Store.t -> fingerprint:string -> int
(** The durable half of {!purge_fingerprint} alone, for retiring against
    a store with no live cache instance (e.g. CLI surgery on a stopped
    service). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** hits / (hits + misses); 0 when empty. *)

val hooks : t -> Overgen.cache_hooks
(** Adapt the cache to the core API: pass as [Overgen.compile_opts.cache]
    to {!Overgen.compile} / {!Overgen.run}.  Errors stored through the
    hooks are scheduling verdicts, hence deterministic and cached. *)
