open Overgen_workload
module Rng = Overgen_util.Rng

type spec = {
  seed : int;
  requests : int;
  users : int;
  working_set : int;
  overlays : (string * Ir.kernel list) list;
  tenants : string array;
}

let spec ?(seed = 42) ?(requests = 200) ?(users = 8) ?(working_set = 3)
    ?(tenants = [||]) ~overlays () =
  { seed; requests; users; working_set; overlays; tenants }

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let generate s =
  if s.overlays = [] then invalid_arg "Trace.generate: no overlays";
  if List.exists (fun (_, pool) -> pool = []) s.overlays then
    invalid_arg "Trace.generate: overlay with an empty kernel pool";
  if s.users < 1 || s.requests < 0 then invalid_arg "Trace.generate: bad spec";
  let rng = Rng.create s.seed in
  (* Separate stream for trace ids so adding tracing did not perturb the
     workload draw sequence existing baselines depend on. *)
  let trace_rng = Rng.of_string (Printf.sprintf "trace-ids:%d" s.seed) in
  let users =
    Array.init s.users (fun _ ->
        let overlay, pool = Rng.choose rng s.overlays in
        let ws = take (max 1 s.working_set) (Rng.shuffle rng pool) in
        (* rank-weighted: a user's first kernel dominates their requests *)
        let weighted =
          List.mapi (fun rank k -> (1.0 /. float_of_int (rank + 1), k)) ws
        in
        (weighted, overlay))
  in
  List.init s.requests (fun id ->
      let u = Rng.int rng s.users in
      let weighted, overlay = users.(u) in
      {
        Service.id;
        user = Printf.sprintf "user-%d" u;
        (* tenants partition the user population round-robin, off the
           workload RNG stream so tenanted traces draw the same kernels *)
        tenant =
          (if Array.length s.tenants = 0 then ""
           else s.tenants.(u mod Array.length s.tenants));
        overlay;
        payload = Service.Kernel (Rng.choose_weighted rng weighted);
        tuned = false;
        trace = Overgen_obs.Obs.Span.fresh_trace trace_rng;
        deadline_s = None;
      })

let distinct_keys s =
  generate s
  |> List.map (fun (r : Service.request) -> (r.overlay, Service.payload_name r.payload))
  |> List.sort_uniq compare |> List.length
