(** A bounded map with least-recently-used eviction.

    The backbone of the compile service's schedule cache: O(1) find/add via
    a hash table over an intrusive doubly-linked recency list.  Not
    thread-safe — {!Cache} serializes access. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; promotes the entry to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promoting. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, promoting to most-recently-used; evicts from the
    least-recently-used end until within capacity. *)

val remove : ('k, 'v) t -> 'k -> bool
(** Drop the entry if present (not counted as an eviction); [true] when
    something was removed. *)

val evictions : ('k, 'v) t -> int
(** Total entries evicted over the structure's lifetime. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries most-recently-used first. *)
