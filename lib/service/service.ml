open Overgen_workload
module Compile = Overgen_mdfg.Compile
module Pool = Overgen_par.Pool
module Obs = Overgen_obs.Obs

type mode = Deterministic | Workers of int

type request = {
  id : int;
  user : string;
  overlay : string;
  kernel : Ir.kernel;
  tuned : bool;
}

type error =
  | Unknown_overlay of string
  | Queue_full
  | Compile_error of string
  | Shutdown

let error_to_string = function
  | Unknown_overlay name -> Printf.sprintf "unknown overlay %S" name
  | Queue_full -> "queue full (admission rejected)"
  | Compile_error e -> "compile error: " ^ e
  | Shutdown -> "service is shut down"

type response = {
  request : request;
  result : (Overgen_scheduler.Schedule.t list, error) result;
  cache_hit : bool;
  service_s : float;
}

type t = {
  registry : Registry.t;
  cache_ : Cache.t option;
  telemetry_ : Telemetry.t;
  queue_wait : Overgen_obs.Metrics.histogram;
      (* admission-to-processing wait, on the telemetry registry *)
  mode : mode;
  pool : Pool.t;
  resp_m : Mutex.t;
  mutable responses : response list;
  (* kernel content hash -> (mDFG variant sets, their content hash); the
     second memoization level that lets cache hits skip the compiler *)
  memo : (string, Compile.compiled * string) Hashtbl.t;
  memo_m : Mutex.t;
}

let telemetry t = t.telemetry_
let cache t = t.cache_
let registry t = t.registry

let memoized_compile t (k : Ir.kernel) tuned =
  let khash = Digest.to_hex (Digest.string (Ir.pretty k)) ^ if tuned then "+t" else "" in
  Mutex.lock t.memo_m;
  let found = Hashtbl.find_opt t.memo khash in
  Mutex.unlock t.memo_m;
  match found with
  | Some cc -> cc
  | None ->
    let compiled = Compile.compile ~tuned k in
    let cc = (compiled, Compile.hash_compiled compiled) in
    Mutex.lock t.memo_m;
    if not (Hashtbl.mem t.memo khash) then Hashtbl.add t.memo khash cc;
    Mutex.unlock t.memo_m;
    cc

(* One request's processing lifecycle, traced as a "request" span with
   the queue wait ([submitted_at] to now) and outcome as attributes, and
   the compile itself as a nested "compile_schedule" span. *)
let process t ~submitted_at req =
  let t0 = Unix.gettimeofday () in
  Overgen_obs.Metrics.observe t.queue_wait (t0 -. submitted_at);
  Obs.Span.with_span "request"
    ~attrs:
      [
        ("id", string_of_int req.id);
        ("user", req.user);
        ("overlay", req.overlay);
        ("kernel", req.kernel.Ir.name);
        ("queue_wait_ms", Printf.sprintf "%.3f" ((t0 -. submitted_at) *. 1000.0));
      ]
  @@ fun () ->
  let result, cache_hit =
    match Registry.find t.registry req.overlay with
    | None -> (Error (Unknown_overlay req.overlay), false)
    | Some entry -> (
      let compiled, chash = memoized_compile t req.kernel req.tuned in
      let compute () =
        Obs.Span.with_span "compile_schedule" @@ fun () ->
        match
          Overgen.compile_variants
            ~opts:{ Overgen.default_opts with tuned = req.tuned }
            entry.overlay compiled
        with
        | Ok c -> Ok c.Overgen.schedules
        | Error e -> Error e
      in
      let lift = function Ok s -> Ok s | Error e -> Error (Compile_error e) in
      match t.cache_ with
      | None -> (lift (compute ()), false)
      | Some c ->
        let key = Cache.key ~fingerprint:entry.fingerprint ~variant_hash:chash in
        let outcome, hit = Cache.find_or_compute c key compute in
        (lift outcome, hit))
  in
  let service_s = Unix.gettimeofday () -. t0 in
  let outcome =
    match result with
    | Error _ -> Telemetry.Failed
    | Ok _ ->
      if Option.is_none t.cache_ then Telemetry.Uncached
      else if cache_hit then Telemetry.Hit
      else Telemetry.Miss
  in
  Obs.Span.add_attr "outcome"
    (match outcome with
    | Telemetry.Hit -> "hit"
    | Telemetry.Miss -> "miss"
    | Telemetry.Uncached -> "uncached"
    | Telemetry.Failed -> "failed");
  Telemetry.record t.telemetry_ outcome ~service_s;
  { request = req; result; cache_hit; service_s }

let complete t resp =
  Mutex.lock t.resp_m;
  t.responses <- resp :: t.responses;
  Mutex.unlock t.resp_m

let create ?(mode = Deterministic) ?(queue_capacity = 1024) ?(caching = true)
    ?cache registry =
  if queue_capacity < 1 then invalid_arg "Service.create: queue_capacity < 1";
  let pool_mode =
    match mode with
    | Deterministic -> Pool.Deterministic
    | Workers n ->
      if n < 1 then invalid_arg "Service.create: Workers n with n < 1";
      Pool.Domains n
  in
  let cache_ =
    if not caching then None
    else Some (match cache with Some c -> c | None -> Cache.create ())
  in
  let telemetry_ = Telemetry.create () in
  {
    registry;
    cache_;
    telemetry_;
    queue_wait =
      Overgen_obs.Metrics.histogram
        (Telemetry.registry telemetry_)
        "overgen_service_queue_wait_seconds"
        ~help:"admission-to-processing wait";
    mode;
    pool = Pool.create ~queue_capacity pool_mode;
    resp_m = Mutex.create ();
    responses = [];
    memo = Hashtbl.create 32;
    memo_m = Mutex.create ();
  }

let submit t req =
  let submitted_at = Unix.gettimeofday () in
  match
    Pool.submit t.pool (fun () -> complete t (process t ~submitted_at req))
  with
  | Ok () -> Ok ()
  | Error Pool.Saturated ->
    Telemetry.record_rejection t.telemetry_;
    Error Queue_full
  | Error Pool.Stopped -> Error Shutdown

let by_id a b = compare a.request.id b.request.id

let drain t =
  Pool.drain t.pool;
  Mutex.lock t.resp_m;
  let rs = t.responses in
  t.responses <- [];
  Mutex.unlock t.resp_m;
  List.sort by_id rs

let run t reqs =
  let collected = ref [] in
  List.iter
    (fun req ->
      let rec admit () =
        match submit t req with
        | Ok () -> ()
        | Error Queue_full -> (
          match t.mode with
          | Deterministic ->
            collected := drain t @ !collected;
            admit ()
          | Workers _ ->
            Unix.sleepf 0.0002;
            admit ())
        | Error e ->
          collected :=
            { request = req; result = Error e; cache_hit = false; service_s = 0.0 }
            :: !collected
      in
      admit ())
    reqs;
  List.sort by_id (drain t @ !collected)

let shutdown t = Pool.shutdown t.pool
