open Overgen_workload
module Compile = Overgen_mdfg.Compile
module Pool = Overgen_par.Pool
module Obs = Overgen_obs.Obs
module Fault = Overgen_fault.Fault
module Rng = Overgen_util.Rng

type mode = Deterministic | Workers of int

(* What a request asks to compile: an already-lowered IR kernel (the
   in-process path) or pragma'd C source for the frontend to parse on
   the worker — the paper's programming interface, submitted as-is. *)
type payload = Kernel of Ir.kernel | Source of string

let payload_name = function
  | Kernel k -> k.Ir.name
  | Source src ->
    Option.value ~default:"<source>" (Overgen_frontend.Frontend.source_name src)

type request = {
  id : int;
  user : string;
  tenant : string;
  overlay : string;
  payload : payload;
  tuned : bool;
  trace : string;
  deadline_s : float option;
}

type error =
  | Unknown_overlay of string
  | Queue_full
  | Quota_exceeded
  | Source_error of string
  | Compile_error of string
  | Transient_failure of string
  | Deadline_exceeded
  | Shutdown

let error_to_string = function
  | Unknown_overlay name -> Printf.sprintf "unknown overlay %S" name
  | Queue_full -> "queue full (admission rejected)"
  | Quota_exceeded -> "tenant quota exceeded (request shed)"
  | Source_error e -> "source error: " ^ e
  | Compile_error e -> "compile error: " ^ e
  | Transient_failure e -> "transient failure (retries exhausted): " ^ e
  | Deadline_exceeded -> "deadline exceeded"
  | Shutdown -> "service is shut down"

type policy = {
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  backoff_seed : int;
  admission_timeout_s : float option;
  store : Overgen_store.Store.t option;
}

let default_policy =
  {
    deadline_s = None;
    retries = 2;
    backoff_s = 0.001;
    backoff_seed = 0;
    admission_timeout_s = Some 30.0;
    store = None;
  }

type response = {
  request : request;
  result : (Overgen_scheduler.Schedule.t list, error) result;
  cache_hit : bool;
  service_s : float;
}

type t = {
  registry : Registry.t;
  cache_ : Cache.t option;
  telemetry_ : Telemetry.t;
  queue_wait : Overgen_obs.Metrics.histogram;
      (* admission-to-processing wait, on the telemetry registry *)
  mode : mode;
  policy : policy;
  pool : Pool.t;
  resp_m : Mutex.t;
  mutable responses : response list;
  (* kernel content hash -> (mDFG variant sets, their content hash); the
     second memoization level that lets cache hits skip the compiler *)
  memo : (string, Compile.compiled * string) Hashtbl.t;
  memo_m : Mutex.t;
}

let telemetry t = t.telemetry_
let cache t = t.cache_
let registry t = t.registry

let memoized_compile t (k : Ir.kernel) tuned =
  let khash = Digest.to_hex (Digest.string (Ir.pretty k)) ^ if tuned then "+t" else "" in
  Mutex.lock t.memo_m;
  let found = Hashtbl.find_opt t.memo khash in
  Mutex.unlock t.memo_m;
  match found with
  | Some cc -> cc
  | None ->
    let compiled = Compile.compile ~tuned k in
    let cc = (compiled, Compile.hash_compiled compiled) in
    Mutex.lock t.memo_m;
    if not (Hashtbl.mem t.memo khash) then Hashtbl.add t.memo khash cc;
    Mutex.unlock t.memo_m;
    cc

let fault_message = function
  | Fault.Injected _ as e -> Fault.describe e
  | e -> Printexc.to_string e

(* Seeded exponential backoff with full jitter: deterministic in
   (backoff_seed, request id, attempt), independent of domain timing. *)
let backoff_pause t req attempt =
  let r =
    Rng.of_string
      (Printf.sprintf "backoff:%d:%d:%d" t.policy.backoff_seed req.id attempt)
  in
  let exp = t.policy.backoff_s *. (2.0 ** float_of_int attempt) in
  let d = Float.min 0.05 ((exp /. 2.0) +. Rng.float r (exp /. 2.0)) in
  if d > 0.0 then Unix.sleepf d

(* One request's processing lifecycle, traced as a "request" span with
   the queue wait ([submitted_at] to now) and outcome as attributes, and
   the compile itself as a nested "compile_schedule" span.

   Failure is a first-class code path here: an exception anywhere in the
   resolve — a raising compiler, scheduler or cache store, injected or
   genuine — is confined to this request.  Transient failures are retried
   under the policy's budget with seeded exponential backoff; everything
   else becomes an [Error] response for this request alone. *)
let process t ~submitted_at req =
  let t0 = Unix.gettimeofday () in
  Overgen_obs.Metrics.observe t.queue_wait (t0 -. submitted_at);
  (* Re-establish the request's trace context on the worker domain: the
     client set it at submission, but this code runs on whichever domain
     picked the job up. *)
  Obs.Span.with_trace req.trace @@ fun () ->
  Obs.Span.with_span "request"
    ~attrs:
      [
        ("id", string_of_int req.id);
        ("user", req.user);
        ("overlay", req.overlay);
        ("kernel", payload_name req.payload);
        ("queue_wait_ms", Printf.sprintf "%.3f" ((t0 -. submitted_at) *. 1000.0));
      ]
  @@ fun () ->
  (* A per-request deadline (stamped by an admission layer from the
     tenant's deadline class) overrides the service-wide policy one. *)
  let deadline =
    match req.deadline_s with Some _ as d -> d | None -> t.policy.deadline_s
  in
  let past_deadline now =
    match deadline with Some d -> now -. submitted_at > d | None -> false
  in
  let resolve () =
    Fault.point Fault.Points.service_process;
    match Registry.find t.registry req.overlay with
    | None -> (Error (Unknown_overlay req.overlay), false)
    | Some entry -> (
      match
        (* Source payloads are parsed here, inside the per-request fault
           isolation; a rejection is deterministic (same source, same
           error), so it answers immediately without touching the retry
           machinery.  A parsed kernel is memoized and cached under
           exactly the same content keys as its in-process [Kernel]
           equivalent — the frontend is invisible to the cache. *)
        match req.payload with
        | Kernel k -> Ok k
        | Source src -> (
          match Overgen_frontend.Frontend.parse src with
          | Ok k -> Ok k
          | Error e ->
            Error (Overgen_frontend.Frontend.error_to_string e))
      with
      | Error e -> (Error (Source_error e), false)
      | Ok kernel -> (
      let compiled, chash = memoized_compile t kernel req.tuned in
      let compute () =
        Obs.Span.with_span "compile_schedule" @@ fun () ->
        match
          Overgen.compile_variants
            ~opts:{ Overgen.default_opts with tuned = req.tuned }
            entry.overlay compiled
        with
        | Ok c -> Ok c.Overgen.schedules
        | Error e -> Error (Cache.deterministic e)
        | exception (Fault.Injected { kind = Fault.Deterministic; _ } as e) ->
          (* input-determined by construction: cache it like any other
             deterministic compile verdict *)
          Error (Cache.deterministic (fault_message e))
      in
      let lift = function
        | Ok s -> Ok s
        | Error (f : Cache.failure) ->
          Error
            (if f.transient then Transient_failure f.reason
             else Compile_error f.reason)
      in
      match t.cache_ with
      | None -> (lift (compute ()), false)
      | Some c ->
        let key = Cache.key ~fingerprint:entry.fingerprint ~variant_hash:chash in
        let outcome, hit = Cache.find_or_compute c key compute in
        (lift outcome, hit)))
  in
  let rec attempt n =
    match resolve () with
    | v -> v
    | exception e ->
      Telemetry.record_fault t.telemetry_;
      Obs.Log.record ~level:Obs.Log.Warn Obs.Log.default "fault"
        ~attrs:[ ("id", string_of_int req.id); ("error", fault_message e) ];
      if Fault.is_transient e then
        if past_deadline (Unix.gettimeofday ()) then begin
          Telemetry.record_deadline ~tenant:req.tenant t.telemetry_;
          Obs.Log.record ~level:Obs.Log.Warn Obs.Log.default "deadline_shed"
            ~attrs:[ ("id", string_of_int req.id) ];
          (Error Deadline_exceeded, false)
        end
        else if n < t.policy.retries then begin
          Telemetry.record_retry ~tenant:req.tenant t.telemetry_;
          Obs.Log.record Obs.Log.default "retry"
            ~attrs:
              [ ("id", string_of_int req.id); ("attempt", string_of_int n) ];
          backoff_pause t req n;
          attempt (n + 1)
        end
        else (Error (Transient_failure (fault_message e)), false)
      else
        (* non-transient: retrying cannot help, isolate and answer *)
        (Error (Compile_error (fault_message e)), false)
  in
  let result, cache_hit =
    if past_deadline t0 then begin
      (* the whole budget went to queueing: shed without compiling *)
      Telemetry.record_deadline ~tenant:req.tenant t.telemetry_;
      Obs.Log.record ~level:Obs.Log.Warn Obs.Log.default "deadline_shed"
        ~attrs:[ ("id", string_of_int req.id); ("where", "queue") ];
      (Error Deadline_exceeded, false)
    end
    else attempt 0
  in
  let service_s = Unix.gettimeofday () -. t0 in
  let outcome =
    match result with
    | Error _ -> Telemetry.Failed
    | Ok _ ->
      if Option.is_none t.cache_ then Telemetry.Uncached
      else if cache_hit then Telemetry.Hit
      else Telemetry.Miss
  in
  Obs.Span.add_attr "outcome"
    (match outcome with
    | Telemetry.Hit -> "hit"
    | Telemetry.Miss -> "miss"
    | Telemetry.Uncached -> "uncached"
    | Telemetry.Failed -> "failed");
  Telemetry.record ~tenant:req.tenant t.telemetry_ outcome ~service_s;
  { request = req; result; cache_hit; service_s }

let complete t resp =
  Mutex.lock t.resp_m;
  t.responses <- resp :: t.responses;
  Mutex.unlock t.resp_m

(* Last-resort isolation: even if [process] itself raises, the batch gets
   its response and the other in-flight requests are untouched.  [k] is
   the completion: batch submissions accumulate for {!drain}, streaming
   submissions ({!submit_k}) hand the response straight to the caller. *)
let job ?k t ~submitted_at req () =
  let resp =
    try process t ~submitted_at req
    with e ->
      Telemetry.record_fault t.telemetry_;
      Telemetry.record t.telemetry_ Telemetry.Failed ~service_s:0.0;
      Obs.Log.record ~level:Obs.Log.Error ~pin:true ~trace:req.trace
        Obs.Log.default "worker_panic"
        ~attrs:[ ("id", string_of_int req.id); ("error", fault_message e) ];
      {
        request = req;
        result = Error (Compile_error (fault_message e));
        cache_hit = false;
        service_s = 0.0;
      }
  in
  match k with None -> complete t resp | Some k -> k resp

let create ?(mode = Deterministic) ?(queue_capacity = 1024) ?(caching = true)
    ?cache ?(policy = default_policy) registry =
  if queue_capacity < 1 then invalid_arg "Service.create: queue_capacity < 1";
  if policy.retries < 0 then invalid_arg "Service.create: retries < 0";
  if policy.backoff_s < 0.0 then invalid_arg "Service.create: backoff_s < 0";
  let pool_mode =
    match mode with
    | Deterministic -> Pool.Deterministic
    | Workers n ->
      if n < 1 then invalid_arg "Service.create: Workers n with n < 1";
      Pool.Domains n
  in
  let cache_ =
    if not caching then None
    else
      Some
        (match cache with
        | Some c -> c  (* the caller owns durability for an explicit cache *)
        | None -> Cache.create ?store:policy.store ())
  in
  let telemetry_ = Telemetry.create () in
  {
    registry;
    cache_;
    telemetry_;
    queue_wait =
      Overgen_obs.Metrics.histogram
        (Telemetry.registry telemetry_)
        "overgen_service_queue_wait_seconds"
        ~help:"admission-to-processing wait";
    mode;
    policy;
    pool = Pool.create ~queue_capacity pool_mode;
    resp_m = Mutex.create ();
    responses = [];
    memo = Hashtbl.create 32;
    memo_m = Mutex.create ();
  }

let log_admission req = function
  | Ok () ->
    Obs.Log.record ~level:Obs.Log.Debug ~trace:req.trace Obs.Log.default
      "admitted"
      ~attrs:[ ("id", string_of_int req.id) ]
  | Error Queue_full ->
    Obs.Log.record ~level:Obs.Log.Warn ~trace:req.trace Obs.Log.default
      "admission_rejected"
      ~attrs:[ ("id", string_of_int req.id) ]
  | Error _ -> ()

let submit t req =
  let submitted_at = Unix.gettimeofday () in
  let r =
    match Pool.submit t.pool (job t ~submitted_at req) with
    | Ok () -> Ok ()
    | Error Pool.Saturated ->
      Telemetry.record_rejection t.telemetry_;
      Error Queue_full
    | Error Pool.Stopped -> Error Shutdown
  in
  log_admission req r;
  r

let submit_k t req ~k =
  let submitted_at = Unix.gettimeofday () in
  match t.mode with
  | Deterministic ->
    (* No worker will ever call [k] — the deterministic queue only runs on
       {!drain} — so the streaming contract degenerates to inline
       execution on the caller's thread. *)
    job ~k t ~submitted_at req ();
    Ok ()
  | Workers _ ->
    let r =
      match Pool.submit t.pool (job ~k t ~submitted_at req) with
      | Ok () -> Ok ()
      | Error Pool.Saturated ->
        Telemetry.record_rejection t.telemetry_;
        Error Queue_full
      | Error Pool.Stopped -> Error Shutdown
    in
    log_admission req r;
    r

(* Same-overlay batch submission: one pool job runs the whole batch
   sequentially, so a group of compiles sharing an ADG fingerprint pays
   one queue round-trip and resolves the registry entry / warms the
   compile memo once.  Isolation stays per-request — each element goes
   through [job], so one poisoned request cannot take down its batch
   mates — and [k] fires exactly once per request, in batch order. *)
let submit_batch_k t reqs ~k =
  let submitted_at = Unix.gettimeofday () in
  let run_batch () =
    List.iter (fun req -> job ~k t ~submitted_at req ()) reqs
  in
  match reqs with
  | [] -> Ok ()
  | _ -> (
    match t.mode with
    | Deterministic ->
      run_batch ();
      Ok ()
    | Workers _ -> (
      match Pool.submit t.pool run_batch with
      | Ok () -> Ok ()
      | Error Pool.Saturated ->
        Telemetry.record_rejection t.telemetry_;
        Error Queue_full
      | Error Pool.Stopped -> Error Shutdown))

let mode t = t.mode
let policy t = t.policy

let by_id a b = compare a.request.id b.request.id

let drain t =
  (* jobs never raise (isolation above), so any residue here is a bug in
     the service itself — surface it rather than hide it *)
  (match Pool.drain_all t.pool with [] -> () | e :: _ -> raise e);
  Mutex.lock t.resp_m;
  let rs = t.responses in
  t.responses <- [];
  Mutex.unlock t.resp_m;
  List.sort by_id rs

let run t reqs =
  let collected = ref [] in
  List.iter
    (fun req ->
      let give_up err =
        collected :=
          { request = req; result = Error err; cache_hit = false; service_s = 0.0 }
          :: !collected
      in
      (* Admission control: [Deterministic] drains in place (single
         thread, the queue can always be emptied); [Workers] waits with
         escalating pauses up to the policy's admission timeout, then
         sheds the request instead of spinning forever. *)
      let rec admit waited pause =
        match submit t req with
        | Ok () -> ()
        | Error Queue_full -> (
          match t.mode with
          | Deterministic ->
            collected := drain t @ !collected;
            admit waited pause
          | Workers _ -> (
            match t.policy.admission_timeout_s with
            | Some limit when waited >= limit ->
              Telemetry.record_shed t.telemetry_;
              Obs.Log.record ~level:Obs.Log.Warn ~trace:req.trace
                Obs.Log.default "admission_shed"
                ~attrs:[ ("id", string_of_int req.id) ];
              give_up Queue_full
            | _ ->
              Unix.sleepf pause;
              admit (waited +. pause) (Float.min (pause *. 2.0) 0.005)))
        | Error e -> give_up e
      in
      admit 0.0 0.0002)
    reqs;
  List.sort by_id (drain t @ !collected)

let shutdown t = Pool.shutdown t.pool
