module Store = Overgen_store.Store
module Codec = Overgen_store.Codec
module Serial = Overgen_adg.Serial

type entry = { name : string; overlay : Overgen.overlay; fingerprint : string }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
  store : Store.t option;
  m : Mutex.t;
}

let ns = "overlay-registry"
let schema = "registry-overlay-v1"

(* The persisted form of an overlay leads with the design's canonical
   Serial text (version-tagged); the rest of the overlay (synthesis
   report, trained model, DSE trace) rides as a schema-tagged blob.  On
   load the Serial text is re-parsed and its fingerprint compared against
   the blob's design — a record that fails either check is rejected, not
   misparsed. *)
let encode_overlay (overlay : Overgen.overlay) =
  let b = Buffer.create 4096 in
  Codec.put_string b (Codec.encode_sys overlay.Overgen.design.sys);
  Codec.put_string b (Codec.encode_marshal ~schema overlay);
  Buffer.contents b

let decode_overlay s : Overgen.overlay option =
  match
    let pos = ref 0 in
    let sys_payload = Codec.get_string s pos in
    let blob = Codec.get_string s pos in
    (Codec.decode_sys sys_payload, Codec.decode_marshal ~schema blob)
  with
  | exception Codec.Truncated -> None
  | Ok sys, Ok overlay
    when Serial.fingerprint sys = Overgen.fingerprint overlay ->
    Some overlay
  | _ -> None

let add_entry t name overlay =
  let entry = { name; overlay; fingerprint = Overgen.fingerprint overlay } in
  Hashtbl.add t.tbl name entry;
  t.order <- name :: t.order;
  entry

let create ?store () =
  let t = { tbl = Hashtbl.create 8; order = []; store; m = Mutex.create () } in
  (* Warm start: named overlays registered by a previous process come
     back in registration order.  Undecodable records (an older schema, a
     failed integrity check) are skipped — the name is simply absent. *)
  (match store with
  | None -> ()
  | Some s ->
    List.iter
      (fun (name, v) ->
        match decode_overlay v with
        | Some overlay when not (Hashtbl.mem t.tbl name) ->
          ignore (add_entry t name overlay)
        | _ -> ())
      (Store.bindings s ~ns));
  t

let register t ~name overlay =
  Mutex.lock t.m;
  let r =
    if Hashtbl.mem t.tbl name then
      Error (Printf.sprintf "overlay %S is already registered" name)
    else Ok (add_entry t name overlay)
  in
  Mutex.unlock t.m;
  (* write-through outside the lock: the store has its own *)
  (match (r, t.store) with
  | Ok _, Some s -> Store.put s ~ns ~key:name (encode_overlay overlay)
  | _ -> ());
  r

let remove t name =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.tbl name with
    | None ->
      Error (Printf.sprintf "overlay %S is not registered" name)
    | Some entry ->
      Hashtbl.remove t.tbl name;
      t.order <- List.filter (fun n -> n <> name) t.order;
      Ok entry
  in
  Mutex.unlock t.m;
  (* delete-through outside the lock, mirroring [register]: a registry
     restored from this store must not resurrect the retired name *)
  (match (r, t.store) with
  | Ok _, Some s -> Store.delete s ~ns ~key:name
  | _ -> ());
  r

let find t name =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.m;
  r

let names t =
  Mutex.lock t.m;
  let r = List.rev t.order in
  Mutex.unlock t.m;
  r

let find_fingerprint t fp =
  Mutex.lock t.m;
  let r =
    List.rev t.order
    |> List.filter_map (Hashtbl.find_opt t.tbl)
    |> List.filter (fun e -> e.fingerprint = fp)
  in
  Mutex.unlock t.m;
  r

let length t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n
