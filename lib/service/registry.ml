type entry = { name : string; overlay : Overgen.overlay; fingerprint : string }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
  m : Mutex.t;
}

let create () = { tbl = Hashtbl.create 8; order = []; m = Mutex.create () }

let register t ~name overlay =
  Mutex.lock t.m;
  let r =
    if Hashtbl.mem t.tbl name then
      Error (Printf.sprintf "overlay %S is already registered" name)
    else begin
      let entry = { name; overlay; fingerprint = Overgen.fingerprint overlay } in
      Hashtbl.add t.tbl name entry;
      t.order <- name :: t.order;
      Ok entry
    end
  in
  Mutex.unlock t.m;
  r

let find t name =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.m;
  r

let names t =
  Mutex.lock t.m;
  let r = List.rev t.order in
  Mutex.unlock t.m;
  r

let find_fingerprint t fp =
  Mutex.lock t.m;
  let r =
    List.rev t.order
    |> List.filter_map (Hashtbl.find_opt t.tbl)
    |> List.filter (fun e -> e.fingerprint = fp)
  in
  Mutex.unlock t.m;
  r

let length t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n
