(** Request telemetry for the compile service.

    Counts completed requests by outcome, admission rejections, and
    per-request service latencies; prints a one-screen report with
    percentiles (via {!Overgen_util.Stats.percentile}).  Thread-safe. *)

(** How a completed request was served.  [Uncached] means caching was
    disabled for the service; [Failed] covers unknown overlays, compile
    errors and negatively-cached errors. *)
type outcome = Hit | Miss | Uncached | Failed

type t

val create : unit -> t

val record : t -> outcome -> service_s:float -> unit
(** Record one completed request and its processing time. *)

val record_rejection : t -> unit
(** Record one admission rejection (queue full). *)

type snapshot = {
  requests : int;  (** completed; hits + misses + uncached + failures *)
  hits : int;
  misses : int;
  uncached : int;
  failures : int;
  rejections : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val snapshot : t -> snapshot

val hit_rate : snapshot -> float
(** hits / (hits + misses); 0 when no cached requests completed. *)

val report : ?label:string -> wall_s:float -> snapshot -> string
(** One-screen text report; [wall_s] is the trace wall-clock used for the
    throughput line. *)
