(** Request telemetry for the compile service.

    Counts completed requests by outcome, admission rejections, and
    per-request service latencies; prints a one-screen report with exact
    percentiles (one sort via {!Overgen_util.Stats.percentiles}).
    Thread-safe.

    Implemented on a private {!Overgen_obs.Metrics} registry — one per
    instance, exposed by {!registry} — so the same counts can be dumped in
    Prometheus exposition format ([overgen_service_requests_total] by
    outcome, [overgen_service_rejections_total], and an
    [overgen_service_latency_seconds] histogram) and are guaranteed to
    agree with {!snapshot}. *)

(** How a completed request was served.  [Uncached] means caching was
    disabled for the service; [Failed] covers unknown overlays, compile
    errors and negatively-cached errors. *)
type outcome = Hit | Miss | Uncached | Failed

type t

val create : unit -> t

val registry : t -> Overgen_obs.Metrics.registry
(** The backing metrics registry, e.g. for
    {!Overgen_obs.Metrics.render_prometheus}.  The service also registers
    its queue-wait histogram here. *)

val record : ?tenant:string -> t -> outcome -> service_s:float -> unit
(** Record one completed request and its processing time.  A non-empty
    [tenant] additionally bumps the tenant-labeled request counter and
    latency histogram on the same registry; the unlabeled aggregates are
    always bumped, so pre-tenant consumers see unchanged totals. *)

val record_rejection : t -> unit
(** Record one admission rejection (queue full). *)

val record_fault : t -> unit
(** Record one exception observed while processing a request (isolated —
    the request still gets exactly one response). *)

val record_retry : ?tenant:string -> t -> unit
(** Record one transient-failure retry attempt. *)

val record_shed : ?tenant:string -> t -> unit
(** Record one request load-shed after the bounded admission wait. *)

val record_deadline : ?tenant:string -> t -> unit
(** Record one request abandoned because its deadline expired. *)

val record_quota : ?tenant:string -> t -> unit
(** Record one over-quota request shed deterministically at admission
    ([Overgen_fleet.Admission]'s token-bucket verdict). *)

val tenant_requests : t -> (string * int) list
(** Completed-request counts per tenant id (only tenants that recorded at
    least one labeled event appear), sorted by id — the fairness
    numerator the fleet bench and smoke assertions use. *)

type snapshot = {
  requests : int;  (** completed; hits + misses + uncached + failures *)
  hits : int;
  misses : int;
  uncached : int;
  failures : int;
  rejections : int;
  faults : int;  (** exceptions observed (each request still answered) *)
  retries : int;
  shed : int;
  deadlines : int;
  quota_shed : int;  (** over-quota admission sheds (deterministic) *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val snapshot : t -> snapshot

val hit_rate : snapshot -> float
(** hits / (hits + misses); 0 when no cached requests completed. *)

val report : ?label:string -> wall_s:float -> snapshot -> string
(** One-screen text report; [wall_s] is the trace wall-clock used for the
    throughput line. *)
