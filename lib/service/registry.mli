(** The overlay registry: named, already-generated overlays kept warm for
    the compile service.

    Each entry pairs an overlay (sysADG + synthesized resources + trained
    model) with the stable structural fingerprint of its sysADG.  Two
    entries registered under different names but structurally identical
    designs share the same fingerprint — and therefore share schedule
    cache entries, which is exactly what content addressing buys.
    Thread-safe.

    Backed by an {!Overgen_store.Store}, registrations write through to
    disk and a fresh registry on the same store restores every named
    overlay — a restarted service serves the same names without
    regenerating anything.  Persisted designs lead with their canonical
    {!Overgen_adg.Serial} text, re-validated (parse + fingerprint match)
    at load; records that fail validation or carry an older schema are
    skipped, never misparsed. *)

type entry = {
  name : string;
  overlay : Overgen.overlay;
  fingerprint : string;  (** {!Overgen_adg.Serial.fingerprint} of the sysADG *)
}

type t

val create : ?store:Overgen_store.Store.t -> unit -> t
(** With [store], previously persisted overlays are restored in
    registration order and later registrations write through. *)

val register : t -> name:string -> Overgen.overlay -> (entry, string) result
(** Errors if [name] is already taken. *)

val remove : t -> string -> (entry, string) result
(** Unregister [name], returning its entry; errors if unknown.  With a
    backing store the persisted record is deleted too, so a registry
    restored from the same store stays retired.  The fleet manager's
    retire path — schedule-cache records keyed by the entry's fingerprint
    are purged separately ({!Cache.purge_fingerprint}) only when no other
    registered name aliases the same design. *)

val find : t -> string -> entry option

val find_fingerprint : t -> string -> entry list
(** All entries aliasing one design structure, registration order. *)

val names : t -> string list
(** Registration order. *)

val length : t -> int
