(** The overlay registry: named, already-generated overlays kept warm for
    the compile service.

    Each entry pairs an overlay (sysADG + synthesized resources + trained
    model) with the stable structural fingerprint of its sysADG.  Two
    entries registered under different names but structurally identical
    designs share the same fingerprint — and therefore share schedule
    cache entries, which is exactly what content addressing buys.
    Thread-safe. *)

type entry = {
  name : string;
  overlay : Overgen.overlay;
  fingerprint : string;  (** {!Overgen_adg.Serial.fingerprint} of the sysADG *)
}

type t

val create : unit -> t

val register : t -> name:string -> Overgen.overlay -> (entry, string) result
(** Errors if [name] is already taken. *)

val find : t -> string -> entry option

val find_fingerprint : t -> string -> entry list
(** All entries aliasing one design structure, registration order. *)

val names : t -> string list
(** Registration order. *)

val length : t -> int
