type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { cap = capacity; tbl = Hashtbl.create 64; head = None; tail = None; evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k
let evictions t = t.evicted

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.nvalue

let evict_over_capacity t =
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false
    | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.evicted <- t.evicted + 1
  done

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.nvalue <- v;
    promote t n
  | None ->
    let n = { nkey = k; nvalue = v; prev = None; next = None } in
    Hashtbl.add t.tbl k n;
    push_front t n);
  evict_over_capacity t

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> false
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k;
    true

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.nkey, n.nvalue) :: acc) n.next
  in
  go [] t.head
