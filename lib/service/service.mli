(** The overlay compile service.

    An in-process server for the paper's deployment model: overlays are
    generated once (hours of modeled DSE + synthesis), then kept warm in a
    {!Registry} while many users submit compile requests against them.
    Each request resolves a named overlay, compiles the kernel to its mDFG
    variant set (memoized by kernel content hash), and spatially schedules
    it — unless the content-addressed {!Cache} already holds the schedules,
    in which case the request is served in microseconds.

    Two execution modes, both running on the shared
    {!Overgen_par.Pool} worker pool (the same one the island-model DSE
    uses):
    - [Deterministic]: requests are queued by {!submit} and processed in
      FIFO order on the caller's thread by {!drain} — single-threaded and
      exactly reproducible, the mode tests use.
    - [Workers n]: [n] OCaml 5 domains process the queue concurrently.
      Scheduling is deterministic and the cache coalesces concurrent
      computations of one key, so the responses and the hit/miss totals
      match the deterministic mode for the same request list.

    {b Fault tolerance.}  Failure is per-request, never per-batch: an
    exception anywhere in a request's processing (compiler, scheduler,
    cache store — injected by {!Overgen_fault.Fault} or genuine) becomes
    an [Error] response for that request while every other in-flight
    request completes normally, and {!run} always returns exactly one
    response per request.  A {!policy} adds per-request deadlines
    (expired requests are shed with {!Deadline_exceeded}), seeded
    exponential-backoff retries for transient failures, and a bounded
    admission wait in {!run} that sheds with {!Queue_full} instead of
    spinning forever.  Transient failures are never cached.

    Admission is bounded: {!submit} rejects with {!Queue_full} when
    [queue_capacity] requests are already waiting (backpressure), and the
    rejection is counted in {!Telemetry}. *)

open Overgen_workload

type mode = Deterministic | Workers of int

(** What a request asks to compile: a lowered IR kernel (the in-process
    path), or pragma'd C source parsed by {!Overgen_frontend.Frontend}
    on the worker, inside the request's fault isolation.  A [Source]
    payload that parses compiles under exactly the same memo and cache
    keys as the equivalent [Kernel] payload. *)
type payload = Kernel of Ir.kernel | Source of string

val payload_name : payload -> string
(** The kernel name, for telemetry labels ({!Frontend.source_name} peek
    on sources; ["<source>"] when even that fails). *)

type request = {
  id : int;           (** caller-chosen; responses are sorted by it *)
  user : string;      (** for telemetry/tracing only *)
  tenant : string;
      (** multi-tenant identity: labels telemetry, selects the
          weighted-fair queue and quota bucket in
          [Overgen_fleet.Admission], and rides the wire envelope.
          [""] for single-tenant deployments. *)
  overlay : string;   (** registry name to compile against *)
  payload : payload;
  tuned : bool;
  trace : string;
      (** distributed-trace id ({!Overgen_obs.Obs.Span.fresh_trace});
          processing re-establishes it as the worker domain's trace
          context so spans and flight-recorder events correlate across
          process hops.  [""] for untraced requests. *)
  deadline_s : float option;
      (** per-request deadline overriding [policy.deadline_s] — how a
          tenant's deadline class maps onto the policy; [None] defers
          to the service-wide policy *)
}

type error =
  | Unknown_overlay of string
  | Queue_full            (** backpressure: admission rejected or shed *)
  | Quota_exceeded
      (** the tenant's token-bucket quota is exhausted: a deterministic
          shed decided at admission, never queued, never retried *)
  | Source_error of string
      (** a [Source] payload the frontend rejected: deterministic, never
          retried, located as "line:col: message" *)
  | Compile_error of string
      (** deterministic failure: a scheduling verdict, a deterministic
          injected fault, or an isolated unexpected exception *)
  | Transient_failure of string
      (** a transient fault survived every retry the policy allowed *)
  | Deadline_exceeded     (** the request's deadline expired *)
  | Shutdown

val error_to_string : error -> string

(** The fault-tolerance policy of a service instance.  The defaults are
    inert: no deadline, and the retry machinery only engages when a
    transient failure actually occurs, so a fault-free run behaves
    exactly like a service without a policy. *)
type policy = {
  deadline_s : float option;
      (** per-request budget measured from submission, covering queue
          wait, compute and retries; [None] (default) disables it *)
  retries : int;  (** transient retry attempts after the first try; 2 *)
  backoff_s : float;
      (** base backoff before retry [n] of [backoff_s * 2^n] with seeded
          full jitter, capped at 50 ms; 1 ms *)
  backoff_seed : int;  (** jitter seed, for reproducible timing; 0 *)
  admission_timeout_s : float option;
      (** [Workers] mode: how long {!run} may wait for queue space before
          shedding the request as {!Queue_full}; 30 s *)
  store : Overgen_store.Store.t option;
      (** durable artifact store backing the schedule cache: hits and
          stores write through, and a restarted service warm-starts its
          LRU from disk — deterministic negative entries persist,
          transient failures never do.  Ignored when an explicit [cache]
          is passed to {!create} (the caller owns durability then);
          [None] (default) keeps the cache memory-only *)
}

val default_policy : policy

type response = {
  request : request;
  result : (Overgen_scheduler.Schedule.t list, error) result;
  cache_hit : bool;
  service_s : float;  (** processing time, excluding queue wait *)
}

type t

val create :
  ?mode:mode ->
  ?queue_capacity:int ->
  ?caching:bool ->
  ?cache:Cache.t ->
  ?policy:policy ->
  Registry.t ->
  t
(** [mode] defaults to [Deterministic]; [queue_capacity] to 1024 pending
    requests; [caching:false] disables the schedule cache entirely (every
    request runs the scheduler — the cold baseline); [cache] supplies a
    shared cache instance instead of the default fresh 1024-entry one;
    [policy] defaults to {!default_policy}.  Under [Workers n] the
    domains are spawned immediately. *)

val submit : t -> request -> (unit, error) result
(** Non-blocking admission; [Error Queue_full] when the queue is at
    capacity. *)

val submit_k : t -> request -> k:(response -> unit) -> (unit, error) result
(** Streaming admission, what a network server needs: instead of
    accumulating for {!drain}, the request's response is handed to [k] as
    soon as processing completes.  Under [Workers] [k] runs on a worker
    domain (it must be thread-safe and quick — typically: frame the
    response and write it to a socket); under [Deterministic] the request
    is processed inline on the caller's thread before [submit_k] returns.
    Responses delivered through [k] never appear in {!drain}.  The same
    fault-tolerance contract applies: exactly one call to [k] per
    accepted request, failures isolated into [Error] responses. *)

val submit_batch_k : t -> request list -> k:(response -> unit) -> (unit, error) result
(** Same-overlay batch submission, the amortization primitive behind
    [Overgen_fleet.Admission]'s batching: the whole list runs as one pool
    job, sequentially, paying one queue round-trip and touching the
    registry entry / compile memo once for the shared ADG fingerprint.
    Isolation stays per-request — each element runs under the same
    exception confinement as {!submit_k}, so [k] fires exactly once per
    request (in list order) even when some of them fail.  [Error] means
    the whole batch was rejected at admission and [k] was never called. *)

val drain : t -> response list
(** Process ([Deterministic]) or await ([Workers]) everything accepted so
    far; returns the completed responses sorted by request id and clears
    them from the service.  Request failures never surface here — they
    are isolated into [Error] responses. *)

val run : t -> request list -> response list
(** Replay a whole trace: submit every request — on [Queue_full],
    draining ([Deterministic]) or waiting up to the policy's admission
    timeout before shedding ([Workers]) — then drain.  Returns exactly
    one response per request, sorted by request id. *)

val telemetry : t -> Telemetry.t
val cache : t -> Cache.t option
val registry : t -> Registry.t

val mode : t -> mode
val policy : t -> policy
(** Introspection for admission layers wrapping the service: the mode
    decides how an [Overgen_fleet.Admission] pump bounds its in-flight
    window, and the policy's deadline anchors tenant deadline classes. *)

val shutdown : t -> unit
(** Stop and join the worker domains ([Workers] mode).  Idempotent; the
    queue must be drained first. *)
