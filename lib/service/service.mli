(** The overlay compile service.

    An in-process server for the paper's deployment model: overlays are
    generated once (hours of modeled DSE + synthesis), then kept warm in a
    {!Registry} while many users submit compile requests against them.
    Each request resolves a named overlay, compiles the kernel to its mDFG
    variant set (memoized by kernel content hash), and spatially schedules
    it — unless the content-addressed {!Cache} already holds the schedules,
    in which case the request is served in microseconds.

    Two execution modes, both running on the shared
    {!Overgen_par.Pool} worker pool (the same one the island-model DSE
    uses):
    - [Deterministic]: requests are queued by {!submit} and processed in
      FIFO order on the caller's thread by {!drain} — single-threaded and
      exactly reproducible, the mode tests use.
    - [Workers n]: [n] OCaml 5 domains process the queue concurrently.
      Scheduling is deterministic and the cache coalesces concurrent
      computations of one key, so the responses and the hit/miss totals
      match the deterministic mode for the same request list.

    Admission is bounded: {!submit} rejects with {!Queue_full} when
    [queue_capacity] requests are already waiting (backpressure), and the
    rejection is counted in {!Telemetry}. *)

open Overgen_workload

type mode = Deterministic | Workers of int

type request = {
  id : int;           (** caller-chosen; responses are sorted by it *)
  user : string;      (** for telemetry/tracing only *)
  overlay : string;   (** registry name to compile against *)
  kernel : Ir.kernel;
  tuned : bool;
}

type error =
  | Unknown_overlay of string
  | Queue_full        (** backpressure: admission rejected *)
  | Compile_error of string
  | Shutdown

val error_to_string : error -> string

type response = {
  request : request;
  result : (Overgen_scheduler.Schedule.t list, error) result;
  cache_hit : bool;
  service_s : float;  (** processing time, excluding queue wait *)
}

type t

val create :
  ?mode:mode ->
  ?queue_capacity:int ->
  ?caching:bool ->
  ?cache:Cache.t ->
  Registry.t ->
  t
(** [mode] defaults to [Deterministic]; [queue_capacity] to 1024 pending
    requests; [caching:false] disables the schedule cache entirely (every
    request runs the scheduler — the cold baseline); [cache] supplies a
    shared cache instance instead of the default fresh 1024-entry one.
    Under [Workers n] the domains are spawned immediately. *)

val submit : t -> request -> (unit, error) result
(** Non-blocking admission; [Error Queue_full] when the queue is at
    capacity. *)

val drain : t -> response list
(** Process ([Deterministic]) or await ([Workers]) everything accepted so
    far; returns the completed responses sorted by request id and clears
    them from the service. *)

val run : t -> request list -> response list
(** Replay a whole trace: submit every request — on [Queue_full],
    draining ([Deterministic]) or backing off ([Workers]) until admitted —
    then drain.  Responses sorted by request id. *)

val telemetry : t -> Telemetry.t
val cache : t -> Cache.t option
val registry : t -> Registry.t

val shutdown : t -> unit
(** Stop and join the worker domains ([Workers] mode).  Idempotent; the
    queue must be drained first. *)
