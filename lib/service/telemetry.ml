module Stats = Overgen_util.Stats

type outcome = Hit | Miss | Uncached | Failed

type t = {
  mutable hits : int;
  mutable misses : int;
  mutable uncached : int;
  mutable failures : int;
  mutable rejections : int;
  mutable latencies_s : float list;
  m : Mutex.t;
}

let create () =
  {
    hits = 0;
    misses = 0;
    uncached = 0;
    failures = 0;
    rejections = 0;
    latencies_s = [];
    m = Mutex.create ();
  }

let record t outcome ~service_s =
  Mutex.lock t.m;
  (match outcome with
  | Hit -> t.hits <- t.hits + 1
  | Miss -> t.misses <- t.misses + 1
  | Uncached -> t.uncached <- t.uncached + 1
  | Failed -> t.failures <- t.failures + 1);
  t.latencies_s <- service_s :: t.latencies_s;
  Mutex.unlock t.m

let record_rejection t =
  Mutex.lock t.m;
  t.rejections <- t.rejections + 1;
  Mutex.unlock t.m

type snapshot = {
  requests : int;
  hits : int;
  misses : int;
  uncached : int;
  failures : int;
  rejections : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let snapshot t =
  Mutex.lock t.m;
  let ms = List.map (fun s -> s *. 1000.0) t.latencies_s in
  let s =
    {
      requests = t.hits + t.misses + t.uncached + t.failures;
      hits = t.hits;
      misses = t.misses;
      uncached = t.uncached;
      failures = t.failures;
      rejections = t.rejections;
      mean_ms = Stats.mean ms;
      p50_ms = Stats.percentile ~p:50.0 ms;
      p90_ms = Stats.percentile ~p:90.0 ms;
      p99_ms = Stats.percentile ~p:99.0 ms;
      max_ms = List.fold_left Float.max 0.0 ms;
    }
  in
  Mutex.unlock t.m;
  s

let hit_rate s =
  let cached = s.hits + s.misses in
  if cached = 0 then 0.0 else float_of_int s.hits /. float_of_int cached

let report ?(label = "") ~wall_s s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "-- compile service telemetry%s %s"
    (if label = "" then "" else " [" ^ label ^ "]")
    (String.make (max 2 (40 - String.length label)) '-');
  line "requests    %6d   (hits %d, misses %d, uncached %d, failures %d)"
    s.requests s.hits s.misses s.uncached s.failures;
  if s.hits + s.misses > 0 then line "hit rate    %6.1f %%" (100.0 *. hit_rate s);
  line "rejections  %6d" s.rejections;
  line "latency      p50 %.3f ms   p90 %.3f ms   p99 %.3f ms   mean %.3f ms   max %.3f ms"
    s.p50_ms s.p90_ms s.p99_ms s.mean_ms s.max_ms;
  if wall_s > 0.0 then
    line "throughput  %8.1f req/s   (%d requests in %.3f s)"
      (float_of_int s.requests /. wall_s)
      s.requests wall_s;
  Buffer.contents b
