module Stats = Overgen_util.Stats
module Metrics = Overgen_obs.Metrics

type outcome = Hit | Miss | Uncached | Failed

(* Counts live in a private Overgen_obs.Metrics registry (one per service
   instance, so Prometheus dumps are per-service and agree with the
   snapshot exactly); raw latencies are additionally kept under a mutex so
   the snapshot's percentiles stay exact rather than bucket-approximated. *)
(* The per-tenant dimension: the same request/shed/retry counters and the
   latency histogram, labeled by tenant, alongside — never instead of —
   the unlabeled aggregates (so every pre-tenant consumer of the
   Prometheus dump and the snapshot sees exactly the numbers it always
   did).  Lazily materialized per tenant id, memoized here so the record
   path pays one hashtable probe rather than a registry scan. *)
type tenant_metrics = {
  tm_hits : Metrics.counter;
  tm_misses : Metrics.counter;
  tm_uncached : Metrics.counter;
  tm_failed : Metrics.counter;
  tm_retries : Metrics.counter;
  tm_shed : Metrics.counter;
  tm_deadlines : Metrics.counter;
  tm_quota : Metrics.counter;
  tm_latency : Metrics.histogram;
}

type t = {
  reg : Metrics.registry;
  hits : Metrics.counter;
  misses : Metrics.counter;
  uncached : Metrics.counter;
  failures : Metrics.counter;
  rejections : Metrics.counter;
  faults : Metrics.counter;
  retries : Metrics.counter;
  shed : Metrics.counter;
  deadlines : Metrics.counter;
  quota_shed : Metrics.counter;
  latency : Metrics.histogram;
  tenants : (string, tenant_metrics) Hashtbl.t;
  mutable latencies_s : float list;
  m : Mutex.t;
}

let requests_metric = "overgen_service_requests_total"

let create () =
  let reg = Metrics.create_registry ~label:"compile service" () in
  let req outcome =
    Metrics.counter reg requests_metric
      ~help:"completed compile requests by outcome"
      ~labels:[ ("outcome", outcome) ]
  in
  {
    reg;
    hits = req "hit";
    misses = req "miss";
    uncached = req "uncached";
    failures = req "failed";
    rejections =
      Metrics.counter reg "overgen_service_rejections_total"
        ~help:"admission rejections (queue full)";
    faults =
      Metrics.counter reg "overgen_service_faults_total"
        ~help:"exceptions observed while processing (isolated per request)";
    retries =
      Metrics.counter reg "overgen_service_retries_total"
        ~help:"transient-failure retry attempts";
    shed =
      Metrics.counter reg "overgen_service_shed_total"
        ~help:"requests load-shed after the bounded admission wait";
    deadlines =
      Metrics.counter reg "overgen_service_deadline_exceeded_total"
        ~help:"requests abandoned because their deadline expired";
    quota_shed =
      Metrics.counter reg "overgen_service_quota_shed_total"
        ~help:"over-quota requests shed deterministically at admission";
    latency =
      Metrics.histogram reg "overgen_service_latency_seconds"
        ~help:"request service time, excluding queue wait";
    tenants = Hashtbl.create 8;
    latencies_s = [];
    m = Mutex.create ();
  }

let registry t = t.reg

(* The get-or-create for a tenant's labeled series; [Metrics.counter] is
   itself get-or-create keyed on (name, labels), so re-creating after a
   lost race would be harmless — the hashtable only memoizes the lookup. *)
let tenant_metrics t tenant =
  Mutex.lock t.m;
  let tm =
    match Hashtbl.find_opt t.tenants tenant with
    | Some tm -> tm
    | None ->
      let labels = [ ("tenant", tenant) ] in
      let req outcome =
        Metrics.counter t.reg requests_metric
          ~help:"completed compile requests by outcome"
          ~labels:(("outcome", outcome) :: labels)
      in
      let tm =
        {
          tm_hits = req "hit";
          tm_misses = req "miss";
          tm_uncached = req "uncached";
          tm_failed = req "failed";
          tm_retries =
            Metrics.counter t.reg "overgen_service_retries_total"
              ~help:"transient-failure retry attempts" ~labels;
          tm_shed =
            Metrics.counter t.reg "overgen_service_shed_total"
              ~help:"requests load-shed after the bounded admission wait"
              ~labels;
          tm_deadlines =
            Metrics.counter t.reg "overgen_service_deadline_exceeded_total"
              ~help:"requests abandoned because their deadline expired"
              ~labels;
          tm_quota =
            Metrics.counter t.reg "overgen_service_quota_shed_total"
              ~help:"over-quota requests shed deterministically at admission"
              ~labels;
          tm_latency =
            Metrics.histogram t.reg "overgen_service_latency_seconds"
              ~help:"request service time, excluding queue wait" ~labels;
        }
      in
      Hashtbl.add t.tenants tenant tm;
      tm
  in
  Mutex.unlock t.m;
  tm

(* [with_tenant] gates every labeled bump: the empty tenant (single-tenant
   deployments, pre-fleet callers) emits no labeled series at all, so the
   Prometheus dump is byte-identical to the pre-tenant one. *)
let with_tenant t tenant f =
  match tenant with
  | None | Some "" -> ()
  | Some id -> f (tenant_metrics t id)

let record ?tenant t outcome ~service_s =
  Metrics.incr
    (match outcome with
    | Hit -> t.hits
    | Miss -> t.misses
    | Uncached -> t.uncached
    | Failed -> t.failures);
  Metrics.observe t.latency service_s;
  with_tenant t tenant (fun tm ->
      Metrics.incr
        (match outcome with
        | Hit -> tm.tm_hits
        | Miss -> tm.tm_misses
        | Uncached -> tm.tm_uncached
        | Failed -> tm.tm_failed);
      Metrics.observe tm.tm_latency service_s);
  Mutex.lock t.m;
  t.latencies_s <- service_s :: t.latencies_s;
  Mutex.unlock t.m

let record_rejection t = Metrics.incr t.rejections
let record_fault t = Metrics.incr t.faults

let record_retry ?tenant t =
  Metrics.incr t.retries;
  with_tenant t tenant (fun tm -> Metrics.incr tm.tm_retries)

let record_shed ?tenant t =
  Metrics.incr t.shed;
  with_tenant t tenant (fun tm -> Metrics.incr tm.tm_shed)

let record_deadline ?tenant t =
  Metrics.incr t.deadlines;
  with_tenant t tenant (fun tm -> Metrics.incr tm.tm_deadlines)

let record_quota ?tenant t =
  Metrics.incr t.quota_shed;
  with_tenant t tenant (fun tm -> Metrics.incr tm.tm_quota)

let tenant_requests t =
  Mutex.lock t.m;
  let per =
    Hashtbl.fold
      (fun id tm acc ->
        let n =
          Metrics.counter_value tm.tm_hits
          + Metrics.counter_value tm.tm_misses
          + Metrics.counter_value tm.tm_uncached
          + Metrics.counter_value tm.tm_failed
        in
        (id, n) :: acc)
      t.tenants []
  in
  Mutex.unlock t.m;
  List.sort compare per

type snapshot = {
  requests : int;
  hits : int;
  misses : int;
  uncached : int;
  failures : int;
  rejections : int;
  faults : int;
  retries : int;
  shed : int;
  deadlines : int;
  quota_shed : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let snapshot t =
  Mutex.lock t.m;
  let raw = t.latencies_s in
  Mutex.unlock t.m;
  let ms = Array.of_list (List.rev_map (fun s -> s *. 1000.0) raw) in
  (* Stats.percentiles: one sort for all three quantiles, and 0.0 — not an
     exception or NaN — on an empty latency buffer *)
  let p50_ms, p90_ms, p99_ms =
    match Stats.percentiles ms [ 50.0; 90.0; 99.0 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> (0.0, 0.0, 0.0)
  in
  let hits = Metrics.counter_value t.hits
  and misses = Metrics.counter_value t.misses
  and uncached = Metrics.counter_value t.uncached
  and failures = Metrics.counter_value t.failures in
  {
    requests = hits + misses + uncached + failures;
    hits;
    misses;
    uncached;
    failures;
    rejections = Metrics.counter_value t.rejections;
    faults = Metrics.counter_value t.faults;
    retries = Metrics.counter_value t.retries;
    shed = Metrics.counter_value t.shed;
    deadlines = Metrics.counter_value t.deadlines;
    quota_shed = Metrics.counter_value t.quota_shed;
    mean_ms =
      (if Array.length ms = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 ms /. float_of_int (Array.length ms));
    p50_ms;
    p90_ms;
    p99_ms;
    max_ms = Array.fold_left Float.max 0.0 ms;
  }

let hit_rate s =
  let cached = s.hits + s.misses in
  if cached = 0 then 0.0 else float_of_int s.hits /. float_of_int cached

let report ?(label = "") ~wall_s s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "-- compile service telemetry%s %s"
    (if label = "" then "" else " [" ^ label ^ "]")
    (String.make (max 2 (40 - String.length label)) '-');
  line "requests    %6d   (hits %d, misses %d, uncached %d, failures %d)"
    s.requests s.hits s.misses s.uncached s.failures;
  if s.hits + s.misses > 0 then line "hit rate    %6.1f %%" (100.0 *. hit_rate s);
  line "rejections  %6d" s.rejections;
  (* the fault-tolerance line only appears once failure paths were hit, so
     fault-free reports render exactly as they always did *)
  if s.faults + s.retries + s.shed + s.deadlines > 0 then
    line "faults      %6d   (retries %d, shed %d, deadline-exceeded %d)"
      s.faults s.retries s.shed s.deadlines;
  if s.quota_shed > 0 then line "quota shed  %6d" s.quota_shed;
  line "latency      p50 %.3f ms   p90 %.3f ms   p99 %.3f ms   mean %.3f ms   max %.3f ms"
    s.p50_ms s.p90_ms s.p99_ms s.mean_ms s.max_ms;
  if wall_s > 0.0 then
    line "throughput  %8.1f req/s   (%d requests in %.3f s)"
      (float_of_int s.requests /. wall_s)
      s.requests wall_s;
  Buffer.contents b
