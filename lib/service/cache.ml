open Overgen_scheduler
module Fault = Overgen_fault.Fault

type failure = { reason : string; transient : bool }
type outcome = (Schedule.t list, failure) result

let deterministic reason = { reason; transient = false }
let transient reason = { reason; transient = true }

(* Only results that are a property of the (overlay, application) inputs
   may be remembered: successes and deterministic errors.  A transient
   failure (timeout, injected fault, flaky infrastructure) must never
   poison the key — the next request for it recomputes. *)
let cacheable = function Ok _ -> true | Error f -> not f.transient

type t = {
  lru : (string, outcome) Lru.t;
  pending : (string, unit) Hashtbl.t;  (* keys being computed right now *)
  mutable hits : int;
  mutable misses : int;
  m : Mutex.t;
  resolved : Condition.t;
}

let create ?(capacity = 1024) () =
  {
    lru = Lru.create ~capacity;
    pending = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    m = Mutex.create ();
    resolved = Condition.create ();
  }

let key ~fingerprint ~variant_hash = fingerprint ^ ":" ^ variant_hash

let find t k =
  Mutex.lock t.m;
  let r = Lru.find t.lru k in
  (match r with None -> t.misses <- t.misses + 1 | Some _ -> t.hits <- t.hits + 1);
  Mutex.unlock t.m;
  r

let add t k v =
  if cacheable v then begin
    Mutex.lock t.m;
    Lru.add t.lru k v;
    Mutex.unlock t.m
  end

(* With t.m held: either the cached outcome, or the right to compute it.
   Waiting re-checks after every resolution broadcast; if the entry was
   already evicted by then — or the computing thread raised and stored
   nothing — the waiter simply computes it itself. *)
let rec acquire t k =
  match Lru.find t.lru k with
  | Some outcome -> `Hit outcome
  | None ->
    if Hashtbl.mem t.pending k then begin
      Condition.wait t.resolved t.m;
      acquire t k
    end
    else begin
      Hashtbl.add t.pending k ();
      `Compute
    end

let find_or_compute t k compute =
  Mutex.lock t.m;
  match acquire t k with
  | `Hit outcome ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.m;
    (outcome, true)
  | `Compute ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.m;
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.m;
          Hashtbl.remove t.pending k;
          Condition.broadcast t.resolved;
          Mutex.unlock t.m)
        (fun () ->
          let outcome = compute () in
          if cacheable outcome then begin
            Fault.point Fault.Points.cache_store;
            Overgen_obs.Obs.Span.with_span "cache_store"
              ~attrs:[ ("key", String.sub k 0 (min 12 (String.length k))) ]
            @@ fun () ->
            Mutex.lock t.m;
            Lru.add t.lru k outcome;
            Mutex.unlock t.m
          end;
          outcome)
    in
    (outcome, false)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let stats t =
  Mutex.lock t.m;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = Lru.evictions t.lru;
      entries = Lru.length t.lru;
      capacity = Lru.capacity t.lru;
    }
  in
  Mutex.unlock t.m;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Core errors surfaced through the hooks are scheduling verdicts — a
   property of the inputs — so they map to deterministic failures. *)
let hooks t =
  {
    Overgen.lookup =
      (fun k ->
        match find t k with
        | Some (Ok s) -> Some (Ok s)
        | Some (Error f) -> Some (Error f.reason)
        | None -> None);
    store = (fun k r -> add t k (Result.map_error deterministic r));
  }
