open Overgen_scheduler
module Fault = Overgen_fault.Fault
module Store = Overgen_store.Store
module Codec = Overgen_store.Codec

type failure = { reason : string; transient : bool }
type outcome = (Schedule.t list, failure) result

let deterministic reason = { reason; transient = false }
let transient reason = { reason; transient = true }

(* Only results that are a property of the (overlay, application) inputs
   may be remembered: successes and deterministic errors.  A transient
   failure (timeout, injected fault, flaky infrastructure) must never
   poison the key — the next request for it recomputes.  The same rule
   gates the durable store: deterministic negatives survive a restart,
   transient ones never reach disk. *)
let cacheable = function Ok _ -> true | Error f -> not f.transient

type t = {
  lru : (string, outcome) Lru.t;
  pending : (string, unit) Hashtbl.t;  (* keys being computed right now *)
  store : Store.t option;  (* durable write/read-through backing *)
  mutable warm_loaded_ : int;
  mutable store_reads_ : int;
  mutable hits : int;
  mutable misses : int;
  m : Mutex.t;
  resolved : Condition.t;
}

let ns = "schedule-cache"
let schema = "cache-outcome-v1"

let encode_outcome (o : outcome) = Codec.encode_marshal ~schema o

let decode_outcome s : outcome option =
  match Codec.decode_marshal ~schema s with Ok o -> Some o | Error _ -> None

let create ?(capacity = 1024) ?store () =
  let t =
    {
      lru = Lru.create ~capacity;
      pending = Hashtbl.create 16;
      store;
      warm_loaded_ = 0;
      store_reads_ = 0;
      hits = 0;
      misses = 0;
      m = Mutex.create ();
      resolved = Condition.create ();
    }
  in
  (* Warm start: replay the persisted outcomes in write order, so the most
     recently written binding lands most recently used and the LRU bound
     applies to the replay exactly as it would have to live traffic.
     Records from an older schema are rejected by the codec and skipped —
     a format bump costs a cold start, never a misparse. *)
  (match store with
  | None -> ()
  | Some s ->
    List.iter
      (fun (k, v) ->
        match decode_outcome v with
        | Some outcome ->
          Lru.add t.lru k outcome;
          t.warm_loaded_ <- t.warm_loaded_ + 1
        | None -> ())
      (Store.bindings s ~ns));
  t

let warm_loaded t = t.warm_loaded_
let store_reads t = t.store_reads_

let key ~fingerprint ~variant_hash =
  Overgen.make_schedule_key ~fingerprint ~variant_hash

let persist t k v =
  match t.store with
  | None -> ()
  | Some s -> Store.put s ~ns ~key:k (encode_outcome v)

(* With t.m held: the LRU, then the durable store.  An entry evicted from
   memory (or written by a previous process) is still served — and
   promoted back into the LRU — from disk. *)
let lookup_locked t k =
  match Lru.find t.lru k with
  | Some outcome -> Some outcome
  | None -> (
    match t.store with
    | None -> None
    | Some s -> (
      match Option.bind (Store.get s ~ns ~key:k) decode_outcome with
      | Some outcome ->
        t.store_reads_ <- t.store_reads_ + 1;
        Lru.add t.lru k outcome;
        Some outcome
      | None -> None))

let find t k =
  Mutex.lock t.m;
  let r = lookup_locked t k in
  (match r with None -> t.misses <- t.misses + 1 | Some _ -> t.hits <- t.hits + 1);
  Mutex.unlock t.m;
  r

let add t k v =
  if cacheable v then begin
    Mutex.lock t.m;
    Lru.add t.lru k v;
    Mutex.unlock t.m;
    persist t k v
  end

(* With t.m held: either the cached outcome, or the right to compute it.
   Waiting re-checks after every resolution broadcast; if the entry was
   already evicted by then — or the computing thread raised and stored
   nothing — the waiter simply computes it itself. *)
let rec acquire t k =
  match lookup_locked t k with
  | Some outcome -> `Hit outcome
  | None ->
    if Hashtbl.mem t.pending k then begin
      Condition.wait t.resolved t.m;
      acquire t k
    end
    else begin
      Hashtbl.add t.pending k ();
      `Compute
    end

let find_or_compute t k compute =
  Mutex.lock t.m;
  match acquire t k with
  | `Hit outcome ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.m;
    (outcome, true)
  | `Compute ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.m;
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.m;
          Hashtbl.remove t.pending k;
          Condition.broadcast t.resolved;
          Mutex.unlock t.m)
        (fun () ->
          let outcome = compute () in
          if cacheable outcome then begin
            Fault.point Fault.Points.cache_store;
            Overgen_obs.Obs.Span.with_span "cache_store"
              ~attrs:[ ("key", String.sub k 0 (min 12 (String.length k))) ]
            @@ fun () ->
            Mutex.lock t.m;
            Lru.add t.lru k outcome;
            Mutex.unlock t.m;
            (* write-through: a store failure (injected or genuine) raises
               out of here and is isolated per-request by the service; the
               in-memory entry above still serves until then *)
            persist t k outcome
          end;
          outcome)
    in
    (outcome, false)

(* Retiring an overlay must take its schedule outcomes with it — in
   memory and on disk — or the durable log accumulates records no live
   fingerprint can ever address again (orphans that survive restarts and
   inflate every warm start).  Keys are the length-prefixed join
   [Overgen.make_schedule_key], so every key for a fingerprint starts
   with the fingerprint's own length-prefixed form and prefix matching
   cannot collide across fingerprints. *)
let fingerprint_prefix fp = Printf.sprintf "%d:%s" (String.length fp) fp

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let purge_fingerprint_store s ~fingerprint =
  let prefix = fingerprint_prefix fingerprint in
  let keys =
    List.filter (fun (k, _) -> has_prefix ~prefix k) (Store.bindings s ~ns)
  in
  List.iter (fun (k, _) -> Store.delete s ~ns ~key:k) keys;
  List.length keys

let purge_fingerprint t ~fingerprint =
  let prefix = fingerprint_prefix fingerprint in
  Mutex.lock t.m;
  let mem_keys =
    List.filter_map
      (fun (k, _) -> if has_prefix ~prefix k then Some k else None)
      (Lru.to_list t.lru)
  in
  List.iter (fun k -> ignore (Lru.remove t.lru k)) mem_keys;
  Mutex.unlock t.m;
  match t.store with
  | None -> List.length mem_keys
  | Some s ->
    (* the durable side also holds keys already evicted from memory; every
       in-memory cacheable entry was written through, so the store count
       dominates whenever a store is attached *)
    let store_purged = purge_fingerprint_store s ~fingerprint in
    max store_purged (List.length mem_keys)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let stats t =
  Mutex.lock t.m;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = Lru.evictions t.lru;
      entries = Lru.length t.lru;
      capacity = Lru.capacity t.lru;
    }
  in
  Mutex.unlock t.m;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Core errors surfaced through the hooks are scheduling verdicts — a
   property of the inputs — so they map to deterministic failures. *)
let hooks t =
  {
    Overgen.lookup =
      (fun k ->
        match find t k with
        | Some (Ok s) -> Some (Ok s)
        | Some (Error f) -> Some (Error f.reason)
        | None -> None);
    store = (fun k r -> add t k (Result.map_error deterministic r));
  }
