(** Synthetic multi-user request traces for the compile service.

    Models the deployment the paper motivates: a population of users, each
    with a small working set of kernels they recompile repeatedly (edit /
    tune / rerun loops), all hitting shared pre-generated overlays.  Each
    user is pinned to one overlay and draws a working set from that
    overlay's kernel pool; kernel choice within the set is rank-weighted
    (zipf-like), so traces show the heavy repetition real compile farms
    see — which is what the schedule cache exploits.  Fully deterministic
    for a given spec. *)

open Overgen_workload

type spec = {
  seed : int;
  requests : int;
  users : int;         (** user population *)
  working_set : int;   (** kernels per user (clamped to the pool size) *)
  overlays : (string * Ir.kernel list) list;
      (** registry name and the kernel pool its users draw from *)
  tenants : string array;
      (** tenant ids to partition the user population over, round-robin
          by user index; [[||]] (default) leaves requests untenanted.
          Drawn off the workload RNG stream, so tenanted traces request
          the same kernels as untenanted ones. *)
}

val spec :
  ?seed:int ->
  ?requests:int ->
  ?users:int ->
  ?working_set:int ->
  ?tenants:string array ->
  overlays:(string * Ir.kernel list) list ->
  unit ->
  spec
(** Defaults: seed 42, 200 requests, 8 users, working sets of 3, no
    tenants. *)

val generate : spec -> Service.request list
(** Requests numbered 0.. in arrival order.
    @raise Invalid_argument on an empty overlay list or kernel pool. *)

val distinct_keys : spec -> int
(** Distinct (overlay, kernel) pairs the trace touches — the number of
    scheduler runs a warm cache needs. *)
