(** A generic OCaml 5 domain worker pool with a bounded job queue.

    Extracted from the compile service so every parallel subsystem — the
    service's request processing and the DSE's island annealers — runs on
    one implementation of queueing, backpressure and domain lifecycle.

    Two modes:
    - [Deterministic]: no domains are spawned.  Jobs accepted by {!submit}
      wait in the queue until {!drain} runs them FIFO on the caller's
      thread, and {!map} applies the function sequentially in list order.
      Exactly reproducible; what the tests use.
    - [Domains n]: [n] OCaml 5 domains consume the shared queue
      concurrently.  Job order of {e completion} is unspecified, but
      {!map} always returns results in input order.

    Admission is bounded: {!submit} rejects with [Saturated] once
    [queue_capacity] jobs are waiting (backpressure).  {!map} instead
    blocks until space frees up, so arbitrarily large batches complete. *)

type mode = Deterministic | Domains of int

type t

type error =
  | Saturated  (** the bounded queue is full; admission rejected *)
  | Stopped    (** the pool was shut down *)

val create : ?queue_capacity:int -> mode -> t
(** [queue_capacity] defaults to 1024 pending jobs.  Under [Domains n] the
    worker domains are spawned immediately.
    @raise Invalid_argument if [queue_capacity < 1] or [Domains n] with
    [n < 1]. *)

val mode : t -> mode

val workers : t -> int
(** Concurrency width: [n] for [Domains n], [1] for [Deterministic]. *)

val submit : t -> (unit -> unit) -> (unit, error) result
(** Non-blocking admission of one job.  A job that raises does not kill
    its worker: the first such exception is held and re-raised by the next
    {!drain} or {!map}. *)

val pending : t -> int
(** Jobs accepted but not yet completed (queued or running). *)

val drain : t -> unit
(** [Deterministic]: run every queued job FIFO on the caller's thread
    (including jobs those jobs enqueue).  [Domains]: block until every
    accepted job has completed.  Re-raises the first job exception, if
    any. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element and return the results in input order.
    [Deterministic]: sequential [List.map].  [Domains]: one job per
    element, blocking (not rejecting) on a full queue, then a {!drain}
    barrier.  Re-raises the first exception [f] raised. *)

val shutdown : t -> unit
(** Stop accepting jobs and join the worker domains.  Idempotent.  Jobs
    still queued are discarded; call {!drain} first to complete them. *)
