(** A generic OCaml 5 domain worker pool with a bounded job queue.

    Extracted from the compile service so every parallel subsystem — the
    service's request processing and the DSE's island annealers — runs on
    one implementation of queueing, backpressure and domain lifecycle.

    Two modes:
    - [Deterministic]: no domains are spawned.  Jobs accepted by {!submit}
      wait in the queue until {!drain} runs them FIFO on the caller's
      thread, and {!map} applies the function sequentially in list order.
      Exactly reproducible; what the tests use.
    - [Domains n]: [n] OCaml 5 domains consume the shared queue
      concurrently.  Job order of {e completion} is unspecified, but
      {!map} always returns results in input order.

    Admission is bounded: {!submit} rejects with [Saturated] once
    [queue_capacity] jobs are waiting (backpressure).  {!map} instead
    blocks until space frees up, so arbitrarily large batches complete. *)

type mode = Deterministic | Domains of int

type t

type error =
  | Saturated  (** the bounded queue is full; admission rejected *)
  | Stopped    (** the pool was shut down *)

val create : ?queue_capacity:int -> mode -> t
(** [queue_capacity] defaults to 1024 pending jobs.  Under [Domains n] the
    worker domains are spawned immediately.
    @raise Invalid_argument if [queue_capacity < 1] or [Domains n] with
    [n < 1]. *)

val mode : t -> mode

val workers : t -> int
(** Concurrency width: [n] for [Domains n], [1] for [Deterministic]. *)

val submit : t -> (unit -> unit) -> (unit, error) result
(** Non-blocking admission of one job.  A job that raises does not kill
    its worker: every such exception is held and surfaced by the next
    {!drain} (which re-raises the earliest) or {!drain_all} (which
    returns them all). *)

val pending : t -> int
(** Jobs accepted but not yet completed (queued or running). *)

val drain : t -> unit
(** [Deterministic]: run every queued job FIFO on the caller's thread
    (including jobs those jobs enqueue).  [Domains]: block until every
    accepted job has completed.  Re-raises the earliest-recorded job
    exception, if any, discarding the rest — use {!drain_all} to recover
    every failure. *)

val drain_all : t -> exn list
(** Like {!drain}, but never raises: completes every accepted job and
    returns all held job exceptions, earliest first (empty when every job
    succeeded).  Clears the failure list. *)

val failures : t -> exn list
(** Take (and clear) the job exceptions recorded so far, earliest first,
    without draining. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element and return the results in input order.
    Every element is attempted even if an earlier one raises; if any
    raised, the exception of the {e earliest element in input order} is
    re-raised (deterministic across modes).  [Domains]: one job per
    element, blocking (not rejecting) on a full queue, then a barrier.
    Failures of [f] are confined to the call — they are never mixed into
    the pool-level failure list seen by {!drain}. *)

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but total: each element's outcome is surfaced in place as
    [Ok y] or [Error exn], in input order, and nothing is re-raised. *)

val shutdown : t -> unit
(** Stop accepting jobs and join the worker domains.  Idempotent.  Jobs
    still queued are discarded; call {!drain} first to complete them. *)
