type mode = Deterministic | Domains of int

type error = Saturated | Stopped

type t = {
  mode : mode;
  queue_capacity : int;
  m : Mutex.t;
  nonempty : Condition.t;  (* workers: the queue gained a job *)
  not_full : Condition.t;  (* blocking submitters: the queue lost a job *)
  all_done : Condition.t;  (* drain: outstanding reached zero *)
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;  (* accepted, not yet completed *)
  mutable stopping : bool;
  mutable failed : exn list;  (* job exceptions, most recent first *)
  mutable domains : unit Domain.t list;
}

let mode t = t.mode
let workers t = match t.mode with Deterministic -> 1 | Domains n -> n

let pending t =
  Mutex.lock t.m;
  let n = t.outstanding in
  Mutex.unlock t.m;
  n

let record_failure t e =
  Mutex.lock t.m;
  t.failed <- e :: t.failed;
  Mutex.unlock t.m

let failures t =
  Mutex.lock t.m;
  let es = List.rev t.failed in
  t.failed <- [];
  Mutex.unlock t.m;
  es

(* Run one job (exceptions are held, not propagated) and mark it done. *)
let run_job t job =
  (try job () with e -> record_failure t e);
  Mutex.lock t.m;
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then Condition.broadcast t.all_done;
  Mutex.unlock t.m

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  match Queue.take_opt t.queue with
  | None -> Mutex.unlock t.m (* stopping with an empty queue *)
  | Some job ->
    Condition.signal t.not_full;
    Mutex.unlock t.m;
    run_job t job;
    worker t

let create ?(queue_capacity = 1024) mode =
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity < 1";
  (match mode with
  | Domains n when n < 1 -> invalid_arg "Pool.create: Domains n with n < 1"
  | Domains _ | Deterministic -> ());
  let t =
    {
      mode;
      queue_capacity;
      m = Mutex.create ();
      nonempty = Condition.create ();
      not_full = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      stopping = false;
      failed = [];
      domains = [];
    }
  in
  (match mode with
  | Deterministic -> ()
  | Domains n -> t.domains <- List.init n (fun _ -> Domain.spawn (fun () -> worker t)));
  t

let submit t job =
  Mutex.lock t.m;
  let r =
    if t.stopping then Error Stopped
    else if Queue.length t.queue >= t.queue_capacity then Error Saturated
    else begin
      Queue.push job t.queue;
      t.outstanding <- t.outstanding + 1;
      Condition.signal t.nonempty;
      Ok ()
    end
  in
  Mutex.unlock t.m;
  r

(* map's admission: block on the [not_full] condition instead of rejecting,
   so a batch larger than the queue bound still completes. *)
let submit_blocking t job =
  Mutex.lock t.m;
  while (not t.stopping) && Queue.length t.queue >= t.queue_capacity do
    Condition.wait t.not_full t.m
  done;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.map: pool is shut down"
  end
  else begin
    Queue.push job t.queue;
    t.outstanding <- t.outstanding + 1;
    Condition.signal t.nonempty;
    Mutex.unlock t.m
  end

(* Complete every accepted job without touching the failure list. *)
let barrier t =
  match t.mode with
  | Domains _ ->
    Mutex.lock t.m;
    while t.outstanding > 0 do
      Condition.wait t.all_done t.m
    done;
    Mutex.unlock t.m
  | Deterministic ->
    let rec loop () =
      Mutex.lock t.m;
      match Queue.take_opt t.queue with
      | None -> Mutex.unlock t.m
      | Some job ->
        Mutex.unlock t.m;
        run_job t job;
        loop ()
    in
    loop ()

let drain_all t =
  barrier t;
  failures t

let drain t =
  match drain_all t with [] -> () | e :: _ -> raise e

let map_result t f xs =
  let wrap x = match f x with v -> Ok v | exception e -> Error e in
  match t.mode with
  | Deterministic -> List.map wrap xs
  | Domains _ ->
    (* Jobs catch into their own slot, so a raising [f] cannot pollute the
       pool-level failure list or be misattributed to another caller. *)
    let arr = Array.make (List.length xs) None in
    List.iteri (fun i x -> submit_blocking t (fun () -> arr.(i) <- Some (wrap x))) xs;
    barrier t;
    Array.to_list arr
    |> List.map (function
         | Some r -> r
         | None ->
           (* only possible if a concurrent shutdown discarded the job *)
           Error (Invalid_argument "Pool.map: job did not complete"))

let map t f xs =
  List.map
    (function Ok y -> y | Error e -> raise e)
    (map_result t f xs)

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  (* discard still-queued jobs; callers drain first to complete them *)
  let dropped = Queue.length t.queue in
  Queue.clear t.queue;
  t.outstanding <- t.outstanding - dropped;
  if t.outstanding = 0 then Condition.broadcast t.all_done;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.not_full;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.m;
  List.iter Domain.join ds
