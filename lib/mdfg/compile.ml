open Overgen_adg
open Overgen_workload

type variant = {
  kernel : string;
  region : Ir.region;
  tuned : bool;
  unroll : int;
  dfg : Dfg.t;
  streams : Stream.t list;
  arrays : Stream.array_info list;
  port_slots : (int * Ir.aref list) list;
  iters : float;
  firings : float;
}

type compiled = {
  kname : string;
  suite : Suite.t;
  window_reuse : bool;
  needs_broadcast : bool;
  per_region : variant list list;
}

let default_unrolls = [ 1; 2; 4; 8; 16 ]

(* ---------- analysis helpers ---------- *)

let product f l = List.fold_left (fun acc x -> acc *. f x) 1.0 l
let avg_trips loops = product (fun (l : Ir.loop) -> Ir.trip_avg l.trip) loops

(* Port-FIFO (stationary) reuse: the maximal innermost run of loops whose
   induction variable does not appear in the subscript keeps the operand
   resident in the port (paper Section IV-B, "Stationary Reuse"). *)
let stationary_factor loops vars =
  let rec go acc = function
    | [] -> acc
    | (l : Ir.loop) :: rest ->
      if List.mem l.var vars then acc else go (acc *. Ir.trip_avg l.trip) rest
  in
  go 1.0 (List.rev loops)

let range_width loops terms =
  List.fold_left
    (fun acc (v, c) ->
      match List.find_opt (fun (l : Ir.loop) -> l.var = v) loops with
      | Some l -> acc + (abs c * (Ir.trip_max l.trip - 1))
      | None -> acc)
    0 terms

(* ---------- group collection ---------- *)

type group = {
  key : string;
  garray : string;
  terms : (string * int) list;  (* post-unroll subscript coefficients *)
  via : string option;          (* index array of an indirect access *)
  mutable slots : (int * int) list;
      (* distinct (lane-tag, constant) pairs, sorted: one port lane each.
         Loop-variant accesses keep one slot per unroll lane even when their
         addresses overlap — automatic unrolling does not exploit
         overlapped reuse (paper Q2); loop-invariant operands share a single
         slot (tag 0), which is ordinary invariant hoisting. *)
  mutable consts : int list;    (* distinct constant offsets, sorted *)
}

type store_class = Plain | Acc_inner of Op.t | Rec_acc of Op.t

let group_key ~array ~terms ~via =
  let ts =
    List.map (fun (v, c) -> Printf.sprintf "%s:%d" v c) terms
    |> String.concat ","
  in
  array ^ "|" ^ ts ^ match via with Some s -> "@" ^ s | None -> ""

type collector = {
  tbl : (string, group) Hashtbl.t;
  mutable order : string list;  (* first-seen order, reversed *)
}

let collector () = { tbl = Hashtbl.create 16; order = [] }

let collect c ~array ~terms ~via ~tag ~const =
  let key = group_key ~array ~terms ~via in
  let g =
    match Hashtbl.find_opt c.tbl key with
    | Some g -> g
    | None ->
      let g = { key; garray = array; terms; via; slots = []; consts = [] } in
      Hashtbl.add c.tbl key g;
      c.order <- key :: c.order;
      g
  in
  if not (List.mem (tag, const) g.slots) then
    g.slots <- List.sort compare ((tag, const) :: g.slots);
  if not (List.mem const g.consts) then
    g.consts <- List.sort compare (const :: g.consts);
  key

let groups_in_order c =
  List.rev_map (fun key -> Hashtbl.find c.tbl key) c.order

(* ---------- per-variant compilation ---------- *)

let compile_region (k : Ir.kernel) (region : Ir.region) ~tuned ~unroll =
  let dtype = k.dtype in
  let eb = Dtype.bytes dtype in
  let loops = region.loops in
  let iv = (Ir.innermost region).var in
  let iters = avg_trips loops in
  let arr_elems name =
    match List.assoc_opt name k.arrays with Some n -> n | None -> 1
  in
  let subst_aff a ~lane =
    if unroll = 1 then a
    else Ir.affine_subst_scaled a ~var:iv ~scale:unroll ~offset:lane
  in
  let subst_aref (r : Ir.aref) ~lane : Ir.aref =
    match r.index with
    | Ir.Direct a -> { r with index = Ir.Direct (subst_aff a ~lane) }
    | Ir.Indirect { idx_array; at } ->
      { r with index = Ir.Indirect { idx_array; at = subst_aff at ~lane } }
  in
  let parts_of_aref (r : Ir.aref) =
    match r.index with
    | Ir.Direct a -> (r.array, a.Ir.terms, None, a.Ir.const)
    | Ir.Indirect { idx_array; at } ->
      (r.array, at.Ir.terms, Some idx_array, at.Ir.const)
  in
  (* Classify each statement once (pre-substitution: the target's use of the
     innermost variable is unchanged by unrolling). *)
  let classify = function
    | Ir.Store _ | Ir.Reduce _ -> Plain
    | Ir.Accum (aref, op, _) -> (
      match aref.index with
      | Ir.Indirect _ -> Plain (* indirect RMW: treat as plain load+store *)
      | Ir.Direct a ->
        let vars = Ir.affine_vars a in
        if List.mem iv vars then
          let reduction =
            List.filter (fun (l : Ir.loop) -> not (List.mem l.var vars)) loops
          in
          if reduction = [] then Plain else Rec_acc op
        else Acc_inner op)
  in
  (* Phase A: collect load and store groups over all unroll lanes. *)
  let loadc = collector () and storec = collector () in
  let store_class = Hashtbl.create 8 in
  let collect_aref c ~lane aref =
    let array, terms, via, const = parts_of_aref aref in
    let tag = if List.mem_assoc iv terms then lane else 0 in
    collect c ~array ~terms ~via ~tag ~const
  in
  List.iter
    (fun stmt ->
      let cls = classify stmt in
      for lane = 0 to unroll - 1 do
        (* expression loads *)
        let expr =
          match stmt with
          | Ir.Store (_, e) | Ir.Accum (_, _, e) | Ir.Reduce (_, _, e) -> e
        in
        List.iter
          (fun aref -> ignore (collect_aref loadc ~lane (subst_aref aref ~lane)))
          (Ir.loads_of_expr expr);
        (* target *)
        match (stmt, cls) with
        | Ir.Store (aref, _), _ ->
          ignore (collect_aref storec ~lane (subst_aref aref ~lane))
        | Ir.Accum (aref, _, _), Acc_inner _ ->
          (* one write per reduction; the accumulator initializes from a
             one-shot read of the target *)
          ignore (collect_aref loadc ~lane (subst_aref aref ~lane));
          let key = collect_aref storec ~lane (subst_aref aref ~lane) in
          Hashtbl.replace store_class key cls
        | Ir.Accum (aref, _, _), (Rec_acc _ | Plain) ->
          let sa = subst_aref aref ~lane in
          ignore (collect_aref loadc ~lane sa);
          let key = collect_aref storec ~lane sa in
          Hashtbl.replace store_class key cls
        | Ir.Reduce _, _ -> ()
      done)
    region.body;
  (* Phase B: DFG inputs, one vector port per load group. *)
  let b = Dfg.Builder.create () in
  let load_groups = groups_in_order loadc in
  let input_ids = Hashtbl.create 16 in
  let operand_of = Hashtbl.create 32 in
  List.iter
    (fun g ->
      let vars = List.map fst g.terms in
      let stationary = stationary_factor loops vars in
      let id =
        Dfg.Builder.input b
          ~width_bytes:(List.length g.slots * eb)
          ~stated:(stationary > 1.0)
      in
      Hashtbl.replace input_ids g.key id;
      List.iteri
        (fun slot_idx (tag, const) ->
          Hashtbl.replace operand_of (g.key, tag, const) { Dfg.src = id; lane = slot_idx })
        g.slots)
    load_groups;
  let lookup ~lane aref =
    let array, terms, via, const = parts_of_aref aref in
    let tag = if List.mem_assoc iv terms then lane else 0 in
    let key = group_key ~array ~terms ~via in
    match Hashtbl.find_opt operand_of (key, tag, const) with
    | Some o -> o
    | None -> invalid_arg ("Compile: uncollected load " ^ Ir.aref_to_string aref)
  in
  let rec eval ~lane expr : Dfg.operand =
    match expr with
    | Ir.Load aref -> lookup ~lane (subst_aref aref ~lane)
    | Ir.Const v -> { Dfg.src = Dfg.Builder.const b v; lane = 0 }
    | Ir.Param p -> { Dfg.src = Dfg.Builder.const b ~name:p 1.0; lane = 0 }
    | Ir.Unop (op, e) ->
      { Dfg.src = Dfg.Builder.inst b op dtype [ eval ~lane e ]; lane = 0 }
    | Ir.Binop (op, x, y) ->
      { Dfg.src = Dfg.Builder.inst b op dtype [ eval ~lane x; eval ~lane y ]; lane = 0 }
  in
  let tree_combine op operands =
    (* balanced reduction tree; Sub-accumulation sums the terms *)
    let tree_op = if op = Op.Sub then Op.Add else op in
    let rec go = function
      | [] -> invalid_arg "Compile.tree_combine: empty"
      | [ x ] -> x
      | xs ->
        let rec pair = function
          | a :: bb :: rest ->
            { Dfg.src = Dfg.Builder.inst b tree_op dtype [ a; bb ]; lane = 0 }
            :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        go (pair xs)
    in
    go operands
  in
  (* Phase C: evaluate bodies, recording store results per group+const. *)
  let store_results : ((string * int) * int, Dfg.operand) Hashtbl.t = Hashtbl.create 16 in
  let scalar_outputs = ref [] in
  List.iter
    (fun stmt ->
      let cls = classify stmt in
      match (stmt, cls) with
      | Ir.Store (aref, e), _ ->
        for lane = 0 to unroll - 1 do
          let res = eval ~lane e in
          let array, terms, via, const = parts_of_aref (subst_aref aref ~lane) in
          let tag = if List.mem_assoc iv terms then lane else 0 in
          Hashtbl.replace store_results ((group_key ~array ~terms ~via, tag), const) res
        done
      | Ir.Accum (aref, op, e), Acc_inner _ ->
        let lane_results =
          List.init unroll (fun lane -> eval ~lane e)
        in
        let combined = tree_combine op lane_results in
        let init = lookup ~lane:0 (subst_aref aref ~lane:0) in
        let acc =
          { Dfg.src = Dfg.Builder.inst b op dtype ~acc:true [ combined; init ];
            lane = 0 }
        in
        let array, terms, via, const = parts_of_aref (subst_aref aref ~lane:0) in
        ignore (List.mem_assoc iv terms);
        Hashtbl.replace store_results ((group_key ~array ~terms ~via, 0), const) acc
      | Ir.Accum (aref, op, e), (Rec_acc _ | Plain) ->
        for lane = 0 to unroll - 1 do
          let target = subst_aref aref ~lane in
          let old_v = lookup ~lane target in
          let res =
            { Dfg.src = Dfg.Builder.inst b op dtype [ old_v; eval ~lane e ]; lane = 0 }
          in
          let array, terms, via, const = parts_of_aref target in
          let tag = if List.mem_assoc iv terms then lane else 0 in
          Hashtbl.replace store_results ((group_key ~array ~terms ~via, tag), const) res
        done
      | Ir.Reduce (name, op, e), _ ->
        let lane_results = List.init unroll (fun lane -> eval ~lane e) in
        let combined = tree_combine op lane_results in
        let acc =
          { Dfg.src = Dfg.Builder.inst b op dtype ~acc:true [ combined ]; lane = 0 }
        in
        let out = Dfg.Builder.output b ~width_bytes:eb [ acc ] in
        scalar_outputs := (name, out) :: !scalar_outputs)
    region.body;
  (* Phase D: one output port per store group. *)
  let store_groups = groups_in_order storec in
  let output_ids = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let operands =
        List.map
          (fun (tag, const) ->
            match Hashtbl.find_opt store_results ((g.key, tag), const) with
            | Some o -> o
            | None -> invalid_arg ("Compile: store without result " ^ g.key))
          g.slots
      in
      let id =
        Dfg.Builder.output b ~width_bytes:(List.length g.slots * eb) operands
      in
      Hashtbl.replace output_ids g.key id)
    store_groups;
  let dfg = Dfg.Builder.finish b in
  (* Phase E: streams with reuse annotations. *)
  let next_stream = ref 0 in
  let fresh () =
    let i = !next_stream in
    incr next_stream;
    i
  in
  let reuse_of g =
    let vars = List.map fst g.terms in
    let s = stationary_factor loops vars in
    let u = List.length g.slots in
    let denom = Float.max s (float_of_int unroll) in
    let traffic = iters *. float_of_int u /. denom in
    let footprint =
      match g.via with
      | Some _ -> arr_elems g.garray
      | None ->
        let width = range_width loops g.terms in
        let spread =
          match g.consts with
          | [] -> 0
          | cs -> List.fold_left max min_int cs - List.fold_left min max_int cs
        in
        min (arr_elems g.garray) (width + spread + 1)
    in
    { Stream.traffic; footprint; stationary = s }
  in
  let stride_of g =
    match g.consts with
    | _ :: _ :: _ ->
      let sorted = List.sort compare g.consts in
      let rec min_gap acc = function
        | a :: (bb :: _ as rest) -> min_gap (min acc (bb - a)) rest
        | [ _ ] | [] -> acc
      in
      max 1 (min_gap max_int sorted)
    | _ ->
      (* coefficient of the deepest loop that appears in the subscript *)
      let rec deepest = function
        | [] -> 1
        | (l : Ir.loop) :: rest ->
          let c = List.assoc_opt l.var g.terms in
          (match c with
           | Some c when c <> 0 -> abs c / max 1 (if l.var = iv then unroll else 1)
           | Some _ | None -> deepest rest)
      in
      max 1 (deepest (List.rev loops))
  in
  let dims_of g = Overgen_util.Stats.clamp_int ~lo:1 ~hi:3 (List.length g.terms) in
  let partitioned_of g =
    match loops with
    | [] -> true
    | outer :: _ -> List.mem_assoc outer.Ir.var g.terms
  in
  let access_of g =
    match g.via with
    | Some via -> Stream.Indirect { via }
    | None -> Stream.Linear { stride = stride_of g }
  in
  (* Recurrence info for Rec_acc store groups (and their partner reads). *)
  let rec_info_of g =
    let vars = List.map fst g.terms in
    let reductions =
      List.filter (fun (l : Ir.loop) -> not (List.mem l.var vars)) loops
    in
    match List.rev reductions with
    | [] -> None
    | innermost_red :: _ ->
      let recurs = product (fun (l : Ir.loop) -> Ir.trip_avg l.trip) reductions in
      let red_pos =
        let rec idx i = function
          | [] -> i
          | (l : Ir.loop) :: rest -> if l.var = innermost_red.var then i else idx (i + 1) rest
        in
        idx 0 loops
      in
      let shallow =
        List.filteri (fun i (l : Ir.loop) -> i < red_pos && List.mem l.var vars) loops
      in
      let prod_shallow = product (fun (l : Ir.loop) -> float_of_int (Ir.trip_max l.trip)) shallow in
      let reuse = reuse_of g in
      let concurrent =
        max 1 (int_of_float (float_of_int reuse.footprint /. Float.max 1.0 prod_shallow))
      in
      let mem_traffic = reuse.traffic /. Float.max 1.0 recurs in
      Some { Stream.concurrent; recurs; mem_traffic }
  in
  let rec_store_keys =
    Hashtbl.fold
      (fun key cls acc -> match cls with Rec_acc _ -> key :: acc | Acc_inner _ | Plain -> acc)
      store_class []
  in
  let read_streams =
    List.map
      (fun g ->
        let recurrence =
          if List.mem g.key rec_store_keys then
            match Hashtbl.find_opt storec.tbl g.key with
            | Some sg -> rec_info_of sg
            | None -> None
          else None
        in
        {
          Stream.id = fresh ();
          array = g.garray;
          dir = Stream.Read;
          access = access_of g;
          dims = dims_of g;
          lanes = List.length g.slots;
          elem_bytes = eb;
          port = Some (Hashtbl.find input_ids g.key);
          partitioned = partitioned_of g;
          reuse = reuse_of g;
          recurrence;
        })
      load_groups
  in
  (* Engine-internal index streams of indirect accesses. *)
  let index_streams =
    List.filter_map
      (fun g ->
        match g.via with
        | None -> None
        | Some via ->
          let idx_g = { g with garray = via; via = None; key = g.key ^ "#idx" } in
          Some
            {
              Stream.id = fresh ();
              array = via;
              dir = Stream.Read;
              access = Stream.Linear { stride = stride_of idx_g };
              dims = dims_of idx_g;
              lanes = List.length g.slots;
              elem_bytes = eb;
              port = None;
              partitioned = partitioned_of idx_g;
              reuse = reuse_of idx_g;
              recurrence = None;
            })
      load_groups
  in
  let write_streams =
    List.map
      (fun g ->
        let recurrence =
          match Hashtbl.find_opt store_class g.key with
          | Some (Rec_acc _) -> rec_info_of g
          | Some (Acc_inner _ | Plain) | None -> None
        in
        {
          Stream.id = fresh ();
          array = g.garray;
          dir = Stream.Write;
          access = access_of g;
          dims = dims_of g;
          lanes = List.length g.slots;
          elem_bytes = eb;
          port = Some (Hashtbl.find output_ids g.key);
          partitioned = partitioned_of g;
          reuse = reuse_of g;
          recurrence;
        })
      store_groups
  in
  let aref_of_slot g (_, const) : Ir.aref =
    match g.via with
    | Some via ->
      { array = g.garray;
        index = Ir.Indirect { idx_array = via; at = { Ir.terms = g.terms; const } } }
    | None -> { array = g.garray; index = Ir.Direct { Ir.terms = g.terms; const } }
  in
  let port_slots =
    List.map
      (fun g -> (Hashtbl.find input_ids g.key, List.map (aref_of_slot g) g.slots))
      load_groups
    @ List.map
        (fun g -> (Hashtbl.find output_ids g.key, List.map (aref_of_slot g) g.slots))
        store_groups
    @ List.map
        (fun (name, out) ->
          (out, [ { Ir.array = name; index = Ir.Direct (Ir.affine_const 0) } ]))
        !scalar_outputs
  in
  let scalar_streams =
    List.map
      (fun (name, out) ->
        {
          Stream.id = fresh ();
          array = name;
          dir = Stream.Write;
          access = Stream.Linear { stride = 0 };
          dims = 1;
          lanes = 1;
          elem_bytes = eb;
          port = Some out;
          partitioned = false;
          reuse = { Stream.traffic = 1.0; footprint = 1; stationary = iters };
          recurrence = None;
        })
      !scalar_outputs
  in
  let streams = read_streams @ index_streams @ write_streams @ scalar_streams in
  let touched =
    List.sort_uniq String.compare (List.map (fun (s : Stream.t) -> s.array) streams)
  in
  let written =
    List.filter_map
      (fun (s : Stream.t) ->
        match s.dir with Stream.Write -> Some s.array | Stream.Read -> None)
      streams
  in
  let arrays =
    List.map
      (fun name ->
        {
          Stream.name;
          elems = arr_elems name;
          elem_bytes = eb;
          read_only = not (List.mem name written);
        })
      touched
  in
  {
    kernel = k.name;
    region;
    tuned;
    unroll;
    dfg;
    streams;
    arrays;
    port_slots;
    iters;
    firings = iters /. float_of_int unroll;
  }

let widest = function
  | [] -> invalid_arg "Compile.widest: no variants"
  | l -> List.fold_left (fun best v -> if v.unroll > best.unroll then v else best) (List.hd l) l

let compile ?(unrolls = default_unrolls) ?(tuned = false) (k : Ir.kernel) =
  Overgen_fault.Fault.(point Points.mdfg_compile);
  let regions = Kernels.regions_for ~tuned k in
  let per_region =
    List.map
      (fun (r : Ir.region) ->
        let inner = Ir.trip_max (Ir.innermost r).trip in
        let us = List.filter (fun u -> u <= inner) unrolls in
        let us = if us = [] then [ 1 ] else us in
        List.map (fun unroll -> compile_region k r ~tuned ~unroll) us)
      regions
  in
  {
    kname = k.name;
    suite = k.suite;
    window_reuse = k.window_reuse;
    needs_broadcast = k.needs_broadcast;
    per_region;
  }

type summary = {
  n_in_ports : int;
  n_out_ports : int;
  n_arrays : int;
  n_mul : int;
  n_add : int;
  n_div : int;
}

let summarize c =
  let bests = List.map widest c.per_region in
  let count f =
    List.fold_left (fun acc v -> acc + f v) 0 bests
  in
  let ops_matching v pred =
    List.fold_left
      (fun acc (op, n) -> if pred op then acc + n else acc)
      0
      (Dfg.op_histogram v.dfg)
  in
  let arrays =
    List.concat_map (fun v -> List.map (fun (a : Stream.array_info) -> a.name) v.arrays) bests
    |> List.sort_uniq String.compare
  in
  {
    n_in_ports = count (fun v -> List.length (Dfg.inputs v.dfg));
    n_out_ports = count (fun v -> List.length (Dfg.outputs v.dfg));
    n_arrays = List.length arrays;
    n_mul = count (fun v -> ops_matching v Op.is_mul);
    n_add =
      count (fun v ->
          ops_matching v (fun op ->
              Op.is_add op || op = Op.Min || op = Op.Max || op = Op.Abs
              || op = Op.Shl || op = Op.Shr));
    n_div = count (fun v -> ops_matching v (fun op -> Op.is_div op || op = Op.Sqrt));
  }

(* ---------- content hashing ---------- *)

(* A canonical textual dump of everything the spatial scheduler consumes:
   the DFG (nodes, kinds, operands), the streams with their reuse
   annotations, the array nodes and the port slots.  Floats are printed in
   hex notation so the dump is exact.  The digest of this dump is the
   content address of the variant in the compile-service schedule cache. *)

let dump_variant buf (v : variant) =
  Printf.bprintf buf "variant %s region=%s tuned=%b unroll=%d iters=%h firings=%h\n"
    v.kernel v.region.Ir.rname v.tuned v.unroll v.iters v.firings;
  List.iter
    (fun (n : Dfg.node) ->
      (match n.kind with
      | Dfg.Inst { op; dtype; acc } ->
        Printf.bprintf buf "n%d inst %s %s acc=%b" n.id (Op.to_string op)
          (Dtype.to_string dtype) acc
      | Dfg.Const { value; name } ->
        Printf.bprintf buf "n%d const %h %s" n.id value
          (Option.value name ~default:"-")
      | Dfg.Input { width_bytes; stated } ->
        Printf.bprintf buf "n%d in %d stated=%b" n.id width_bytes stated
      | Dfg.Output { width_bytes } -> Printf.bprintf buf "n%d out %d" n.id width_bytes);
      List.iter (fun (o : Dfg.operand) -> Printf.bprintf buf " %d.%d" o.src o.lane)
        n.operands;
      Buffer.add_char buf '\n')
    (Dfg.nodes v.dfg);
  List.iter
    (fun (s : Stream.t) ->
      Printf.bprintf buf "s%d %s %s %s dims=%d lanes=%d eb=%d port=%s part=%b %h/%d/%h"
        s.id s.array
        (match s.dir with Stream.Read -> "r" | Stream.Write -> "w")
        (match s.access with
        | Stream.Linear { stride } -> Printf.sprintf "lin%d" stride
        | Stream.Indirect { via } -> "ind:" ^ via)
        s.dims s.lanes s.elem_bytes
        (match s.port with Some p -> string_of_int p | None -> "-")
        s.partitioned s.reuse.traffic s.reuse.footprint s.reuse.stationary;
      (match s.recurrence with
      | Some r -> Printf.bprintf buf " rec=%d/%h/%h" r.concurrent r.recurs r.mem_traffic
      | None -> ());
      Buffer.add_char buf '\n')
    v.streams;
  List.iter
    (fun (a : Stream.array_info) ->
      Printf.bprintf buf "a %s %d %d ro=%b\n" a.name a.elems a.elem_bytes a.read_only)
    v.arrays;
  List.iter
    (fun (port, refs) ->
      Printf.bprintf buf "p%d" port;
      List.iter (fun r -> Printf.bprintf buf " %s" (Ir.aref_to_string r)) refs;
      Buffer.add_char buf '\n')
    v.port_slots

let hash_variant v =
  let buf = Buffer.create 1024 in
  dump_variant buf v;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let hash_compiled c =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "compiled %s %s wr=%b bc=%b\n" c.kname (Suite.to_string c.suite)
    c.window_reuse c.needs_broadcast;
  List.iter (List.iter (dump_variant buf)) c.per_region;
  Digest.to_hex (Digest.string (Buffer.contents buf))
