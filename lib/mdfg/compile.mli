(** The decoupled-spatial compiler: loop-nest regions to mDFG variants.

    For each region the compiler pre-generates several program versions at
    different unrolling degrees (paper Section V-A): the DSE keeps all of
    them and only needs one to schedule successfully, falling back to less
    aggressive variants when hardware is scarce ("relax DFG complexity").

    Each variant bundles the CSE'd dataflow graph, the streams with their
    reuse annotations, and the array nodes — together, the memory-enhanced
    DFG of paper Section IV. *)

open Overgen_workload

type variant = {
  kernel : string;
  region : Ir.region;
  tuned : bool;
  unroll : int;
  dfg : Dfg.t;
  streams : Stream.t list;
  arrays : Stream.array_info list;
  port_slots : (int * Ir.aref list) list;
      (** for each DFG vector port node, the (lane-substituted) array
          reference each lane carries — the information a functional
          executor needs to replay the decoupled execution *)
  iters : float;    (** loop iterations covered by the region *)
  firings : float;  (** DFG executions = iters / unroll *)
}

type compiled = {
  kname : string;
  suite : Suite.t;
  window_reuse : bool;
  needs_broadcast : bool;
  per_region : variant list list;
      (** one inner list per region, unroll-ascending *)
}

val default_unrolls : int list

val compile : ?unrolls:int list -> ?tuned:bool -> Ir.kernel -> compiled
(** Compile all regions of a kernel into their variant sets.  [tuned]
    selects the manually tuned source variant when the kernel has one. *)

val compile_region :
  Ir.kernel -> Ir.region -> tuned:bool -> unroll:int -> variant
(** Compile a single region at a fixed unrolling degree. *)

val widest : variant list -> variant
(** The most aggressive (largest-unroll) variant.
    @raise Invalid_argument on the empty list. *)

val hash_variant : variant -> string
(** Content address of one mDFG variant: the hex digest of a canonical dump
    of everything the spatial scheduler consumes (DFG nodes and operands,
    streams with reuse annotations, array nodes, port slots).  Structurally
    identical variants hash equal regardless of how they were produced. *)

val hash_compiled : compiled -> string
(** Content address over every variant of every region of a compiled
    application, plus its suite-level flags.  Together with a sysADG
    fingerprint ({!Overgen_adg.Serial.fingerprint}) this keys the compile
    service's schedule cache. *)

(** Per-kernel summary used for the paper's Table II. *)
type summary = {
  n_in_ports : int;
  n_out_ports : int;
  n_arrays : int;
  n_mul : int;
  n_add : int;
  n_div : int;
}

val summarize : compiled -> summary
(** Counts over the widest variant of every region, as Table II reports
    ports/arrays/ops "in the best DFG". *)
