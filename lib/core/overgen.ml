open Overgen_adg
open Overgen_workload
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp
module Dse = Overgen_dse.Dse
module Sim = Overgen_sim.Sim
module Obs = Overgen_obs.Obs

(* Pipeline-level metrics on the shared default registry (gated: no-ops
   until [Obs.enable]).  Created lazily so merely linking the library
   never registers metrics. *)
let m_compiles =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_compile_total"
       ~help:"kernel compiles through Overgen.compile_variants")

let m_compile_errors =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_compile_errors_total"
       ~help:"kernel compiles that ended in a scheduling error")

let m_cache_hits =
  lazy
    (Obs.Metrics.counter Obs.Metrics.default "overgen_compile_cache_hits_total"
       ~help:"compiles served from a schedule cache")

let m_compile_s =
  lazy
    (Obs.Metrics.histogram Obs.Metrics.default "overgen_compile_seconds"
       ~help:"wall time of Overgen.compile_variants")

type overlay = {
  design : Dse.design;
  synth : Oracle.full;
  model : Predict.t;
  dse : Dse.result option;
}

let train_model ?(seed = 7) () = Predict.train ~seed ()

let generate ?config ?(device = Device.default) ?(tuned = false) ~model kernels =
  let result = Dse.explore_kernels ?config ~device ~tuned ~model kernels in
  let synth = Oracle.synth_full ~device result.best.sys in
  { design = result.best; synth; model; dse = Some result }

let on_design ~model sys kernels =
  let apps = Dse.compile_apps ~tuned:false kernels in
  match Dse.evaluate ~model sys apps with
  | Error e -> Error e
  | Ok design -> Ok { design; synth = Oracle.synth_full sys; model; dse = None }

let general ~model kernels = on_design ~model (Builder.general_overlay ()) kernels

type report = {
  kernel : string;
  schedules : Schedule.t list;
  cycles : int;
  wall_ms : float;
  ipc : float;
  compile_seconds : float;
  from_cache : bool;
}

let fingerprint overlay = Serial.fingerprint overlay.design.sys

let stored_schedules overlay kname =
  List.find_opt
    (fun scheds ->
      match scheds with
      | (s : Schedule.t) :: _ -> s.variant.kernel = kname
      | [] -> false)
    overlay.design.per_app

type cache_hooks = {
  lookup : string -> (Schedule.t list, string) result option;
  store : string -> (Schedule.t list, string) result -> unit;
}

type compile_opts = {
  tuned : bool;
  stored : [ `Auto | `Use | `Ignore ];
  cache : cache_hooks option;
  prior : Schedule.t list option;
}

let default_opts = { tuned = false; stored = `Auto; cache = None; prior = None }

type compiled = {
  schedules : Schedule.t list;
  seconds : float;
  from_cache : bool;
}

(* Length-prefixed halves: a plain [fp ^ ":" ^ hash] join would collide
   for distinct inputs if a hash scheme ever emitted a ':' (e.g.
   ("a:b", "c") vs ("a", "b:c")). *)
let make_schedule_key ~fingerprint ~variant_hash =
  Printf.sprintf "%d:%s%d:%s"
    (String.length fingerprint) fingerprint
    (String.length variant_hash) variant_hash

let schedule_key overlay (compiled : Overgen_mdfg.Compile.compiled) =
  make_schedule_key ~fingerprint:(fingerprint overlay)
    ~variant_hash:(Overgen_mdfg.Compile.hash_compiled compiled)

let schedule_on_overlay ~use_stored ~prior overlay
    (cc : Overgen_mdfg.Compile.compiled) =
  match prior with
  | Some prior -> (
    (* Incremental path: reuse the caller's schedules from a previous
       (possibly mutated) version of this overlay, re-mapping only what
       broke.  Stored DSE schedules don't compete — the caller's baseline
       is the point of reference. *)
    let r =
      Obs.Span.with_span "spatial_reschedule" ~attrs:[ ("kernel", cc.kname) ]
      @@ fun () -> Spatial.reschedule overlay.design.sys cc ~prior
    in
    match r with Ok (s, _) -> Ok s | Error e -> Error e)
  | None ->
  let stored = if use_stored then stored_schedules overlay cc.kname else None in
  let fresh =
    Obs.Span.with_span "spatial_schedule" ~attrs:[ ("kernel", cc.kname) ]
    @@ fun () -> Spatial.schedule_app overlay.design.sys cc
  in
  (* The DSE may have pruned capabilities down to exactly what its own
     schedules exercise, and its annealed schedules can beat a one-shot
     greedy mapping: use whichever estimates faster. *)
  let est s =
    Obs.Span.with_span "perf_model" @@ fun () ->
    (Overgen_perf.Perf.app overlay.design.sys s).total_cycles
  in
  match (fresh, stored) with
  | Ok f, Some st -> Ok (if est f <= est st then f else st)
  | Ok f, None -> Ok f
  | Error _, Some st -> Ok st
  | Error e, None -> Error e

let compile_variants ?(opts = default_opts) overlay
    (cc : Overgen_mdfg.Compile.compiled) =
  Obs.Span.with_span "schedule" ~attrs:[ ("kernel", cc.kname) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Obs.incr (Lazy.force m_compiles);
  let use_stored =
    match opts.stored with
    | `Auto -> not opts.tuned
    | `Use -> true
    | `Ignore -> false
  in
  let done_ schedules from_cache =
    let seconds = Unix.gettimeofday () -. t0 in
    Obs.observe (Lazy.force m_compile_s) seconds;
    if from_cache then Obs.incr (Lazy.force m_cache_hits);
    Obs.Span.add_attr "from_cache" (string_of_bool from_cache);
    Ok { schedules; seconds; from_cache }
  in
  let errored e =
    Obs.incr (Lazy.force m_compile_errors);
    Error e
  in
  match (opts.cache, opts.prior) with
  (* [prior] bypasses the cache entirely: the outcome depends on the
     caller's baseline schedules, not just the (overlay, variants) key, so
     neither a hit nor a store would be sound. *)
  | None, prior | Some _, (Some _ as prior) -> (
    match schedule_on_overlay ~use_stored ~prior overlay cc with
    | Ok schedules -> done_ schedules false
    | Error e -> errored e)
  | Some hooks, None -> (
    let key = schedule_key overlay cc in
    match hooks.lookup key with
    | Some (Ok schedules) -> done_ schedules true
    | Some (Error e) -> errored e
    | None -> (
      match schedule_on_overlay ~use_stored ~prior:None overlay cc with
      | Ok schedules ->
        hooks.store key (Ok schedules);
        done_ schedules false
      | Error e ->
        hooks.store key (Error e);
        errored e))

let compile ?(opts = default_opts) overlay (k : Ir.kernel) =
  Obs.Span.with_span "compile" ~attrs:[ ("kernel", k.Ir.name) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let cc =
    Obs.Span.with_span "mdfg_build" @@ fun () ->
    Overgen_mdfg.Compile.compile ~tuned:opts.tuned k
  in
  match compile_variants ~opts overlay cc with
  | Ok c -> Ok { c with seconds = Unix.gettimeofday () -. t0 }
  | Error e -> Error e

let run ?(opts = default_opts) overlay (k : Ir.kernel) =
  match compile ~opts overlay k with
  | Error e -> Error e
  | Ok c ->
    let sim =
      Obs.Span.with_span "simulate" ~attrs:[ ("kernel", k.Ir.name) ]
      @@ fun () -> Sim.run overlay.design.sys c.schedules
    in
    Ok
      {
        kernel = k.Ir.name;
        schedules = c.schedules;
        cycles = sim.total_cycles;
        wall_ms = Sim.wall_time_ms overlay.design.sys ~freq_mhz:overlay.synth.freq_mhz sim;
        ipc = sim.sim_ipc;
        compile_seconds = c.seconds;
        from_cache = c.from_cache;
      }

let reconfigure_us overlay =
  float_of_int (Sys_adg.reconfigure_cycles overlay.design.sys)
  /. overlay.synth.freq_mhz

let binary overlay schedules =
  Overgen_isa.Assemble.assemble overlay.design.sys schedules

let rtl overlay = Overgen_rtl.Emit.emit overlay.design.sys

let verify_functional ?(unroll = 4) k = Overgen_exec.Exec.check ~unroll k

(* Reflashing a full VCU118 bitstream takes on the order of seconds
   (paper Section I cites > 1 s). *)
let fpga_reflash_ms = 1400.0
