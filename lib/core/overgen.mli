(** OverGen: domain-specific overlay generation for FPGAs.

    The end-to-end flow of the paper, as a library:

    {[
      let model = Overgen.train_model () in
      (* one-time, per domain: generate a specialized overlay *)
      let overlay = Overgen.generate ~model Overgen_workload.Kernels.(of_suite Suite.Dsp) in
      (* seconds, per application: compile and run *)
      match Overgen.run overlay (Overgen_workload.Kernels.find "fir") with
      | Ok report -> Format.printf "%.3f ms@n" report.wall_ms
      | Error e -> prerr_endline e
    ]}

    The compilation surface is exactly three entry points — {!compile}
    (from a kernel), {!compile_variants} (from pre-compiled mDFG variant
    sets), and {!run} (compile + simulate) — all threading one
    {!compile_opts} record; {!default_opts} gives the stock behavior.

    The heavy phases (DSE hours, synthesis hours) are modeled at paper scale
    but execute in seconds; compilation and simulation are real. *)

open Overgen_adg
open Overgen_workload
open Overgen_scheduler
open Overgen_fpga
open Overgen_mlp

type overlay = {
  design : Overgen_dse.Dse.design;  (** the chosen sysADG and its schedules *)
  synth : Oracle.full;              (** post-synthesis resources and clock *)
  model : Predict.t;
  dse : Overgen_dse.Dse.result option;  (** trace, when DSE was run *)
}

val train_model : ?seed:int -> unit -> Predict.t
(** Train the ML FPGA-resource model (paper Section V-D). *)

val generate :
  ?config:Overgen_dse.Dse.config ->
  ?device:Device.t ->
  ?tuned:bool ->
  model:Predict.t ->
  Ir.kernel list ->
  overlay
(** Run the full overlay-generation DSE for a workload domain and
    "synthesize" the winner. *)

val general : model:Predict.t -> Ir.kernel list -> (overlay, string) result
(** Evaluate the hand-designed general overlay on a workload set (no DSE). *)

val on_design :
  model:Predict.t -> Sys_adg.t -> Ir.kernel list -> (overlay, string) result
(** Map a workload set onto an existing design (e.g. leave-one-out). *)

(** Per-application execution report. *)
type report = {
  kernel : string;
  schedules : Schedule.t list;
  cycles : int;
  wall_ms : float;
  ipc : float;
  compile_seconds : float;  (** real, measured compile+schedule time *)
  from_cache : bool;        (** schedules served from a cache, not scheduled *)
}

val fingerprint : overlay -> string
(** Structural fingerprint of the overlay's sysADG
    ({!Overgen_adg.Serial.fingerprint}); the first half of every schedule
    cache key. *)

(** External schedule-cache hooks: keys are content addresses
    ({!schedule_key}), values are scheduling outcomes so failures can be
    negatively cached.  {!Overgen_service.Cache} provides an LRU-bounded
    implementation. *)
type cache_hooks = {
  lookup : string -> (Schedule.t list, string) result option;
  store : string -> (Schedule.t list, string) result -> unit;
}

(** Options threaded through every compilation entry point.

    - [tuned]: run the tuned mDFG compiler passes.
    - [stored]: whether to consider the DSE's stored per-app schedules as
      candidates (they win only when they estimate faster than a fresh
      spatial schedule).  [`Auto] considers them iff [not tuned] — tuned
      variant sets don't match the DSE-era schedules — which is the stock
      pre-[compile_opts] behavior.  [`Use] / [`Ignore] force it.
    - [cache]: external schedule cache; on a key hit the spatial scheduler
      is skipped and schedules are served in microseconds.
    - [prior]: schedules for this application from a previous (possibly
      mutated) version of the overlay.  When set, scheduling goes through
      {!Overgen_scheduler.Spatial.reschedule} — repair, then incremental
      re-placement of only the broken bindings, then full re-map — and the
      [cache] is bypassed, since the outcome depends on the baseline and
      not just the (overlay, variants) key.  Stored DSE schedules do not
      compete with a [prior] baseline. *)
type compile_opts = {
  tuned : bool;
  stored : [ `Auto | `Use | `Ignore ];
  cache : cache_hooks option;
  prior : Schedule.t list option;
}

val default_opts : compile_opts
(** [{ tuned = false; stored = `Auto; cache = None; prior = None }]. *)

(** Result of a compilation: the chosen schedules, measured wall-clock
    seconds, and whether they were served from [opts.cache]. *)
type compiled = {
  schedules : Schedule.t list;
  seconds : float;
  from_cache : bool;
}

val make_schedule_key : fingerprint:string -> variant_hash:string -> string
(** The content address of one (overlay, application) scheduling problem.
    Both halves are length-prefixed ([<n>:<fingerprint><m>:<hash>]), so
    two distinct input pairs can never encode to the same key even if a
    hash scheme ever emits a delimiter character. *)

val schedule_key : overlay -> Overgen_mdfg.Compile.compiled -> string
(** [make_schedule_key] over [fingerprint overlay] and
    [Compile.hash_compiled compiled].  Structurally identical overlays
    share keys, so registry entries that alias the same design also share
    cached schedules. *)

val compile :
  ?opts:compile_opts -> overlay -> Ir.kernel -> (compiled, string) result
(** Compile an application onto an existing overlay — mDFG variant sets,
    then spatial scheduling, through the cache when [opts.cache] is set.
    [compiled.seconds] is measured wall-clock time: the paper's
    "compilation is 10000x faster" claim. *)

val compile_variants :
  ?opts:compile_opts ->
  overlay ->
  Overgen_mdfg.Compile.compiled ->
  (compiled, string) result
(** Like {!compile} but starting from already-compiled mDFG variant sets;
    the compile service calls this with memoized mDFGs so cache hits skip
    the compiler entirely.  [opts.tuned] only affects the [`Auto] stored
    policy here — the variant sets were compiled by the caller. *)

val run :
  ?opts:compile_opts -> overlay -> Ir.kernel -> (report, string) result
(** {!compile}, then simulate cycle-level and convert to wall time at the
    synthesized clock.  The report's [from_cache] reflects a cache hit. *)

val reconfigure_us : overlay -> float
(** Microseconds to switch the overlay to another application's
    configuration: the fast-reconfiguration claim (paper Q5). *)

val binary : overlay -> Schedule.t list -> Overgen_isa.Assemble.program
(** Lower compiled schedules to the accelerator binary: the spatial-mapping
    bitstream plus the stream-command program (paper Figure 3). *)

val rtl : overlay -> Overgen_rtl.Emit.rtl
(** Emit structural Verilog for the overlay SoC. *)

val verify_functional : ?unroll:int -> Ir.kernel -> (unit, string) result
(** Check the compiler end to end on concrete data: golden loop-nest
    interpretation vs decoupled replay (the paper's pre-FPGA functional
    verification step). *)

val fpga_reflash_ms : float
(** Full-bitstream FPGA reconfiguration time the paper compares against. *)
