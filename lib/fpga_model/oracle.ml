open Overgen_adg
module Rng = Overgen_util.Rng

(* ------------------------------------------------------------------ *)
(* Functional units                                                    *)
(* ------------------------------------------------------------------ *)

let fu_cost op dtype =
  let w = Dtype.bits dtype in
  match (Op.arith_class op, dtype) with
  | `Simple, (Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64) ->
    { Res.lut = w + 8; ff = w; bram = 0; dsp = 0 }
  | `Simple, Dtype.F32 -> { Res.lut = 220; ff = 320; bram = 0; dsp = 2 }
  | `Simple, Dtype.F64 -> { Res.lut = 420; ff = 620; bram = 0; dsp = 3 }
  | `Mul, (Dtype.I8 | Dtype.I16) -> { Res.lut = 40; ff = 60; bram = 0; dsp = 1 }
  | `Mul, Dtype.I32 -> { Res.lut = 60; ff = 110; bram = 0; dsp = 4 }
  | `Mul, Dtype.I64 -> { Res.lut = 120; ff = 220; bram = 0; dsp = 16 }
  | `Mul, Dtype.F32 -> { Res.lut = 110; ff = 160; bram = 0; dsp = 3 }
  | `Mul, Dtype.F64 -> { Res.lut = 210; ff = 320; bram = 0; dsp = 11 }
  | `Div, (Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64) ->
    { Res.lut = (w * w / 4) + 100; ff = 2 * w; bram = 0; dsp = 0 }
  | `Div, Dtype.F32 -> { Res.lut = 800; ff = 950; bram = 0; dsp = 0 }
  | `Div, Dtype.F64 -> { Res.lut = 2800; ff = 3300; bram = 0; dsp = 0 }
  | `Sqrt, (Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64) ->
    { Res.lut = (w * w / 5) + 80; ff = 2 * w; bram = 0; dsp = 0 }
  | `Sqrt, Dtype.F32 -> { Res.lut = 600; ff = 750; bram = 0; dsp = 0 }
  | `Sqrt, Dtype.F64 -> { Res.lut = 2100; ff = 2500; bram = 0; dsp = 0 }

(* A PE instantiates one hardware unit per {e unit class}, not one per
   capability pair: a single integer ALU serves every simple integer op at
   its widest width, each float precision has one add-class IP and one
   multiplier, and dividers/sqrt are dedicated blocks.  This matches how the
   DSAGEN generator shares decoded FUs. *)
let pe_fu_costs (caps : Op.Cap.t) =
  let module S = Set.Make (String) in
  let classes = ref S.empty and costs = Hashtbl.create 8 in
  let need key cost =
    if not (S.mem key !classes) then begin
      classes := S.add key !classes;
      Hashtbl.replace costs key cost
    end
    else
      (* keep the widest/most expensive representative of the class *)
      match Hashtbl.find_opt costs key with
      | Some prev when prev.Res.lut >= cost.Res.lut && prev.Res.dsp >= cost.Res.dsp -> ()
      | Some _ | None -> Hashtbl.replace costs key cost
  in
  Op.Cap.iter
    (fun (op, dt) ->
      let cls = Op.arith_class op in
      let tag =
        match cls with
        | `Simple -> "alu"
        | `Mul -> "mul"
        | `Div -> "div"
        | `Sqrt -> "sqrt"
      in
      let key =
        if Dtype.is_float dt then Printf.sprintf "%s.%s" tag (Dtype.to_string dt)
        else tag ^ ".int"
      in
      need key (fu_cost op dt))
    caps;
  (* an f64 iterative divider/rooter also serves the integer variants *)
  if Hashtbl.mem costs "div.f64" then Hashtbl.remove costs "div.int";
  if Hashtbl.mem costs "sqrt.f64" then Hashtbl.remove costs "sqrt.int";
  Hashtbl.fold (fun _ cost acc -> Res.add acc cost) costs Res.zero

let pe (p : Comp.pe) ~fan_in ~fan_out =
  let fu = pe_fu_costs p.caps in
  (* Subword SIMD: a PE wider than 64 bits replicates its datapath. *)
  let lanes = max 1 (p.width_bits / 64) in
  let fu = Res.scale lanes fu in
  let mux_lut = 3 * p.width_bits * max 1 fan_in / 8 in
  let out_lut = p.width_bits * max 1 fan_out / 8 in
  let delay_lut = p.width_bits * 3 / 2 * max 1 (p.delay_fifo / 4) in
  let const_ff = p.const_regs * p.width_bits in
  let pred_lut = if p.predication then 64 else 0 in
  Res.add fu
    {
      Res.lut = mux_lut + out_lut + delay_lut + pred_lut + 60;
      ff = const_ff + p.width_bits + 80;
      bram = 0;
      dsp = 0;
    }

let switch ~width_bits ~fan_in ~fan_out =
  let fan_in = max 1 fan_in and fan_out = max 1 fan_out in
  (* a full crossbar on the first 64 bits; subword lanes beyond that share
     the route decode and pack two lanes per LUT6 mux stage *)
  let base = min width_bits 64 in
  let extra = max 0 (width_bits - 64) in
  {
    Res.lut = (fan_out * fan_in * (base + (extra / 2)) / 3) + 30;
    ff = (fan_out * width_bits) + 20;
    bram = 0;
    dsp = 0;
  }

let port (p : Comp.port) ~dir =
  let bits = p.width_bytes * 8 in
  let fifo_ff = bits * p.fifo_depth / 4 in
  let extra = (if p.padding then 50 else 0) + if p.stated then 30 else 0 in
  let ctrl = match dir with `In -> 60 | `Out -> 45 in
  { Res.lut = (bits / 2) + extra + ctrl; ff = fifo_ff + 40; bram = 0; dsp = 0 }

let engine (e : Comp.engine) =
  let common = { Res.lut = 350; ff = 420; bram = 0; dsp = 0 } in
  let specific =
    match e.kind with
    | Comp.Dma ->
      let ind = if e.indirect then { Res.lut = 250; ff = 150; bram = 1; dsp = 0 } else Res.zero in
      Res.add ind
        { Res.lut = 600 + (e.bandwidth * 10) + 400; ff = 800; bram = 2 + 2; dsp = 0 }
    | Comp.Spad ->
      let blocks = Overgen_util.Stats.div_ceil e.capacity 4608 in
      let ind = if e.indirect then { Res.lut = 250; ff = 150; bram = 1; dsp = 0 } else Res.zero in
      Res.add ind
        { Res.lut = 250 + (e.bandwidth * 6); ff = 300; bram = blocks; dsp = 0 }
    | Comp.Rec -> { Res.lut = 220; ff = 250; bram = 0; dsp = 0 }
    | Comp.Gen -> { Res.lut = 250; ff = 200; bram = 0; dsp = 0 }
    | Comp.Reg -> { Res.lut = 120; ff = 150; bram = 0; dsp = 0 }
  in
  let dims_overhead =
    (* each extra supported pattern dimension adds address generators *)
    { Res.lut = 120 * max 0 (e.max_dims - 1); ff = 100 * max 0 (e.max_dims - 1); bram = 0; dsp = 0 }
  in
  Res.add common (Res.add specific dims_overhead)

let control_core = { Res.lut = 16000; ff = 12000; bram = 12; dsp = 4 }

let dispatcher ~n_engines ~n_ports =
  {
    Res.lut = 600 + (120 * n_engines) + (25 * n_ports);
    ff = 700 + (100 * n_engines) + (20 * n_ports);
    bram = 0;
    dsp = 0;
  }

let noc ?(topology = System.Crossbar) ~tiles ~banks ~noc_bytes () =
  match topology with
  | System.Crossbar ->
    (* Crossbar-based TileLink NoC; the paper notes this is one of the
       biggest LUT consumers (Q4). *)
    {
      Res.lut = ((tiles + 1) * banks * noc_bytes * 8 / 2) + (tiles * 1500);
      ff = ((tiles + 1) * banks * noc_bytes * 4) + (tiles * 1200);
      bram = 0;
      dsp = 0;
    }
  | System.Ring ->
    (* one router per hop: two ports wide, linear in stops *)
    {
      Res.lut = ((tiles + banks) * noc_bytes * 8 / 3) + (tiles * 900);
      ff = ((tiles + banks) * noc_bytes * 4) + (tiles * 700);
      bram = 0;
      dsp = 0;
    }

let l2 ~l2_kb ~banks =
  {
    Res.lut = 4000 + (banks * 2500);
    ff = 3000 + (banks * 2000);
    bram = Overgen_util.Stats.div_ceil (l2_kb * 1024) 4608 + 16;
    dsp = 0;
  }

let shell = { Res.lut = 25000; ff = 30000; bram = 40; dsp = 0 }

let component adg id =
  let fan_in = List.length (Adg.preds adg id) in
  let fan_out = List.length (Adg.succs adg id) in
  match Adg.comp_exn adg id with
  | Comp.Pe p -> pe p ~fan_in ~fan_out
  | Comp.Switch { width_bits } -> switch ~width_bits ~fan_in ~fan_out
  | Comp.In_port p -> port p ~dir:`In
  | Comp.Out_port p -> port p ~dir:`Out
  | Comp.Engine e -> engine e

let accel_breakdown adg =
  let cat = Hashtbl.create 8 in
  let add name r =
    Hashtbl.replace cat name
      (Res.add r (Option.value ~default:Res.zero (Hashtbl.find_opt cat name)))
  in
  List.iter
    (fun (id, c) ->
      let r = component adg id in
      match c with
      | Comp.Pe _ -> add "pe" r
      | Comp.Switch _ -> add "n/w" r
      | Comp.In_port _ | Comp.Out_port _ -> add "vp" r
      | Comp.Engine { kind = Comp.Spad; _ } -> add "spad" r
      | Comp.Engine { kind = Comp.Dma | Comp.Rec | Comp.Gen | Comp.Reg; _ } ->
        add "dma" r)
    (Adg.nodes adg);
  let n_engines = List.length (Adg.engines adg) in
  let n_ports =
    List.length (Adg.in_ports adg) + List.length (Adg.out_ports adg)
  in
  add "dma" (dispatcher ~n_engines ~n_ports);
  List.filter_map
    (fun name -> Option.map (fun r -> (name, r)) (Hashtbl.find_opt cat name))
    [ "pe"; "n/w"; "vp"; "spad"; "dma" ]

let accel adg = Res.sum (List.map snd (accel_breakdown adg))

let ooc ~rng comp ~fan_in ~fan_out =
  let base =
    match comp with
    | Comp.Pe p -> pe p ~fan_in ~fan_out
    | Comp.Switch { width_bits } -> switch ~width_bits ~fan_in ~fan_out
    | Comp.In_port p -> port p ~dir:`In
    | Comp.Out_port p -> port p ~dir:`Out
    | Comp.Engine e -> engine e
  in
  (* Out-of-context synthesis misses cross-module optimization: results are
     pessimistic relative to the component's share of a full design. *)
  let pessimism = 1.12 in
  let noise = Rng.gaussian rng ~mean:1.0 ~stddev:0.04 in
  Res.scale_f (pessimism *. Overgen_util.Stats.clamp ~lo:0.85 ~hi:1.15 noise) base

type full = {
  res : Res.t;
  freq_mhz : float;
  hours : float;
  breakdown : (string * Res.t) list;
}

let system_overhead ?(device = Device.default) (sys : System.t) =
  ignore device;
  Res.sum
    [
      Res.scale sys.tiles control_core;
      noc ~topology:sys.noc_topology ~tiles:sys.tiles ~banks:sys.l2_banks
        ~noc_bytes:sys.noc_bytes ();
      l2 ~l2_kb:sys.l2_kb ~banks:sys.l2_banks;
      shell;
    ]

let synthesis_hours ~device res =
  let lu, _, bu, _ = Res.utilization res ~device:device.Device.capacity in
  0.3 +. (6.0 *. lu) +. (0.8 *. bu)

let synth_full ?(device = Device.default) (s : Sys_adg.t) =
  Overgen_fault.Fault.(point Points.oracle_synth);
  let tile_breakdown = accel_breakdown s.adg in
  let tile = Res.sum (List.map snd tile_breakdown) in
  let sys = s.system in
  let cores = Res.scale sys.tiles control_core in
  let noc_r =
    noc ~topology:sys.noc_topology ~tiles:sys.tiles ~banks:sys.l2_banks
      ~noc_bytes:sys.noc_bytes ()
  in
  let l2_r = l2 ~l2_kb:sys.l2_kb ~banks:sys.l2_banks in
  let uncore = Res.sum [ noc_r; l2_r; shell ] in
  (* In-context synthesis shares logic across module boundaries: a small
     global optimization discount relative to the out-of-context estimates. *)
  let optimized = Res.scale_f 0.94 (Res.add (Res.scale sys.tiles tile) (Res.add cores uncore)) in
  let key =
    Printf.sprintf "synth:%s:%d:%d:%d:%d" (Sys_adg.describe s) sys.tiles
      sys.l2_banks sys.noc_bytes (Adg.node_count s.adg)
  in
  let rng = Rng.of_string key in
  let noise = Overgen_util.Stats.clamp ~lo:0.95 ~hi:1.05 (Rng.gaussian rng ~mean:1.0 ~stddev:0.02) in
  let res = Res.scale_f noise optimized in
  let lut_util, _, _, _ = Res.utilization res ~device:device.Device.capacity in
  let max_radix =
    List.fold_left (fun acc sw -> max acc (Adg.switch_radix s.adg sw)) 0
      (Adg.switches s.adg)
  in
  let freq =
    let base = device.Device.base_clock_mhz in
    let congestion = 0.35 *. base *. lut_util in
    let radix_penalty = if max_radix > 4 then float_of_int (max_radix - 4) *. 2.0 else 0.0 in
    let bank_penalty = if sys.l2_banks >= 8 then 4.0 else 0.0 in
    let f = base -. congestion -. radix_penalty -. bank_penalty in
    Overgen_util.Stats.clamp ~lo:40.0 ~hi:base
      (f *. Overgen_util.Stats.clamp ~lo:0.97 ~hi:1.03 (Rng.gaussian rng ~mean:1.0 ~stddev:0.015))
  in
  let breakdown =
    List.map (fun (n, r) -> (n, Res.scale sys.tiles r)) tile_breakdown
    @ [ ("core", cores); ("noc", Res.sum [ noc_r; l2_r ]) ]
  in
  { res; freq_mhz = freq; hours = synthesis_hours ~device res; breakdown }
