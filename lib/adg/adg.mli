(** The Architecture Description Graph (ADG).

    An ADG describes one spatial-accelerator tile: stream engines feed input
    vector ports, operands flow through a network of switches into processing
    elements, and results drain through output ports back into engines
    (paper Figure 2(c) / Figure 4).  The DSE mutates this graph; the spatial
    scheduler maps mDFGs onto it; the FPGA model prices it. *)

type id = int

type t

val empty : t

val add : t -> Comp.t -> t * id
(** Add a component, returning its fresh id. *)

val add_edge : t -> id -> id -> t
(** Add a directed operand link.  @raise Invalid_argument if the link is
    structurally illegal (see {!val:edge_legal}) or an endpoint is missing. *)

val remove_edge : t -> id -> id -> t
val remove_node : t -> id -> t
val set_comp : t -> id -> Comp.t -> t
val comp : t -> id -> Comp.t option
val comp_exn : t -> id -> Comp.t
val mem : t -> id -> bool
val mem_edge : t -> id -> id -> bool
val succs : t -> id -> id list
val preds : t -> id -> id list
val nodes : t -> (id * Comp.t) list
val edges : t -> (id * id) list

(** Largest live node id, or [-1] when the graph is empty.  Ids are dense
    enough that [max_id + 1]-sized arrays make good id-indexed tables. *)
val max_id : t -> int

val node_count : t -> int
val edge_count : t -> int

val edge_legal : Comp.t -> Comp.t -> bool
(** Whether a link from the first component kind to the second is allowed by
    the decoupled-spatial template (engine->ip, ip->fabric, fabric->fabric,
    fabric->op, op->engine). *)

val pes : t -> (id * Comp.pe) list
val switches : t -> id list
val in_ports : t -> (id * Comp.port) list
val out_ports : t -> (id * Comp.port) list
val engines : t -> (id * Comp.engine) list
val engines_of_kind : t -> Comp.engine_kind -> (id * Comp.engine) list

val switch_radix : t -> id -> int
(** max(in-degree, out-degree) of a switch; the mux size the FPGA pays for. *)

val avg_switch_radix : t -> float

val is_fabric : Comp.t -> bool
(** PEs and switches: nodes operand routes may pass through. *)

val route : t -> src:id -> dst:id -> id list option
(** BFS shortest operand route from [src] to [dst] where intermediate hops
    are switches only. *)

val validate : t -> (unit, string list) result
(** Structural invariants: legal edges only, no dangling ports or engines,
    every PE reachable from some input port and reaching some output port. *)

type stats = {
  n_pe : int;
  n_switch : int;
  avg_radix : float;
  int_add : int;            (** PE count supporting integer add *)
  int_mul : int;
  int_div : int;
  flt_add : int;
  flt_mul : int;
  flt_div : int;
  flt_sqrt : int;
  spad_caps : int list;     (** capacity of each scratchpad, bytes *)
  spad_bws : int list;
  spad_indirect : bool list;
  n_gen : int;
  n_rec : int;
  n_reg : int;
  in_port_bw : int;         (** total input-port bandwidth, bytes/cycle *)
  out_port_bw : int;
}

val stats : t -> stats
(** The quantities reported in the paper's Table III. *)

val to_string : t -> string
(** Multi-line dump: one line per node with its edges. *)
