let topo_to_string = function
  | System.Crossbar -> "xbar"
  | System.Ring -> "ring"

let topo_of_string = function
  | "xbar" -> Some System.Crossbar
  | "ring" -> Some System.Ring
  | _ -> None

let bool_to_string b = if b then "1" else "0"

let caps_to_string caps =
  if Op.Cap.is_empty caps then "-" else Op.Cap.to_string caps

let caps_of_string s =
  if s = "-" then Some Op.Cap.empty
  else
    let pairs = String.split_on_char ',' s in
    let parsed =
      List.map
        (fun pair ->
          match String.split_on_char '.' pair with
          | [ op; dt ] -> (
            match (Op.of_string op, Dtype.of_string dt) with
            | Some op, Some dt -> Some (op, dt)
            | _ -> None)
          | _ -> None)
        pairs
    in
    if List.for_all Option.is_some parsed then
      Some (Op.Cap.of_list (List.map Option.get parsed))
    else None

let comp_to_string = function
  | Comp.Pe p ->
    Printf.sprintf "pe width=%d fifo=%d consts=%d pred=%s caps=%s" p.width_bits
      p.delay_fifo p.const_regs (bool_to_string p.predication)
      (caps_to_string p.caps)
  | Comp.Switch { width_bits } -> Printf.sprintf "sw width=%d" width_bits
  | Comp.In_port p ->
    Printf.sprintf "ip width=%d fifo=%d pad=%s stated=%s" p.width_bytes
      p.fifo_depth (bool_to_string p.padding) (bool_to_string p.stated)
  | Comp.Out_port p ->
    Printf.sprintf "op width=%d fifo=%d pad=%s stated=%s" p.width_bytes
      p.fifo_depth (bool_to_string p.padding) (bool_to_string p.stated)
  | Comp.Engine e ->
    Printf.sprintf "eng kind=%s bw=%d cap=%d ind=%s dims=%d"
      (Comp.engine_kind_to_string e.kind)
      e.bandwidth e.capacity (bool_to_string e.indirect) e.max_dims

let to_string (sys : Sys_adg.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "overgen-adg v1\n";
  let p = sys.system in
  Buffer.add_string buf
    (Printf.sprintf "system tiles=%d noc=%d topo=%s banks=%d l2kb=%d dram=%d\n"
       p.tiles p.noc_bytes (topo_to_string p.noc_topology) p.l2_banks p.l2_kb
       p.dram_channels);
  List.iter
    (fun (id, comp) ->
      Buffer.add_string buf (Printf.sprintf "node %d %s\n" id (comp_to_string comp)))
    (Adg.nodes sys.adg);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" a b))
    (Adg.edges sys.adg);
  Buffer.contents buf

let fingerprint sys = Digest.to_hex (Digest.string (to_string sys))

(* ---------------- parsing ---------------- *)

let kv_int kvs key =
  match List.assoc_opt key kvs with
  | Some v -> int_of_string_opt v
  | None -> None

let kv_bool kvs key =
  match List.assoc_opt key kvs with
  | Some "1" -> Some true
  | Some "0" -> Some false
  | _ -> None

let parse_kvs tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let parse_comp kind kvs =
  let open Option in
  match kind with
  | "pe" ->
    bind (kv_int kvs "width") (fun width_bits ->
        bind (kv_int kvs "fifo") (fun delay_fifo ->
            bind (kv_int kvs "consts") (fun const_regs ->
                bind (kv_bool kvs "pred") (fun predication ->
                    bind
                      (Option.bind (List.assoc_opt "caps" kvs) caps_of_string)
                      (fun caps ->
                        Some
                          (Comp.Pe
                             { caps; width_bits; delay_fifo; const_regs; predication }))))))
  | "sw" ->
    bind (kv_int kvs "width") (fun width_bits ->
        Some (Comp.Switch { width_bits }))
  | "ip" | "op" ->
    bind (kv_int kvs "width") (fun width_bytes ->
        bind (kv_int kvs "fifo") (fun fifo_depth ->
            bind (kv_bool kvs "pad") (fun padding ->
                bind (kv_bool kvs "stated") (fun stated ->
                    let port = { Comp.width_bytes; fifo_depth; padding; stated } in
                    Some (if kind = "ip" then Comp.In_port port else Comp.Out_port port)))))
  | "eng" ->
    let kind_of = function
      | "dma" -> Some Comp.Dma
      | "spad" -> Some Comp.Spad
      | "rec" -> Some Comp.Rec
      | "gen" -> Some Comp.Gen
      | "reg" -> Some Comp.Reg
      | _ -> None
    in
    bind (Option.bind (List.assoc_opt "kind" kvs) kind_of) (fun kind ->
        bind (kv_int kvs "bw") (fun bandwidth ->
            bind (kv_int kvs "cap") (fun capacity ->
                bind (kv_bool kvs "ind") (fun indirect ->
                    bind (kv_int kvs "dims") (fun max_dims ->
                        Some
                          (Comp.Engine
                             { kind; bandwidth; capacity; indirect; max_dims }))))))
  | _ -> None

(* Rebuild an ADG preserving node ids: insert dummies up to the largest id,
   then replace/remove.  Simpler: add in id order; ids are dense enough in
   practice, and [Adg.add] allocates sequentially — so we add placeholder
   nodes for gaps and remove them at the end. *)
let rebuild nodes edges system =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) nodes in
  let adg = ref Adg.empty in
  let placeholders = ref [] in
  let next = ref 0 in
  List.iter
    (fun (id, comp) ->
      while !next < id do
        let a, ph = Adg.add !adg (Comp.Switch { width_bits = 1 }) in
        adg := a;
        placeholders := ph :: !placeholders;
        incr next
      done;
      let a, got = Adg.add !adg comp in
      adg := a;
      if got <> id then failwith "Serial.rebuild: non-monotonic ids";
      incr next)
    sorted;
  List.iter (fun (a, b) -> adg := Adg.add_edge !adg a b) edges;
  List.iter (fun ph -> adg := Adg.remove_node !adg ph) !placeholders;
  Sys_adg.make !adg system

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | header :: rest when header = "overgen-adg v1" -> (
    let system = ref System.default in
    let nodes = ref [] in
    let edges = ref [] in
    let error = ref None in
    List.iter
      (fun line ->
        if !error = None then
          match String.split_on_char ' ' line with
          | "system" :: kvs_toks -> (
            let kvs = parse_kvs kvs_toks in
            match
              ( kv_int kvs "tiles", kv_int kvs "noc",
                Option.bind (List.assoc_opt "topo" kvs) topo_of_string,
                kv_int kvs "banks", kv_int kvs "l2kb", kv_int kvs "dram" )
            with
            | Some tiles, Some noc_bytes, Some noc_topology, Some l2_banks,
              Some l2_kb, Some dram_channels ->
              system :=
                { System.tiles; noc_bytes; noc_topology; l2_banks; l2_kb;
                  dram_channels }
            | _ -> error := Some ("bad system line: " ^ line))
          | "node" :: id :: kind :: kvs_toks -> (
            match (int_of_string_opt id, parse_comp kind (parse_kvs kvs_toks)) with
            | Some id, Some comp -> nodes := (id, comp) :: !nodes
            | _ -> error := Some ("bad node line: " ^ line))
          | [ "edge"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> edges := (a, b) :: !edges
            | _ -> error := Some ("bad edge line: " ^ line))
          | _ -> error := Some ("unrecognized line: " ^ line))
      rest;
    match !error with
    | Some e -> Error e
    | None -> (
      try Ok (rebuild (List.rev !nodes) (List.rev !edges) !system)
      with Failure m | Invalid_argument m -> Error m))
  | _ -> Error "missing 'overgen-adg v1' header"

let save sys ~path =
  let oc = open_out path in
  output_string oc (to_string sys);
  close_out oc

let load ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string text
  with Sys_error m -> Error m
