type id = int

type t = { g : Comp.t Digraph.t; next_id : int }

let empty = { g = Digraph.empty; next_id = 0 }

let add t comp =
  let id = t.next_id in
  ({ g = Digraph.add_node t.g id comp; next_id = id + 1 }, id)

let is_fabric = function
  | Comp.Pe _ | Comp.Switch _ -> true
  | Comp.In_port _ | Comp.Out_port _ | Comp.Engine _ -> false

let edge_legal src dst =
  match (src, dst) with
  | Comp.Engine _, Comp.In_port _ -> true
  | Comp.In_port _, (Comp.Pe _ | Comp.Switch _) -> true
  | (Comp.Pe _ | Comp.Switch _), (Comp.Pe _ | Comp.Switch _) -> true
  | (Comp.Pe _ | Comp.Switch _), Comp.Out_port _ -> true
  | Comp.Out_port _, Comp.Engine _ -> true
  | _, _ -> false

let comp t id = Digraph.find t.g id
let comp_exn t id = Digraph.find_exn t.g id

let add_edge t src dst =
  let cs = comp_exn t src and cd = comp_exn t dst in
  if not (edge_legal cs cd) then
    invalid_arg
      (Printf.sprintf "Adg.add_edge: illegal %s->%s" (Comp.kind_name cs)
         (Comp.kind_name cd));
  { t with g = Digraph.add_edge t.g src dst }

let remove_edge t src dst = { t with g = Digraph.remove_edge t.g src dst }
let remove_node t id = { t with g = Digraph.remove_node t.g id }
let set_comp t id c = { t with g = Digraph.set_node t.g id c }
let mem t id = Digraph.mem t.g id
let mem_edge t src dst = Digraph.mem_edge t.g src dst
let succs t id = Digraph.succs t.g id
let preds t id = Digraph.preds t.g id
let nodes t = Digraph.nodes t.g
let edges t = Digraph.edges t.g
let max_id t = Digraph.max_id t.g
let node_count t = Digraph.node_count t.g
let edge_count t = Digraph.edge_count t.g

let pes t =
  List.filter_map
    (function id, Comp.Pe pe -> Some (id, pe) | _ -> None)
    (nodes t)

let switches t =
  List.filter_map
    (function id, Comp.Switch _ -> Some id | _ -> None)
    (nodes t)

let in_ports t =
  List.filter_map
    (function id, Comp.In_port p -> Some (id, p) | _ -> None)
    (nodes t)

let out_ports t =
  List.filter_map
    (function id, Comp.Out_port p -> Some (id, p) | _ -> None)
    (nodes t)

let engines t =
  List.filter_map
    (function id, Comp.Engine e -> Some (id, e) | _ -> None)
    (nodes t)

let engines_of_kind t kind =
  List.filter (fun (_, (e : Comp.engine)) -> e.kind = kind) (engines t)

let switch_radix t id =
  max (List.length (preds t id)) (List.length (succs t id))

let avg_switch_radix t =
  match switches t with
  | [] -> 0.0
  | sws ->
    let total = List.fold_left (fun acc id -> acc + switch_radix t id) 0 sws in
    float_of_int total /. float_of_int (List.length sws)

let route t ~src ~dst =
  let ok id =
    match comp t id with
    | Some (Comp.Switch _) -> true
    | Some (Comp.Pe _ | Comp.In_port _ | Comp.Out_port _ | Comp.Engine _) | None
      -> false
  in
  Digraph.shortest_path t.g ~src ~dst ~ok

(* Reachability over fabric nodes from a set of sources, following edges
   forward; ports are traversed one step. *)
let reachable_from t sources =
  let visited = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      List.iter go (succs t id)
    end
  in
  List.iter go sources;
  visited

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun (src, dst) ->
      let cs = comp_exn t src and cd = comp_exn t dst in
      if not (edge_legal cs cd) then
        err "illegal edge %d(%s) -> %d(%s)" src (Comp.kind_name cs) dst
          (Comp.kind_name cd))
    (edges t);
  List.iter
    (fun (id, c) ->
      let ins = List.length (preds t id) and outs = List.length (succs t id) in
      match c with
      | Comp.Pe _ ->
        if ins = 0 then err "pe %d has no inputs" id;
        if outs = 0 then err "pe %d has no outputs" id
      | Comp.Switch _ ->
        if ins = 0 || outs = 0 then err "switch %d is dangling" id
      | Comp.In_port _ ->
        if ins = 0 then err "in-port %d not fed by any engine" id;
        if outs = 0 then err "in-port %d feeds nothing" id
      | Comp.Out_port _ ->
        if ins = 0 then err "out-port %d receives nothing" id;
        if outs = 0 then err "out-port %d drains to no engine" id
      | Comp.Engine _ ->
        if ins = 0 && outs = 0 then err "engine %d disconnected" id)
    (nodes t);
  (* Every PE must be reachable from an input port (so it can receive
     operands) and must reach an output port. *)
  let ip_ids = List.map fst (in_ports t) in
  let reach = reachable_from t ip_ids in
  List.iter
    (fun (id, _) ->
      if not (Hashtbl.mem reach id) then
        err "pe %d unreachable from any input port" id)
    (pes t);
  match !errs with [] -> Ok () | l -> Error (List.rev l)

type stats = {
  n_pe : int;
  n_switch : int;
  avg_radix : float;
  int_add : int;
  int_mul : int;
  int_div : int;
  flt_add : int;
  flt_mul : int;
  flt_div : int;
  flt_sqrt : int;
  spad_caps : int list;
  spad_bws : int list;
  spad_indirect : bool list;
  n_gen : int;
  n_rec : int;
  n_reg : int;
  in_port_bw : int;
  out_port_bw : int;
}

let stats t =
  let pes = pes t in
  let count_cap f =
    List.length
      (List.filter (fun (_, (pe : Comp.pe)) -> Op.Cap.exists f pe.caps) pes)
  in
  let is_int dt = not (Dtype.is_float dt) in
  let spads = engines_of_kind t Comp.Spad in
  {
    n_pe = List.length pes;
    n_switch = List.length (switches t);
    avg_radix = avg_switch_radix t;
    int_add = count_cap (fun (op, dt) -> Op.is_add op && is_int dt);
    int_mul = count_cap (fun (op, dt) -> Op.is_mul op && is_int dt);
    int_div = count_cap (fun (op, dt) -> Op.is_div op && is_int dt);
    flt_add = count_cap (fun (op, dt) -> Op.is_add op && Dtype.is_float dt);
    flt_mul = count_cap (fun (op, dt) -> Op.is_mul op && Dtype.is_float dt);
    flt_div = count_cap (fun (op, dt) -> Op.is_div op && Dtype.is_float dt);
    flt_sqrt = count_cap (fun (op, dt) -> op = Op.Sqrt && Dtype.is_float dt);
    spad_caps = List.map (fun (_, (e : Comp.engine)) -> e.capacity) spads;
    spad_bws = List.map (fun (_, (e : Comp.engine)) -> e.bandwidth) spads;
    spad_indirect = List.map (fun (_, (e : Comp.engine)) -> e.indirect) spads;
    n_gen = List.length (engines_of_kind t Comp.Gen);
    n_rec = List.length (engines_of_kind t Comp.Rec);
    n_reg = List.length (engines_of_kind t Comp.Reg);
    in_port_bw =
      List.fold_left (fun acc (_, (p : Comp.port)) -> acc + p.width_bytes) 0
        (in_ports t);
    out_port_bw =
      List.fold_left (fun acc (_, (p : Comp.port)) -> acc + p.width_bytes) 0
        (out_ports t);
  }

let to_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (id, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%3d %-24s -> [%s]\n" id (Comp.describe c)
           (String.concat "," (List.map string_of_int (succs t id)))))
    (nodes t);
  Buffer.contents buf
