(** Textual serialization of system-level ADGs.

    A generated overlay is the valuable output of hours of (modeled) DSE;
    this format persists it: a line-based description of the system
    parameters, every component with its parameters, and the edge list.
    The format is stable, diff-friendly, and round-trips exactly. *)

val to_string : Sys_adg.t -> string

val fingerprint : Sys_adg.t -> string
(** Stable structural fingerprint of a design: the hex digest of its
    canonical serialization.  Equal for a design and its save/load round
    trip (ids are preserved), distinct for structurally different designs;
    the overlay registry and schedule cache use it as a content address. *)

val of_string : string -> (Sys_adg.t, string) result
(** Parse a design; node ids are preserved.  Errors carry the offending
    line. *)

val save : Sys_adg.t -> path:string -> unit
val load : path:string -> (Sys_adg.t, string) result
