(** Synchronous client connection to one shard: blocking send/receive of
    {!Wire} messages over TCP.  One connection is single-threaded — the
    load generator runs one per shard per sender thread; the server uses
    them for peer forwarding. *)

type t

val connect : host:string -> port:int -> (t, string) result
(** Dial the shard (TCP_NODELAY set).  Errors are connection-level
    (refused, unresolvable host). *)

val send : t -> Wire.req_msg -> (unit, string) result
val recv : t -> (Wire.resp_msg, string) result
(** Blocking receive of the next response frame.  [Error] covers a
    closed connection, a corrupt/mismatched frame and an undecodable
    envelope. *)

val rpc : t -> Wire.req_msg -> (Wire.resp_msg, string) result
(** [send] then [recv]. *)

val fd : t -> Unix.file_descr
val close : t -> unit
(** Idempotent. *)
