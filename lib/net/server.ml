module Metrics = Overgen_obs.Metrics
module Fault = Overgen_fault.Fault
module Obs = Overgen_obs.Obs
module Log = Overgen_obs.Obs.Log

type conn = {
  cfd : Unix.file_descr;
  wm : Mutex.t;  (* serializes writes; responses come from many domains *)
  mutable alive : bool;
}

type t = {
  node_ : Node.t;
  lfd : Unix.file_descr;
  port_ : int;
  stop_r : Unix.file_descr;  (* self-pipe waking the acceptor's select *)
  stop_w : Unix.file_descr;
  obs : Metrics.registry;
  c_frames_in : Metrics.counter;
  c_frames_out : Metrics.counter;
  c_frames_corrupt : Metrics.counter;
  c_conns : Metrics.counter;
  c_conn_drops : Metrics.counter;
  c_forwards : Metrics.counter;
  c_redirects : Metrics.counter;
  c_requests : Metrics.counter;
  c_failures : Metrics.counter;
  h_request_ms : Metrics.histogram;
  flight_out : string option;
  mutable flight_dumped : bool;
      (* the failure-path dump fires once; the drain dump overwrites it
         with full history *)
  m : Mutex.t;
  mutable stopping : bool;
  mutable conns : conn list;
  mutable next_id : int;
  (* internal id -> where its response goes; its size is the in-flight
     count the graceful stop drains.  Admission time and trace id ride
     along for the latency histogram and failure-path events. *)
  pending : (int, conn * int * float * string) Hashtbl.t;
  mutable handlers : Thread.t list;
  (* free peer connections for forwarding, per owner shard *)
  peers : (int, Client.t list ref) Hashtbl.t;
  peers_m : Mutex.t;
  mutable acceptor : Thread.t option;
}

let port t = t.port_
let node t = t.node_
let metrics t = t.obs

exception Drop_conn

let listen ?(backlog = 64) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd backlog;
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  with
  | p -> Ok (fd, p)
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error (Printf.sprintf "listen on port %d: %s" port (Unix.error_message e))

let send_resp t conn resp =
  let frame = Wire.frame (Wire.encode_resp resp) in
  Mutex.lock conn.wm;
  (if conn.alive then
     match Io.write_all conn.cfd frame with
     | () -> Metrics.incr t.c_frames_out
     | exception (Io.Closed | Unix.Unix_error _) -> conn.alive <- false);
  Mutex.unlock conn.wm

(* Translate a response's server-internal id back to the id the client
   chose, then deliver it.  Exactly once per pending entry: the table
   removal under the lock is the once-only gate. *)
(* A request failed: record it in the flight recorder, and write the
   first automatic dump if the server was given a dump path — the crash
   forensics must exist even if the process never drains gracefully. *)
let note_failure t ~client_id ~trace err =
  Metrics.incr t.c_failures;
  Log.record ~level:Log.Warn ~trace Log.default "request_failed"
    ~attrs:
      [
        ("id", string_of_int client_id);
        ("shard", string_of_int (Node.me t.node_));
        ("error", Wire.wire_error_to_string err);
      ];
  match t.flight_out with
  | None -> ()
  | Some path ->
    Mutex.lock t.m;
    let first = not t.flight_dumped in
    t.flight_dumped <- true;
    Mutex.unlock t.m;
    if first then try Log.write_dump ~path Log.default with Sys_error _ -> ()

let settle t internal_id resp =
  Mutex.lock t.m;
  let entry = Hashtbl.find_opt t.pending internal_id in
  Hashtbl.remove t.pending internal_id;
  Mutex.unlock t.m;
  match entry with
  | None -> ()
  | Some (conn, client_id, t_admit, trace) ->
    let resp =
      match resp with
      | Wire.Result r ->
        Metrics.observe t.h_request_ms
          ((Unix.gettimeofday () -. t_admit) *. 1000.0);
        (match r.outcome with
        | Error err -> note_failure t ~client_id ~trace err
        | Ok _ -> ());
        Wire.Result { r with id = client_id }
      | Wire.Redirect r ->
        Metrics.incr t.c_redirects;
        Wire.Redirect { r with id = client_id }
      | ( Wire.Pong _ | Wire.Stats _ | Wire.Bye | Wire.Metrics_dump _
        | Wire.Health _ | Wire.Events _ ) as r ->
        r
    in
    send_resp t conn resp

let borrow_peer t owner =
  Mutex.lock t.peers_m;
  let pool =
    match Hashtbl.find_opt t.peers owner with
    | Some p -> p
    | None ->
      let p = ref [] in
      Hashtbl.add t.peers owner p;
      p
  in
  let client =
    match !pool with
    | c :: rest ->
      pool := rest;
      Ok c
    | [] ->
      let { Node.host; port } = (Node.cluster t.node_).(owner) in
      Client.connect ~host ~port
  in
  Mutex.unlock t.peers_m;
  client

let return_peer t owner c =
  Mutex.lock t.peers_m;
  (match Hashtbl.find_opt t.peers owner with
  | Some pool -> pool := c :: !pool
  | None -> Hashtbl.add t.peers owner (ref [ c ]));
  Mutex.unlock t.peers_m

let drop_peers t =
  Mutex.lock t.peers_m;
  Hashtbl.iter (fun _ pool -> List.iter Client.close !pool; pool := []) t.peers;
  Mutex.unlock t.peers_m

(* Relay a misdirected compile to its owner shard, synchronously on this
   connection's reader thread; the peer's answer (already carrying our
   internal id) settles the request like a local one.  A dead peer is a
   transient verdict — the client retries, by which time the owner may be
   back (the kill-and-restart scenario). *)
let forward t internal_id owner (req : Wire.request) =
  let transient msg =
    Wire.Result
      {
        id = internal_id;
        outcome = Error (Wire.Transient_failure msg);
        cache_hit = false;
        service_s = 0.0;
        shard = Node.me t.node_;
      }
  in
  match borrow_peer t owner with
  | Error msg -> settle t internal_id (transient ("forward: " ^ msg))
  | Ok c -> (
    match Client.rpc c (Wire.Compile req) with
    | Ok resp ->
      return_peer t owner c;
      settle t internal_id resp
    | Error msg ->
      Client.close c;
      settle t internal_id (transient ("forward: " ^ msg)))

let handle_compile t conn (req : Wire.request) =
  (* Fault window: the request is read but nothing is written yet — an
     injection kills the connection, losing every response routed to it,
     which is exactly the crash the exactly-once test re-drives. *)
  (match Fault.point Fault.Points.net_conn_drop with
  | () -> ()
  | exception Fault.Injected _ ->
    Metrics.incr t.c_conn_drops;
    Log.record ~level:Log.Warn ~trace:req.Wire.trace Log.default "conn_drop"
      ~attrs:
        [
          ("id", string_of_int req.Wire.id);
          ("shard", string_of_int (Node.me t.node_));
        ];
    raise Drop_conn);
  let internal_id =
    Mutex.lock t.m;
    let n = t.next_id in
    t.next_id <- n + 1;
    Hashtbl.add t.pending n
      (conn, req.Wire.id, Unix.gettimeofday (), req.Wire.trace);
    Mutex.unlock t.m;
    n
  in
  Metrics.incr t.c_requests;
  let orig_id = req.Wire.id in
  let req = { req with Wire.id = internal_id } in
  (* Re-establish the request's trace context for this hop.  The
     server_decode span hangs the hop under the client's send span via
     the remote_parent attribute (span ids are per-process, so the link
     is an attribute, not a parent pointer). *)
  Obs.Span.with_trace req.Wire.trace @@ fun () ->
  let dispatch () =
    match
      Node.handle_net t.node_ (Wire.Compile req) ~respond:(settle t internal_id)
    with
    | Node.Done | Node.Async -> ()
    | Node.Forward { owner; req } ->
      Metrics.incr t.c_forwards;
      Obs.Span.with_span "forward"
        ~attrs:[ ("owner", string_of_int owner) ]
        (fun () -> forward t internal_id owner req)
  in
  if req.Wire.trace <> "" && Obs.on () then
    Obs.Span.with_span "server_decode"
      ~attrs:
        [
          ("id", string_of_int orig_id);
          ("shard", string_of_int (Node.me t.node_));
          ("remote_parent", string_of_int req.Wire.parent_span);
        ]
      dispatch
  else dispatch ()

let handle_frame t conn payload =
  Metrics.incr t.c_frames_in;
  (* A frame that checksummed fine can still be poisoned here: the
     injection is indistinguishable from wire damage downstream. *)
  (match Fault.point Fault.Points.net_frame_corrupt with
  | () -> ()
  | exception Fault.Injected _ ->
    Metrics.incr t.c_frames_corrupt;
    Log.record ~level:Log.Warn Log.default "frame_corrupt"
      ~attrs:[ ("shard", string_of_int (Node.me t.node_)) ];
    raise Drop_conn);
  match Wire.decode_req payload with
  | Error _ ->
    Metrics.incr t.c_frames_corrupt;
    raise Drop_conn
  | Ok (Wire.Compile req) -> handle_compile t conn req
  | Ok
      (( Wire.Ping | Wire.Stats_req | Wire.Quiesce | Wire.Metrics_req
       | Wire.Health_req | Wire.Recent_events_req _ ) as msg) ->
    (match Node.handle_net t.node_ msg ~respond:(send_resp t conn) with
    | Node.Done -> ()
    | Node.Async | Node.Forward _ -> assert false)

let close_conn t conn =
  Mutex.lock conn.wm;
  conn.alive <- false;
  Mutex.unlock conn.wm;
  (try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with _ -> ());
  (try Unix.close conn.cfd with _ -> ());
  Mutex.lock t.m;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.m

let reader t conn () =
  let rec loop () =
    match Io.recv_frame conn.cfd with
    | Ok payload ->
      handle_frame t conn payload;
      loop ()
    | Error _ ->
      Metrics.incr t.c_frames_corrupt;
      raise Drop_conn
  in
  (try loop () with
  | Io.Closed | Drop_conn | Unix.Unix_error _ -> ()
  | _ -> ());
  close_conn t conn

let acceptor t () =
  let rec loop () =
    match Unix.select [ t.lfd; t.stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | rs, _, _ ->
      if List.memq t.stop_r rs then ()
      else begin
        (match Unix.accept t.lfd with
        | cfd, _ ->
          (try Unix.setsockopt cfd Unix.TCP_NODELAY true with _ -> ());
          let conn = { cfd; wm = Mutex.create (); alive = true } in
          Metrics.incr t.c_conns;
          Mutex.lock t.m;
          t.conns <- conn :: t.conns;
          t.handlers <- Thread.create (reader t conn) () :: t.handlers;
          Mutex.unlock t.m
        | exception Unix.Unix_error _ -> ());
        loop ()
      end
  in
  loop ()

(* Millisecond-resolution request buckets: client-visible latencies live
   between ~1 ms (cache hit over loopback) and seconds (cold compiles
   behind a deep queue). *)
let request_ms_buckets =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

let start ?flight_out ~node ~fd () =
  Io.quiet_sigpipe ();
  let port_ =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> invalid_arg "Server.start: not an inet socket"
  in
  let stop_r, stop_w = Unix.pipe () in
  let obs =
    Metrics.create_registry
      ~label:(Printf.sprintf "net server :%d (shard %d)" port_ (Node.me node))
      ()
  in
  let c name help = Metrics.counter obs name ~help in
  let t =
    {
      node_ = node;
      lfd = fd;
      port_;
      stop_r;
      stop_w;
      obs;
      c_frames_in = c "overgen_net_frames_in_total" "frames received";
      c_frames_out = c "overgen_net_frames_out_total" "frames written";
      c_frames_corrupt =
        c "overgen_net_frames_corrupt_total"
          "corrupt/torn/mis-versioned frames (connection closed)";
      c_conns = c "overgen_net_conns_total" "connections accepted";
      c_conn_drops =
        c "overgen_net_conn_drops_total" "connections dropped by fault injection";
      c_forwards = c "overgen_net_forwards_total" "misdirected compiles forwarded";
      c_redirects = c "overgen_net_redirects_total" "redirect answers sent";
      c_requests = c "overgen_net_requests_total" "compile requests accepted";
      c_failures =
        c "overgen_net_requests_failed_total" "compile requests answered with an error";
      h_request_ms =
        Metrics.histogram obs "overgen_net_request_ms"
          ~help:"accept-to-answer latency of compile requests (ms)"
          ~buckets:request_ms_buckets;
      flight_out;
      flight_dumped = false;
      m = Mutex.create ();
      stopping = false;
      conns = [];
      next_id = 0;
      pending = Hashtbl.create 256;
      handlers = [];
      peers = Hashtbl.create 8;
      peers_m = Mutex.create ();
      acceptor = None;
    }
  in
  (* one Metrics_req scrape answers with transport + node + service
     telemetry: fold this server's registry into the node's dump *)
  Node.attach_metrics node obs;
  t.acceptor <- Some (Thread.create (acceptor t) ());
  t

let serve ?backlog ?flight_out ~node ~port () =
  match listen ?backlog ~port () with
  | Error _ as e -> e
  | Ok (fd, _) -> Ok (start ?flight_out ~node ~fd ())

let wait t = Option.iter Thread.join t.acceptor

let stop ?(drain_timeout_s = 30.0) t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.m;
  if not already then begin
    (* 1. stop admitting: new compiles answer Shutting_down *)
    Node.quiesce t.node_;
    (* 2. stop accepting *)
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    Option.iter Thread.join t.acceptor;
    (* 3. drain: every accepted request's response must reach its socket *)
    Mutex.lock t.m;
    let inflight0 = Hashtbl.length t.pending in
    Mutex.unlock t.m;
    Log.record ~pin:true Log.default "drain_begin"
      ~attrs:
        [
          ("shard", string_of_int (Node.me t.node_));
          ("inflight", string_of_int inflight0);
        ];
    let t_drain = Unix.gettimeofday () in
    let deadline = t_drain +. drain_timeout_s in
    let rec drain () =
      Mutex.lock t.m;
      let inflight = Hashtbl.length t.pending in
      Mutex.unlock t.m;
      if inflight > 0 && Unix.gettimeofday () < deadline then begin
        Thread.yield ();
        Unix.sleepf 0.002;
        drain ()
      end
      else inflight
    in
    let leftover = drain () in
    Log.record ~pin:true
      ~level:(if leftover = 0 then Log.Info else Log.Error)
      Log.default "drain_end"
      ~attrs:
        [
          ("shard", string_of_int (Node.me t.node_));
          ("drained", string_of_int (inflight0 - leftover));
          ("leftover", string_of_int leftover);
          ( "wall_ms",
            Printf.sprintf "%.1f" ((Unix.gettimeofday () -. t_drain) *. 1000.0)
          );
        ];
    (* 4. tear the transport down *)
    Mutex.lock t.m;
    let conns = t.conns in
    let handlers = t.handlers in
    t.handlers <- [];
    Mutex.unlock t.m;
    List.iter (fun c -> close_conn t c) conns;
    List.iter Thread.join handlers;
    drop_peers t;
    (try Unix.close t.lfd with _ -> ());
    (try Unix.close t.stop_r with _ -> ());
    (try Unix.close t.stop_w with _ -> ());
    (* the graceful dump has full history; it overwrites any earlier
       failure-path dump *)
    match t.flight_out with
    | None -> ()
    | Some path -> ( try Log.write_dump ~path Log.default with Sys_error _ -> ())
  end
