(** Blocking socket I/O helpers shared by the server and the sync client:
    exact-length reads/writes with EINTR retry, and frame-granularity
    send/receive on top of {!Wire}. *)

exception Closed
(** The peer closed the connection (EOF mid-read, or EPIPE/reset on
    write). *)

val quiet_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent), so a write to a dead
    socket raises instead of killing the process.  Called by every
    transport entry point. *)

val read_exact : Unix.file_descr -> int -> string
(** Read exactly [n] bytes, blocking as needed.  @raise Closed on EOF. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string.  @raise Closed when the peer is gone. *)

val send_frame : Unix.file_descr -> string -> unit
(** Frame a payload with {!Wire.frame} and write it. *)

val recv_frame : Unix.file_descr -> (string, Wire.frame_error) result
(** Read one complete frame (header, then payload) and verify it.
    @raise Closed on EOF at or inside a frame. *)
