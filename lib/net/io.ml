exception Closed

(* Writes to dead sockets must surface as EPIPE, not kill the process;
   forced by every transport entry point (server start, client connect). *)
let sigpipe_ignored =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let quiet_sigpipe () = Lazy.force sigpipe_ignored

let rec read_into fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.read fd buf pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> -1
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF | Unix.EPIPE), _, _) ->
        raise Closed
    in
    if n = 0 then raise Closed
    else if n < 0 then read_into fd buf pos len (* EINTR *)
    else read_into fd buf (pos + n) (len - n)
  end

let read_exact fd n =
  let buf = Bytes.create n in
  read_into fd buf 0 n;
  Bytes.unsafe_to_string buf

let rec write_from fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> -1
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Closed
    in
    if n < 0 then write_from fd s pos len (* EINTR *)
    else write_from fd s (pos + n) (len - n)
  end

let write_all fd s = write_from fd s 0 (String.length s)

let send_frame fd payload = write_all fd (Wire.frame payload)

let recv_frame fd =
  let header = read_exact fd Wire.header_bytes in
  match Wire.decode_header header with
  | Error e -> Error e
  | Ok h -> (
    let payload = read_exact fd h.Wire.length in
    match Wire.verify_payload h payload with
    | Error e -> Error e
    | Ok () -> Ok payload)
