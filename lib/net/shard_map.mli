(** Consistent hashing of the cache keyspace across shards.

    A functorized ring, in the mold of the lookup-table functors of
    network stacks: the hash is a parameter ({!HASH}) so tests can plug a
    degenerate hash and exercise collision/wrap behaviour, while
    production uses {!Fnv1a} through {!Default}.

    Each shard contributes [vnodes] virtual points to a ring of 64-bit
    hash values; a key is owned by the shard of the first point at or
    after the key's hash, wrapping at the top.  The map is pure data
    computed from [(shards, vnodes)] alone — every client and server that
    agrees on those two numbers agrees on every key's owner, with no
    coordination. *)

module type HASH = sig
  val name : string
  val hash : string -> int64
end

module Fnv1a : HASH
(** FNV-1a, 64-bit. *)

val default_vnodes : int
(** Virtual nodes per shard when [?vnodes] is omitted: 64. *)

module type S = sig
  type t

  val make : ?vnodes:int -> shards:int -> unit -> t
  (** Build the ring for shards [0 .. shards-1].  Raises [Invalid_argument]
      when [shards < 1] or [vnodes < 1]. *)

  val shards : t -> int
  val vnodes : t -> int

  val owner : t -> string -> int
  (** The shard owning a key — total, deterministic, O(log(shards *
      vnodes)). *)

  val histogram : t -> string list -> int array
  (** Keys-per-shard counts for a key population (balance diagnostics). *)
end

module Make (_ : HASH) : S

module Default : S
(** [Make (Fnv1a)] — the map the server and every client use. *)
