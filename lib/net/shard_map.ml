module type HASH = sig
  val name : string
  val hash : string -> int64
end

module Fnv1a = struct
  let name = "fnv1a-64"
  let offset_basis = 0xCBF29CE484222325L
  let prime = 0x100000001B3L

  let hash s =
    let h = ref offset_basis in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h prime)
      s;
    !h
end

let default_vnodes = 64

module type S = sig
  type t

  val make : ?vnodes:int -> shards:int -> unit -> t
  val shards : t -> int
  val vnodes : t -> int
  val owner : t -> string -> int
  val histogram : t -> string list -> int array
end

module Make (H : HASH) : S = struct
  type t = {
    shards : int;
    vnodes : int;
    (* ring points sorted by unsigned hash value *)
    points : int64 array;
    owners : int array;
  }

  let shards t = t.shards
  let vnodes t = t.vnodes

  let make ?(vnodes = default_vnodes) ~shards () =
    if shards < 1 then invalid_arg "Shard_map.make: shards < 1";
    if vnodes < 1 then invalid_arg "Shard_map.make: vnodes < 1";
    let n = shards * vnodes in
    let keyed =
      Array.init n (fun i ->
          let shard = i / vnodes and v = i mod vnodes in
          (H.hash (Printf.sprintf "%s:shard-%d:vnode-%d" H.name shard v), shard))
    in
    (* ties broken by shard index so the ring is identical everywhere even
       if the hash collides *)
    Array.sort
      (fun (a, sa) (b, sb) ->
        match Int64.unsigned_compare a b with 0 -> compare sa sb | c -> c)
      keyed;
    {
      shards;
      vnodes;
      points = Array.map fst keyed;
      owners = Array.map snd keyed;
    }

  (* first ring point at or after [h] (unsigned order), wrapping to 0 *)
  let owner t key =
    let h = H.hash key in
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare t.points.(mid) h < 0 then lo := mid + 1
      else hi := mid
    done;
    t.owners.(if !lo = n then 0 else !lo)

  let histogram t keys =
    let counts = Array.make t.shards 0 in
    List.iter (fun k -> let s = owner t k in counts.(s) <- counts.(s) + 1) keys;
    counts
end

module Default = Make (Fnv1a)
