(** TCP front end of one shard node.

    One acceptor thread plus one reader thread per connection feed the
    node's {!Overgen_service.Service} worker pool; responses stream back
    from the worker domains through per-connection write locks.

    {b Request ids are server-assigned.}  Client ids are namespaced
    per-connection: every accepted compile gets a fresh internal id
    before it reaches the node (or a peer), and the response's id is
    rewritten back just before the write.  Two clients can both use
    id 0 concurrently and each gets its own answer.

    {b Framing discipline.}  A torn, corrupt, mis-versioned or
    undecodable frame closes the connection and increments
    [overgen_net_frames_corrupt_total] — damage is contained, never
    interpreted.  The [net.frame_corrupt] fault point is visited before
    each received frame is parsed (an injection there is treated exactly
    like genuine corruption) and [net.conn_drop] after a compile request
    is read but before any response is written (an injection drops the
    whole connection, so the client must reconnect and retry — the
    cache's coalescing keeps the retried key from compiling twice).

    {b Graceful stop.}  {!stop} quiesces the node (new compiles get
    [Shutting_down]), waits for every in-flight request's response to be
    written, then closes the sockets.  The node itself is left to the
    caller — a reboot reuses it. *)

type t

val listen : ?backlog:int -> port:int -> unit -> (Unix.file_descr * int, string) result
(** Bind a loopback listener ([SO_REUSEADDR]); [port = 0] picks a free
    port.  Returns the socket and the actual port.  Separate from
    {!start} so a multi-shard process can bind every shard's port before
    any node needs the full cluster configuration. *)

val start : ?flight_out:string -> node:Node.t -> fd:Unix.file_descr -> unit -> t
(** Start accepting on a socket from {!listen}.  Takes ownership of
    [fd] and folds this server's registry into the node's ops-plane
    metrics dump.  [flight_out] names a JSONL file the flight recorder is
    dumped to — automatically on the first failed request and again, with
    full history, on graceful {!stop}. *)

val serve :
  ?backlog:int ->
  ?flight_out:string ->
  node:Node.t ->
  port:int ->
  unit ->
  (t, string) result
(** [listen] + [start]. *)

val port : t -> int
val node : t -> Node.t
val metrics : t -> Overgen_obs.Metrics.registry
(** Per-server registry: [overgen_net_frames_in/out_total],
    [overgen_net_frames_corrupt_total], [overgen_net_conns_total],
    [overgen_net_conn_drops_total], [overgen_net_forwards_total],
    [overgen_net_redirects_total], [overgen_net_requests_total],
    [overgen_net_requests_failed_total], and the
    [overgen_net_request_ms] accept-to-answer latency histogram
    (fixed millisecond buckets). *)

val stop : ?drain_timeout_s:float -> t -> unit
(** Graceful stop as described above; [drain_timeout_s] (default 30)
    bounds the in-flight wait.  Idempotent. *)

val wait : t -> unit
(** Block until the acceptor exits (i.e. until {!stop}). *)
