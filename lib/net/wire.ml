open Overgen_workload
module Codec = Overgen_store.Codec
module Crc32 = Overgen_store.Crc32

(* v4: the compile request carries the tenant identity — the QoS key the
   receiving shard's admission layer meters and weighted-fair-queues on —
   and the error taxonomy gains [Quota_exceeded] (deterministic, never
   retried).  (v3 added payloads + [Source_error]; v2 trace context and
   the ops plane.)  The version byte and the schema tags bump together,
   so an old peer rejects at the header and an old payload smuggled past
   the header rejects at the schema check. *)
let version = 4
let header_bytes = 12
let max_payload_bytes = 16 * 1024 * 1024
let magic0 = 'O'
let magic1 = 'N'

type frame_error =
  | Bad_magic
  | Version_mismatch of int
  | Oversized of int
  | Checksum_mismatch
  | Truncated

let frame_error_to_string = function
  | Bad_magic -> "bad frame magic"
  | Version_mismatch v ->
    Printf.sprintf "wire version mismatch: peer speaks v%d, we speak v%d" v version
  | Oversized n -> Printf.sprintf "oversized frame: %d bytes announced" n
  | Checksum_mismatch -> "frame payload checksum mismatch"
  | Truncated -> "truncated frame"

type header = { length : int; crc : int32 }

let frame payload =
  let b = Buffer.create (String.length payload + header_bytes) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Codec.put_u8 b version;
  Codec.put_u8 b 0;
  Codec.put_u32 b (String.length payload);
  Buffer.add_int32_le b (Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Header checks are ordered so the most diagnostic error wins: a peer
   speaking a different protocol version still frames with our magic, so
   magic first, then version, then sanity of the announced length. *)
let decode_header_at s pos =
  if String.length s - pos < header_bytes then Error Truncated
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then Error Bad_magic
  else
    let v = Char.code s.[pos + 2] in
    if v <> version then Error (Version_mismatch v)
    else
      let length = Int32.to_int (String.get_int32_le s (pos + 4)) land 0xFFFFFFFF in
      if length > max_payload_bytes then Error (Oversized length)
      else Ok { length; crc = String.get_int32_le s (pos + 8) }

let decode_header s = decode_header_at s 0

let verify_payload h payload =
  if String.length payload <> h.length then Error Truncated
  else if Crc32.string payload <> h.crc then Error Checksum_mismatch
  else Ok ()

let deframe ?(pos = 0) s =
  match decode_header_at s pos with
  | Error e -> Error e
  | Ok h ->
    if String.length s - pos - header_bytes < h.length then Error Truncated
    else
      let payload = String.sub s (pos + header_bytes) h.length in
      (match verify_payload h payload with
      | Error e -> Error e
      | Ok () -> Ok (payload, header_bytes + h.length))

(* ---------------- messages ---------------- *)

(* What a compile request carries: a pre-lowered IR kernel (marshalled
   blob), or the pragma'd C source text itself — the shard parses it with
   the frontend inside the request's fault isolation, so a rejected
   source costs the submitting client nothing but a [Source_error]. *)
type payload = Kernel of Ir.kernel | Source of string

type request = {
  id : int;
  user : string;
  tenant : string;  (* QoS identity; "" = untenanted *)
  overlay : string;
  payload : payload;
  tuned : bool;
  trace : string;
  parent_span : int;
}

type req_msg =
  | Compile of request
  | Ping
  | Stats_req
  | Quiesce
  | Metrics_req
  | Health_req
  | Recent_events_req of { max : int }

type wire_error =
  | Unknown_overlay of string
  | Queue_full
  | Compile_error of string
  | Transient_failure of string
  | Deadline_exceeded
  | Shutting_down
  | Source_error of string
  | Quota_exceeded

let wire_error_to_string = function
  | Unknown_overlay name -> Printf.sprintf "unknown overlay %S" name
  | Queue_full -> "queue full (admission rejected)"
  | Compile_error e -> "compile error: " ^ e
  | Transient_failure e -> "transient failure: " ^ e
  | Deadline_exceeded -> "deadline exceeded"
  | Shutting_down -> "shard is shutting down"
  | Source_error e -> "source error: " ^ e
  | Quota_exceeded -> "tenant quota exceeded (request shed)"

let retryable = function
  | Queue_full | Transient_failure _ | Shutting_down | Deadline_exceeded -> true
  (* a quota shed is a policy verdict: resending would burn the tenant's
     bucket again for the same answer *)
  | Unknown_overlay _ | Compile_error _ | Source_error _ | Quota_exceeded ->
    false

type resp_msg =
  | Result of {
      id : int;
      outcome : (Overgen_scheduler.Schedule.t list, wire_error) result;
      cache_hit : bool;
      service_s : float;
      shard : int;
    }
  | Redirect of { id : int; owner : int }
  | Pong of { shard : int; shards : int }
  | Stats of {
      shard : int;
      served : int;
      hits : int;
      misses : int;
      warm_loaded : int;
    }
  | Bye
  | Metrics_dump of { shard : int; text : string }
  | Health of {
      shard : int;
      quiesced : bool;
      served : int;
      inflight : int;
      warm_loaded : int;
    }
  | Events of { shard : int; events : string list }

let req_schema = "net-req-v4"
let resp_schema = "net-resp-v4"
let kernel_schema = "net-kernel-v1"
let schedules_schema = "net-schedules-v1"

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let put_id b id = Codec.put_u64 b (Int64.of_int id)
let get_id s pos = Int64.to_int (Codec.get_u64 s pos)

let put_bool b v = Codec.put_u8 b (if v then 1 else 0)

let get_bool s pos =
  match Codec.get_u8 s pos with
  | 0 -> false
  | 1 -> true
  | n -> fail "bad boolean byte %d" n

let encode_kernel (k : Ir.kernel) = Codec.encode_marshal ~schema:kernel_schema k

let decode_kernel s : Ir.kernel =
  match Codec.decode_marshal ~schema:kernel_schema s with
  | Ok k -> k
  | Error e -> fail "kernel blob: %s" e

let encode_req msg =
  let b = Buffer.create 256 in
  Codec.put_string b req_schema;
  (match msg with
  | Compile r ->
    Codec.put_u8 b 0;
    put_id b r.id;
    Codec.put_string b r.user;
    Codec.put_string b r.tenant;
    Codec.put_string b r.overlay;
    put_bool b r.tuned;
    Codec.put_string b r.trace;
    put_id b r.parent_span;
    (match r.payload with
    | Kernel k ->
      Codec.put_u8 b 0;
      Codec.put_string b (encode_kernel k)
    | Source src ->
      Codec.put_u8 b 1;
      Codec.put_string b src)
  | Ping -> Codec.put_u8 b 1
  | Stats_req -> Codec.put_u8 b 2
  | Quiesce -> Codec.put_u8 b 3
  | Metrics_req -> Codec.put_u8 b 4
  | Health_req -> Codec.put_u8 b 5
  | Recent_events_req { max } ->
    Codec.put_u8 b 6;
    Codec.put_u32 b max);
  Buffer.contents b

let decode_req s =
  match
    let pos = ref 0 in
    let schema = Codec.get_string s pos in
    if schema <> req_schema then fail "request schema is %S, reader wants %S" schema req_schema;
    let msg =
      match Codec.get_u8 s pos with
      | 0 ->
        let id = get_id s pos in
        let user = Codec.get_string s pos in
        let tenant = Codec.get_string s pos in
        let overlay = Codec.get_string s pos in
        let tuned = get_bool s pos in
        let trace = Codec.get_string s pos in
        let parent_span = get_id s pos in
        let payload =
          match Codec.get_u8 s pos with
          | 0 -> Kernel (decode_kernel (Codec.get_string s pos))
          | 1 -> Source (Codec.get_string s pos)
          | n -> fail "unknown payload tag %d" n
        in
        Compile { id; user; tenant; overlay; payload; tuned; trace; parent_span }
      | 1 -> Ping
      | 2 -> Stats_req
      | 3 -> Quiesce
      | 4 -> Metrics_req
      | 5 -> Health_req
      | 6 -> Recent_events_req { max = Codec.get_u32 s pos }
      | n -> fail "unknown request tag %d" n
    in
    if !pos <> String.length s then fail "trailing bytes after request";
    msg
  with
  | msg -> Ok msg
  | exception Bad m -> Error m
  | exception Codec.Truncated -> Error "truncated request envelope"

let put_error b = function
  | Unknown_overlay name ->
    Codec.put_u8 b 1;
    Codec.put_string b name
  | Queue_full -> Codec.put_u8 b 2
  | Compile_error e ->
    Codec.put_u8 b 3;
    Codec.put_string b e
  | Transient_failure e ->
    Codec.put_u8 b 4;
    Codec.put_string b e
  | Deadline_exceeded -> Codec.put_u8 b 5
  | Shutting_down -> Codec.put_u8 b 6
  | Source_error e ->
    Codec.put_u8 b 7;
    Codec.put_string b e
  | Quota_exceeded -> Codec.put_u8 b 8

let get_error s pos =
  match Codec.get_u8 s pos with
  | 1 -> Unknown_overlay (Codec.get_string s pos)
  | 2 -> Queue_full
  | 3 -> Compile_error (Codec.get_string s pos)
  | 4 -> Transient_failure (Codec.get_string s pos)
  | 5 -> Deadline_exceeded
  | 6 -> Shutting_down
  | 7 -> Source_error (Codec.get_string s pos)
  | 8 -> Quota_exceeded
  | n -> fail "unknown error tag %d" n

let encode_resp msg =
  let b = Buffer.create 256 in
  Codec.put_string b resp_schema;
  (match msg with
  | Result r ->
    Codec.put_u8 b 0;
    put_id b r.id;
    put_bool b r.cache_hit;
    Codec.put_f64 b r.service_s;
    Codec.put_u32 b r.shard;
    (match r.outcome with
    | Ok schedules ->
      Codec.put_u8 b 0;
      Codec.put_string b (Codec.encode_marshal ~schema:schedules_schema schedules)
    | Error e -> put_error b e)
  | Redirect r ->
    Codec.put_u8 b 1;
    put_id b r.id;
    Codec.put_u32 b r.owner
  | Pong p ->
    Codec.put_u8 b 2;
    Codec.put_u32 b p.shard;
    Codec.put_u32 b p.shards
  | Stats st ->
    Codec.put_u8 b 3;
    Codec.put_u32 b st.shard;
    put_id b st.served;
    put_id b st.hits;
    put_id b st.misses;
    put_id b st.warm_loaded
  | Bye -> Codec.put_u8 b 4
  | Metrics_dump m ->
    Codec.put_u8 b 5;
    Codec.put_u32 b m.shard;
    Codec.put_string b m.text
  | Health h ->
    Codec.put_u8 b 6;
    Codec.put_u32 b h.shard;
    put_bool b h.quiesced;
    put_id b h.served;
    put_id b h.inflight;
    put_id b h.warm_loaded
  | Events e ->
    Codec.put_u8 b 7;
    Codec.put_u32 b e.shard;
    Codec.put_u32 b (List.length e.events);
    List.iter (Codec.put_string b) e.events);
  Buffer.contents b

let decode_resp s =
  match
    let pos = ref 0 in
    let schema = Codec.get_string s pos in
    if schema <> resp_schema then
      fail "response schema is %S, reader wants %S" schema resp_schema;
    let msg =
      match Codec.get_u8 s pos with
      | 0 ->
        let id = get_id s pos in
        let cache_hit = get_bool s pos in
        let service_s = Codec.get_f64 s pos in
        let shard = Codec.get_u32 s pos in
        let outcome =
          match Codec.get_u8 s pos with
          | 0 -> (
            let blob = Codec.get_string s pos in
            match
              (Codec.decode_marshal ~schema:schedules_schema blob
                : (Overgen_scheduler.Schedule.t list, string) result)
            with
            | Ok schedules -> Ok schedules
            | Error e -> fail "schedules blob: %s" e)
          | tag ->
            pos := !pos - 1;
            ignore tag;
            Error (get_error s pos)
        in
        Result { id; outcome; cache_hit; service_s; shard }
      | 1 ->
        let id = get_id s pos in
        let owner = Codec.get_u32 s pos in
        Redirect { id; owner }
      | 2 ->
        let shard = Codec.get_u32 s pos in
        let shards = Codec.get_u32 s pos in
        Pong { shard; shards }
      | 3 ->
        let shard = Codec.get_u32 s pos in
        let served = get_id s pos in
        let hits = get_id s pos in
        let misses = get_id s pos in
        let warm_loaded = get_id s pos in
        Stats { shard; served; hits; misses; warm_loaded }
      | 4 -> Bye
      | 5 ->
        let shard = Codec.get_u32 s pos in
        let text = Codec.get_string s pos in
        Metrics_dump { shard; text }
      | 6 ->
        let shard = Codec.get_u32 s pos in
        let quiesced = get_bool s pos in
        let served = get_id s pos in
        let inflight = get_id s pos in
        let warm_loaded = get_id s pos in
        Health { shard; quiesced; served; inflight; warm_loaded }
      | 7 ->
        let shard = Codec.get_u32 s pos in
        let n = Codec.get_u32 s pos in
        if n > 1_000_000 then fail "events list announces %d entries" n;
        let events = ref [] in
        for _ = 1 to n do
          events := Codec.get_string s pos :: !events
        done;
        Events { shard; events = List.rev !events }
      | n -> fail "unknown response tag %d" n
    in
    if !pos <> String.length s then fail "trailing bytes after response";
    msg
  with
  | msg -> Ok msg
  | exception Bad m -> Error m
  | exception Codec.Truncated -> Error "truncated response envelope"

(* The routing key deliberately avoids the registry fingerprint and the
   mDFG content hash: a client can compute it from the request alone, yet
   it determines both (the overlay name resolves to one fingerprint on
   every shard, the kernel digest to one variant hash), so the cache
   keyspace is partitioned consistently with the schedule-cache keys.
   A [Source] payload routes on the raw source text — the client cannot
   parse, so it cannot digest the lowered IR; the source form of a kernel
   may therefore land on a different shard than its IR form, but within
   each shard both resolve to the same schedule-cache key post-parse. *)
let route_key ~overlay ~(payload : payload) ~tuned =
  let b = Buffer.create 64 in
  Codec.put_string b overlay;
  (match payload with
  | Kernel k -> Codec.put_string b (Digest.string (Ir.pretty k))
  | Source src -> Codec.put_string b (Digest.string ("src\x00" ^ src)));
  put_bool b tuned;
  Buffer.contents b
