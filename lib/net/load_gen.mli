(** Open-loop load generator for a shard cluster.

    Requests arrive on a fixed schedule — request [i] at [t0 + i/rate] —
    regardless of how fast the cluster answers, so queueing delay shows
    up in the latency percentiles instead of silently throttling the
    offered load (the coordinated-omission trap a closed loop falls
    into).

    One sender thread per shard owns one connection and the slice of the
    request array whose {!Wire.route_key} the {!Shard_map.Default} ring
    assigns to that shard.  The thread reconnects with backoff when the
    shard drops (resending everything that was in flight on the lost
    connection), re-enqueues retryable errors ([Shutting_down],
    [Transient_failure], [Queue_full]) after a short pause, and hands
    [Redirect]ed requests to the owner shard's thread — so a shard
    killed and restarted mid-run costs latency, never answers.

    Latency is measured from the request's {e scheduled} arrival to its
    completion. *)

type config = {
  cluster : Node.peer array;   (** shard endpoints, index = shard id *)
  vnodes : int;                (** must match the servers' ring *)
  requests : Wire.request array;
      (** the trace; ids are overwritten with the array index *)
  rate : float;                (** offered load, requests/second *)
  timeout_s : float;           (** give-up bound on the whole run *)
}

type summary = {
  requests : int;
  completed : int;   (** got a final answer before [timeout_s] *)
  ok : int;
  failed : int;      (** deterministic errors: final, not retried *)
  hits : int;        (** completions served from a shard's cache *)
  redirects : int;
  reconnects : int;
  resends : int;
  wall_s : float;
  goodput_rps : float;  (** ok / wall_s *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> summary

val to_metrics : config -> summary -> (string * float) list
(** The summary as metric pairs, ready for
    {!Overgen_obs.Export.write_bench_json}. *)

val report : summary -> string
(** One-screen text report. *)
