(** Open-loop load generator for a shard cluster.

    Requests arrive on a fixed schedule — request [i] at [t0 + i/rate] —
    regardless of how fast the cluster answers, so queueing delay shows
    up in the latency percentiles instead of silently throttling the
    offered load (the coordinated-omission trap a closed loop falls
    into).

    One sender thread per shard owns one connection and the slice of the
    request array whose {!Wire.route_key} the {!Shard_map.Default} ring
    assigns to that shard.  The thread reconnects with backoff when the
    shard drops (resending everything that was in flight on the lost
    connection), re-enqueues retryable errors ([Shutting_down],
    [Transient_failure], [Queue_full]) after a short pause, and hands
    [Redirect]ed requests to the owner shard's thread — so a shard
    killed and restarted mid-run costs latency, never answers.

    Latency is measured from the request's {e scheduled} arrival to its
    completion.  The headline percentiles ([p50/p90/p99/mean]) cover
    only requests answered on their first send; requests that had to be
    resent (lost connection, retryable error) carry reconnect/backoff
    waits and are reported separately through [resend_p99_ms] — mixing
    the two would let a handful of reconnect storms swamp the steady
    -state tail.  [max_ms] still spans everything.

    When a request carries a non-empty {!Wire.request.trace} and the
    observability gate is on, each send is wrapped in a [client_send]
    span whose id travels as the request's [parent_span], linking the
    client's timeline to the server's. *)

type config = {
  cluster : Node.peer array;   (** shard endpoints, index = shard id *)
  vnodes : int;                (** must match the servers' ring *)
  requests : Wire.request array;
      (** the trace; ids are overwritten with the array index *)
  rate : float;                (** offered load, requests/second *)
  timeout_s : float;           (** give-up bound on the whole run *)
  misroute_every : int option;
      (** [Some k]: send every [k]-th request to the wrong shard
          (owner + 1), exercising the server's forward/redirect path
          that a correctly-routing client never hits.  [None]: route
          everything to its ring owner. *)
}

type summary = {
  requests : int;
  completed : int;   (** got a final answer before [timeout_s] *)
  ok : int;
  failed : int;      (** deterministic errors: final, not retried *)
  hits : int;        (** completions served from a shard's cache *)
  redirects : int;
  reconnects : int;
  resends : int;     (** individual re-send events *)
  resent_requests : int;
      (** distinct completed requests that were resent at least once *)
  wall_s : float;
  goodput_rps : float;  (** ok / wall_s *)
  mean_ms : float;   (** first-send completions only *)
  p50_ms : float;    (** first-send completions only *)
  p90_ms : float;    (** first-send completions only *)
  p99_ms : float;    (** first-send completions only *)
  max_ms : float;    (** worst completion overall, resends included *)
  resend_p99_ms : float;
      (** p99 over resent completions; 0 when nothing was resent *)
}

val run : config -> summary

val to_metrics : config -> summary -> (string * float) list
(** The summary as metric pairs, ready for
    {!Overgen_obs.Export.write_bench_json}. *)

val report : summary -> string
(** One-screen text report. *)
