module Stats = Overgen_util.Stats
module Obs = Overgen_obs.Obs

type config = {
  cluster : Node.peer array;
  vnodes : int;
  requests : Wire.request array;
  rate : float;
  timeout_s : float;
  misroute_every : int option;
}

type summary = {
  requests : int;
  completed : int;
  ok : int;
  failed : int;
  hits : int;
  redirects : int;
  reconnects : int;
  resends : int;
  resent_requests : int;
  wall_s : float;
  goodput_rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  resend_p99_ms : float;
}

(* Shared completion ledger: one slot per request, settled exactly once
   no matter which shard thread hears the answer (a resent request can in
   principle be answered twice; the first answer wins). *)
type ledger = {
  gm : Mutex.t;
  done_ : bool array;
  latency : float array;  (* scheduled-arrival-to-completion, seconds *)
  resent : bool array;
      (* the request was re-sent at least once (lost connection or a
         retryable error); its latency includes reconnect/backoff waits,
         so the headline percentiles exclude it *)
  mutable ok : int;
  mutable failed : int;
  mutable hits : int;
  mutable redirects : int;
  mutable reconnects : int;
  mutable resends : int;
  mutable n_done : int;
}

let settle ledger idx ~lat ~ok ~hit =
  Mutex.lock ledger.gm;
  let fresh = not ledger.done_.(idx) in
  if fresh then begin
    ledger.done_.(idx) <- true;
    ledger.latency.(idx) <- lat;
    ledger.n_done <- ledger.n_done + 1;
    if ok then ledger.ok <- ledger.ok + 1 else ledger.failed <- ledger.failed + 1;
    if hit then ledger.hits <- ledger.hits + 1
  end;
  Mutex.unlock ledger.gm;
  fresh

let all_done ledger total =
  Mutex.lock ledger.gm;
  let d = ledger.n_done in
  Mutex.unlock ledger.gm;
  d >= total

let count ledger field =
  Mutex.lock ledger.gm;
  let v = field ledger in
  Mutex.unlock ledger.gm;
  v

(* Per-shard send queue: (request index, earliest send time), sorted by
   time.  Initial entries carry their scheduled arrival; retries and
   redirects are inserted near the head, so insertion stays cheap. *)
type shard_q = { qm : Mutex.t; mutable q : (int * float) list }

let enqueue sq idx at =
  Mutex.lock sq.qm;
  let rec ins = function
    | [] -> [ (idx, at) ]
    | ((_, t') :: _) as l when at < t' -> (idx, at) :: l
    | e :: rest -> e :: ins rest
  in
  sq.q <- ins sq.q;
  Mutex.unlock sq.qm

let pop_due sq now max =
  Mutex.lock sq.qm;
  let rec split k acc = function
    | (idx, at) :: rest when at <= now && k < max ->
      split (k + 1) (idx :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let due, rest = split 0 [] sq.q in
  sq.q <- rest;
  Mutex.unlock sq.qm;
  due

let next_due sq =
  Mutex.lock sq.qm;
  let v = match sq.q with [] -> None | (_, at) :: _ -> Some at in
  Mutex.unlock sq.qm;
  v

let queue_empty sq =
  Mutex.lock sq.qm;
  let e = sq.q = [] in
  Mutex.unlock sq.qm;
  e

let retry_pause = 0.05
let dial_backoff_max = 0.5

(* Cap on unanswered requests per connection.  Open-loop means the due
   backlog is unbounded when the cluster falls behind the arrival rate;
   blindly writing all of it would fill both TCP buffers (the sender
   blocked in [write], the server blocked writing responses nobody
   reads) and deadlock the pair.  The cap keeps the pipeline deep
   enough to saturate the shard while guaranteeing the sender always
   returns to draining responses.  It also stays under the server's
   admission queue, so overload shows up as client-side queueing delay
   in the percentiles, not as a [Queue_full] retry storm. *)
let max_inflight = 256

(* One shard's sender: owns the connection, sends due requests, parses
   whatever response bytes have arrived, retries/redirects as needed. *)
let sender (cfg : config) ledger queues shard t0 deadline () =
  let sq = queues.(shard) in
  let peer = cfg.cluster.(shard) in
  let n = Array.length cfg.requests in
  let conn = ref None in
  let inflight : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rbuf = ref "" in
  let dial_pause = ref 0.01 in
  let drop_conn () =
    (match !conn with
    | Some c ->
      Client.close c;
      conn := None;
      rbuf := "";
      Mutex.lock ledger.gm;
      ledger.reconnects <- ledger.reconnects + 1;
      ledger.resends <- ledger.resends + Hashtbl.length inflight;
      Hashtbl.iter (fun idx () -> ledger.resent.(idx) <- true) inflight;
      Mutex.unlock ledger.gm
    | None -> ());
    (* everything in flight on the lost connection must be resent *)
    let now = Unix.gettimeofday () in
    Hashtbl.iter (fun idx () -> enqueue sq idx now) inflight;
    Hashtbl.reset inflight
  in
  let ensure_conn () =
    match !conn with
    | Some c -> Some c
    | None -> (
      match Client.connect ~host:peer.Node.host ~port:peer.Node.port with
      | Ok c ->
        conn := Some c;
        dial_pause := 0.01;
        Some c
      | Error _ ->
        Unix.sleepf !dial_pause;
        dial_pause := Float.min dial_backoff_max (!dial_pause *. 2.0);
        None)
  in
  let sched i = t0 +. (float_of_int i /. cfg.rate) in
  let handle_resp now = function
    | Wire.Result { id; outcome; cache_hit; _ } -> (
      Hashtbl.remove inflight id;
      match outcome with
      | Ok _ ->
        ignore (settle ledger id ~lat:(now -. sched id) ~ok:true ~hit:cache_hit)
      | Error e when Wire.retryable e ->
        (* final answers only: back off and offer it again *)
        Mutex.lock ledger.gm;
        ledger.resends <- ledger.resends + 1;
        ledger.resent.(id) <- true;
        Mutex.unlock ledger.gm;
        enqueue sq id (now +. retry_pause)
      | Error _ ->
        ignore (settle ledger id ~lat:(now -. sched id) ~ok:false ~hit:false))
    | Wire.Redirect { id; owner } ->
      Hashtbl.remove inflight id;
      Mutex.lock ledger.gm;
      ledger.redirects <- ledger.redirects + 1;
      Mutex.unlock ledger.gm;
      if owner >= 0 && owner < Array.length queues then enqueue queues.(owner) id now
      else enqueue sq id (now +. retry_pause)
    | Wire.Pong _ | Wire.Stats _ | Wire.Bye | Wire.Metrics_dump _
    | Wire.Health _ | Wire.Events _ ->
      ()
  in
  (* drain complete frames out of the receive accumulator *)
  let parse_frames () =
    let now = Unix.gettimeofday () in
    let s = !rbuf in
    let len = String.length s in
    let pos = ref 0 in
    let bad = ref false in
    (try
       while !pos < len && not !bad do
         match Wire.deframe ~pos:!pos s with
         | Ok (payload, consumed) ->
           pos := !pos + consumed;
           (match Wire.decode_resp payload with
           | Ok msg -> handle_resp now msg
           | Error _ -> bad := true)
         | Error Wire.Truncated -> raise Exit
         | Error _ -> bad := true
       done
     with Exit -> ());
    rbuf := String.sub s !pos (len - !pos);
    if !bad then drop_conn ()
  in
  let read_available c =
    let chunk = Bytes.create 65536 in
    match Unix.read (Client.fd c) chunk 0 65536 with
    | 0 -> drop_conn ()
    | r ->
      rbuf := !rbuf ^ Bytes.sub_string chunk 0 r;
      parse_frames ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> drop_conn ()
  in
  let send_due now =
    let budget = max_inflight - Hashtbl.length inflight in
    if budget > 0 then
      match pop_due sq now budget with
      | [] -> ()
      | due -> (
        match ensure_conn () with
        | None ->
          (* shard unreachable: put them back for after the backoff *)
          let at = Unix.gettimeofday () +. retry_pause in
          List.iter (fun idx -> enqueue sq idx at) due
        | Some c ->
          List.iter
            (fun idx ->
              if not (Hashtbl.mem inflight idx) then begin
                Hashtbl.replace inflight idx ();
                let base = cfg.requests.(idx) in
                let send parent_span =
                  Client.send c
                    (Wire.Compile { base with Wire.id = idx; parent_span })
                in
                let sent =
                  if base.Wire.trace <> "" && Obs.on () then
                    Obs.Span.with_trace base.Wire.trace (fun () ->
                        Obs.Span.with_span "client_send"
                          ~attrs:
                            [
                              ("id", string_of_int idx);
                              ("shard", string_of_int shard);
                            ]
                          (fun () -> send (Obs.Span.current_id ())))
                  else send base.Wire.parent_span
                in
                match sent with Ok () -> () | Error _ -> drop_conn ()
              end)
            due)
  in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if now < deadline && not (all_done ledger n) then begin
      send_due now;
      let wait =
        let upper = 0.01 in
        (* pipeline full: nothing to send until a response frees a slot,
           so just wait on the socket *)
        if Hashtbl.length inflight >= max_inflight then upper
        else
          match next_due sq with
          | Some at -> Float.max 0.0 (Float.min upper (at -. now))
          | None -> upper
      in
      (match !conn with
      | Some c -> (
        match Unix.select [ Client.fd c ] [] [] wait with
        | [ _ ], _, _ -> read_available c
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | None ->
        (* nothing to read from; idle briefly unless sends are due *)
        if queue_empty sq && Hashtbl.length inflight = 0 then Unix.sleepf wait
        else Unix.sleepf (Float.min wait 0.005));
      loop ()
    end
  in
  loop ();
  (match !conn with Some c -> Client.close c | None -> ())

let run (cfg : config) =
  let n = Array.length cfg.requests in
  if n = 0 then invalid_arg "Load_gen.run: empty request array";
  if cfg.rate <= 0.0 then invalid_arg "Load_gen.run: rate <= 0";
  let shards = Array.length cfg.cluster in
  let map = Shard_map.Default.make ~vnodes:cfg.vnodes ~shards () in
  let ledger =
    {
      gm = Mutex.create ();
      done_ = Array.make n false;
      latency = Array.make n 0.0;
      resent = Array.make n false;
      ok = 0;
      failed = 0;
      hits = 0;
      redirects = 0;
      reconnects = 0;
      resends = 0;
      n_done = 0;
    }
  in
  let queues = Array.init shards (fun _ -> { qm = Mutex.create (); q = [] }) in
  let t0 = Unix.gettimeofday () +. 0.05 in
  (* route each request to its owner up front; within a shard the indices
     stay in schedule order, so each queue starts sorted *)
  let per_shard = Array.make shards [] in
  for i = n - 1 downto 0 do
    let r = cfg.requests.(i) in
    let owner =
      Shard_map.Default.owner map
        (Wire.route_key ~overlay:r.Wire.overlay ~payload:r.Wire.payload
           ~tuned:r.Wire.tuned)
    in
    (* deliberate misrouting exercises the server-side forward/redirect
       path, which a correctly-routing client otherwise never triggers *)
    let target =
      match cfg.misroute_every with
      | Some k when k > 0 && shards > 1 && i mod k = 0 -> (owner + 1) mod shards
      | _ -> owner
    in
    per_shard.(target) <- (i, t0 +. (float_of_int i /. cfg.rate)) :: per_shard.(target)
  done;
  Array.iteri (fun s q -> queues.(s).q <- q) per_shard;
  let deadline = t0 +. cfg.timeout_s in
  let threads =
    Array.init shards (fun s ->
        Thread.create (sender cfg ledger queues s t0 deadline) ())
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let pick keep =
    Array.to_list ledger.latency
    |> List.filteri (fun i _ -> ledger.done_.(i) && keep i)
    |> List.map (fun l -> l *. 1000.0)
  in
  (* headline percentiles describe the first-send path; requests that
     were resent carry reconnect/backoff waits and get their own tail *)
  let first = pick (fun i -> not ledger.resent.(i)) in
  let resent_lats = pick (fun i -> ledger.resent.(i)) in
  let all = pick (fun _ -> true) in
  let ps = Stats.percentiles (Array.of_list first) [ 50.0; 90.0; 99.0 ] in
  let p50, p90, p99 =
    match ps with [ a; b; c ] -> (a, b, c) | _ -> (0.0, 0.0, 0.0)
  in
  let resend_p99 =
    match Stats.percentiles (Array.of_list resent_lats) [ 99.0 ] with
    | [ p ] -> p
    | _ -> 0.0
  in
  let resent_requests =
    Array.to_list ledger.resent
    |> List.filteri (fun i _ -> ledger.done_.(i))
    |> List.filter (fun r -> r)
    |> List.length
  in
  {
    requests = n;
    completed = count ledger (fun l -> l.n_done);
    ok = count ledger (fun l -> l.ok);
    failed = count ledger (fun l -> l.failed);
    hits = count ledger (fun l -> l.hits);
    redirects = count ledger (fun l -> l.redirects);
    reconnects = count ledger (fun l -> l.reconnects);
    resends = count ledger (fun l -> l.resends);
    resent_requests;
    wall_s;
    goodput_rps = (if wall_s > 0.0 then float_of_int ledger.ok /. wall_s else 0.0);
    mean_ms = Stats.mean first;
    p50_ms = p50;
    p90_ms = p90;
    p99_ms = p99;
    max_ms = List.fold_left Float.max 0.0 all;
    resend_p99_ms = resend_p99;
  }

let to_metrics (cfg : config) (s : summary) =
  [
    ("requests", float_of_int s.requests);
    ("rate_rps", cfg.rate);
    ("shards", float_of_int (Array.length cfg.cluster));
    ("completed", float_of_int s.completed);
    ("ok", float_of_int s.ok);
    ("failed", float_of_int s.failed);
    ("hit_rate",
     if s.completed > 0 then float_of_int s.hits /. float_of_int s.completed
     else 0.0);
    ("redirects", float_of_int s.redirects);
    ("reconnects", float_of_int s.reconnects);
    ("resends", float_of_int s.resends);
    ("resent_requests", float_of_int s.resent_requests);
    ("wall_s", s.wall_s);
    ("goodput_rps", s.goodput_rps);
    ("mean_ms", s.mean_ms);
    ("p50_ms", s.p50_ms);
    ("p90_ms", s.p90_ms);
    ("p99_ms", s.p99_ms);
    ("max_ms", s.max_ms);
    ("resend_p99_ms", s.resend_p99_ms);
  ]

let report s =
  let b = Buffer.create 512 in
  Printf.bprintf b "net load: %d requests, %d completed (%d ok, %d failed)\n"
    s.requests s.completed s.ok s.failed;
  Printf.bprintf b "  hits %d  redirects %d  reconnects %d  resends %d (%d requests)\n"
    s.hits s.redirects s.reconnects s.resends s.resent_requests;
  Printf.bprintf b "  wall %.2fs  goodput %.0f req/s\n" s.wall_s s.goodput_rps;
  Printf.bprintf b
    "  first-send ms: p50 %.2f  p90 %.2f  p99 %.2f  mean %.2f  max(all) %.2f\n"
    s.p50_ms s.p90_ms s.p99_ms s.mean_ms s.max_ms;
  Printf.bprintf b "  resend p99 %.2f ms\n" s.resend_p99_ms;
  Buffer.contents b
