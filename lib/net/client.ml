type t = { fd_ : Unix.file_descr; mutable open_ : bool }

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Error ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
    | exception Not_found -> Error ("unknown host " ^ host))

let connect ~host ~port =
  Io.quiet_sigpipe ();
  match resolve host with
  | Error _ as e -> e
  | Ok addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Unix.connect fd (Unix.ADDR_INET (addr, port))
    with
    | () -> Ok { fd_ = fd; open_ = true }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e)))

let fd t = t.fd_

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Unix.shutdown t.fd_ Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close t.fd_ with _ -> ()
  end

let send t msg =
  if not t.open_ then Error "connection closed"
  else
    match Io.send_frame t.fd_ (Wire.encode_req msg) with
    | () -> Ok ()
    | exception Io.Closed -> Error "connection closed by peer"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let recv t =
  if not t.open_ then Error "connection closed"
  else
    match Io.recv_frame t.fd_ with
    | Ok payload -> Wire.decode_resp payload
    | Error fe -> Error (Wire.frame_error_to_string fe)
    | exception Io.Closed -> Error "connection closed by peer"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let rpc t msg = match send t msg with Error _ as e -> e | Ok () -> recv t
