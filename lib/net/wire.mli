(** The binary wire protocol of the networked serving tier.

    Two layers, both built on the {!Overgen_store.Codec} primitives the
    durable store already uses (little-endian length-prefixed fields,
    schema-tagged payloads):

    {b Framing.}  Every message travels as one frame:

    {v
    +----+----+--------+--------+----------------+----------------+
    | 'O'| 'N'| version|  zero  | u32 LE length  | u32 LE CRC-32  |
    +----+----+--------+--------+----------------+----------------+
    | payload bytes (length of them, CRC-32 of them)              |
    +-------------------------------------------------------------+
    v}

    The version byte is part of the header: a frame from a different
    protocol version is {e rejected} ([Version_mismatch]), never
    misparsed.  A wrong magic, an oversized length or a CRC mismatch are
    likewise typed errors — the server closes the connection with a
    counted error on any of them, mirroring the store's scan-on-open
    discipline (damage is detected and contained, not interpreted).

    {b Messages.}  Payloads are schema-tagged ([net-req-v4] /
    [net-resp-v4]) envelopes whose fields are Codec primitives; the two
    structured blobs — the kernel in a compile request and the schedules
    in a successful response — ride as {!Overgen_store.Codec}
    marshal-encoded, schema-tagged strings, so a format bump of either
    renames its schema and old peers reject rather than misparse.

    v4 added the tenant identity to the compile request — the QoS key
    the receiving shard's admission layer meters and weighted-fair-queues
    on — and [Quota_exceeded] to the error taxonomy.  (v3 made the
    payload a tagged union of marshalled IR kernel / raw pragma'd C
    source and added [Source_error]; v2 added the trace context and the
    ops-plane kinds.)  Each bump moves the
    version byte and both envelope schemas together, so older frames
    reject at the header and older payloads at the schema check — never a
    silent misparse. *)

open Overgen_workload

val version : int
(** Wire protocol version, byte 2 of every frame header. *)

val header_bytes : int
(** Frame header size: 12. *)

val max_payload_bytes : int
(** Upper bound on a frame payload (16 MiB); a header announcing more is
    rejected as [Oversized] without allocating. *)

type frame_error =
  | Bad_magic
  | Version_mismatch of int  (** the peer's version byte *)
  | Oversized of int         (** announced payload length *)
  | Checksum_mismatch
  | Truncated                (** frame cut short (torn write / short read) *)

val frame_error_to_string : frame_error -> string

type header = { length : int; crc : int32 }

val frame : string -> string
(** Wrap a payload into a complete frame. *)

val decode_header : string -> (header, frame_error) result
(** Parse exactly the first {!header_bytes} bytes of a frame.  [Truncated]
    if fewer bytes are supplied. *)

val verify_payload : header -> string -> (unit, frame_error) result
(** Check a received payload against its header's length and CRC. *)

val deframe : ?pos:int -> string -> (string * int, frame_error) result
(** Whole-buffer convenience (tests, buffered readers): parse one frame
    starting at [pos] (default 0) and return (payload, bytes consumed).
    [Truncated] when the buffer holds only a frame prefix. *)

(** {2 Messages} *)

(** What a compile request carries: a pre-lowered IR kernel, or pragma'd
    C source text the shard parses with {!Overgen_frontend.Frontend}
    inside the request's fault isolation.  A source that parses compiles
    under exactly the same schedule-cache key as its [Kernel]
    equivalent. *)
type payload = Kernel of Ir.kernel | Source of string

type request = {
  id : int;           (** client-chosen; the server namespaces it
                          per-connection before processing *)
  user : string;
  tenant : string;
      (** the tenant (QoS identity) this request bills to: quota
          metering, weighted-fair share and deadline class on the
          serving shard, plus per-tenant telemetry labels.  [""] rides
          as untenanted (default SLA). *)
  overlay : string;   (** registry name to compile against *)
  payload : payload;
  tuned : bool;
  trace : string;
      (** 128-bit distributed-trace id (32 hex chars), carried verbatim
          across forwards/redirects so one request is one trace; [""]
          when the client does not trace *)
  parent_span : int;
      (** the client-side span the server's spans hang under, recorded as
          a [remote_parent] attribute (span ids are per-process) *)
}

type req_msg =
  | Compile of request
  | Ping
  | Stats_req
  | Quiesce  (** ask the node to stop admitting and drain (graceful stop) *)
  | Metrics_req      (** full Prometheus text exposition of the shard *)
  | Health_req       (** liveness + load snapshot, cheap enough to poll *)
  | Recent_events_req of { max : int }
      (** newest [max] flight-recorder events as JSONL lines *)

(** Request outcome as it travels back; mirrors {!Service.error} plus the
    server-side [Shutting_down] answer new requests get during drain. *)
type wire_error =
  | Unknown_overlay of string
  | Queue_full
  | Compile_error of string
  | Transient_failure of string
  | Deadline_exceeded
  | Shutting_down
  | Source_error of string
      (** the frontend rejected a [Source] payload: deterministic,
          located as "line:col: message" *)
  | Quota_exceeded
      (** the tenant's token bucket was empty at admission:
          deterministic, never retried *)

val wire_error_to_string : wire_error -> string

val retryable : wire_error -> bool
(** Whether a client should retry: everything except the deterministic
    verdicts ([Unknown_overlay], [Compile_error], [Source_error],
    [Quota_exceeded] — resending a quota shed would burn the tenant's
    bucket again for the same answer). *)

type resp_msg =
  | Result of {
      id : int;
      outcome : (Overgen_scheduler.Schedule.t list, wire_error) result;
      cache_hit : bool;
      service_s : float;
      shard : int;  (** which shard computed/served it *)
    }
  | Redirect of { id : int; owner : int }
      (** this shard does not own the request's key; re-send to [owner] *)
  | Pong of { shard : int; shards : int }
  | Stats of {
      shard : int;
      served : int;
      hits : int;
      misses : int;
      warm_loaded : int;  (** cache entries replayed from the durable store *)
    }
  | Bye  (** acknowledges [Quiesce] *)
  | Metrics_dump of { shard : int; text : string }
      (** the shard's registries rendered as Prometheus text *)
  | Health of {
      shard : int;
      quiesced : bool;
      served : int;      (** compile requests admitted since boot *)
      inflight : int;    (** admitted but not yet answered *)
      warm_loaded : int; (** cache entries replayed from the store *)
    }
  | Events of { shard : int; events : string list }
      (** flight-recorder events, oldest first, one JSON object each *)

val encode_req : req_msg -> string
val decode_req : string -> (req_msg, string) result
val encode_resp : resp_msg -> string
val decode_resp : string -> (resp_msg, string) result
(** Decoders reject unknown schemas/tags and truncated envelopes with
    [Error], never a garbage value. *)

val route_key : overlay:string -> payload:payload -> tuned:bool -> string
(** The consistent-hash routing key of a compile request: a
    length-prefixed join of the overlay name, the payload's content
    digest (lowered-IR pretty-print for [Kernel], raw text for [Source])
    and the tuned flag.  Client and server compute it identically, so a
    given (overlay, payload, tuned) triple always lands on one shard —
    the shard whose schedule cache will hold its fingerprint+mDFG-hash
    entry.  The source form of a kernel may route to a different shard
    than its IR form (the client cannot digest IR it never parsed), but
    on whichever shard serves them both resolve to the same
    schedule-cache key post-parse. *)
