(** One shard's node state machine.

    Shaped like a verdi-runtime arrangement: a static cluster
    configuration names every peer up front, [init] builds the node's
    state, [handle_net] turns one incoming message into replies and
    forwards, [handle_timeout] does periodic housekeeping, and [reboot]
    models a crash-restart — tear the node down and rebuild it from the
    same configuration, replaying its durable store so the warm state
    (registered overlays, cached schedules) survives the crash.

    The node owns the slice of the cache keyspace that the
    {!Shard_map.Default} ring assigns to its index.  A compile request
    whose {!Wire.route_key} hashes elsewhere is either forwarded to its
    owner (the default) or answered with [Redirect] so the client
    re-sends — never computed here, keeping each key's cache entries
    (and their durable records) on exactly one shard.

    The node is transport-agnostic: it never touches a socket.  The
    server layer feeds it decoded {!Wire.req_msg}s and gets actions and
    asynchronous responses back through the [respond] callback. *)

type peer = { host : string; port : int }

val parse_peer : string -> (peer, string) result
(** ["host:port"].  The last [':'] splits, so bracketless IPv6 literals
    still parse. *)

val parse_cluster : string -> (peer array, string) result
(** Comma-separated ["host:port,host:port,..."]; index = shard id.
    Rejects empty clusters and malformed endpoints. *)

type config = {
  me : int;                  (** this node's index in [cluster] *)
  cluster : peer array;      (** static membership, index = shard id *)
  vnodes : int;              (** ring points per shard; must match peers *)
  forward : bool;            (** forward misdirected keys ([true]) or
                                 answer [Redirect] ([false]) *)
  store_path : string option;(** durable store; [None] = memory only *)
  workers : int;             (** service worker domains *)
  queue_capacity : int;
  cache_capacity : int;
  policy : Overgen_service.Service.policy;
  tenants : Overgen_fleet.Tenant.t list;
      (** non-empty: compiles are admitted through a per-tenant
          weighted-fair queue with quotas and deadline classes
          ({!Overgen_fleet.Admission}) instead of straight into the
          service queue *)
}

val default_config : cluster:peer array -> me:int -> config
(** [vnodes] {!Shard_map.default_vnodes}, forwarding on, no store, 2
    workers, queue 1024, cache 4096,
    {!Overgen_service.Service.default_policy}, no tenants. *)

type t

val init : ?setup:(Overgen_service.Registry.t -> unit) -> config -> (t, string) result
(** Build the node: open the store (if any), restore the registry and
    warm-start the cache from it, then run [setup] to register whatever
    overlays the store did not already hold — a rebooted node whose
    store has the overlays skips regeneration entirely.  Errors are
    structural (unopenable store, [setup] raised, bad config). *)

val reboot : t -> (t, string) result
(** Crash-restart: shut the node down and [init] again from its saved
    configuration and [setup].  With a store, the new node replays every
    durable record — same overlays, warm cache; without one it comes
    back cold.  The old handle must not be used afterwards. *)

(** What [handle_net] decided, beyond any [respond] calls it made:
    - [Done]: handled synchronously; any reply was already passed to
      [respond].
    - [Async]: a compile was admitted; exactly one [respond] call will
      follow from a worker domain.
    - [Forward]: the request belongs to [owner] — the transport layer
      must relay it and route the answer back. *)
type action = Done | Async | Forward of { owner : int; req : Wire.request }

val handle_net : t -> Wire.req_msg -> respond:(Wire.resp_msg -> unit) -> action
(** Process one decoded message.  [respond] must be thread-safe: for
    admitted compiles it is called later from a worker domain.  A
    quiesced node answers compiles with [Shutting_down] instead of
    admitting them. *)

val handle_timeout : t -> unit
(** Periodic housekeeping: refresh the node's gauges (cache entries,
    served count, quiesced flag). *)

val owner_of : t -> Wire.request -> int
(** The ring owner of a request's {!Wire.route_key}. *)

val quiesce : t -> unit
(** Stop admitting compiles; already-admitted requests still complete
    and their [respond] callbacks still run. *)

val quiesced : t -> bool

val shutdown : t -> unit
(** Drain the service workers, close the store.  Idempotent. *)

val me : t -> int
val cluster : t -> peer array
val served : t -> int
(** Compile requests this node admitted (including ones still in
    flight). *)

val inflight : t -> int
(** Admitted compiles whose response has not yet been handed to
    [respond]. *)

val warm_loaded : t -> int
(** Cache entries replayed from the durable store at [init]. *)

val service : t -> Overgen_service.Service.t

val admission : t -> Overgen_fleet.Admission.t option
(** The admission layer, when [config.tenants] was non-empty. *)

val registry : t -> Overgen_service.Registry.t
val cache : t -> Overgen_service.Cache.t
val metrics : t -> Overgen_obs.Metrics.registry

(** {2 Ops plane} *)

val attach_metrics : t -> Overgen_obs.Metrics.registry -> unit
(** Fold an extra registry (the transport server's) into this node's
    {!metrics_text} dump, so one [Metrics_req] scrape covers transport,
    node and service telemetry. *)

val registries : t -> Overgen_obs.Metrics.registry list
(** Everything {!metrics_text} renders: the node's own registry, any
    attached ones, and the service telemetry registry. *)

val metrics_text : t -> string
(** The full Prometheus text exposition a [Metrics_req] answers with. *)

val health_msg : t -> Wire.resp_msg
(** The [Health] snapshot a [Health_req] answers with. *)
