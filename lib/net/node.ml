module Service = Overgen_service.Service
module Registry = Overgen_service.Registry
module Cache = Overgen_service.Cache
module Store = Overgen_store.Store
module Metrics = Overgen_obs.Metrics
module Telemetry = Overgen_service.Telemetry
module Log = Overgen_obs.Obs.Log
module Tenant = Overgen_fleet.Tenant
module Admission = Overgen_fleet.Admission

type peer = { host : string; port : int }

let parse_peer s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad host:port %S" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some port when host <> "" && port >= 0 && port < 65536 ->
      Ok { host; port }
    | _ -> Error (Printf.sprintf "bad host:port %S" s))

let parse_cluster s =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | hp :: rest -> (
      match parse_peer hp with
      | Ok peer -> go (peer :: acc) rest
      | Error _ as e -> e)
  in
  match go [] (String.split_on_char ',' s) with
  | Ok [||] -> Error "empty cluster"
  | r -> r

type config = {
  me : int;
  cluster : peer array;
  vnodes : int;
  forward : bool;
  store_path : string option;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  policy : Service.policy;
  tenants : Tenant.t list;
      (* non-empty: requests go through a weighted-fair admission layer
         (quotas, deadline classes, same-overlay batching) instead of
         straight into the service queue *)
}

let default_config ~cluster ~me =
  {
    me;
    cluster;
    vnodes = Shard_map.default_vnodes;
    forward = true;
    store_path = None;
    workers = 2;
    queue_capacity = 1024;
    cache_capacity = 4096;
    policy = Service.default_policy;
    tenants = [];
  }

type t = {
  config : config;
  setup : (Registry.t -> unit) option;
  map : Shard_map.Default.t;
  store : Store.t option;
  registry : Registry.t;
  cache : Cache.t;
  service : Service.t;
  admission : Admission.t option;
  m : Mutex.t;
  mutable quiesced_ : bool;
  mutable served_ : int;
  mutable completed_ : int;
  mutable closed : bool;
  mutable attached : Metrics.registry list;
      (* extra registries (the transport server's) folded into the
         ops-plane Prometheus dump *)
  obs : Metrics.registry;
  g_cache_entries : Metrics.gauge;
  g_served : Metrics.gauge;
  g_quiesced : Metrics.gauge;
}

let me t = t.config.me
let cluster t = t.config.cluster
let service t = t.service
let admission t = t.admission
let registry t = t.registry
let cache t = t.cache
let metrics t = t.obs
let warm_loaded t = Cache.warm_loaded t.cache

let served t =
  Mutex.lock t.m;
  let n = t.served_ in
  Mutex.unlock t.m;
  n

let inflight t =
  Mutex.lock t.m;
  let n = t.served_ - t.completed_ in
  Mutex.unlock t.m;
  n

let attach_metrics t r =
  Mutex.lock t.m;
  t.attached <- r :: t.attached;
  Mutex.unlock t.m

let registries t =
  Mutex.lock t.m;
  let extra = t.attached in
  Mutex.unlock t.m;
  (t.obs :: extra) @ [ Telemetry.registry (Service.telemetry t.service) ]

let metrics_text t =
  String.concat "" (List.map Metrics.render_prometheus (registries t))

let quiesced t =
  Mutex.lock t.m;
  let q = t.quiesced_ in
  Mutex.unlock t.m;
  q

let init ?setup config =
  if config.me < 0 || config.me >= Array.length config.cluster then
    Error
      (Printf.sprintf "Node.init: me=%d outside cluster of %d" config.me
         (Array.length config.cluster))
  else if config.workers < 1 then Error "Node.init: workers < 1"
  else
    let opened =
      match config.store_path with
      | None -> Ok None
      | Some path -> (
        match Store.open_ ~path () with
        | Ok s -> Ok (Some s)
        | Error e -> Error (Printf.sprintf "Node.init: store %s: %s" path e))
    in
    match opened with
    | Error _ as e -> e
    | Ok store -> (
      match
        let registry = Registry.create ?store () in
        (* the store may already hold the overlays (reboot path) — [setup]
           only fills in what restore left missing *)
        (match setup with Some f -> f registry | None -> ());
        let cache = Cache.create ~capacity:config.cache_capacity ?store () in
        let service =
          Service.create
            ~mode:(Service.Workers config.workers)
            ~queue_capacity:config.queue_capacity ~cache ~policy:config.policy
            registry
        in
        let admission =
          match config.tenants with
          | [] -> None
          | tenants -> Some (Admission.create ~tenants service)
        in
        let obs =
          Metrics.create_registry
            ~label:(Printf.sprintf "net shard %d" config.me)
            ()
        in
        {
          config;
          setup;
          map = Shard_map.Default.make ~vnodes:config.vnodes
                  ~shards:(Array.length config.cluster) ();
          store;
          registry;
          cache;
          service;
          admission;
          m = Mutex.create ();
          quiesced_ = false;
          served_ = 0;
          completed_ = 0;
          closed = false;
          attached = [];
          obs;
          g_cache_entries =
            Metrics.gauge obs "overgen_net_cache_entries"
              ~help:"schedule cache entries held by this shard";
          g_served =
            Metrics.gauge obs "overgen_net_served"
              ~help:"compile requests admitted by this shard";
          g_quiesced =
            Metrics.gauge obs "overgen_net_quiesced"
              ~help:"1 while draining, 0 while admitting";
        }
      with
      | t ->
        (* Store recovery is a pinned flight-recorder milestone: the
           post-mortem of a kill-and-restart must show what the shard
           replayed, however much traffic followed. *)
        if t.store <> None then
          Log.record ~pin:true Log.default "store_replay"
            ~attrs:
              [
                ("shard", string_of_int config.me);
                ("warm_loaded", string_of_int (Cache.warm_loaded t.cache));
                ( "overlays",
                  string_of_int (List.length (Registry.names t.registry)) );
              ];
        Ok t
      | exception e ->
        Option.iter Store.close store;
        Error (Printf.sprintf "Node.init: %s" (Printexc.to_string e)))

let owner_of t (req : Wire.request) =
  Shard_map.Default.owner t.map
    (Wire.route_key ~overlay:req.overlay ~payload:req.payload ~tuned:req.tuned)

let service_payload : Wire.payload -> Service.payload = function
  | Wire.Kernel k -> Service.Kernel k
  | Wire.Source src -> Service.Source src

let wire_error_of_service : Service.error -> Wire.wire_error = function
  | Service.Unknown_overlay n -> Wire.Unknown_overlay n
  | Service.Queue_full -> Wire.Queue_full
  | Service.Source_error e -> Wire.Source_error e
  | Service.Compile_error e -> Wire.Compile_error e
  | Service.Transient_failure e -> Wire.Transient_failure e
  | Service.Deadline_exceeded -> Wire.Deadline_exceeded
  | Service.Quota_exceeded -> Wire.Quota_exceeded
  | Service.Shutdown -> Wire.Shutting_down

let result_of_response ~shard ~id (resp : Service.response) =
  Wire.Result
    {
      id;
      outcome =
        (match resp.Service.result with
        | Ok schedules -> Ok schedules
        | Error e -> Error (wire_error_of_service e));
      cache_hit = resp.Service.cache_hit;
      service_s = resp.Service.service_s;
      shard;
    }

let stats_msg t =
  let s = Cache.stats t.cache in
  Wire.Stats
    {
      shard = t.config.me;
      served = served t;
      hits = s.Cache.hits;
      misses = s.Cache.misses;
      warm_loaded = Cache.warm_loaded t.cache;
    }

let quiesce t =
  Mutex.lock t.m;
  let fresh = not t.quiesced_ in
  t.quiesced_ <- true;
  Mutex.unlock t.m;
  if fresh then
    Log.record ~pin:true Log.default "quiesce"
      ~attrs:[ ("shard", string_of_int t.config.me) ]

let health_msg t =
  Wire.Health
    {
      shard = t.config.me;
      quiesced = quiesced t;
      served = served t;
      inflight = inflight t;
      warm_loaded = Cache.warm_loaded t.cache;
    }

type action = Done | Async | Forward of { owner : int; req : Wire.request }

let handle_net t (msg : Wire.req_msg) ~respond : action =
  match msg with
  | Wire.Ping ->
    respond
      (Wire.Pong { shard = t.config.me; shards = Array.length t.config.cluster });
    Done
  | Wire.Stats_req ->
    respond (stats_msg t);
    Done
  | Wire.Quiesce ->
    quiesce t;
    respond Wire.Bye;
    Done
  | Wire.Metrics_req ->
    respond (Wire.Metrics_dump { shard = t.config.me; text = metrics_text t });
    Done
  | Wire.Health_req ->
    respond (health_msg t);
    Done
  | Wire.Recent_events_req { max } ->
    let events =
      List.map Log.event_json (Log.recent ~max:(min max 10_000) Log.default)
    in
    respond (Wire.Events { shard = t.config.me; events });
    Done
  | Wire.Compile req ->
    let refuse err =
      respond
        (Wire.Result
           {
             id = req.Wire.id;
             outcome = Error err;
             cache_hit = false;
             service_s = 0.0;
             shard = t.config.me;
           });
      Done
    in
    if quiesced t then refuse Wire.Shutting_down
    else
      let owner = owner_of t req in
      if owner <> t.config.me then begin
        let record_misroute kind =
          Log.record ~trace:req.Wire.trace Log.default kind
            ~attrs:
              [
                ("id", string_of_int req.Wire.id);
                ("shard", string_of_int t.config.me);
                ("owner", string_of_int owner);
              ]
        in
        if t.config.forward then begin
          record_misroute "shard_forward";
          Forward { owner; req }
        end
        else begin
          record_misroute "shard_redirect";
          respond (Wire.Redirect { id = req.Wire.id; owner });
          Done
        end
      end
      else
        let sreq =
          {
            Service.id = req.Wire.id;
            user = req.Wire.user;
            tenant = req.Wire.tenant;
            overlay = req.Wire.overlay;
            payload = service_payload req.Wire.payload;
            tuned = req.Wire.tuned;
            trace = req.Wire.trace;
            (* the admission layer stamps the tenant's deadline class;
               without one the service policy governs *)
            deadline_s = None;
          }
        in
        let k resp =
          Mutex.lock t.m;
          t.completed_ <- t.completed_ + 1;
          Mutex.unlock t.m;
          respond (result_of_response ~shard:t.config.me ~id:req.Wire.id resp)
        in
        (* count admission before submitting: [k] (and its completed_
           bump) may fire on a worker domain before submit_k returns *)
        (Mutex.lock t.m;
         t.served_ <- t.served_ + 1;
         Mutex.unlock t.m;
         match t.admission with
        | Some adm ->
          (* the admission layer answers every request through [k] —
             quota sheds included — so there is no error path here *)
          Admission.submit_k adm sreq ~k;
          Async
        | None -> (
          match Service.submit_k t.service sreq ~k with
          | Ok () -> Async
          | Error e ->
            Mutex.lock t.m;
            t.served_ <- t.served_ - 1;
            Mutex.unlock t.m;
            refuse (wire_error_of_service e)))

let handle_timeout t =
  Metrics.set t.g_cache_entries (float_of_int (Cache.stats t.cache).Cache.entries);
  Metrics.set t.g_served (float_of_int (served t));
  Metrics.set t.g_quiesced (if quiesced t then 1.0 else 0.0)

let shutdown t =
  Mutex.lock t.m;
  let already = t.closed in
  t.closed <- true;
  t.quiesced_ <- true;
  Mutex.unlock t.m;
  if not already then begin
    ignore (Service.drain t.service);
    Service.shutdown t.service;
    Option.iter Store.close t.store
  end

let reboot t =
  shutdown t;
  init ?setup:t.setup t.config
