(* ---------- JSON emission ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers may not be nan/inf; clamp defensively. *)
let num v =
  if Float.is_nan v then "0"
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else Printf.sprintf "%.3f" v

let args_json (s : Span.span) =
  let fields =
    [ ("span_id", string_of_int s.id); ("parent_id", string_of_int s.parent) ]
    @ (if s.trace = "" then [] else [ ("trace", s.trace) ])
    @ s.attrs
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) fields)
  ^ "}"

let chrome_event ?(pid = 1) (s : Span.span) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"overgen\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
    (escape s.name) pid s.domain
    (num (s.start_s *. 1e6))
    (num (s.dur_s *. 1e6))
    (args_json s)

let to_chrome spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (chrome_event s))
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Chrome's trace viewer names processes via "M" (metadata) events; the
   merged multi-shard trace emits one per pid so shards show up as
   labelled process lanes rather than bare numbers. *)
let merge_chrome ?(names = []) pid_spans =
  let pids =
    List.sort_uniq compare (List.map fst pid_spans)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  List.iter
    (fun pid ->
      let name =
        match List.assoc_opt pid names with
        | Some n -> n
        | None -> Printf.sprintf "process %d" pid
      in
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (escape name)))
    pids;
  List.iter (fun (pid, s) -> emit (chrome_event ~pid s)) pid_spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Parent links are process-local (span ids are per-process counters), so
   orphanhood is judged per pid.  Returns deduplicated (pid, parent_id)
   pairs whose parent was never recorded in that process. *)
let orphans pid_spans =
  let ids = Hashtbl.create 256 in
  List.iter (fun (pid, (s : Span.span)) -> Hashtbl.replace ids (pid, s.id) ()) pid_spans;
  let missing = Hashtbl.create 16 in
  List.iter
    (fun (pid, (s : Span.span)) ->
      if s.parent <> 0 && not (Hashtbl.mem ids (pid, s.parent)) then
        Hashtbl.replace missing (pid, s.parent) ())
    pid_spans;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) missing [])

let jsonl_line ?(pid = 1) (s : Span.span) =
  Printf.sprintf
    "{\"pid\":%d,\"id\":%d,\"parent\":%d,\"trace\":\"%s\",\"name\":\"%s\",\"domain\":%d,\"start_s\":%s,\"dur_s\":%s,\"attrs\":%s}"
    pid s.id s.parent (escape s.trace) (escape s.name) s.domain
    (Printf.sprintf "%.9f" s.start_s)
    (Printf.sprintf "%.9f" s.dur_s)
    ("{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
           s.attrs)
    ^ "}")

let to_jsonl ?pid spans =
  String.concat "\n" (List.map (jsonl_line ?pid) spans) ^ "\n"

(* ---------- JSON validation (grammar only, values discarded) ---------- *)

exception Bad of string * int

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal w =
    String.iter expect w
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
        saw := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if not !saw then fail "expected digit"
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> parse_object ()
    | Some '[' -> parse_array ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
    | None -> fail "unexpected end of input");
    skip_ws ()
  and parse_object () =
    expect '{';
    skip_ws ();
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        parse_string ();
        skip_ws ();
        expect ':';
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | _ -> expect '}'
      in
      members ())
  and parse_array () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> advance ()
    | _ ->
      let rec elements () =
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | _ -> expect ']'
      in
      elements ()
  in
  try
    parse_value ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok ()
  with Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* ---------- JSON value parsing ---------- *)

(* A minimal value-producing parser, sibling of [validate_json]: the
   trace-merge pipeline must read back the JSONL span files the shards
   wrote, still without a JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal w = String.iter expect w in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' as c) ->
      advance ();
      Char.code c - Char.code '0'
    | Some ('a' .. 'f' as c) ->
      advance ();
      Char.code c - Char.code 'a' + 10
    | Some ('A' .. 'F' as c) ->
      advance ();
      Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char b '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char b '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some 'u' ->
          advance ();
          let cp =
            let d1 = hex_digit () in
            let d2 = hex_digit () in
            let d3 = hex_digit () in
            let d4 = hex_digit () in
            (d1 lsl 12) lor (d2 lsl 8) lor (d3 lsl 4) lor d4
          in
          add_utf8 b cp;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' -> parse_object ()
      | Some '[' -> parse_array ()
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true"; Bool true
      | Some 'f' -> literal "false"; Bool false
      | Some 'n' -> literal "null"; Null
      | Some ('-' | '0' .. '9') -> Num (parse_number ())
      | Some c -> fail (Printf.sprintf "unexpected %c" c)
      | None -> fail "unexpected end of input"
    in
    skip_ws ();
    v
  and parse_object () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' ->
      advance ();
      Obj []
    | _ ->
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        match peek () with
        | Some ',' ->
          advance ();
          members ((k, v) :: acc)
        | _ ->
          expect '}';
          Obj (List.rev ((k, v) :: acc))
      in
      members []
  and parse_array () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' ->
      advance ();
      Arr []
    | _ ->
      let rec elements acc =
        let v = parse_value () in
        match peek () with
        | Some ',' ->
          advance ();
          elements (v :: acc)
        | _ ->
          expect ']';
          Arr (List.rev (v :: acc))
      in
      elements []
  in
  try
    let v = parse_value () in
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

exception Bad_line of string

let parse_jsonl contents =
  let lines = String.split_on_char '\n' contents in
  let parse_line i line =
    let fail fmt = Printf.ksprintf (fun m -> raise (Bad_line m)) fmt in
    match parse_json line with
    | Error e -> fail "line %d: %s" (i + 1) e
    | Ok j ->
      let num_field ?default k =
        match (member k j, default) with
        | Some (Num v), _ -> v
        | None, Some d -> d
        | _ -> fail "line %d: missing number %S" (i + 1) k
      in
      let str_field ?default k =
        match (member k j, default) with
        | Some (Str v), _ -> v
        | None, Some d -> d
        | _ -> fail "line %d: missing string %S" (i + 1) k
      in
      let attrs =
        match member "attrs" j with
        | Some (Obj kvs) ->
          List.map (fun (k, v) -> (k, match v with Str s -> s | _ -> "")) kvs
        | None -> []
        | Some _ -> fail "line %d: bad attrs" (i + 1)
      in
      let span : Span.span =
        {
          id = int_of_float (num_field "id");
          parent = int_of_float (num_field "parent");
          trace = str_field ~default:"" "trace";
          name = str_field "name";
          attrs;
          domain = int_of_float (num_field ~default:0.0 "domain");
          start_s = num_field "start_s";
          dur_s = num_field "dur_s";
        }
      in
      (int_of_float (num_field ~default:1.0 "pid"), span)
  in
  try
    let res = ref [] in
    List.iteri
      (fun i line ->
        if String.trim line <> "" then res := parse_line i line :: !res)
      lines;
    Ok (List.rev !res)
  with Bad_line e -> Error e

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* ---------- durable benchmark results (BENCH_<scenario>.json) ---------- *)

(* Full precision, but still a valid JSON number (no nan/inf, no "1." with
   nothing after the point). *)
let bench_num v =
  if Float.is_nan v then "0"
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let bench_json ~scenario metrics =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"scenario\": \"%s\",\n  \"metrics\": {\n" (escape scenario);
  List.iteri
    (fun i (name, v) ->
      Printf.bprintf b "    \"%s\": %s%s\n" (escape name) (bench_num v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let write_bench_json ?dir ~scenario metrics =
  let json = bench_json ~scenario metrics in
  (match validate_json json with
  | Ok () -> ()
  | Error e ->
    failwith (Printf.sprintf "emitted BENCH_%s.json is not valid JSON: %s" scenario e));
  let file = Printf.sprintf "BENCH_%s.json" scenario in
  let path = match dir with None -> file | Some d -> Filename.concat d file in
  write_file ~path json;
  path
