(* ---------- JSON emission ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers may not be nan/inf; clamp defensively. *)
let num v =
  if Float.is_nan v then "0"
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else Printf.sprintf "%.3f" v

let args_json (s : Span.span) =
  let fields =
    [ ("span_id", string_of_int s.id); ("parent_id", string_of_int s.parent) ]
    @ s.attrs
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) fields)
  ^ "}"

let chrome_event (s : Span.span) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"overgen\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
    (escape s.name) s.domain
    (num (s.start_s *. 1e6))
    (num (s.dur_s *. 1e6))
    (args_json s)

let to_chrome spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (chrome_event s))
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let jsonl_line (s : Span.span) =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"domain\":%d,\"start_s\":%s,\"dur_s\":%s,\"attrs\":%s}"
    s.id s.parent (escape s.name) s.domain
    (Printf.sprintf "%.9f" s.start_s)
    (Printf.sprintf "%.9f" s.dur_s)
    ("{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
           s.attrs)
    ^ "}")

let to_jsonl spans = String.concat "\n" (List.map jsonl_line spans) ^ "\n"

(* ---------- JSON validation (grammar only, values discarded) ---------- *)

exception Bad of string * int

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal w =
    String.iter expect w
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
        saw := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if not !saw then fail "expected digit"
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> parse_object ()
    | Some '[' -> parse_array ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
    | None -> fail "unexpected end of input");
    skip_ws ()
  and parse_object () =
    expect '{';
    skip_ws ();
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        parse_string ();
        skip_ws ();
        expect ':';
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | _ -> expect '}'
      in
      members ())
  and parse_array () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> advance ()
    | _ ->
      let rec elements () =
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | _ -> expect ']'
      in
      elements ()
  in
  try
    parse_value ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok ()
  with Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* ---------- durable benchmark results (BENCH_<scenario>.json) ---------- *)

(* Full precision, but still a valid JSON number (no nan/inf, no "1." with
   nothing after the point). *)
let bench_num v =
  if Float.is_nan v then "0"
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let bench_json ~scenario metrics =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"scenario\": \"%s\",\n  \"metrics\": {\n" (escape scenario);
  List.iteri
    (fun i (name, v) ->
      Printf.bprintf b "    \"%s\": %s%s\n" (escape name) (bench_num v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let write_bench_json ?dir ~scenario metrics =
  let json = bench_json ~scenario metrics in
  (match validate_json json with
  | Ok () -> ()
  | Error e ->
    failwith (Printf.sprintf "emitted BENCH_%s.json is not valid JSON: %s" scenario e));
  let file = Printf.sprintf "BENCH_%s.json" scenario in
  let path = match dir with None -> file | Some d -> Filename.concat d file in
  write_file ~path json;
  path
