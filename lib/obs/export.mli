(** Span exporters: Chrome trace-event JSON and JSONL.

    {!to_chrome} produces a document loadable by [chrome://tracing] /
    Perfetto: one complete ("ph":"X") event per span, microsecond
    timestamps, the recording domain as the thread id, attributes (plus
    the span/parent ids) under ["args"].  {!to_jsonl} emits one
    self-contained JSON object per line, convenient for [jq] pipelines.

    {!validate_json} is a dependency-free well-formedness check (full
    RFC 8259 grammar, values discarded); the CLI runs every emitted trace
    through it before writing. *)

val to_chrome : Span.span list -> string
val to_jsonl : Span.span list -> string

val validate_json : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON value. *)

val write_file : path:string -> string -> unit
(** Write contents to [path] (truncating). *)

val bench_json : scenario:string -> (string * float) list -> string
(** The machine-readable benchmark-result document every [bench] scenario
    persists: a scenario name plus a flat object of named numeric
    metrics — the durable perf trajectory a future [bench regress] can
    diff against. *)

val write_bench_json :
  ?dir:string -> scenario:string -> (string * float) list -> string
(** Render {!bench_json}, self-validate it with {!validate_json}, and
    write it to [BENCH_<scenario>.json] under [dir] (default: the current
    directory).  Returns the path written.
    @raise Failure if the rendered document fails validation. *)
