(** Span exporters: Chrome trace-event JSON and JSONL.

    {!to_chrome} produces a document loadable by [chrome://tracing] /
    Perfetto: one complete ("ph":"X") event per span, microsecond
    timestamps, the recording domain as the thread id, attributes (plus
    the span/parent ids) under ["args"].  {!to_jsonl} emits one
    self-contained JSON object per line, convenient for [jq] pipelines.

    {!validate_json} is a dependency-free well-formedness check (full
    RFC 8259 grammar, values discarded); the CLI runs every emitted trace
    through it before writing. *)

val escape : string -> string
(** JSON string-content escaping (quotes, backslash, control chars). *)

val to_chrome : Span.span list -> string

val to_jsonl : ?pid:int -> Span.span list -> string
(** One span per line; each line carries the process id (default 1) so a
    merge can reconstruct process lanes without side information. *)

val merge_chrome :
  ?names:(int * string) list -> (int * Span.span) list -> string
(** Stitch spans from several processes into one Chrome trace document:
    each span keeps its originating pid, and a ["process_name"] metadata
    event labels every pid (from [names], default ["process <pid>"]). *)

val orphans : (int * Span.span) list -> (int * int) list
(** Parent ids referenced but never recorded, judged {e per process}
    (span ids are per-process counters): deduplicated [(pid, parent_id)]
    pairs.  Empty on a well-formed trace. *)

val validate_json : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON value. *)

(** {2 JSON value parsing} — dependency-free reader for the JSONL span
    files shards write; sibling of {!validate_json}. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Parse exactly one JSON value (full RFC 8259 grammar; [\uXXXX]
    escapes decode to UTF-8). *)

val member : string -> json -> json option
(** Object member lookup; [None] on non-objects. *)

val parse_jsonl : string -> ((int * Span.span) list, string) result
(** Read back a {!to_jsonl} document: one [(pid, span)] per non-blank
    line.  Missing [pid]/[trace]/[domain] fields default (old files stay
    readable); any malformed line fails the whole parse. *)

val write_file : path:string -> string -> unit
(** Write contents to [path] (truncating). *)

val bench_json : scenario:string -> (string * float) list -> string
(** The machine-readable benchmark-result document every [bench] scenario
    persists: a scenario name plus a flat object of named numeric
    metrics — the durable perf trajectory a future [bench regress] can
    diff against. *)

val write_bench_json :
  ?dir:string -> scenario:string -> (string * float) list -> string
(** Render {!bench_json}, self-validate it with {!validate_json}, and
    write it to [BENCH_<scenario>.json] under [dir] (default: the current
    directory).  Returns the path written.
    @raise Failure if the rendered document fails validation. *)
