(* Flight recorder: a fixed-size, mutex-protected ring of structured
   events.  Always on — post-mortems must not depend on somebody having
   remembered to enable tracing before the crash.  The ring bounds memory;
   [pin]ned events (store recoveries, drains, panics) live in a small
   separate list so a flood of routine admissions cannot evict them. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event = {
  seq : int;
  t_s : float;
  level : level;
  trace : string;
  name : string;
  attrs : (string * string) list;
}

type t = {
  m : Mutex.t;
  ring : event option array;
  pin_cap : int;
  mutable pinned : event list; (* newest first, bounded by pin_cap *)
  mutable next_seq : int;      (* total events ever recorded *)
  epoch : float;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Log.create: capacity < 1";
  {
    m = Mutex.create ();
    ring = Array.make capacity None;
    pin_cap = 64;
    pinned = [];
    next_seq = 0;
    epoch = Unix.gettimeofday ();
  }

let default = create ~capacity:1024 ()

let record ?(level = Info) ?trace ?(attrs = []) ?(pin = false) t name =
  let trace = match trace with Some tr -> tr | None -> Span.current_trace () in
  let now = Unix.gettimeofday () in
  Mutex.lock t.m;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { seq; t_s = now -. t.epoch; level; trace; name; attrs } in
  t.ring.(seq mod Array.length t.ring) <- Some ev;
  if pin then begin
    t.pinned <- ev :: t.pinned;
    if List.length t.pinned > t.pin_cap then
      t.pinned <- List.filteri (fun i _ -> i < t.pin_cap) t.pinned
  end;
  Mutex.unlock t.m

let count t =
  Mutex.lock t.m;
  let n = t.next_seq in
  Mutex.unlock t.m;
  n

(* Snapshot, oldest first, deduplicated by sequence number: ring events
   plus any pinned events the ring has since overwritten. *)
let recent ?max t =
  Mutex.lock t.m;
  let ring = Array.to_list t.ring in
  let pinned = t.pinned in
  Mutex.unlock t.m;
  let live = List.filter_map Fun.id ring in
  let seen = Hashtbl.create 64 in
  List.iter (fun ev -> Hashtbl.replace seen ev.seq ()) live;
  let extra = List.filter (fun ev -> not (Hashtbl.mem seen ev.seq)) pinned in
  let all = List.sort (fun a b -> compare a.seq b.seq) (extra @ live) in
  match max with
  | None -> all
  | Some m when m >= List.length all -> all
  | Some m ->
    (* keep the newest [m] *)
    List.filteri (fun i _ -> i >= List.length all - m) all

let clear t =
  Mutex.lock t.m;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.pinned <- [];
  t.next_seq <- 0;
  Mutex.unlock t.m

(* ---------- JSON ---------- *)

let event_json ev =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"seq\":%d,\"t_s\":%.6f,\"level\":\"%s\",\"trace\":\"%s\",\"name\":\"%s\",\"attrs\":{"
    ev.seq ev.t_s (level_to_string ev.level) (Export.escape ev.trace)
    (Export.escape ev.name);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":\"%s\"" (Export.escape k) (Export.escape v))
    ev.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let dump ?max t =
  let evs = recent ?max t in
  String.concat "" (List.map (fun ev -> event_json ev ^ "\n") evs)

let write_dump ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump t))
