(** Scoped span tracing with per-domain buffers.

    {!with_span} times a scope, records its parent (the innermost span
    open {e on the same domain}) and key/value attributes, and appends the
    finished span to a buffer local to the recording domain — no
    cross-domain synchronization on the hot path.  {!spans} merges every
    domain's buffer deterministically: ordered by start time, ties broken
    by span id.

    Recording is gated by {!Control}: with the gate off (the null
    backend, the default) [with_span name f] is [f ()] plus one atomic
    load — no clock read, no allocation. *)

type span = {
  id : int;             (** unique, process-wide; never 0 *)
  parent : int;         (** enclosing span's id, 0 for a root span *)
  trace : string;       (** 128-bit trace id as 32 hex chars, "" when none *)
  name : string;
  attrs : (string * string) list;
  domain : int;         (** id of the domain that recorded the span *)
  start_s : float;      (** seconds since the collector epoch ({!reset}) *)
  dur_s : float;
}

val fresh_trace : Overgen_util.Rng.t -> string
(** Draw a 128-bit trace id (32 lowercase hex chars) from the stream.
    Deterministic in the generator state — never wall-clock or [Random] —
    so replayed runs produce identical ids. *)

val with_trace : string -> (unit -> 'a) -> 'a
(** Run the thunk with the given trace id as this domain's current trace
    context; spans recorded inside carry it, and {!Log} events default to
    it.  [with_trace "" f] is just [f ()].  Unlike {!with_span} this is
    {e not} gated by {!Control} — trace/event correlation works with the
    null backend on. *)

val current_trace : unit -> string
(** This domain's current trace context; [""] when none. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span is recorded even if the thunk
    raises.  When recording is disabled this is just [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost span open on this domain; no-op
    when recording is disabled or no span is open. *)

val current_id : unit -> int
(** Id of the innermost open span on this domain; 0 when none. *)

val spans : unit -> span list
(** Merge all per-domain buffers: sorted by [(start_s, id)]. *)

val count : unit -> int
(** Total recorded spans across all domains. *)

val reset : unit -> unit
(** Drop every recorded span and restart the epoch.  Call only while no
    other domain is recording. *)
