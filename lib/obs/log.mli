(** Flight recorder: a fixed-size, domain-safe ring buffer of structured
    events — the always-on black box the ops plane and post-mortems read.

    Unlike {!Span} recording, the recorder is {e not} gated by {!Control}:
    crash forensics must not depend on tracing having been enabled in
    advance.  Each event carries a level, a monotonic timestamp (seconds
    since the recorder's creation), the current trace id (from
    {!Span.current_trace} unless overridden) and key/value attributes.
    The ring bounds memory; events recorded with [~pin:true] (store
    recoveries, drains, panics) are additionally kept in a small separate
    list so a flood of routine events cannot evict them. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

type event = {
  seq : int;                      (** 0-based; total order of recording *)
  t_s : float;                    (** seconds since the recorder epoch *)
  level : level;
  trace : string;                 (** "" when recorded outside any trace *)
  name : string;
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh recorder.  [capacity] (default 512) bounds the ring; up to 64
    pinned events survive past it.  @raise Invalid_argument if < 1. *)

val default : t
(** The process-wide recorder every subsystem records into. *)

val record :
  ?level:level ->
  ?trace:string ->
  ?attrs:(string * string) list ->
  ?pin:bool ->
  t ->
  string ->
  unit
(** [record t name] appends an event.  [trace] defaults to the calling
    domain's current trace context; [level] to [Info].  [~pin:true] marks
    the event as evict-proof (lifecycle milestones, not bulk traffic). *)

val recent : ?max:int -> t -> event list
(** Snapshot, oldest first: the ring's live events plus any pinned events
    the ring has overwritten, deduplicated by [seq].  [max] keeps only the
    newest [max]. *)

val count : t -> int
(** Total events ever recorded (including those the ring evicted). *)

val clear : t -> unit

val event_json : event -> string
(** One event as a single-line JSON object. *)

val dump : ?max:int -> t -> string
(** {!recent} as JSONL, one {!event_json} per line. *)

val write_dump : path:string -> t -> unit
(** Write [dump t] to [path] (truncating). *)
