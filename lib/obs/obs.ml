module Metrics = Metrics
module Span = Span
module Export = Export
module Log = Log

let enable = Control.enable
let disable = Control.disable
let on = Control.on

let incr ?by c = if Control.on () then Metrics.incr ?by c
let observe h v = if Control.on () then Metrics.observe h v
let set_gauge g v = if Control.on () then Metrics.set g v
