type span = {
  id : int;
  parent : int;
  trace : string;
  name : string;
  attrs : (string * string) list;
  domain : int;
  start_s : float;
  dur_s : float;
}

(* An open (not yet finished) span. *)
type frame = {
  fid : int;
  fname : string;
  mutable fattrs : (string * string) list;
  ft0 : float;
}

(* Per-domain recording state; registered globally on first use so the
   merge can find every buffer. *)
type dbuf = {
  dom : int;
  mutable stack : frame list;   (* open spans, innermost first *)
  mutable acc : span list;      (* finished spans, newest first *)
  mutable trace : string;       (* current trace context, "" when none *)
}

let bufs_m = Mutex.create ()
let all_bufs : dbuf list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); stack = []; acc = []; trace = "" }
      in
      Mutex.lock bufs_m;
      all_bufs := b :: !all_bufs;
      Mutex.unlock bufs_m;
      b)

let next_id = Atomic.make 1

(* Epoch: all start times are relative to it, keeping exported timestamps
   small.  Mutated only by [reset] (quiescent by contract). *)
let epoch = ref (Unix.gettimeofday ())

(* ---------- trace context ---------- *)

(* Trace ids are 128-bit lowercase-hex strings derived deterministically
   from an [Rng] stream — never from the wall clock or [Random] — so a
   replayed run produces the same ids and traces can be diffed. *)
let fresh_trace rng =
  let b = Buffer.create 32 in
  for _ = 1 to 8 do
    Buffer.add_string b (Printf.sprintf "%04x" (Overgen_util.Rng.int rng 0x10000))
  done;
  Buffer.contents b

(* [with_trace] is deliberately NOT gated on [Control]: the flight
   recorder ({!Log}) tags events with the current trace id even when span
   recording is off, so request/trace correlation survives in the null
   backend.  The cost is one DLS read and two field writes per request —
   not per instrumented site. *)
let with_trace trace f =
  if trace = "" then f ()
  else begin
    let b = Domain.DLS.get dls_key in
    let saved = b.trace in
    b.trace <- trace;
    Fun.protect ~finally:(fun () -> b.trace <- saved) f
  end

let current_trace () = (Domain.DLS.get dls_key).trace

let with_span ?(attrs = []) name f =
  if not (Control.on ()) then f ()
  else begin
    let b = Domain.DLS.get dls_key in
    let fr =
      {
        fid = Atomic.fetch_and_add next_id 1;
        fname = name;
        (* kept reversed while open so [add_attr] is a cons; un-reversed
           when the span is finished *)
        fattrs = List.rev attrs;
        ft0 = Unix.gettimeofday ();
      }
    in
    let parent = match b.stack with [] -> 0 | p :: _ -> p.fid in
    b.stack <- fr :: b.stack;
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        (match b.stack with _ :: rest -> b.stack <- rest | [] -> ());
        b.acc <-
          {
            id = fr.fid;
            parent;
            trace = b.trace;
            name = fr.fname;
            attrs = List.rev fr.fattrs;
            domain = b.dom;
            start_s = fr.ft0 -. !epoch;
            dur_s = t1 -. fr.ft0;
          }
          :: b.acc)
      f
  end

let add_attr k v =
  if Control.on () then
    let b = Domain.DLS.get dls_key in
    match b.stack with
    | [] -> ()
    | fr :: _ -> fr.fattrs <- (k, v) :: fr.fattrs

let current_id () =
  if not (Control.on ()) then 0
  else
    let b = Domain.DLS.get dls_key in
    match b.stack with [] -> 0 | fr :: _ -> fr.fid

let gather () =
  Mutex.lock bufs_m;
  let bs = !all_bufs in
  Mutex.unlock bufs_m;
  bs

let spans () =
  let all = List.concat_map (fun b -> b.acc) (gather ()) in
  List.stable_sort
    (fun a b ->
      match compare a.start_s b.start_s with 0 -> compare a.id b.id | c -> c)
    all

let count () = List.fold_left (fun n b -> n + List.length b.acc) 0 (gather ())

let reset () =
  List.iter (fun b -> b.acc <- []) (gather ());
  epoch := Unix.gettimeofday ()
