(* The single global gate for hot-path instrumentation.

   Every gated call site (span recording, hot-loop counters in the
   scheduler / simulator / DSE) starts with one atomic load and a branch.
   With the gate off — the default — that is the whole cost of the "null
   backend": no time is read, nothing is allocated, nothing is recorded.
   Registries used directly (the compile service's telemetry) are NOT
   gated; their counting is part of their API contract. *)

let enabled = Atomic.make false

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
