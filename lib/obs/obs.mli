(** Unified observability facade: one gate, three instruments.

    {[
      module Obs = Overgen_obs.Obs

      Obs.enable ();
      Obs.Span.with_span "compile" ~attrs:[ ("kernel", "fir") ] (fun () -> ...);
      Obs.incr moves_tried;
      print_string (Obs.Metrics.render_report Obs.Metrics.default)
    ]}

    The gate ({!enable} / {!disable}) is the null backend switch: with it
    off — the default — every gated call site costs one atomic load and a
    branch, allocates nothing and records nothing ([bench/main.exe obs]
    measures this at well under the 3% overhead budget).  Registries used
    directly through {!Metrics} (e.g. the compile service's telemetry) are
    not gated. *)

module Metrics = Metrics
module Span = Span
module Export = Export

module Log = Log
(** The flight recorder is {e not} gated: {!Log.record} always records,
    so post-mortems work even with the null backend on. *)

val enable : unit -> unit
val disable : unit -> unit

val on : unit -> bool
(** Whether recording is enabled. *)

(** {2 Gated metric updates} — no-ops while recording is disabled. *)

val incr : ?by:int -> Metrics.counter -> unit
val observe : Metrics.histogram -> float -> unit
val set_gauge : Metrics.gauge -> float -> unit
