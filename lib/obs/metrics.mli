(** Domain-safe metrics registry: named counters, gauges and fixed-bucket
    histograms.

    All updates are lock-free ([Atomic]) or CAS-retried, so any number of
    {!Overgen_par.Pool} worker domains may hammer one metric concurrently
    and a quiescent snapshot is exact.  Metric creation is get-or-create:
    asking a registry twice for the same (name, labels) pair returns the
    same underlying metric, so modules can declare their instruments at
    load time without coordination.

    Rendering is deterministic (metrics sorted by name, then labels):
    {!render_report} gives a one-screen text report, {!render_prometheus}
    a Prometheus-style exposition dump. *)

type registry

val create_registry : ?label:string -> unit -> registry
(** A fresh, empty registry.  [label] heads the text report. *)

val default : registry
(** The process-wide registry that the compile pipeline's built-in
    instrumentation (scheduler, simulator, DSE, core compile phases)
    registers into; dumped by the CLI's [--metrics-out]. *)

(** {2 Counters} — monotone integers. *)

type counter

val counter :
  ?help:string -> ?labels:(string * string) list -> registry -> string -> counter
(** Get or create.  @raise Invalid_argument if the (name, labels) pair is
    already registered as a different metric kind. *)

val incr : ?by:int -> counter -> unit
(** Atomic add; [by] defaults to 1. *)

val counter_value : counter -> int

(** {2 Gauges} — last-write-wins floats. *)

type gauge

val gauge :
  ?help:string -> ?labels:(string * string) list -> registry -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — fixed upper-bound buckets plus an exact sum/count. *)

type histogram

val default_buckets : float array
(** Latency-flavored bounds in seconds, 100 µs .. 5 s. *)

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  registry ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds; an implicit +infinity
    bucket is always appended.  Defaults to {!default_buckets}. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_buckets : (float * int) array;
      (** (upper bound, cumulative count ≤ bound); last bound is
          [infinity] so its count equals [h_count] *)
  h_count : int;
  h_sum : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {2 Rendering} *)

val render_report : ?label:string -> registry -> string
(** One-screen human-readable dump of every metric. *)

val render_prometheus : registry -> string
(** Prometheus text exposition format: [# HELP] / [# TYPE] headers,
    [name{label="v"} value] samples, histograms as [_bucket]/[_sum]/
    [_count] series with [le] labels. *)

val reset : registry -> unit
(** Zero every metric (counts, gauge values, histogram buckets).  The
    metrics themselves stay registered.  Only meaningful when no other
    domain is updating concurrently. *)
