type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  bounds : float array;          (* strictly increasing upper bounds *)
  buckets : int Atomic.t array;  (* per-bucket (non-cumulative) counts;
                                    length = Array.length bounds + 1, the
                                    last one is the +inf overflow bucket *)
  count : int Atomic.t;
  sum : float Atomic.t;          (* CAS-retried add *)
}

type kind =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : kind;
}

type registry = {
  label : string;
  m : Mutex.t;
  mutable metrics : metric list;  (* newest first *)
}

let create_registry ?(label = "") () =
  { label; m = Mutex.create (); metrics = [] }

let default = create_registry ~label:"overgen" ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Get-or-create under the registry mutex; creation is rare (module load,
   first use), so a linear scan is fine. *)
let register reg name labels help make match_kind =
  Mutex.lock reg.m;
  let found =
    List.find_opt (fun m -> m.name = name && m.labels = labels) reg.metrics
  in
  let r =
    match found with
    | Some m -> (
      match match_kind m.kind with
      | Some v ->
        Mutex.unlock reg.m;
        Ok v
      | None ->
        let k = kind_name m.kind in
        Mutex.unlock reg.m;
        Error
          (Printf.sprintf "Metrics: %s is already registered as a %s" name k))
    | None ->
      let v, kind = make () in
      reg.metrics <- { name; labels; help; kind } :: reg.metrics;
      Mutex.unlock reg.m;
      Ok v
  in
  match r with Ok v -> v | Error e -> invalid_arg e

let counter ?(help = "") ?(labels = []) reg name =
  register reg name labels help
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge ?(help = "") ?(labels = []) reg name =
  register reg name labels help
    (fun () ->
      let g = Atomic.make 0.0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let default_buckets =
  [| 1e-4; 5e-4; 1e-3; 5e-3; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 |]

let rec atomic_add_float a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_add_float a x

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) reg name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be increasing")
    buckets;
  register reg name labels help
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          count = Atomic.make 0;
          sum = Atomic.make 0.0;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.bounds in
  let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(idx 0) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  atomic_add_float h.sum v

type histogram_snapshot = {
  h_buckets : (float * int) array;
  h_count : int;
  h_sum : float;
}

let histogram_snapshot h =
  let n = Array.length h.bounds in
  let cum = ref 0 in
  let buckets =
    Array.init (n + 1) (fun i ->
        cum := !cum + Atomic.get h.buckets.(i);
        ((if i < n then h.bounds.(i) else infinity), !cum))
  in
  { h_buckets = buckets; h_count = Atomic.get h.count; h_sum = Atomic.get h.sum }

(* ---------- rendering ---------- *)

let sorted_metrics reg =
  Mutex.lock reg.m;
  let ms = reg.metrics in
  Mutex.unlock reg.m;
  List.stable_sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) ms

let label_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let render_report ?label reg =
  let label = match label with Some l -> l | None -> reg.label in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "-- metrics%s %s"
    (if label = "" then "" else " [" ^ label ^ "]")
    (String.make (max 2 (44 - String.length label)) '-');
  let ms = sorted_metrics reg in
  if ms = [] then line "(no metrics registered)";
  List.iter
    (fun m ->
      let id = m.name ^ label_str m.labels in
      match m.kind with
      | Counter c -> line "%-52s %12d" id (Atomic.get c)
      | Gauge g -> line "%-52s %12.4f" id (Atomic.get g)
      | Histogram h ->
        let s = histogram_snapshot h in
        let mean = if s.h_count = 0 then 0.0 else s.h_sum /. float_of_int s.h_count in
        line "%-52s count %8d  sum %12.6f  mean %10.6f" id s.h_count s.h_sum mean)
    ms;
  Buffer.contents b

(* Prometheus label values backslash-escape backslash, quote, newline. *)
let prom_escape v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_prometheus reg =
  let b = Buffer.create 2048 in
  let seen_header = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
      Printf.bprintf b "# TYPE %s %s\n" name kind
    end
  in
  List.iter
    (fun m ->
      match m.kind with
      | Counter c ->
        header m.name m.help "counter";
        Printf.bprintf b "%s%s %d\n" m.name (prom_labels m.labels) (Atomic.get c)
      | Gauge g ->
        header m.name m.help "gauge";
        Printf.bprintf b "%s%s %s\n" m.name (prom_labels m.labels)
          (prom_float (Atomic.get g))
      | Histogram h ->
        header m.name m.help "histogram";
        let s = histogram_snapshot h in
        Array.iter
          (fun (le, cum) ->
            let le_s = if le = infinity then "+Inf" else prom_float le in
            Printf.bprintf b "%s_bucket%s %d\n" m.name
              (prom_labels (m.labels @ [ ("le", le_s) ]))
              cum)
          s.h_buckets;
        Printf.bprintf b "%s_sum%s %s\n" m.name (prom_labels m.labels)
          (prom_float s.h_sum);
        Printf.bprintf b "%s_count%s %d\n" m.name (prom_labels m.labels) s.h_count)
    (sorted_metrics reg);
  Buffer.contents b

let reset reg =
  Mutex.lock reg.m;
  List.iter
    (fun m ->
      match m.kind with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0.0
      | Histogram h ->
        Array.iter (fun bucket -> Atomic.set bucket 0) h.buckets;
        Atomic.set h.count 0;
        Atomic.set h.sum 0.0)
    reg.metrics;
  Mutex.unlock reg.m
