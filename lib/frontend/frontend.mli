(** The kernel source frontend.

    Parses the pragma'd C dialect that {!Overgen_workload.C_source.emit}
    produces — the paper's "multithreaded C with pragmas" programming
    interface (Section III-A) — and lowers it into the existing
    {!Overgen_workload.Ir.kernel}:

    - [#pragma dsa kernel name(..) suite(..) dtype(..) lanes(..) size(..)]
      with optional [window_reuse] / [broadcast] flags carries the kernel
      metadata;
    - [static <type> og_x\[N\];] declarations define the arrays,
      [static <type> og_p = <num>;] the scalars (parameters when only
      read, reduction targets when assigned);
    - the [void <name>_kernel(void)] function holds one
      [#pragma dsa config] block of regions, each introduced by
      [#pragma dsa decouple region(..) hls(..)] and consisting of a
      perfect [for] nest ([for (int v = 0; v < N; ++v)], with
      [OG_TRI(u, n)] bounds for triangular trips) around store /
      accumulation / reduction statements over affine or single-level
      indirect subscripts;
    - an optional [#pragma dsa tune desc(..)] + [void <name>_kernel_tuned]
      pair carries the manually tuned variant.

    Lexing, parsing, lowering and the subscript bounds check are all
    dependency-free, and the module holds the service's isolation
    contract: {!parse} never lets an exception escape — every rejection
    is a located {!error}. *)

type error = { line : int; col : int; msg : string }

val error_to_string : error -> string
(** ["line:col: message"]. *)

val parse : string -> (Overgen_workload.Ir.kernel, error) result
(** Parse one translation unit.  Never raises. *)

val source_name : string -> string option
(** Cheap scan for the [name(..)] attribute of the kernel pragma, for
    telemetry labels — no full parse. *)
